//! Every registered workload must build and run to successful completion
//! on the personalities it targets — these are the paper's benchmark
//! inputs, so a crash here invalidates every downstream experiment.

use asc_kernel::Personality;
use asc_vm::RunOutcome;
use asc_workloads::{build, program, programs, run_plain};

fn run_ok(name: &str, personality: Personality) -> asc_kernel::Kernel {
    let spec = program(name).expect("registered");
    let binary = build(spec, personality).unwrap_or_else(|e| panic!("{name}: {e}"));
    let (outcome, kernel) = run_plain(spec, &binary, personality);
    assert_eq!(
        outcome,
        RunOutcome::Exited(0),
        "{name} on {personality:?}: stdout={:?} stderr={:?}",
        String::from_utf8_lossy(kernel.stdout()),
        String::from_utf8_lossy(kernel.stderr()),
    );
    kernel
}

#[test]
fn bison_runs_both_personalities() {
    let kernel = run_ok("bison", Personality::Linux);
    let out = String::from_utf8_lossy(kernel.stdout()).to_string();
    assert!(out.contains("rules: 6"), "{out}");
    assert!(kernel
        .fs()
        .read_file("/home/parser.out")
        .unwrap()
        .starts_with(b"table\n"));
    run_ok("bison", Personality::OpenBsd);
}

#[test]
fn calc_runs_both_personalities() {
    let kernel = run_ok("calc", Personality::Linux);
    let out = String::from_utf8_lossy(kernel.stdout()).to_string();
    // 12345678 * 87654321 = 1082152022374638
    assert!(out.contains("1082152022374638"), "{out}");
    assert!(out.contains("1000"), "{out}"); // 999 + 1
    run_ok("calc", Personality::OpenBsd);
}

#[test]
fn screen_runs_both_personalities() {
    let kernel = run_ok("screen", Personality::Linux);
    let out = String::from_utf8_lossy(kernel.stdout()).to_string();
    assert!(out.contains("created window 1"), "{out}");
    assert!(out.contains("windows: 1"), "{out}");
    assert!(out.contains("detached"), "{out}");
    run_ok("screen", Personality::OpenBsd);
}

#[test]
fn tar_archives_and_verifies() {
    let kernel = run_ok("tar", Personality::Linux);
    let out = String::from_utf8_lossy(kernel.stdout()).to_string();
    assert!(out.contains("archived 3 files, verified 3"), "{out}");
    run_ok("tar", Personality::OpenBsd);
}

#[test]
fn perf_suite_runs() {
    for name in [
        "gzip-spec",
        "crafty",
        "mcf",
        "vpr",
        "twolf",
        "gcc",
        "vortex",
        "pyramid",
        "gzip",
    ] {
        let kernel = run_ok(name, Personality::Linux);
        assert!(!kernel.stdout().is_empty(), "{name} produced output");
    }
}

#[test]
fn gzip_output_is_smaller_and_nonempty() {
    let kernel = run_ok("gzip", Personality::Linux);
    let original = kernel.fs().read_file("/home/input.dat").unwrap().len();
    let compressed = kernel.fs().read_file("/home/input.gz").unwrap().len();
    assert!(compressed > 0);
    assert!(compressed < original, "{compressed} < {original}");
}

#[test]
fn victim_runs_benignly() {
    let kernel = run_ok("victim", Personality::Linux);
    assert_eq!(kernel.exec_requests(), &["/bin/ls".to_string()]);
}

#[test]
fn cpu_programs_make_few_syscalls_and_syscall_programs_many() {
    let cpu = run_ok("mcf", Personality::Linux);
    let sys = run_ok("pyramid", Personality::Linux);
    assert!(
        cpu.stats().syscalls < 60,
        "mcf should be CPU-bound: {} syscalls",
        cpu.stats().syscalls
    );
    assert!(
        sys.stats().syscalls > 200,
        "pyramid should be syscall-bound: {} syscalls",
        sys.stats().syscalls
    );
}

#[test]
fn all_registered_programs_have_distinct_names() {
    let mut names: Vec<_> = programs().iter().map(|p| p.name).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(names.len(), before);
}
