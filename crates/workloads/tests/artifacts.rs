//! Negative-path loading of the installed policy sections.
//!
//! The `.ascflow` digraph and `.ascsites` registry are the only inputs
//! the enforcing kernel trusts from the binary itself, so their loaders
//! must never panic and never silently degrade: a missing section is a
//! structured [`ArtifactError`], a truncated or MAC-rejected one either
//! surfaces the parse error (`try_*`) or fails *closed* — the loader
//! hands the kernel an empty registry and every subsequent trap is an
//! `unrewritten-site` kill, not an unenforced run.

use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{Personality, ReasonCode, SitesParseError};
use asc_object::{sections, Binary};
use asc_vm::RunOutcome;
use asc_workloads::{
    build, program, run_enforcing, site_registry_for, try_flow_graph_of, try_sites_of,
    ArtifactError, ProgramSpec,
};

const PERSONALITY: Personality = Personality::Linux;

fn key() -> asc_crypto::MacKey {
    asc_crypto::MacKey::from_seed(0x0A57_1FAC)
}

fn installed() -> (&'static ProgramSpec, Binary) {
    let spec = program("calc").expect("registered");
    let plain = build(spec, PERSONALITY).expect("builds");
    let installer = Installer::new(
        key(),
        InstallerOptions::new(PERSONALITY).with_program_id(0x0A11),
    );
    let (auth, _) = installer.install(&plain, spec.name).expect("installs");
    (spec, auth)
}

/// A copy of `auth` with one section's data rewritten in place.
fn mutate(auth: &Binary, section: &str, f: impl FnOnce(&mut Vec<u8>)) -> Binary {
    let mut b = auth.clone();
    let idx = b.section_index(section).expect("section present") as usize;
    f(&mut b.sections_mut()[idx].data);
    b
}

/// A copy of `auth` with one section renamed out of existence (what a
/// section-stripping tool would leave behind).
fn strip(auth: &Binary, section: &str) -> Binary {
    let mut b = auth.clone();
    let idx = b.section_index(section).expect("section present") as usize;
    b.sections_mut()[idx].name = format!("{section}.stripped");
    b
}

#[test]
fn clean_artifacts_parse_and_only_under_the_install_key() {
    let (_, auth) = installed();
    let sites = try_sites_of(&auth, &key()).expect("authentic registry parses");
    assert!(!sites.is_empty());
    try_flow_graph_of(&auth, &key()).expect("authentic digraph parses");

    let wrong = asc_crypto::MacKey::from_seed(0x0A57_1FAD);
    assert_eq!(
        try_sites_of(&auth, &wrong),
        Err(ArtifactError::BadSites(SitesParseError::BadMac)),
        "a registry must not authenticate under a foreign key"
    );
    assert!(
        matches!(
            try_flow_graph_of(&auth, &wrong),
            Err(ArtifactError::BadFlow(_))
        ),
        "a digraph must not authenticate under a foreign key"
    );
}

#[test]
fn missing_sections_are_structured_errors_not_panics() {
    let (_, auth) = installed();

    let no_sites = strip(&auth, sections::ASCSITES);
    let err = try_sites_of(&no_sites, &key()).expect_err("missing section");
    assert_eq!(err, ArtifactError::Missing(sections::ASCSITES));
    assert!(err.to_string().contains(sections::ASCSITES), "{err}");
    // Pre-registry binaries keep the historical (unenforced) behaviour.
    assert_eq!(site_registry_for(&no_sites, &key()), None);

    let no_flow = strip(&auth, sections::ASCFLOW);
    let err = try_flow_graph_of(&no_flow, &key()).expect_err("missing section");
    assert_eq!(err, ArtifactError::Missing(sections::ASCFLOW));
    assert!(err.to_string().contains(sections::ASCFLOW), "{err}");

    // A bare binary that never saw the installer has neither.
    let bare = Binary::new(0);
    assert!(try_sites_of(&bare, &key()).is_err());
    assert!(try_flow_graph_of(&bare, &key()).is_err());
    assert_eq!(site_registry_for(&bare, &key()), None);
}

#[test]
fn truncated_sections_never_panic_and_fail_closed() {
    let (_, auth) = installed();
    let sites_len = auth
        .section_by_name(sections::ASCSITES)
        .expect("present")
        .data
        .len();
    for keep in [0usize, 1, 3, 7, sites_len - 1] {
        let cut = mutate(&auth, sections::ASCSITES, |d| d.truncate(keep));
        let err = try_sites_of(&cut, &key()).expect_err("truncated registry");
        assert!(
            matches!(err, ArtifactError::BadSites(SitesParseError::Truncated)),
            "keep={keep}: {err:?}"
        );
        // Fail closed: present-but-unparseable means an empty registry,
        // so origin enforcement stays on (and kills everything) rather
        // than being silently dropped.
        let registry = site_registry_for(&cut, &key()).expect("fail-closed registry");
        assert!(registry.is_empty(), "keep={keep}");
    }

    let flow_len = auth
        .section_by_name(sections::ASCFLOW)
        .expect("present")
        .data
        .len();
    for keep in [0usize, 2, flow_len / 2, flow_len - 1] {
        let cut = mutate(&auth, sections::ASCFLOW, |d| d.truncate(keep));
        assert!(
            matches!(
                try_flow_graph_of(&cut, &key()),
                Err(ArtifactError::BadFlow(_))
            ),
            "keep={keep}: truncated digraph must be a structured error"
        );
    }
}

#[test]
fn mac_tampered_registry_fails_closed_to_a_kill() {
    let (spec, auth) = installed();
    // Flip one byte in each interesting region: the count header, a pc,
    // and the trailing MAC itself. None may authenticate; all must leave
    // the program dead on its first trap with zero side effects.
    let sites_len = auth
        .section_by_name(sections::ASCSITES)
        .expect("present")
        .data
        .len();
    for flip in [0usize, 5, sites_len - 1] {
        let forged = mutate(&auth, sections::ASCSITES, |d| d[flip] ^= 1);
        let err = try_sites_of(&forged, &key()).expect_err("tampered registry");
        assert!(
            matches!(
                err,
                ArtifactError::BadSites(SitesParseError::BadMac)
                    | ArtifactError::BadSites(SitesParseError::Truncated)
            ),
            "flip={flip}: {err:?}"
        );
        let registry = site_registry_for(&forged, &key()).expect("fail-closed registry");
        assert!(registry.is_empty(), "flip={flip}");

        let (outcome, kernel) = run_enforcing(spec, &forged, PERSONALITY, key());
        assert!(
            matches!(outcome, RunOutcome::Killed(_)),
            "flip={flip}: tampered registry must kill, got {outcome:?}"
        );
        let alert = kernel.alerts().last().expect("fail-stop kill alerts");
        assert_eq!(alert.reason(), ReasonCode::UnrewrittenSite, "{alert}");
        assert!(kernel.stdout().is_empty(), "flip={flip}: output escaped");
        assert!(kernel.trace().is_empty(), "flip={flip}: a call dispatched");
    }
}

#[test]
fn mac_tampered_flow_digraph_is_a_structured_error() {
    let (_, auth) = installed();
    let flow_len = auth
        .section_by_name(sections::ASCFLOW)
        .expect("present")
        .data
        .len();
    for flip in [0usize, 9, flow_len - 1] {
        let forged = mutate(&auth, sections::ASCFLOW, |d| d[flip] ^= 1);
        let err = try_flow_graph_of(&forged, &key()).expect_err("tampered digraph");
        assert!(
            matches!(err, ArtifactError::BadFlow(_)),
            "flip={flip}: {err:?}"
        );
        assert!(!err.to_string().is_empty());
    }
}
