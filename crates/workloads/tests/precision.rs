//! Precision-regression golden table for the hostile-guest corpus.
//!
//! Each adversarial shape pins the installer's own precision counters:
//! how many syscall sites the analysis *discovered*, how many it could
//! soundly *rewrite*, how many traps carry an unknown number or flow
//! through a region the lifter refused to disassemble, the
//! unknown-argument rate, and the predecessor-set over-approximation.
//! These are the numbers a B-Side-style evaluation reports, and they are
//! a regression surface: an "improvement" to the lifter or the policy
//! generator that silently changes one of them (rewriting a site it
//! should refuse, widening a pred set) shows up here before it shows up
//! as a soundness hole.
//!
//! The same table, rendered, is golden-pinned end to end by the
//! `coverage` bench binary (`crates/bench/golden/coverage.txt`); this
//! test pins the raw counters independently of formatting — and under a
//! *different* install key, because precision is a property of the
//! analysis, not of the MAC key.

use asc_installer::{Installer, InstallerOptions, PrecisionStats};
use asc_kernel::Personality;
use asc_workloads::hostile::{build_hostile, hostile, HOSTILE};

/// Expected counters per guest, in corpus order:
/// (discovered, rewritten, unknown_nr, undisassembled_regions,
///  input_args, unknown_args, pred_entries, pred_sites).
const EXPECTED: [(&str, [usize; 8]); 8] = [
    ("fnptr-table", [4, 4, 0, 0, 6, 0, 16, 4]),
    ("fnptr-blind", [3, 1, 2, 0, 1, 0, 1, 1]),
    ("wrapper-double", [3, 1, 2, 0, 1, 0, 2, 1]),
    ("wrapper-triple", [3, 1, 2, 0, 1, 0, 2, 1]),
    ("stub-opaque", [1, 1, 0, 1, 1, 0, 0, 1]),
    ("data-in-text", [4, 3, 1, 0, 4, 3, 4, 3]),
    ("pred-blowup", [4, 4, 0, 0, 6, 0, 17, 4]),
    ("gadget", [1, 1, 0, 1, 1, 0, 0, 1]),
];

fn precision_of(name: &str) -> PrecisionStats {
    let spec = hostile(name).expect("guest in corpus");
    let plain = build_hostile(spec).unwrap_or_else(|e| panic!("{name}: {e}"));
    let installer = Installer::new(
        asc_crypto::MacKey::from_seed(0x04EC_1510),
        InstallerOptions::new(Personality::Linux).with_program_id(0x0D00),
    );
    let (_, report) = installer
        .install(&plain, name)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    report.precision
}

#[test]
fn hostile_corpus_precision_counters_are_pinned() {
    assert_eq!(
        EXPECTED.len(),
        HOSTILE.len(),
        "a guest joined or left the corpus — extend the expected table"
    );
    for ((name, want), spec) in EXPECTED.iter().zip(HOSTILE) {
        assert_eq!(*name, spec.name, "corpus order drifted");
        let p = precision_of(name);
        let got = [
            p.discovered,
            p.rewritten,
            p.unknown_nr,
            p.undisassembled_regions,
            p.input_args,
            p.unknown_args,
            p.pred_entries,
            p.pred_sites,
        ];
        assert_eq!(
            &got, want,
            "{name}: precision counters drifted \
             (discovered, rewritten, unknown_nr, undis, args, unk_args, \
              pred_entries, pred_sites) — if the analysis change is \
             intentional, update this table AND regenerate coverage.txt"
        );
    }
}

/// The derived rates stay consistent with the raw counters (the rendered
/// table is computed, never stored).
#[test]
fn derived_rates_follow_the_counters() {
    for (name, _) in EXPECTED {
        let p = precision_of(name);
        assert!(p.rewritten <= p.discovered, "{name}");
        assert!(p.unknown_args <= p.input_args, "{name}");
        let want_rate = if p.discovered == 0 {
            0.0
        } else {
            p.rewritten as f64 / p.discovered as f64
        };
        assert!((p.rewrite_rate() - want_rate).abs() < 1e-9, "{name}");
        if p.input_args > 0 {
            let want = p.unknown_args as f64 / p.input_args as f64;
            assert!((p.unknown_arg_rate() - want).abs() < 1e-9, "{name}");
        }
        if p.pred_sites > 0 {
            let want = p.pred_entries as f64 / p.pred_sites as f64;
            assert!((p.pred_over_approx() - want).abs() < 1e-9, "{name}");
        }
    }
}

/// Hard soundness floors the corpus was built to probe: the installer
/// never rewrites more than it discovers, every guest with an opaque
/// stub reports the undisassembled region, and the raw-gadget guest's
/// hidden syscall is *not* among the rewritten sites.
#[test]
fn corpus_soundness_floors() {
    let blind = precision_of("fnptr-blind");
    assert!(
        blind.rewritten < blind.discovered,
        "blind table was rewritten"
    );
    let stub = precision_of("stub-opaque");
    assert!(stub.undisassembled_regions > 0, "opaque stub disassembled?");
    let gadget = precision_of("gadget");
    assert!(gadget.undisassembled_regions > 0);
    assert_eq!(
        gadget.rewritten, 1,
        "only the overt exit site is rewritable; the smuggled gadget is not"
    );
}
