//! The hostile-guest corpus: adversarial binaries engineered to stress
//! the installer's static analysis the way B-Side-style evaluations
//! stress binary recovery tools.
//!
//! Every registered workload in [`crate::programs`] is *cooperative* —
//! compiled from the guest language, syscalls behind ordinary libc
//! stubs, all numbers and most arguments static. These guests are the
//! opposite: each one embodies one shape that real stripped binaries (or
//! a deliberate adversary) use and that degrades one specific precision
//! metric (the installer's `PrecisionStats`):
//!
//! | guest | shape | degrades |
//! |---|---|---|
//! | `fnptr-table` | syscall stubs dispatched through a data-section pointer table | pred-set precision |
//! | `fnptr-blind` | bare `syscall; ret` trap stub, number loaded from data | unknown-nr rate |
//! | `wrapper-double` | `__syscall`-style wrapper two calls deep | inlining depth |
//! | `wrapper-triple` | the same, three calls deep | inlining depth |
//! | `stub-opaque` | un-disassemblable stub: code hidden at a misaligned offset (the OpenBSD-`close` shape) | undisassembled regions |
//! | `data-in-text` | data islands that *decode* as spurious `SYSCALL` instructions | discovered-site inflation |
//! | `pred-blowup` | data-driven dispatch loop over stubs | pred-set over-approximation |
//! | `gadget` | raw `SYSCALL` gadget at a misaligned offset, reached by computed jump | origin privilege |
//!
//! The guests are raw assembly (no libc): the shapes below cannot be
//! expressed in the guest language, which is the point — the installer
//! only ever sees binaries, and binaries are not obligated to look like
//! compiler output.
//!
//! The `gadget` guest is the corpus's live attack: its hidden `SYSCALL`
//! never appears in the installer's site registry, so under origin
//! enforcement the trap fail-stops with `Violation::UnrewrittenSite`
//! before the call dispatches; on an unprotected kernel the smuggled
//! `write` lands. `stub-opaque` is the same hiding trick used benignly —
//! the whole stub body is invisible to disassembly, reproducing Table 2's
//! "PLTO cannot disassemble OpenBSD `close`" effect.

/// One adversarial guest: a named raw-assembly program.
#[derive(Clone, Copy, Debug)]
pub struct HostileSpec {
    /// Registry name (kebab-case).
    pub name: &'static str,
    /// One-line description of the shape and what it degrades.
    pub description: &'static str,
    /// Raw assembly source (assembled directly; no libc, no runtime).
    pub asm: &'static str,
}

/// Syscall stubs dispatched through a function-pointer table in `.data`.
/// Every stub is self-contained (number and arguments loaded inside the
/// stub), so all sites rewrite — but the indirect calls mean no static
/// caller/callee pairing, and the syscall digraph must over-approximate.
const FNPTR_TABLE: &str = "
    .entry main
    .text
main:
    movi r13, table     ; cursor in r13: survives authenticated calls
    ldw r9, [r13]
    callr r9            ; table[0]
    addi r13, r13, 4
    ldw r9, [r13]
    callr r9            ; table[1]
    addi r13, r13, 4
    ldw r9, [r13]
    callr r9            ; table[2]
    movi r0, 1          ; exit(0)
    movi r1, 0
    syscall
s_pid:
    movi r0, 20         ; getpid
    syscall
    ret
s_write:
    movi r0, 4          ; write(1, msg, 4)
    movi r1, 1
    movi r2, msg
    movi r3, 4
    syscall
    ret
s_access:
    movi r0, 33         ; access(path, 0)
    movi r1, path
    movi r2, 0
    syscall
    ret
    .rodata
msg:
    .asciz \"tbl\\n\"
path:
    .asciz \"/etc/motd\"
    .data
table:
    .word s_pid
    .word s_write
    .word s_access
";

/// A bare `syscall; ret` trap stub whose number comes out of a data
/// table: the dataflow cannot resolve `R0` at the trap, so the site is
/// discovered but never rewritten (unknown-nr), and at runtime the trap
/// arrives from an unregistered pc.
const FNPTR_BLIND: &str = "
    .entry main
    .text
main:
    movi r8, nrs
    ldw r0, [r8]        ; r0 := 20 (getpid), invisible statically
    call trap
    movi r0, 1          ; exit(0)
    movi r1, 0
    syscall
trap:
    syscall             ; number chosen by the caller, from data
    ret
    .data
nrs:
    .word 20
";

/// `__syscall`-style wrapper indirection, two calls deep. Stub inlining
/// is one level: the innermost trap stub inlines into its caller, but the
/// outer wrapper keeps a call in its body and is not a stub, so the
/// syscall number must survive an interprocedural hop.
const WRAPPER_DOUBLE: &str = "
    .entry main
    .text
main:
    movi r0, 20         ; getpid via two wrappers
    call w1
    movi r0, 1          ; exit(0)
    movi r1, 0
    syscall
w1:
    call w2
    ret
w2:
    syscall
    ret
";

/// The same wrapper shape, three calls deep — one hop past anything the
/// single-pass inliner can recover.
const WRAPPER_TRIPLE: &str = "
    .entry main
    .text
main:
    movi r0, 20         ; getpid via three wrappers
    call w1
    movi r0, 1          ; exit(0)
    movi r1, 0
    syscall
w1:
    call w2
    ret
w2:
    call w3
    ret
w3:
    syscall
    ret
";

/// The OpenBSD-`close` shape: an entire stub body hidden at a misaligned
/// offset inside an un-disassemblable island. The lifter's fixed 8-byte
/// stride sees one opaque region and two junk-but-decodable words; the
/// real `movi r0, 20; syscall; ret` lives at `blob+4` and only exists for
/// a machine that jumps there. The island bytes spell, misaligned:
/// `movi r0, 20` (02…14…), `syscall` (26…), `ret` (25…).
const STUB_OPAQUE: &str = "
    .entry main
    .text
main:
    movi r7, blob
    addi r7, r7, 4
    callr r7            ; call the invisible stub
    movi r0, 1          ; exit(0)
    movi r1, 0
    syscall
blob:
    .word 0xffffffff    ; poison: first chunk fails to decode
    .word 0x00000002    ; +4: movi r0, 20
    .word 20
    .word 0x00000026    ; +12: syscall
    .word 0
    .word 0x00000025    ; +20: ret
    .word 0
    .word 0xffffffff    ; pad to the 8-byte stride
";

/// Data embedded in `.text` that *decodes* as instructions, including two
/// spurious `SYSCALL` sites (one with junk registers, one preceded by
/// bytes that read as `movi r0, 5`). Neither is ever executed — control
/// jumps over the island — but the lifter cannot tell data from code, so
/// the discovered-site count inflates and phantom policies are minted.
const DATA_IN_TEXT: &str = "
    .entry main
    .text
main:
    movi r0, 20         ; legitimate getpid
    syscall
    jmp over
chaff:
    .word 0x01010126    ; decodes: syscall (junk reg fields)
    .word 0
    .word 0x00000002    ; decodes: movi r0, 5
    .word 5
    .word 0x00000026    ; decodes: syscall — a phantom `open`
    .word 0
over:
    movi r0, 1          ; exit(0)
    movi r1, 0
    syscall
";

/// A data-driven dispatch loop: the call order lives in a `.data` table,
/// so every stub can follow every other and the sound predecessor sets
/// blow up toward "anything can precede anything".
const PRED_BLOWUP: &str = "
    .entry main
    .text
main:
    movi r13, 0         ; i, in r13: survives authenticated calls
loop:
    movi r11, 6         ; count (rematerialized: r7-r12 are clobbered)
    bgeu r13, r11, done
    movi r8, 4
    mul r9, r13, r8
    movi r8, order
    add r9, r8, r9
    ldw r9, [r9]        ; order[i]
    callr r9
    addi r13, r13, 1
    jmp loop
done:
    movi r0, 1          ; exit(0)
    movi r1, 0
    syscall
p_pid:
    movi r0, 20         ; getpid
    syscall
    ret
p_acc:
    movi r0, 33         ; access(path, 0)
    movi r1, path
    movi r2, 0
    syscall
    ret
p_wr:
    movi r0, 4          ; write(1, msg, 3)
    movi r1, 1
    movi r2, msg
    movi r3, 3
    syscall
    ret
    .rodata
msg:
    .asciz \"pb\\n\"
path:
    .asciz \"/etc/motd\"
    .data
order:
    .word p_pid
    .word p_acc
    .word p_wr
    .word p_wr
    .word p_acc
    .word p_pid
";

/// The raw-`SYSCALL`-gadget attack: a hidden trap instruction at a
/// misaligned offset (invisible to the installer, so absent from
/// `.ascsites`), reached by a computed call, attempting
/// `write(1, \"pwned\", 6)`. On an unprotected kernel the write lands; under
/// origin enforcement the trap fail-stops (`UnrewrittenSite`) before the
/// call dispatches, under every verification tier. The island spells,
/// misaligned: `syscall` (26…) then `ret` (25…).
const GADGET: &str = "
    .entry main
    .text
main:
    movi r0, 4          ; write
    movi r1, 1          ; stdout
    movi r2, msg
    movi r3, 6
    movi r7, blob
    addi r7, r7, 4
    callr r7            ; trap from the hidden gadget
    movi r0, 1          ; exit(0) — the only rewritable site
    movi r1, 0
    syscall
blob:
    .word 0xffffffff    ; poison: first chunk fails to decode
    .word 0x00000026    ; +4: syscall
    .word 0
    .word 0x00000025    ; +12: ret
    .word 0
    .word 0xffffffff    ; pad to the 8-byte stride
    .rodata
msg:
    .asciz \"pwned\\n\"
";

/// The corpus, in report order.
pub const HOSTILE: &[HostileSpec] = &[
    HostileSpec {
        name: "fnptr-table",
        description: "syscall stubs dispatched through a .data pointer table",
        asm: FNPTR_TABLE,
    },
    HostileSpec {
        name: "fnptr-blind",
        description: "bare trap stub, syscall number loaded from data",
        asm: FNPTR_BLIND,
    },
    HostileSpec {
        name: "wrapper-double",
        description: "__syscall wrapper indirection, two calls deep",
        asm: WRAPPER_DOUBLE,
    },
    HostileSpec {
        name: "wrapper-triple",
        description: "__syscall wrapper indirection, three calls deep",
        asm: WRAPPER_TRIPLE,
    },
    HostileSpec {
        name: "stub-opaque",
        description: "un-disassemblable stub body at a misaligned offset",
        asm: STUB_OPAQUE,
    },
    HostileSpec {
        name: "data-in-text",
        description: "data islands decoding as spurious SYSCALL sites",
        asm: DATA_IN_TEXT,
    },
    HostileSpec {
        name: "pred-blowup",
        description: "data-driven dispatch loop over syscall stubs",
        asm: PRED_BLOWUP,
    },
    HostileSpec {
        name: "gadget",
        description: "raw SYSCALL gadget hidden at a misaligned offset",
        asm: GADGET,
    },
];

/// Looks up a hostile guest by name.
pub fn hostile(name: &str) -> Option<&'static HostileSpec> {
    HOSTILE.iter().find(|h| h.name == name)
}

/// Assembles a hostile guest. The corpus is raw assembly, so there is no
/// libc link step and no personality dependence at build time.
///
/// # Errors
///
/// [`crate::BuildError::Assemble`] when the source does not assemble
/// (a corpus bug, not an input condition).
pub fn build_hostile(spec: &HostileSpec) -> Result<asc_object::Binary, crate::BuildError> {
    asc_asm::assemble(spec.asm).map_err(|e| crate::BuildError::Assemble(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_assembles() {
        for spec in HOSTILE {
            let binary = build_hostile(spec).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(
                binary.section_by_name(".text").is_some(),
                "{} has text",
                spec.name
            );
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let names: std::collections::BTreeSet<_> = HOSTILE.iter().map(|h| h.name).collect();
        assert_eq!(names.len(), HOSTILE.len(), "names are unique");
        for spec in HOSTILE {
            assert_eq!(hostile(spec.name).unwrap().name, spec.name);
        }
        assert!(hostile("no-such-guest").is_none());
    }

    #[test]
    fn gadget_hides_a_misaligned_syscall() {
        use asc_isa::{Instruction, Opcode, INSTR_LEN};
        let binary = build_hostile(hostile("gadget").unwrap()).unwrap();
        let text = binary.section_by_name(".text").unwrap();
        // No *aligned* chunk decodes as SYSCALL except main's exit site...
        let aligned_syscalls = text
            .data
            .chunks(INSTR_LEN)
            .filter(|c| {
                c.len() == INSTR_LEN
                    && matches!(Instruction::decode(c), Ok(i) if i.op == Opcode::Syscall)
            })
            .count();
        assert_eq!(aligned_syscalls, 1, "only the exit site is visible");
        // ...but a misaligned SYSCALL is really there for the machine.
        let hidden = (0..text.data.len() - INSTR_LEN)
            .filter(|off| off % INSTR_LEN != 0)
            .filter(|&off| {
                matches!(
                    Instruction::decode(&text.data[off..off + INSTR_LEN]),
                    Ok(i) if i.op == Opcode::Syscall
                )
            })
            .count();
        assert!(hidden >= 1, "the gadget exists misaligned");
    }
}
