//! The Andrew-style multiprogram benchmark (§4.3): a series of routine
//! file-manipulation tasks performed by general-purpose tools, each tool a
//! separate guest program run against a shared filesystem.
//!
//! Tools take their "command line" as a single stdin line (the guest
//! language has no argv). One full iteration performs file creation,
//! directory creation, copying, permission checking, archival,
//! compression, decompression, sorting, moving, and deletion — roughly
//! 12,000 system calls, as in the paper.

use asc_kernel::FileSystem;

/// A benchmark tool: name + guest source.
#[derive(Clone, Copy, Debug)]
pub struct Tool {
    /// Tool name.
    pub name: &'static str,
    /// Guest-language source.
    pub source: &'static str,
}

/// One step of the benchmark: which tool to run with which stdin.
#[derive(Clone, Debug)]
pub struct Step {
    /// Tool name (see [`TOOLS`]).
    pub tool: &'static str,
    /// The stdin line(s) handed to the tool.
    pub stdin: String,
}

const READ_LINE_HELPERS: &str = r#"
fn read_line(buf, max) {
    var n = 0;
    var ch[1];
    while (n < max - 1) {
        if (read(0, ch, 1) != 1) { break; }
        if (ch[0] == 10) { break; }
        buf[n] = ch[0];
        n = n + 1;
    }
    buf[n] = 0;
    return n;
}

// Splits "a b" in buf: returns offset of second word, NUL-terminating the
// first. 0 if there is no second word.
fn split2(buf) {
    var i = 0;
    while (buf[i] != 0 && buf[i] != ' ') { i = i + 1; }
    if (buf[i] == 0) { return 0; }
    buf[i] = 0;
    return i + 1;
}
"#;

const MKDIR_TOOL: &str = r#"
fn main() {
    var line[96];
    while (read_line(line, 96) != 0) {
        if (mkdir(line, 493) != 0) { write(2, "mkdir failed\n", 13); return 1; }
    }
    return 0;
}
"#;

const CP_TOOL: &str = r#"
fn main() {
    var line[128];
    var buf[1024];
    while (read_line(line, 128) != 0) {
        var second = split2(line);
        if (second == 0) { return 1; }
        let src = open(line, 0, 0);
        if (src > 0x7fffffff) { write(2, "cp: no source\n", 14); return 1; }
        let dst = open(line + second, 0x241, 420);
        var n = read(src, buf, 1024);
        while (n != 0 && n < 0x80000000) {
            write(dst, buf, n);
            n = read(src, buf, 1024);
        }
        close(src);
        close(dst);
    }
    return 0;
}
"#;

const CAT_TOOL: &str = r#"
fn main() {
    var line[128];
    var buf[1024];
    while (read_line(line, 128) != 0) {
        let fd = open(line, 0, 0);
        if (fd > 0x7fffffff) { write(2, "cat: no file\n", 13); return 1; }
        var n = read(fd, buf, 1024);
        while (n != 0 && n < 0x80000000) {
            write(1, buf, n);
            n = read(fd, buf, 1024);
        }
        close(fd);
    }
    return 0;
}
"#;

const MV_TOOL: &str = r#"
fn main() {
    var line[128];
    while (read_line(line, 128) != 0) {
        var second = split2(line);
        if (second == 0) { return 1; }
        if (rename(line, line + second) != 0) { write(2, "mv failed\n", 10); return 1; }
    }
    return 0;
}
"#;

const RM_TOOL: &str = r#"
fn main() {
    var line[96];
    while (read_line(line, 96) != 0) {
        if (line[0] == 'd' && line[1] == ' ') {
            if (rmdir(line + 2) != 0) { return 1; }
        } else {
            if (unlink(line) != 0) { return 1; }
        }
    }
    return 0;
}
"#;

const CHMOD_TOOL: &str = r#"
fn main() {
    var line[96];
    var st[16];
    while (read_line(line, 96) != 0) {
        if (chmod(line, 420) != 0) { return 1; }
        if (access(line, 4) != 0) { return 1; }
        stat(line, st);
    }
    return 0;
}
"#;

const TAR_TOOL: &str = r#"
fn main() {
    // First line: archive path; rest: member files.
    var arch[96];
    if (read_line(arch, 96) == 0) { return 1; }
    let out = open(arch, 0x241, 420);
    var line[96];
    var hdr[64];
    var buf[1024];
    while (read_line(line, 96) != 0) {
        var st[16];
        if (stat(line, st) != 0) { return 1; }
        bzero(hdr, 64);
        bcopy(line, hdr, strlen(line));
        poke(hdr + 48, peek(st + 4));
        write(out, hdr, 64);
        let fd = open(line, 0, 0);
        var n = read(fd, buf, 1024);
        while (n != 0 && n < 0x80000000) {
            write(out, buf, n);
            n = read(fd, buf, 1024);
        }
        close(fd);
    }
    close(out);
    return 0;
}
"#;

const GZIP_TOOL: &str = r#"
global crc;
fn main() {
    var line[128];
    var inbuf[1024];
    var outbuf[2112];
    while (read_line(line, 128) != 0) {
        var second = split2(line);
        if (second == 0) { return 1; }
        let src = open(line, 0, 0);
        let dst = open(line + second, 0x241, 420);
        var n = read(src, inbuf, 1024);
        while (n != 0 && n < 0x80000000) {
            var w = 0;
            var i = 0;
            while (i < n) {
                var c = inbuf[i];
                crc = (crc << 1) + c * 31 + (crc >> 27);
                var runlen = 1;
                while (i + runlen < n && inbuf[i + runlen] == c && runlen < 255) {
                    runlen = runlen + 1;
                }
                if (runlen >= 4 || c == 0xfe) {
                    outbuf[w] = 0xfe;
                    outbuf[w + 1] = c;
                    outbuf[w + 2] = runlen;
                    w = w + 3;
                    i = i + runlen;
                } else {
                    outbuf[w] = c;
                    w = w + 1;
                    i = i + 1;
                }
            }
            write(dst, outbuf, w);
            n = read(src, inbuf, 1024);
        }
        close(src);
        close(dst);
    }
    return 0;
}
"#;

const GUNZIP_TOOL: &str = r#"
global crc;
fn main() {
    var line[128];
    var inbuf[1024];
    var outbuf[4096];
    while (read_line(line, 128) != 0) {
        var second = split2(line);
        if (second == 0) { return 1; }
        let src = open(line, 0, 0);
        let dst = open(line + second, 0x241, 420);
        var n = read(src, inbuf, 1024);
        while (n != 0 && n < 0x80000000) {
            var w = 0;
            var i = 0;
            while (i < n) {
                var c = inbuf[i];
                crc = (crc << 1) + c * 31 + (crc >> 27);
                if (c == 0xfe) {
                    if (i + 2 < n) {
                        var ch = inbuf[i + 1];
                        var cnt = inbuf[i + 2];
                        var k = 0;
                        while (k < cnt) { outbuf[w] = ch; w = w + 1; k = k + 1; }
                        i = i + 3;
                    } else {
                        // Escape split across chunks: rewind the file.
                        lseek(src, 0 - (n - i), 1);
                        i = n;
                    }
                } else {
                    outbuf[w] = c;
                    w = w + 1;
                    i = i + 1;
                }
            }
            write(dst, outbuf, w);
            n = read(src, inbuf, 1024);
        }
        close(src);
        close(dst);
    }
    return 0;
}
"#;

const SORT_TOOL: &str = r#"
global data[16384];
global lines[2048];    // offsets

fn main() {
    var path[96];
    if (read_line(path, 96) == 0) { return 1; }
    var out[96];
    if (read_line(out, 96) == 0) { return 1; }
    let fd = open(path, 0, 0);
    var total = 0;
    var n = read(fd, data, 4096);
    while (n != 0 && n < 0x80000000 && total < 12288) {
        total = total + n;
        n = read(fd, data + total, 4096);
    }
    close(fd);
    // Index the lines.
    var nlines = 0;
    var i = 0;
    poke(lines, 0);
    while (i < total) {
        if (data[i] == 10) {
            data[i] = 0;
            nlines = nlines + 1;
            poke(lines + nlines * 4, i + 1);
        }
        i = i + 1;
    }
    // Selection sort on line offsets (byte-wise strcmp).
    var a = 0;
    while (a < nlines) {
        var best = a;
        var b = a + 1;
        while (b < nlines) {
            var pa = data + peek(lines + best * 4);
            var pb = data + peek(lines + b * 4);
            var k = 0;
            while (pa[k] != 0 && pa[k] == pb[k]) { k = k + 1; }
            if (pb[k] < pa[k]) { best = b; }
            b = b + 1;
        }
        var t = peek(lines + a * 4);
        poke(lines + a * 4, peek(lines + best * 4));
        poke(lines + best * 4, t);
        a = a + 1;
    }
    let o = open(out, 0x241, 420);
    a = 0;
    while (a < nlines) {
        var p = data + peek(lines + a * 4);
        write(o, p, strlen(p));
        write(o, "\n", 1);
        a = a + 1;
    }
    close(o);
    return 0;
}
"#;

/// The benchmark's tool suite.
pub const TOOLS: &[Tool] = &[
    Tool {
        name: "mkdirs",
        source: MKDIR_TOOL,
    },
    Tool {
        name: "cp",
        source: CP_TOOL,
    },
    Tool {
        name: "cat",
        source: CAT_TOOL,
    },
    Tool {
        name: "mv",
        source: MV_TOOL,
    },
    Tool {
        name: "rm",
        source: RM_TOOL,
    },
    Tool {
        name: "chmod",
        source: CHMOD_TOOL,
    },
    Tool {
        name: "tar",
        source: TAR_TOOL,
    },
    Tool {
        name: "gzip",
        source: GZIP_TOOL,
    },
    Tool {
        name: "gunzip",
        source: GUNZIP_TOOL,
    },
    Tool {
        name: "sort",
        source: SORT_TOOL,
    },
];

/// Looks up a tool and returns its full source (with stdin helpers).
pub fn tool_source(name: &str) -> Option<String> {
    TOOLS
        .iter()
        .find(|t| t.name == name)
        .map(|t| format!("{}{}", t.source, READ_LINE_HELPERS))
}

/// Number of corpus files one iteration manipulates.
pub const CORPUS_FILES: usize = 12;

/// Seeds the corpus the benchmark manipulates.
pub fn setup_corpus(fs: &mut FileSystem) {
    fs.mkdir("/home/corpus", 0o755).ok();
    for i in 0..CORPUS_FILES {
        let mut data = Vec::new();
        for line in 0..2000 {
            data.extend_from_slice(
                format!(
                    "file{i} line {:04} payload {}\n",
                    (line * 37 + i) % 1000,
                    "x".repeat(line % 23 + 3)
                )
                .as_bytes(),
            );
        }
        fs.write_file(&format!("/home/corpus/f{i}.txt"), data)
            .expect("fixture");
    }
}

/// The step list for one benchmark iteration.
pub fn iteration_plan() -> Vec<Step> {
    let mut steps = Vec::new();
    // Directory creation.
    steps.push(Step {
        tool: "mkdirs",
        stdin: "/home/work\n/home/work/a\n/home/work/b\n/home/work/c\n".into(),
    });
    // File creation (copying the corpus in).
    let mut cp = String::new();
    for i in 0..CORPUS_FILES {
        cp.push_str(&format!("/home/corpus/f{i}.txt /home/work/a/f{i}.txt\n"));
    }
    steps.push(Step {
        tool: "cp",
        stdin: cp,
    });
    // Concatenation / reading.
    let mut cat = String::new();
    for i in 0..CORPUS_FILES {
        cat.push_str(&format!("/home/work/a/f{i}.txt\n"));
    }
    steps.push(Step {
        tool: "cat",
        stdin: cat.clone(),
    });
    // Permission checking.
    steps.push(Step {
        tool: "chmod",
        stdin: cat.clone(),
    });
    // Archival.
    let mut tar = String::from("/home/work/b/all.tar\n");
    tar.push_str(&cat);
    steps.push(Step {
        tool: "tar",
        stdin: tar,
    });
    // Compression + decompression.
    steps.push(Step {
        tool: "gzip",
        stdin: "/home/work/b/all.tar /home/work/b/all.tar.gz\n".into(),
    });
    steps.push(Step {
        tool: "gunzip",
        stdin: "/home/work/b/all.tar.gz /home/work/b/all.tar2\n".into(),
    });
    // Sorting.
    steps.push(Step {
        tool: "sort",
        stdin: "/home/work/a/f0.txt\n/home/work/c/sorted.txt\n".into(),
    });
    // Moving.
    let mut mv = String::new();
    for i in 0..CORPUS_FILES {
        mv.push_str(&format!("/home/work/a/f{i}.txt /home/work/c/g{i}.txt\n"));
    }
    steps.push(Step {
        tool: "mv",
        stdin: mv,
    });
    // Deletion.
    let mut rm = String::new();
    for i in 0..CORPUS_FILES {
        rm.push_str(&format!("/home/work/c/g{i}.txt\n"));
    }
    rm.push_str("/home/work/b/all.tar\n/home/work/b/all.tar.gz\n/home/work/b/all.tar2\n");
    rm.push_str("/home/work/c/sorted.txt\n");
    rm.push_str("d /home/work/a\nd /home/work/b\nd /home/work/c\nd /home/work\n");
    steps.push(Step {
        tool: "rm",
        stdin: rm,
    });
    steps
}
