//! The mini-libc: per-personality system call stubs plus shared helper
//! routines, and the selective "linker" that pulls in only referenced
//! stubs (mirroring static linking of real libc objects — unreferenced
//! stubs must not appear in the binary or every program's policy would
//! contain every syscall).
//!
//! Two paper-critical quirks are reproduced in the OpenBSD flavour:
//!
//! * `mmap` is reached through `__syscall(SYS_mmap, ...)` — the stub
//!   shifts its arguments up and traps with the indirect-syscall number,
//!   so static analysis sees a constrained `__syscall` while runtime
//!   training observes `mmap` (Table 2, row `__syscall`/`mmap`);
//! * `close` is implemented behind a constant-pool island that does not
//!   disassemble, so the analysis reports the region and the ASC policy
//!   misses `close` (Table 2, row `close`).

use asc_kernel::{Personality, SyscallId};

/// All libc entry points, i.e. syscall wrapper names.
pub const STUB_SYSCALLS: &[SyscallId] = &[
    SyscallId::Exit,
    SyscallId::Fork,
    SyscallId::Read,
    SyscallId::Write,
    SyscallId::Open,
    SyscallId::Close,
    SyscallId::Waitpid,
    SyscallId::Creat,
    SyscallId::Link,
    SyscallId::Unlink,
    SyscallId::Execve,
    SyscallId::Chdir,
    SyscallId::Time,
    SyscallId::Mknod,
    SyscallId::Chmod,
    SyscallId::Lchown,
    SyscallId::Lseek,
    SyscallId::Getpid,
    SyscallId::Setuid,
    SyscallId::Getuid,
    SyscallId::Alarm,
    SyscallId::Fstat,
    SyscallId::Pause,
    SyscallId::Utime,
    SyscallId::Access,
    SyscallId::Nice,
    SyscallId::Sync,
    SyscallId::Kill,
    SyscallId::Rename,
    SyscallId::Mkdir,
    SyscallId::Rmdir,
    SyscallId::Dup,
    SyscallId::Pipe,
    SyscallId::Times,
    SyscallId::Brk,
    SyscallId::Setgid,
    SyscallId::Getgid,
    SyscallId::Geteuid,
    SyscallId::Getegid,
    SyscallId::Ioctl,
    SyscallId::Fcntl,
    SyscallId::Setpgid,
    SyscallId::Umask,
    SyscallId::Chroot,
    SyscallId::Dup2,
    SyscallId::Getppid,
    SyscallId::Getpgrp,
    SyscallId::Setsid,
    SyscallId::Sigaction,
    SyscallId::Sigsuspend,
    SyscallId::Sigpending,
    SyscallId::Sethostname,
    SyscallId::Setrlimit,
    SyscallId::Getrlimit,
    SyscallId::Getrusage,
    SyscallId::Gettimeofday,
    SyscallId::Settimeofday,
    SyscallId::Symlink,
    SyscallId::Readlink,
    SyscallId::Mmap,
    SyscallId::Munmap,
    SyscallId::Truncate,
    SyscallId::Ftruncate,
    SyscallId::Fchmod,
    SyscallId::Fchown,
    SyscallId::Statfs,
    SyscallId::Fstatfs,
    SyscallId::Stat,
    SyscallId::Lstat,
    SyscallId::Socket,
    SyscallId::Connect,
    SyscallId::Bind,
    SyscallId::Listen,
    SyscallId::Accept,
    SyscallId::Sendto,
    SyscallId::Recvfrom,
    SyscallId::Shutdown,
    SyscallId::Setsockopt,
    SyscallId::Getsockopt,
    SyscallId::Nanosleep,
    SyscallId::Uname,
    SyscallId::Madvise,
    SyscallId::Writev,
    SyscallId::Readv,
    SyscallId::Getdents,
    SyscallId::Getdirentries,
    SyscallId::Poll,
    SyscallId::SchedYield,
    SyscallId::ClockGettime,
    SyscallId::Sysconf,
];

/// Emits the stub for one syscall under `personality`, or `None` when the
/// personality lacks it.
pub fn stub_asm(personality: Personality, id: SyscallId) -> Option<String> {
    use SyscallId::*;
    // The portable name programs call (getdents/getdirentries unify under
    // `readdirents`).
    let name = stub_name(id);
    match (personality, id) {
        (Personality::OpenBsd, Mmap) => {
            // mmap(addr,len,prot,flags,fd,off) -> __syscall(SYS_mmap, ...)
            let indirect = personality.nr(IndirectSyscall).expect("bsd has __syscall");
            let mmap_nr = personality.nr(Mmap).expect("bsd numbers mmap");
            Some(format!(
                "{name}:\n\
                 \x20   mov r6, r5\n\
                 \x20   mov r5, r4\n\
                 \x20   mov r4, r3\n\
                 \x20   mov r3, r2\n\
                 \x20   mov r2, r1\n\
                 \x20   movi r1, {mmap_nr}\n\
                 \x20   movi r0, {indirect}\n\
                 \x20   syscall\n\
                 \x20   ret\n"
            ))
        }
        (Personality::OpenBsd, Close) => {
            // The quirky close: an indirect jump over a constant-pool
            // island whose bytes are not valid SVM32 code. The island sits
            // between the entry and the real body, so linear-sweep
            // disassembly stops reporting instructions for this function
            // ("PLTO currently cannot disassemble" — Table 2).
            let nr = personality.nr(Close).expect("bsd numbers close");
            Some(format!(
                "{name}:\n\
                 \x20   movi r12, close_impl\n\
                 \x20   jr r12\n\
                 close_pool:\n\
                 \x20   .word 0xffffffff\n\
                 \x20   .word 0xffffffff\n\
                 close_impl:\n\
                 \x20   movi r12, close_nr\n\
                 \x20   ldw r0, [r12]\n\
                 \x20   syscall\n\
                 \x20   ret\n\
                 \x20   .data\n\
                 close_nr: .word {nr}\n\
                 \x20   .text\n"
            ))
        }
        _ => {
            let nr = personality.nr(id)?;
            Some(format!(
                "{name}:\n\x20   movi r0, {nr}\n\x20   syscall\n\x20   ret\n"
            ))
        }
    }
}

/// The portable libc name for a syscall id (what guest programs call).
pub fn stub_name(id: SyscallId) -> &'static str {
    match id {
        // Directory reading gets one portable name across personalities.
        SyscallId::Getdents | SyscallId::Getdirentries => "readdirents",
        other => asc_kernel::spec(other).name,
    }
}

/// Helper routines written in the guest language, linked into every
/// program (they reference `write`, so `write` is always linked).
pub const HELPERS: &str = r#"
// --- mini-libc helpers (guest language) ---
fn strlen(s) {
    var n = 0;
    while (s[n] != 0) { n = n + 1; }
    return n;
}

fn puts(s) {
    return write(1, s, strlen(s));
}

fn print_num(v) {
    var digits[12];
    var i = 11;
    digits[11] = 0;
    if (v == 0) { i = 10; digits[10] = '0'; }
    while (v != 0) {
        i = i - 1;
        digits[i] = '0' + v % 10;
        v = v / 10;
    }
    return write(1, digits + i, 11 - i);
}

fn bcopy(src, dst, n) {
    var i = 0;
    while (i < n) { dst[i] = src[i]; i = i + 1; }
    return n;
}

fn bzero(p, n) {
    var i = 0;
    while (i < n) { p[i] = 0; i = i + 1; }
    return 0;
}

fn streq(a, b) {
    var i = 0;
    while (a[i] != 0 && b[i] != 0) {
        if (a[i] != b[i]) { return 0; }
        i = i + 1;
    }
    return a[i] == b[i];
}

global rng_state;
fn srand(seed) { rng_state = seed; return 0; }
fn rand() {
    rng_state = rng_state * 1103515245 + 12345;
    return (rng_state >> 16) & 0x7fff;
}
"#;

/// Scans assembly text for referenced-but-undefined call targets.
fn undefined_calls(asm: &str) -> std::collections::BTreeSet<String> {
    let mut defined = std::collections::BTreeSet::new();
    let mut called = std::collections::BTreeSet::new();
    for line in asm.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("call ") {
            let target = rest.trim();
            if target
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                called.insert(target.to_string());
            }
        }
        if let Some(colon) = line.find(':') {
            let label = &line[..colon];
            if !label.is_empty() && label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                defined.insert(label.to_string());
            }
        }
    }
    called.difference(&defined).cloned().collect()
}

/// Library fallbacks: functions that are a *syscall* on one personality
/// but a plain libc routine (no trap) on the other — real OSes differ
/// exactly this way (`sysconf` is a Linux library function; OpenBSD's
/// `alarm`/`nice`/`pause` wrap other primitives). This is what makes
/// policies differ across personalities without changing program source.
fn fallback_asm(personality: Personality, name: &str) -> Option<String> {
    match (personality, name) {
        (Personality::Linux, "sysconf") => {
            Some("sysconf:\n    movi r0, 4096\n    ret\n".to_string())
        }
        (Personality::OpenBsd, "alarm")
        | (Personality::OpenBsd, "nice")
        | (Personality::OpenBsd, "pause") => Some(format!("{name}:\n    movi r0, 0\n    ret\n")),
        _ => None,
    }
}

/// Emits the libc assembly containing exactly the stubs `asm` references
/// (the selective-linking step).
///
/// # Errors
///
/// Returns the list of names that are neither defined nor known stubs.
pub fn link_stubs(asm: &str, personality: Personality) -> Result<String, Vec<String>> {
    let mut out = String::from("    .text\n");
    let mut missing = Vec::new();
    for name in undefined_calls(asm) {
        let id = STUB_SYSCALLS
            .iter()
            .copied()
            .find(|&id| stub_name(id) == name && personality.nr(id).is_some());
        match id {
            Some(id) => {
                out.push_str(&stub_asm(personality, id).expect("nr checked"));
            }
            None => match fallback_asm(personality, &name) {
                Some(asm) => out.push_str(&asm),
                None => missing.push(name),
            },
        }
    }
    if missing.is_empty() {
        Ok(out)
    } else {
        Err(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_stub_shapes() {
        let s = stub_asm(Personality::Linux, SyscallId::Open).unwrap();
        assert!(s.contains("open:"));
        assert!(s.contains("movi r0, 5"));
        assert!(s.contains("syscall"));
    }

    #[test]
    fn bsd_mmap_goes_through_indirect_syscall() {
        let s = stub_asm(Personality::OpenBsd, SyscallId::Mmap).unwrap();
        assert!(s.contains("movi r0, 198"), "{s}");
        assert!(s.contains("movi r1, 197"), "{s}");
        let linux = stub_asm(Personality::Linux, SyscallId::Mmap).unwrap();
        assert!(linux.contains("movi r0, 90"), "{linux}");
        assert!(!linux.contains("198"));
    }

    #[test]
    fn bsd_close_has_opaque_island() {
        let s = stub_asm(Personality::OpenBsd, SyscallId::Close).unwrap();
        assert!(s.contains("0xffffffff"));
        assert!(s.contains("jr r12"));
        assert!(stub_asm(Personality::Linux, SyscallId::Close)
            .unwrap()
            .contains("movi r0, 6"));
    }

    #[test]
    fn personality_specific_availability() {
        assert!(stub_asm(Personality::Linux, SyscallId::Sysconf).is_none());
        assert!(stub_asm(Personality::OpenBsd, SyscallId::Sysconf).is_some());
        assert!(stub_asm(Personality::Linux, SyscallId::Getdents).is_some());
        assert!(stub_asm(Personality::OpenBsd, SyscallId::Getdirentries).is_some());
        // Both personalities expose the portable name.
        assert_eq!(stub_name(SyscallId::Getdents), "readdirents");
        assert_eq!(stub_name(SyscallId::Getdirentries), "readdirents");
    }

    #[test]
    fn selective_linking() {
        let asm = "
        main:
            call write
            call getpid
            call local_fn
        local_fn:
            ret
        ";
        let libc = link_stubs(asm, Personality::Linux).unwrap();
        assert!(libc.contains("write:"));
        assert!(libc.contains("getpid:"));
        assert!(!libc.contains("open:"));
        assert!(!libc.contains("local_fn:"));
    }

    #[test]
    fn missing_symbols_reported() {
        let err = link_stubs("main:\n call nonsense\n", Personality::Linux).unwrap_err();
        assert_eq!(err, vec!["nonsense".to_string()]);
    }
}
