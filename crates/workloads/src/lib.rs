//! Guest workloads: the analogue programs the experiments run.
//!
//! The paper evaluates on real Unix programs (bison, calc, screen, tar for
//! policy experiments; a SPECint-2000 subset plus syscall-heavy tools for
//! performance; an Andrew-style multiprogram benchmark). The analogues
//! here are written in the guest language (`asc-lang`), linked against the
//! per-personality mini-libc, and engineered to have the same *profile*:
//! which system calls they reference, which of those training inputs
//! exercise, and their CPU-vs-syscall balance.
//!
//! # Example
//!
//! ```
//! use asc_kernel::Personality;
//! use asc_workloads::{build, program, run_plain};
//!
//! let spec = program("bison").expect("registered");
//! let binary = build(spec, Personality::Linux)?;
//! let (outcome, kernel) = run_plain(spec, &binary, Personality::Linux);
//! assert!(outcome.is_success());
//! # Ok::<(), asc_workloads::BuildError>(())
//! ```

pub mod hostile;
pub mod libc;
mod programs;
pub mod tools;

pub use programs::{program, programs, ProgramKind, ProgramSpec};

use asc_kernel::{
    FileSystem, FlowGraph, FlowParseError, Kernel, KernelOptions, Personality, SiteRegistry,
    SitesParseError, VerifyTier,
};
use asc_object::{sections, Binary};
use asc_vm::{Machine, RunOutcome};

/// Errors building a workload.
#[derive(Clone, Debug)]
pub enum BuildError {
    /// Guest-language compilation failed.
    Compile(String),
    /// Assembly failed.
    Assemble(String),
    /// Unresolved symbols at link time.
    Link(Vec<String>),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Compile(e) => write!(f, "compile error: {e}"),
            BuildError::Assemble(e) => write!(f, "assemble error: {e}"),
            BuildError::Link(missing) => write!(f, "unresolved symbols: {missing:?}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Compiles guest-language source and links it with the helpers and the
/// personality's libc into a relocatable binary.
///
/// # Errors
///
/// [`BuildError`] on compile, link, or assemble failures.
pub fn build_source(source: &str, personality: Personality) -> Result<Binary, BuildError> {
    let mut full = String::from(source);
    full.push_str(libc::HELPERS);
    let asm = asc_lang::compile(&full).map_err(|e| BuildError::Compile(e.to_string()))?;
    let stubs = libc::link_stubs(&asm, personality).map_err(BuildError::Link)?;
    asc_asm::assemble_many(&[asm.as_str(), stubs.as_str()])
        .map_err(|e| BuildError::Assemble(e.to_string()))
}

/// Builds a registered workload.
///
/// # Errors
///
/// [`BuildError`] on compile, link, or assemble failures.
pub fn build(spec: &ProgramSpec, personality: Personality) -> Result<Binary, BuildError> {
    build_source(spec.source, personality)
}

/// Prepares a kernel for `spec`: training fixture files plus stdin.
pub fn kernel_for(spec: &ProgramSpec, personality: Personality, enforce: bool) -> Kernel {
    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let opts = if enforce {
        KernelOptions::enforcing(personality)
    } else {
        KernelOptions::plain(personality)
    };
    let mut kernel = Kernel::with_fs(opts, fs);
    kernel.set_stdin(spec.stdin.to_vec());
    kernel
}

/// Cycle budget large enough for every workload.
pub const RUN_BUDGET: u64 = 3_000_000_000;

/// Runs a built workload on a plain (non-enforcing) kernel.
pub fn run_plain(
    spec: &ProgramSpec,
    binary: &Binary,
    personality: Personality,
) -> (RunOutcome, Kernel) {
    let mut kernel = kernel_for(spec, personality, false);
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(binary, kernel).expect("workload fits in memory");
    let outcome = machine.run(RUN_BUDGET);
    (outcome, machine.into_handler())
}

/// Full measurement record from a run (the `rdtsc`-style numbers the
/// performance tables consume).
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The kernel (trace, stats, captured output).
    pub kernel: Kernel,
    /// Total simulated cycles (user + kernel + verification).
    pub cycles: u64,
    /// Instructions retired.
    pub instret: u64,
}

/// Runs a built workload and reports cycle counts. `key` switches the
/// kernel to enforcing mode.
pub fn measure(
    spec: &ProgramSpec,
    binary: &Binary,
    personality: Personality,
    key: Option<asc_crypto::MacKey>,
) -> RunReport {
    let mut kernel = kernel_for(spec, personality, key.is_some());
    if let Some(key) = key {
        if let Some(sites) = site_registry_for(binary, &key) {
            kernel.set_site_registry(sites);
        }
        kernel.set_key(key);
    }
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(binary, kernel).expect("workload fits in memory");
    let outcome = machine.run(RUN_BUDGET);
    let cycles = machine.cycles();
    let instret = machine.instret();
    RunReport {
        outcome,
        kernel: machine.into_handler(),
        cycles,
        instret,
    }
}

/// Like [`measure`] in enforcing mode, but with the kernel's verified-call
/// cache enabled — the warm fast path the ablation and Table 4 report
/// alongside the cold (paper-faithful) numbers.
pub fn measure_cached(
    spec: &ProgramSpec,
    binary: &Binary,
    personality: Personality,
    key: asc_crypto::MacKey,
) -> RunReport {
    measure_tier_cached(spec, binary, personality, key, VerifyTier::Mac)
}

/// Errors loading a policy-artifact section (`.ascflow` / `.ascsites`)
/// out of an installed binary. Every failure is structured: a missing
/// section, a truncated payload, and a MAC mismatch are distinguishable,
/// and none of the fallible loaders panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// The binary carries no section with the given name.
    Missing(&'static str),
    /// `.ascflow` is present but truncated or rejected by its MAC.
    BadFlow(FlowParseError),
    /// `.ascsites` is present but truncated or rejected by its MAC.
    BadSites(SitesParseError),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Missing(name) => write!(f, "binary carries no {name} section"),
            ArtifactError::BadFlow(e) => write!(f, "{}: {e}", sections::ASCFLOW),
            ArtifactError::BadSites(e) => write!(f, "{}: {e}", sections::ASCSITES),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Parses the MAC-authenticated syscall-transition digraph out of an
/// installed binary's `.ascflow` section, reporting failures as
/// structured errors.
///
/// # Errors
///
/// [`ArtifactError`] when the section is missing, truncated, or rejected
/// by its MAC under `key`.
pub fn try_flow_graph_of(
    binary: &Binary,
    key: &asc_crypto::MacKey,
) -> Result<FlowGraph, ArtifactError> {
    let section = binary
        .section_by_name(sections::ASCFLOW)
        .ok_or(ArtifactError::Missing(sections::ASCFLOW))?;
    FlowGraph::parse(&section.data, key).map_err(ArtifactError::BadFlow)
}

/// Parses the MAC-authenticated syscall-transition digraph out of an
/// installed binary's `.ascflow` section (the flow tiers' policy).
///
/// # Panics
///
/// If the section is missing or its MAC does not verify under `key` —
/// both mean the binary was not produced by this installer/key pair, so
/// there is no sound digraph to enforce.
pub fn flow_graph_of(binary: &Binary, key: &asc_crypto::MacKey) -> FlowGraph {
    match try_flow_graph_of(binary, key) {
        Ok(flow) => flow,
        Err(e) => panic!("authenticated binary has a sound flow digraph: {e}"),
    }
}

/// Parses the MAC-authenticated rewritten-site registry out of an
/// installed binary's `.ascsites` section, reporting failures as
/// structured errors.
///
/// # Errors
///
/// [`ArtifactError`] when the section is missing, truncated, or rejected
/// by its MAC under `key`.
pub fn try_sites_of(
    binary: &Binary,
    key: &asc_crypto::MacKey,
) -> Result<SiteRegistry, ArtifactError> {
    let section = binary
        .section_by_name(sections::ASCSITES)
        .ok_or(ArtifactError::Missing(sections::ASCSITES))?;
    SiteRegistry::parse(&section.data, key).map_err(ArtifactError::BadSites)
}

/// Parses the MAC-authenticated rewritten-site registry out of an
/// installed binary's `.ascsites` section (the origin-privilege policy).
///
/// # Panics
///
/// If the section is missing or its MAC does not verify under `key`.
pub fn sites_of(binary: &Binary, key: &asc_crypto::MacKey) -> SiteRegistry {
    match try_sites_of(binary, key) {
        Ok(sites) => sites,
        Err(e) => panic!("authenticated binary has a sound site registry: {e}"),
    }
}

/// The site registry an enforcing kernel should run `binary` under.
/// Authentic registry → enforced; no `.ascsites` section at all →
/// `None` (pre-registry binaries keep the historical behaviour); present
/// but truncated or MAC-rejected → an *empty* registry, so every trap
/// fail-stops rather than silently dropping origin enforcement
/// (fail-closed).
pub fn site_registry_for(binary: &Binary, key: &asc_crypto::MacKey) -> Option<SiteRegistry> {
    match try_sites_of(binary, key) {
        Ok(sites) => Some(sites),
        Err(ArtifactError::Missing(_)) => None,
        Err(_) => Some(SiteRegistry::new()),
    }
}

/// Like [`measure`] in enforcing mode, but running the given verification
/// tier; the flow tiers additionally load the binary's `.ascflow` digraph
/// into the kernel. `VerifyTier::Mac` is identical to
/// `measure(spec, binary, personality, Some(key))`.
pub fn measure_tier(
    spec: &ProgramSpec,
    binary: &Binary,
    personality: Personality,
    key: asc_crypto::MacKey,
    tier: VerifyTier,
) -> RunReport {
    let opts = KernelOptions::enforcing(personality).with_tier(tier);
    measure_with_opts(spec, binary, key, opts)
}

/// [`measure_tier`] with the verified-call cache enabled — the warm
/// fast path, per tier. Under `VerifyTier::FlowOnly` the cache is
/// inert (it only short-circuits MAC work), so warm equals cold.
pub fn measure_tier_cached(
    spec: &ProgramSpec,
    binary: &Binary,
    personality: Personality,
    key: asc_crypto::MacKey,
    tier: VerifyTier,
) -> RunReport {
    let opts = KernelOptions::enforcing(personality)
        .with_verify_cache()
        .with_tier(tier);
    measure_with_opts(spec, binary, key, opts)
}

/// Shared body of the enforcing measurement entry points: the kernel is
/// configured from `opts`, and the flow digraph is loaded whenever the
/// selected tier checks transitions.
fn measure_with_opts(
    spec: &ProgramSpec,
    binary: &Binary,
    key: asc_crypto::MacKey,
    opts: KernelOptions,
) -> RunReport {
    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let tier = opts.verify_tier;
    let mut kernel = Kernel::with_fs(opts, fs);
    kernel.set_stdin(spec.stdin.to_vec());
    if tier.checks_flow() {
        kernel.set_flow_graph(flow_graph_of(binary, &key));
    }
    if let Some(sites) = site_registry_for(binary, &key) {
        kernel.set_site_registry(sites);
    }
    kernel.set_key(key);
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(binary, kernel).expect("workload fits in memory");
    let outcome = machine.run(RUN_BUDGET);
    let cycles = machine.cycles();
    let instret = machine.instret();
    RunReport {
        outcome,
        kernel: machine.into_handler(),
        cycles,
        instret,
    }
}

/// Runs a built (authenticated) workload under the given verification
/// tier (see [`measure_tier`]).
pub fn run_tier(
    spec: &ProgramSpec,
    binary: &Binary,
    personality: Personality,
    key: asc_crypto::MacKey,
    tier: VerifyTier,
) -> (RunOutcome, Kernel) {
    let report = measure_tier(spec, binary, personality, key, tier);
    (report.outcome, report.kernel)
}

/// Runs a built (authenticated) workload on an enforcing kernel with the
/// given key.
pub fn run_enforcing(
    spec: &ProgramSpec,
    binary: &Binary,
    personality: Personality,
    key: asc_crypto::MacKey,
) -> (RunOutcome, Kernel) {
    let mut kernel = kernel_for(spec, personality, true);
    if let Some(sites) = site_registry_for(binary, &key) {
        kernel.set_site_registry(sites);
    }
    kernel.set_key(key);
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(binary, kernel).expect("workload fits in memory");
    let outcome = machine.run(RUN_BUDGET);
    (outcome, machine.into_handler())
}
