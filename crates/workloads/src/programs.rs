//! The workload registry.

use asc_kernel::FileSystem;

/// CPU-vs-syscall balance, as Table 5 classifies the benchmark suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgramKind {
    /// CPU-bound (SPECint-style).
    Cpu,
    /// System-call intensive.
    Syscall,
    /// Both.
    Mixed,
}

/// A registered guest program.
pub struct ProgramSpec {
    /// Name (matches the paper's tables).
    pub name: &'static str,
    /// Table 5-style description.
    pub description: &'static str,
    /// Classification.
    pub kind: ProgramKind,
    /// Guest-language source.
    pub source: &'static str,
    /// Standard input for the canonical (training) run.
    pub stdin: &'static [u8],
    /// Installs fixture files the program reads.
    pub setup_fs: fn(&mut FileSystem),
    /// Whether this program belongs to the policy experiments (Tables
    /// 1–3) — those must build on both personalities.
    pub policy_experiment: bool,
    /// Whether this program belongs to the performance suite (Tables
    /// 5–6).
    pub perf_experiment: bool,
}

impl std::fmt::Debug for ProgramSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramSpec")
            .field("name", &self.name)
            .finish()
    }
}

fn setup_grammar(fs: &mut FileSystem) {
    fs.write_file(
        "/home/grammar.y",
        b"expr: expr PLUS term;\nexpr: term;\nterm: term STAR factor;\n\
          term: factor;\nfactor: LPAREN expr RPAREN;\nfactor: NUM;\n"
            .to_vec(),
    )
    .expect("fixture");
}

fn setup_calc(fs: &mut FileSystem) {
    fs.write_file("/home/calcrc", b"scale=4\n".to_vec())
        .expect("fixture");
}

fn setup_screen(fs: &mut FileSystem) {
    fs.write_file("/home/screenrc", b"hardstatus on\nvbell off\n".to_vec())
        .expect("fixture");
    fs.write_file("/dev/tty", Vec::new()).expect("fixture");
}

fn setup_tar(fs: &mut FileSystem) {
    fs.mkdir("/home/src", 0o755).expect("fixture");
    fs.write_file("/home/src/a.txt", b"alpha file contents\n".to_vec())
        .expect("fixture");
    fs.write_file("/home/src/b.txt", b"bravo file, a little longer\n".to_vec())
        .expect("fixture");
    fs.write_file("/home/src/c.txt", vec![b'x'; 300])
        .expect("fixture");
}

fn setup_file_64k(fs: &mut FileSystem) {
    let mut data = Vec::with_capacity(1 << 16);
    let mut x: u32 = 0x1234_5678;
    for i in 0..(1 << 16) {
        x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        // Compressible: runs of repeated bytes mixed with noise.
        data.push(if i % 61 < 44 {
            b'a' + ((i / 23) % 7) as u8
        } else {
            (x >> 16) as u8
        });
    }
    fs.write_file("/home/input.dat", data).expect("fixture");
}

fn setup_gcc(fs: &mut FileSystem) {
    let mut src = String::new();
    for i in 0..80 {
        src.push_str(&format!(
            "fn f{i}(a, b) {{ var t = a * {i} + b; return t ^ {i}; }}\n"
        ));
    }
    fs.write_file("/home/input.c", src.into_bytes())
        .expect("fixture");
}

fn setup_vortex(fs: &mut FileSystem) {
    fs.write_file("/home/db.dat", Vec::new()).expect("fixture");
}

fn setup_none(_fs: &mut FileSystem) {}

/// All registered programs.
pub fn programs() -> &'static [ProgramSpec] {
    &[
        ProgramSpec {
            name: "bison",
            description: "GNU Project parser generator (analogue)",
            kind: ProgramKind::Mixed,
            source: include_str!("../programs/bison.scl"),
            stdin: b"",
            setup_fs: setup_grammar,
            policy_experiment: true,
            perf_experiment: false,
        },
        ProgramSpec {
            name: "calc",
            description: "arbitrary-precision calculator (analogue)",
            kind: ProgramKind::Mixed,
            source: include_str!("../programs/calc.scl"),
            stdin: b"12345678 * 87654321\n999 + 1\n2 ^ 64\nquit\n",
            setup_fs: setup_calc,
            policy_experiment: true,
            perf_experiment: false,
        },
        ProgramSpec {
            name: "screen",
            description: "screen manager with terminal emulation (analogue)",
            kind: ProgramKind::Mixed,
            source: include_str!("../programs/screen.scl"),
            stdin: b"new\nlist\ndetach\n",
            setup_fs: setup_screen,
            policy_experiment: true,
            perf_experiment: false,
        },
        ProgramSpec {
            name: "tar",
            description: "Unix archiving program (analogue)",
            kind: ProgramKind::Syscall,
            source: include_str!("../programs/tar.scl"),
            stdin: b"",
            setup_fs: setup_tar,
            policy_experiment: true,
            perf_experiment: false,
        },
        ProgramSpec {
            name: "gzip-spec",
            description: "file compression program from SPEC INT 2000 benchmark",
            kind: ProgramKind::Cpu,
            source: include_str!("../programs/gzip_spec.scl"),
            stdin: b"",
            setup_fs: setup_none,
            policy_experiment: false,
            perf_experiment: true,
        },
        ProgramSpec {
            name: "crafty",
            description: "Game playing (Chess) program from SPEC INT 2000 benchmark",
            kind: ProgramKind::Cpu,
            source: include_str!("../programs/crafty.scl"),
            stdin: b"",
            setup_fs: setup_none,
            policy_experiment: false,
            perf_experiment: true,
        },
        ProgramSpec {
            name: "mcf",
            description: "combinatorial optimization program from SPEC INT 2000",
            kind: ProgramKind::Cpu,
            source: include_str!("../programs/mcf.scl"),
            stdin: b"",
            setup_fs: setup_none,
            policy_experiment: false,
            perf_experiment: true,
        },
        ProgramSpec {
            name: "vpr",
            description: "FPGA circuit and routing placement from SPEC INT 2000",
            kind: ProgramKind::Cpu,
            source: include_str!("../programs/vpr.scl"),
            stdin: b"",
            setup_fs: setup_none,
            policy_experiment: false,
            perf_experiment: true,
        },
        ProgramSpec {
            name: "twolf",
            description: "Place and route simulator from SPEC INT 2000",
            kind: ProgramKind::Cpu,
            source: include_str!("../programs/twolf.scl"),
            stdin: b"",
            setup_fs: setup_none,
            policy_experiment: false,
            perf_experiment: true,
        },
        ProgramSpec {
            name: "gcc",
            description: "Gnu C compiler from SPEC INT 2000",
            kind: ProgramKind::Mixed,
            source: include_str!("../programs/gcc.scl"),
            stdin: b"",
            setup_fs: setup_gcc,
            policy_experiment: false,
            perf_experiment: true,
        },
        ProgramSpec {
            name: "vortex",
            description: "Object oriented database from SPEC INT 2000",
            kind: ProgramKind::Mixed,
            source: include_str!("../programs/vortex.scl"),
            stdin: b"",
            setup_fs: setup_vortex,
            policy_experiment: false,
            perf_experiment: true,
        },
        ProgramSpec {
            name: "pyramid",
            description: "Multidimensional database index creation",
            kind: ProgramKind::Syscall,
            source: include_str!("../programs/pyramid.scl"),
            stdin: b"",
            setup_fs: setup_none,
            policy_experiment: false,
            perf_experiment: true,
        },
        ProgramSpec {
            name: "gzip",
            description: "file compression program",
            kind: ProgramKind::Syscall,
            source: include_str!("../programs/gzip.scl"),
            stdin: b"",
            setup_fs: setup_file_64k,
            policy_experiment: false,
            perf_experiment: true,
        },
        ProgramSpec {
            name: "victim",
            description: "vulnerable demo: reads a file name, runs /bin/ls on it",
            kind: ProgramKind::Syscall,
            source: include_str!("../programs/victim.scl"),
            stdin: b"/etc/motd\n",
            setup_fs: setup_none,
            policy_experiment: false,
            perf_experiment: false,
        },
    ]
}

/// Looks up a program by name.
pub fn program(name: &str) -> Option<&'static ProgramSpec> {
    programs().iter().find(|p| p.name == name)
}
