//! The verifier flight recorder: a zero-dependency structured event model
//! for trace/span telemetry across every layer of the stack.
//!
//! The paper's evaluation reports only end-to-end overhead; this crate is
//! the substrate for *per-check* attribution. The kernel's trap handler
//! emits one span per authenticated call ([`EventKind::TrapEnter`] …
//! [`EventKind::TrapExit`]) with one child [`EventKind::Check`] event per
//! verification check — check kind, pass/fail, AES blocks spent, bytes
//! touched, cache decision — and kills emit a structured
//! [`EventKind::Kill`] with a [`ReasonCode`]. The installer emits
//! pass-level [`EventKind::InstallerPass`] spans with coverage counters.
//!
//! Everything flows through the [`TraceSink`] trait. Two rules keep the
//! recorder honest:
//!
//! * **No perturbation.** Recording is off by default and never feeds back
//!   into the cost model: the cycles a run charges are identical with any
//!   sink attached or none at all (asserted by test). Sinks observe costs;
//!   they do not incur them.
//! * **Bounded allocation.** The bundled [`RingSink`] holds at most its
//!   configured capacity, dropping *oldest* events first and counting every
//!   drop exactly ([`RingSink::dropped_events`]).
//!
//! [`Profile`] is an aggregating sink that folds the event stream into
//! per-call-site rows (calls, cold/warm split, cycles and AES blocks by
//! check family) — the data behind `asc-bench --bin trace`.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// Number of verification-check families ([`CheckKind::family`]).
pub const CHECK_FAMILIES: usize = 7;

/// Which verification check a [`CheckRecord`] describes (§3.4's three
/// steps plus the §5 extensions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// The call-MAC check over the reconstructed encoded call.
    CallMac,
    /// An authenticated-string contents check.
    AuthString {
        /// Index of the checked argument.
        arg: usize,
    },
    /// A pattern check: pattern-AS integrity, parse, and hinted match.
    Pattern {
        /// Index of the checked argument.
        arg: usize,
    },
    /// A capability-bit check against the active-descriptor set (§5.3).
    Capability {
        /// Index of the checked argument.
        arg: usize,
    },
    /// Predecessor-set integrity and parse.
    PredecessorSet,
    /// Policy-state verification, membership test, and update.
    PolicyState,
    /// Syscall-transition digraph membership test (the SFIP tier): the
    /// `(last syscall, this syscall)` edge against the installed flow
    /// graph. Costs no AES blocks and reads no user memory.
    FlowEdge,
}

impl CheckKind {
    /// Dense family index in `0..CHECK_FAMILIES` (argument indices are
    /// folded away), usable to index a per-family table.
    pub fn family(self) -> usize {
        match self {
            CheckKind::CallMac => 0,
            CheckKind::AuthString { .. } => 1,
            CheckKind::Pattern { .. } => 2,
            CheckKind::Capability { .. } => 3,
            CheckKind::PredecessorSet => 4,
            CheckKind::PolicyState => 5,
            CheckKind::FlowEdge => 6,
        }
    }

    /// Kebab-case name of a family index (reports, JSON export).
    pub fn family_name(family: usize) -> &'static str {
        [
            "call-mac",
            "auth-string",
            "pattern",
            "capability",
            "pred-set",
            "policy-state",
            "flow-edge",
        ][family]
    }

    /// Kebab-case name of this kind's family.
    pub fn name(self) -> &'static str {
        CheckKind::family_name(self.family())
    }
}

/// How the verified-call cache participated in one check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheDecision {
    /// No cache was attached to the verification.
    Disabled,
    /// Cache attached, no entry for this key yet: full cold verification.
    Cold,
    /// Entry matched byte-for-byte: AES skipped (the warm path).
    Hit,
    /// An entry existed but no longer matched (stale or poisoned); the
    /// kernel degraded gracefully to the full cold path.
    Fallback,
    /// A state entry claimed an impossible future epoch and was scrubbed
    /// before the cold path ran.
    Scrub,
}

impl CacheDecision {
    /// Kebab-case name (reports, JSON export).
    pub fn name(self) -> &'static str {
        match self {
            CacheDecision::Disabled => "disabled",
            CacheDecision::Cold => "cold",
            CacheDecision::Hit => "hit",
            CacheDecision::Fallback => "fallback",
            CacheDecision::Scrub => "scrub",
        }
    }
}

/// One verification check, as metered inside `asc_core::verify_call`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckRecord {
    /// Which check ran.
    pub kind: CheckKind,
    /// Whether it passed (a failed check kills the process).
    pub passed: bool,
    /// AES block-cipher invocations this check actually performed
    /// (measured via the key's block counter, so the records of one call
    /// sum exactly to its `VerifyOutcome::aes_blocks`).
    pub aes_blocks: u64,
    /// User-space bytes this check read and compared (the records of one
    /// call sum exactly to `VerifyOutcome::bytes_checked`).
    pub bytes: u64,
    /// How the verified-call cache participated.
    pub cache: CacheDecision,
}

/// Per-call check collector threaded through the verifier. A disabled
/// meter records nothing and allocates nothing (`Vec::new` is allocation
/// free), so the instrumented verifier stays cost-identical when telemetry
/// is off.
#[derive(Clone, Debug, Default)]
pub struct CallMeter {
    on: bool,
    /// The checks recorded for this call, in execution order.
    pub checks: Vec<CheckRecord>,
}

impl CallMeter {
    /// A meter that drops everything (the default, zero-cost path).
    pub fn disabled() -> CallMeter {
        CallMeter {
            on: false,
            checks: Vec::new(),
        }
    }

    /// A meter that keeps every [`CheckRecord`].
    pub fn recording() -> CallMeter {
        CallMeter {
            on: true,
            checks: Vec::new(),
        }
    }

    /// Whether records are being kept.
    pub fn is_recording(&self) -> bool {
        self.on
    }

    /// Appends a record (no-op when disabled).
    pub fn record(&mut self, record: CheckRecord) {
        if self.on {
            self.checks.push(record);
        }
    }
}

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine telemetry.
    Info,
    /// Unusual but tolerated (e.g. graceful cache degradation).
    Warn,
    /// A fail-stop kill.
    Alert,
}

/// Identifies the span an event belongs to. The kernel allocates one span
/// per enforced trap; the installer one per pass.
///
/// Multi-process runs give spans a pid dimension without widening the id:
/// [`SpanId::for_pid`] packs `pid - 1` into the high bits above a 40-bit
/// per-process span counter, so pid 1 (every single-process harness)
/// produces exactly the ids it always did and existing goldens are
/// unchanged, while a scheduler's interleaved traps remain attributable
/// via [`SpanId::pid`] / [`SpanId::local`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// Bits of a [`SpanId`] reserved for the per-process span counter; the pid
/// (minus one) lives above them.
pub const SPAN_LOCAL_BITS: u32 = 40;

/// Bits of a [`SpanId`] available for `pid - 1`: everything above the
/// per-process counter.
pub const SPAN_PID_BITS: u32 = u64::BITS - SPAN_LOCAL_BITS;

impl SpanId {
    /// Largest pid that receives a distinct span namespace (`2^24`).
    pub const MAX_DISTINCT_PID: u32 = 1 << SPAN_PID_BITS;

    /// A span id carrying a pid dimension: `pid - 1` in the high bits,
    /// `local` (the per-process span counter) in the low 40. For pid 1
    /// this is the identity encoding — `SpanId::for_pid(1, n) == SpanId(n)`
    /// — so single-process trace output stays byte-identical.
    ///
    /// # Range contract
    ///
    /// Ids are distinct for pids `1..=`[`SpanId::MAX_DISTINCT_PID`] (2^24,
    /// comfortably above any fleet the scheduler can host). Beyond that
    /// the pid field *saturates*: debug builds assert, release builds pin
    /// the field to its maximum. Saturation collides only among pids that
    /// are themselves beyond the range — it never wraps into a low pid's
    /// namespace the way the old unchecked shift did, and the `local`
    /// counter is never corrupted.
    pub fn for_pid(pid: u32, local: u64) -> SpanId {
        debug_assert!(pid >= 1, "pids are 1-based");
        debug_assert!(
            u64::from(pid - 1) < 1 << SPAN_PID_BITS,
            "pid {pid} exceeds the {SPAN_PID_BITS}-bit span pid field"
        );
        debug_assert!(local < 1 << SPAN_LOCAL_BITS, "span counter overflow");
        let pid_field = u64::from(pid - 1).min((1 << SPAN_PID_BITS) - 1);
        SpanId((pid_field << SPAN_LOCAL_BITS) | (local & ((1 << SPAN_LOCAL_BITS) - 1)))
    }

    /// The process this span belongs to (1 for ids allocated without a
    /// scheduler).
    pub fn pid(self) -> u32 {
        (self.0 >> SPAN_LOCAL_BITS) as u32 + 1
    }

    /// The per-process span counter.
    pub fn local(self) -> u64 {
        self.0 & ((1 << SPAN_LOCAL_BITS) - 1)
    }
}

/// One structured telemetry event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// The span this event belongs to.
    pub span: SpanId,
    /// Cycle timestamp from the VM clock (0 for installer-side events,
    /// which run outside the simulated machine).
    pub at_cycles: u64,
    /// Severity.
    pub severity: Severity,
    /// What happened.
    pub kind: EventKind,
}

/// The event payload.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// An enforced trap arrived: span opens.
    TrapEnter {
        /// Call-site address (the trapping PC).
        site: u32,
        /// Raw trapped syscall number.
        nr: u16,
    },
    /// One verification check ran within the current span.
    Check {
        /// The metered check.
        record: CheckRecord,
        /// Cycles the cost model charged for this check's variable work
        /// (AES blocks + bytes). 0 when the call was killed (failed calls
        /// are charged no verification cycles) or costs are off.
        cycles: u64,
    },
    /// Verification succeeded: span closes.
    TrapExit {
        /// Always true (kills close with [`EventKind::Kill`] instead).
        verified: bool,
        /// Whether the call MAC was served by the verified-call cache.
        cache_hit: bool,
        /// Total verification cycles charged (fixed + per-check).
        verify_cycles: u64,
        /// The fixed term of `verify_cycles` (cold or cached fixed cost);
        /// `verify_cycles - fixed_cycles` equals the sum of the span's
        /// per-check cycles exactly.
        fixed_cycles: u64,
    },
    /// Verification failed and the process was killed: span closes.
    Kill {
        /// Call-site address.
        site: u32,
        /// Raw trapped syscall number.
        nr: u16,
        /// Structured reason code (mirrors `asc_core::Violation`).
        reason: ReasonCode,
    },
    /// One installer pass completed (analysis / classification / rewrite).
    InstallerPass {
        /// Pass name.
        pass: String,
        /// Coverage counters, in report order.
        counters: Vec<(String, u64)>,
    },
}

/// Machine-readable reason a call was rejected. Mirrors the variants of
/// `asc_core::Violation` with argument details folded away, so campaigns
/// and tests classify kills without substring matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReasonCode {
    /// Call MAC mismatch.
    BadCallMac,
    /// Malformed policy descriptor.
    BadDescriptor,
    /// Authenticated-string MAC mismatch.
    BadStringMac,
    /// Oversized string argument.
    StringTooLong,
    /// Oversized predecessor set.
    OversizedPredecessorSet,
    /// Pattern AS failed verification or did not parse.
    BadPattern,
    /// Argument did not match its pattern.
    PatternMismatch,
    /// Predecessor-set bytes malformed.
    MalformedPredecessorSet,
    /// Policy-state MAC mismatch (tamper or replay).
    BadPolicyState,
    /// `lastBlock` not in the predecessor set (control-flow violation).
    NotInPredecessorSet,
    /// Capability-tracked argument not an active capability.
    CapabilityViolation,
    /// User memory unreadable/unwritable where the call pointed.
    MemoryFault,
    /// Syscall transition not an edge of the installed flow digraph.
    BadFlowEdge,
    /// Trap from a pc the installer never rewrote (raw `SYSCALL` gadget).
    UnrewrittenSite,
}

impl ReasonCode {
    /// Stable kebab-case code (reports, JSON export).
    pub fn code(self) -> &'static str {
        match self {
            ReasonCode::BadCallMac => "bad-call-mac",
            ReasonCode::BadDescriptor => "bad-descriptor",
            ReasonCode::BadStringMac => "bad-string-mac",
            ReasonCode::StringTooLong => "string-too-long",
            ReasonCode::OversizedPredecessorSet => "oversized-pred-set",
            ReasonCode::BadPattern => "bad-pattern",
            ReasonCode::PatternMismatch => "pattern-mismatch",
            ReasonCode::MalformedPredecessorSet => "malformed-pred-set",
            ReasonCode::BadPolicyState => "bad-policy-state",
            ReasonCode::NotInPredecessorSet => "not-in-pred-set",
            ReasonCode::CapabilityViolation => "capability-violation",
            ReasonCode::MemoryFault => "memory-fault",
            ReasonCode::BadFlowEdge => "bad-flow-edge",
            ReasonCode::UnrewrittenSite => "unrewritten-site",
        }
    }
}

impl std::fmt::Display for ReasonCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Where events go. Implementations must be cheap and must never feed back
/// into the traced system (the no-perturbation rule).
pub trait TraceSink {
    /// Whether this sink wants events at all. Emitters may (and the kernel
    /// does) skip building events entirely when this is false.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&mut self, event: Event);

    /// Events this sink has discarded to stay within its bounds. Unbounded
    /// sinks report 0; [`RingSink`] reports its exact overwrite count, so
    /// a harness (or a metrics gauge) can account for every event pushed:
    /// retained + dropped == recorded, always.
    fn dropped(&self) -> u64 {
        0
    }

    /// Downcast support, so a harness can recover a concrete sink (e.g. a
    /// [`Profile`]) it previously boxed into a kernel.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// A sink that is off: reports `enabled() == false` and drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: Event) {}

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Bounded in-memory recorder: keeps the most recent `capacity` events,
/// dropping the oldest first and counting every drop.
#[derive(Clone, Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity,
            // Reserve up front so recording never reallocates mid-run.
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exact number of events discarded to stay within capacity.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Per-family aggregate within one [`SiteProfile`] row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckAgg {
    /// Checks of this family that ran.
    pub count: u64,
    /// Of those, how many failed (killed the call).
    pub failed: u64,
    /// AES blocks spent.
    pub aes_blocks: u64,
    /// Cycles charged for the variable work (0 on killed calls).
    pub cycles: u64,
    /// User-space bytes read and compared.
    pub bytes: u64,
    /// Cache hits.
    pub hits: u64,
    /// Graceful stale-entry fallbacks.
    pub fallbacks: u64,
    /// Future-epoch scrubs.
    pub scrubs: u64,
}

/// One per-call-site row of a [`Profile`].
#[derive(Clone, Debug)]
pub struct SiteProfile {
    /// Harness-assigned label (e.g. which program of a multi-program
    /// benchmark the site belongs to).
    pub context: String,
    /// Call-site address.
    pub site: u32,
    /// Raw trapped syscall number.
    pub nr: u16,
    /// Successfully verified calls.
    pub calls: u64,
    /// Of those, how many were warm (call-MAC cache hits).
    pub warm_calls: u64,
    /// Calls killed at this site.
    pub kills: u64,
    /// Total verification cycles charged (fixed + per-check).
    pub verify_cycles: u64,
    /// The fixed portion of `verify_cycles`.
    pub fixed_cycles: u64,
    /// Total AES blocks spent (including blocks burnt by failed checks of
    /// killed calls, which the cost model never charges).
    pub aes_blocks: u64,
    /// Per-family check aggregates, indexed by [`CheckKind::family`].
    pub checks: [CheckAgg; CHECK_FAMILIES],
}

impl SiteProfile {
    fn new(context: String, site: u32, nr: u16) -> SiteProfile {
        SiteProfile {
            context,
            site,
            nr,
            calls: 0,
            warm_calls: 0,
            kills: 0,
            verify_cycles: 0,
            fixed_cycles: 0,
            aes_blocks: 0,
            checks: [CheckAgg::default(); CHECK_FAMILIES],
        }
    }
}

/// Whole-profile totals (see [`Profile::totals`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileTotals {
    /// Successfully verified calls.
    pub calls: u64,
    /// Warm (cache-hit) calls.
    pub warm_calls: u64,
    /// Killed calls.
    pub kills: u64,
    /// Verification cycles charged.
    pub verify_cycles: u64,
    /// Fixed portion of `verify_cycles`.
    pub fixed_cycles: u64,
    /// AES blocks spent.
    pub aes_blocks: u64,
    /// Bytes read and compared by checks.
    pub bytes: u64,
}

/// In-flight span state inside a [`Profile`].
#[derive(Clone, Debug)]
struct PendingSpan {
    site: u32,
    nr: u16,
    checks: Vec<(CheckRecord, u64)>,
}

/// An aggregating sink: folds the kernel's event stream into per-call-site
/// rows keyed `(context, site, nr)`. Rows iterate in key order, so reports
/// built from a profile are deterministic.
#[derive(Debug, Default)]
pub struct Profile {
    context: String,
    rows: BTreeMap<(String, u32, u16), SiteProfile>,
    pending: Option<PendingSpan>,
    passes: Vec<(String, Vec<(String, u64)>)>,
}

impl Profile {
    /// An empty profile (context `""`).
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Sets the context label stamped on rows for subsequent events. A
    /// multi-program harness calls this between programs so same-address
    /// call sites of different binaries do not merge.
    pub fn set_context(&mut self, context: impl Into<String>) {
        self.context = context.into();
    }

    /// The rows, in `(context, site, nr)` order.
    pub fn rows(&self) -> impl Iterator<Item = &SiteProfile> {
        self.rows.values()
    }

    /// Recorded installer passes `(name, counters)`, in arrival order.
    pub fn passes(&self) -> &[(String, Vec<(String, u64)>)] {
        &self.passes
    }

    /// Column totals across all rows.
    pub fn totals(&self) -> ProfileTotals {
        let mut t = ProfileTotals::default();
        for row in self.rows.values() {
            t.calls += row.calls;
            t.warm_calls += row.warm_calls;
            t.kills += row.kills;
            t.verify_cycles += row.verify_cycles;
            t.fixed_cycles += row.fixed_cycles;
            t.aes_blocks += row.aes_blocks;
            t.bytes += row.checks.iter().map(|c| c.bytes).sum::<u64>();
        }
        t
    }

    fn row_mut(&mut self, site: u32, nr: u16) -> &mut SiteProfile {
        let key = (self.context.clone(), site, nr);
        self.rows
            .entry(key)
            .or_insert_with(|| SiteProfile::new(self.context.clone(), site, nr))
    }

    fn absorb_checks(row: &mut SiteProfile, checks: &[(CheckRecord, u64)]) {
        for (record, cycles) in checks {
            let agg = &mut row.checks[record.kind.family()];
            agg.count += 1;
            if !record.passed {
                agg.failed += 1;
            }
            agg.aes_blocks += record.aes_blocks;
            agg.cycles += cycles;
            agg.bytes += record.bytes;
            match record.cache {
                CacheDecision::Hit => agg.hits += 1,
                CacheDecision::Fallback => agg.fallbacks += 1,
                CacheDecision::Scrub => agg.scrubs += 1,
                CacheDecision::Disabled | CacheDecision::Cold => {}
            }
            row.aes_blocks += record.aes_blocks;
        }
    }
}

impl TraceSink for Profile {
    fn record(&mut self, event: Event) {
        match event.kind {
            EventKind::TrapEnter { site, nr } => {
                self.pending = Some(PendingSpan {
                    site,
                    nr,
                    checks: Vec::new(),
                });
            }
            EventKind::Check { record, cycles } => {
                if let Some(p) = self.pending.as_mut() {
                    p.checks.push((record, cycles));
                }
            }
            EventKind::TrapExit {
                cache_hit,
                verify_cycles,
                fixed_cycles,
                ..
            } => {
                if let Some(p) = self.pending.take() {
                    let row = self.row_mut(p.site, p.nr);
                    row.calls += 1;
                    if cache_hit {
                        row.warm_calls += 1;
                    }
                    row.verify_cycles += verify_cycles;
                    row.fixed_cycles += fixed_cycles;
                    Profile::absorb_checks(row, &p.checks);
                }
            }
            EventKind::Kill { site, nr, .. } => {
                let checks = match self.pending.take() {
                    Some(p) if p.site == site && p.nr == nr => p.checks,
                    _ => Vec::new(),
                };
                let row = self.row_mut(site, nr);
                row.kills += 1;
                Profile::absorb_checks(row, &checks);
            }
            EventKind::InstallerPass { pass, counters } => {
                self.passes.push((pass, counters));
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(i: u64) -> Event {
        Event {
            span: SpanId(i),
            at_cycles: i * 10,
            severity: Severity::Info,
            kind: EventKind::TrapEnter {
                site: i as u32,
                nr: 1,
            },
        }
    }

    #[test]
    fn ring_keeps_everything_under_capacity() {
        let mut ring = RingSink::new(4);
        for i in 0..4 {
            ring.record(info(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped_events(), 0);
        let spans: Vec<u64> = ring.events().map(|e| e.span.0).collect();
        assert_eq!(spans, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_wraparound_drops_oldest_first() {
        let mut ring = RingSink::new(3);
        for i in 0..10 {
            ring.record(info(i));
        }
        let spans: Vec<u64> = ring.events().map(|e| e.span.0).collect();
        assert_eq!(spans, vec![7, 8, 9], "newest retained, oldest gone");
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn ring_dropped_counter_is_exact() {
        let mut ring = RingSink::new(5);
        for i in 0..137 {
            ring.record(info(i));
        }
        assert_eq!(ring.dropped_events(), 137 - 5);
        // Zero-capacity ring: everything is a drop, nothing is retained.
        let mut zero = RingSink::new(0);
        for i in 0..9 {
            zero.record(info(i));
        }
        assert_eq!(zero.dropped_events(), 9);
        assert!(zero.is_empty());
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
        assert!(RingSink::new(1).enabled());
    }

    #[test]
    fn span_ids_distinct_across_fleet_pid_range() {
        // Fleet mode spawns thousands of pids with churn; every (pid,
        // local) pair in that regime must map to a unique id, and pid 1
        // must keep the identity encoding the single-process goldens pin.
        assert_eq!(SpanId::for_pid(1, 7), SpanId(7));
        let mut seen = std::collections::HashSet::new();
        for pid in (1..=4096u32).chain([1 << 20, SpanId::MAX_DISTINCT_PID]) {
            for local in [0u64, 1, (1 << SPAN_LOCAL_BITS) - 1] {
                let id = SpanId::for_pid(pid, local);
                assert!(seen.insert(id), "collision at pid {pid} local {local}");
                assert_eq!(id.pid(), pid);
                assert_eq!(id.local(), local);
            }
        }
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn span_id_saturates_beyond_pid_field_in_release() {
        // Out-of-range pids collide only with each other, never with a
        // real pid's namespace, and the local counter survives.
        let over = SpanId::for_pid(SpanId::MAX_DISTINCT_PID + 1, 9);
        let way_over = SpanId::for_pid(u32::MAX, 9);
        assert_eq!(over, way_over);
        assert_eq!(over.pid(), SpanId::MAX_DISTINCT_PID);
        assert_eq!(over.local(), 9);
        assert_ne!(over, SpanId::for_pid(1, 9));
    }

    #[test]
    fn disabled_meter_records_nothing_and_never_allocates() {
        let mut meter = CallMeter::disabled();
        meter.record(CheckRecord {
            kind: CheckKind::CallMac,
            passed: true,
            aes_blocks: 3,
            bytes: 0,
            cache: CacheDecision::Disabled,
        });
        assert!(meter.checks.is_empty());
        assert_eq!(meter.checks.capacity(), 0, "no allocation when disabled");
    }

    #[test]
    fn profile_aggregates_spans_per_site() {
        let mut p = Profile::new();
        p.set_context("demo");
        for warm in [false, true, true] {
            p.record(Event {
                span: SpanId(0),
                at_cycles: 0,
                severity: Severity::Info,
                kind: EventKind::TrapEnter { site: 0x100, nr: 5 },
            });
            p.record(Event {
                span: SpanId(0),
                at_cycles: 0,
                severity: Severity::Info,
                kind: EventKind::Check {
                    record: CheckRecord {
                        kind: CheckKind::CallMac,
                        passed: true,
                        aes_blocks: if warm { 0 } else { 3 },
                        bytes: 0,
                        cache: if warm {
                            CacheDecision::Hit
                        } else {
                            CacheDecision::Cold
                        },
                    },
                    cycles: if warm { 0 } else { 1260 },
                },
            });
            p.record(Event {
                span: SpanId(0),
                at_cycles: 0,
                severity: Severity::Info,
                kind: EventKind::TrapExit {
                    verified: true,
                    cache_hit: warm,
                    verify_cycles: if warm { 120 } else { 1710 },
                    fixed_cycles: if warm { 120 } else { 450 },
                },
            });
        }
        let rows: Vec<&SiteProfile> = p.rows().collect();
        assert_eq!(rows.len(), 1);
        let row = rows[0];
        assert_eq!((row.calls, row.warm_calls, row.kills), (3, 2, 0));
        assert_eq!(row.aes_blocks, 3);
        assert_eq!(row.verify_cycles, 1710 + 2 * 120);
        assert_eq!(row.fixed_cycles, 450 + 2 * 120);
        let cm = row.checks[CheckKind::CallMac.family()];
        assert_eq!((cm.count, cm.hits, cm.cycles), (3, 2, 1260));
        // Totals line up with the single row.
        let t = p.totals();
        assert_eq!(t.calls, 3);
        assert_eq!(t.verify_cycles, row.verify_cycles);
    }

    #[test]
    fn profile_contexts_keep_same_address_sites_apart() {
        let mut p = Profile::new();
        for ctx in ["a", "b"] {
            p.set_context(ctx);
            p.record(Event {
                span: SpanId(0),
                at_cycles: 0,
                severity: Severity::Info,
                kind: EventKind::TrapEnter { site: 0x40, nr: 20 },
            });
            p.record(Event {
                span: SpanId(0),
                at_cycles: 0,
                severity: Severity::Info,
                kind: EventKind::TrapExit {
                    verified: true,
                    cache_hit: false,
                    verify_cycles: 450,
                    fixed_cycles: 450,
                },
            });
        }
        assert_eq!(p.rows().count(), 2, "one row per context");
    }
}
