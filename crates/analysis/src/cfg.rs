//! Basic blocks and the control-flow graph.
//!
//! Blocks are numbered from 1; block id 0 is reserved for "program start"
//! in control-flow policies (a syscall whose predecessor set contains 0 may
//! be the first call the program makes). With the Frankenstein
//! countermeasure (§5.5) the installer later folds a program id into these
//! ids; the analysis itself is program-local.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use asc_isa::Opcode;

use crate::ir::{IrItem, Unit};

/// A basic block identifier (1-based; 0 = program start pseudo-block).
pub type BlockId = u32;

/// A basic block: a maximal straight-line run of instructions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Block id.
    pub id: BlockId,
    /// Index of the first item (inclusive).
    pub start: usize,
    /// Index one past the last item.
    pub end: usize,
}

impl BasicBlock {
    /// Index of the last item in the block.
    pub fn last(&self) -> usize {
        self.end - 1
    }
}

/// How control reaches a successor block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Ordinary intraprocedural flow (fallthrough, branch, jump).
    Flow,
    /// Call edge into a callee's entry block.
    Call,
    /// Return edge from a `ret` block to a call site's fallthrough.
    Return,
    /// Summary edge from a call block directly to its fallthrough,
    /// modelling "the callee ran and came back": register state is
    /// clobbered but the caller's frame and expression stack survive.
    /// Used by the constant propagation; the syscall graph ignores it
    /// (a summary edge would skip the callee's syscalls — which is merely
    /// conservative, but the call/return edges are more precise).
    CallSummary,
}

/// The control-flow graph over basic blocks.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Successor edges, including interprocedural call/return edges.
    succs: BTreeMap<BlockId, BTreeSet<(EdgeKind, BlockId)>>,
    /// item index -> containing block.
    item_block: HashMap<usize, BlockId>,
    /// Function entry addresses discovered from call targets + symbols.
    entries: BTreeSet<u32>,
}

impl Cfg {
    /// Builds the CFG (interprocedural: call edges to callee entries,
    /// return edges from `ret` blocks back to every call fall-through of
    /// the containing function, context-insensitively).
    pub fn build(unit: &Unit) -> Cfg {
        let n = unit.items.len();
        // 1. Leaders: item 0, targets of branches/jumps/calls, items after
        //    terminators.
        let mut leaders = BTreeSet::new();
        if n > 0 {
            leaders.insert(0usize);
        }
        let addr_to_index: HashMap<u32, usize> = unit
            .items
            .iter()
            .enumerate()
            .filter_map(|(i, it)| match it {
                IrItem::Instr(ins) => ins.orig_addr.map(|a| (a, i)),
                IrItem::Raw { orig_addr, .. } => Some((*orig_addr, i)),
            })
            .collect();
        for (i, item) in unit.items.iter().enumerate() {
            match item {
                IrItem::Instr(ins) => {
                    if ins.op_is_terminator() && i + 1 < n {
                        leaders.insert(i + 1);
                    }
                    if ins.instr.op.imm_is_code_target() {
                        if let Some(&t) = addr_to_index.get(&ins.instr.imm) {
                            leaders.insert(t);
                        }
                    }
                }
                IrItem::Raw { .. } => {
                    // Raw regions are their own opaque blocks.
                    leaders.insert(i);
                    if i + 1 < n {
                        leaders.insert(i + 1);
                    }
                }
            }
        }

        // 2. Blocks.
        let boundaries: Vec<usize> = leaders.iter().copied().collect();
        let mut blocks = Vec::new();
        let mut item_block = HashMap::new();
        for (bi, &start) in boundaries.iter().enumerate() {
            let end = boundaries.get(bi + 1).copied().unwrap_or(n);
            let id = (bi + 1) as BlockId;
            for i in start..end {
                item_block.insert(i, id);
            }
            blocks.push(BasicBlock { id, start, end });
        }

        // 3. Function entries: call targets, the program entry point, and
        // address-taken code locations (addresses materialised by
        // non-control-flow instructions or stored in data — potential
        // indirect call/jump targets, PLTO-style). Symbols are NOT used:
        // every label is a symbol, including function-internal ones, and
        // treating those as function starts would mis-attribute `ret`
        // instructions and lose return edges.
        let mut entries: BTreeSet<u32> = BTreeSet::new();
        entries.insert(unit.binary.entry());
        for item in &unit.items {
            if let IrItem::Instr(ins) = item {
                if ins.instr.op == Opcode::Call {
                    entries.insert(ins.instr.imm);
                }
                if ins.imm_is_addr
                    && !ins.instr.op.imm_is_code_target()
                    && unit.addr_in_text(ins.instr.imm)
                {
                    entries.insert(ins.instr.imm);
                }
            }
        }
        let text_index = unit.binary.section_index(".text");
        for r in unit.binary.relocations() {
            if Some(r.section) == text_index {
                continue;
            }
            let v = unit.binary.reloc_value(*r);
            if unit.addr_in_text(v) {
                entries.insert(v);
            }
        }

        // 4. Edges.
        let mut cfg = Cfg {
            blocks,
            succs: BTreeMap::new(),
            item_block,
            entries,
        };
        // Map each function entry to the set of "return-to" blocks: the
        // blocks following call sites that target it. Context-insensitive
        // return edges connect every ret in a function to all of these —
        // requires knowing which function a ret belongs to, which we
        // approximate by the nearest preceding entry address.
        let mut entry_sorted: Vec<u32> = cfg.entries.iter().copied().collect();
        entry_sorted.sort_unstable();
        let func_of =
            |addr: u32| -> Option<u32> { entry_sorted.iter().rev().find(|&&e| e <= addr).copied() };
        let mut returns_to: HashMap<u32, BTreeSet<BlockId>> = HashMap::new();

        let blocks_snapshot = cfg.blocks.clone();
        for b in &blocks_snapshot {
            let last = &unit.items[b.last()];
            match last {
                IrItem::Instr(ins) => {
                    let op = ins.instr.op;
                    let fallthrough = || {
                        blocks_snapshot
                            .iter()
                            .find(|nb| nb.start == b.end)
                            .map(|nb| nb.id)
                    };
                    match op {
                        Opcode::Jmp => {
                            if let Some(t) = addr_to_index.get(&ins.instr.imm) {
                                let tb = cfg.item_block[t];
                                cfg.add_edge(b.id, EdgeKind::Flow, tb);
                            }
                        }
                        Opcode::Beq
                        | Opcode::Bne
                        | Opcode::Blt
                        | Opcode::Bge
                        | Opcode::Bltu
                        | Opcode::Bgeu => {
                            if let Some(t) = addr_to_index.get(&ins.instr.imm) {
                                let tb = cfg.item_block[t];
                                cfg.add_edge(b.id, EdgeKind::Flow, tb);
                            }
                            if let Some(ft) = fallthrough() {
                                cfg.add_edge(b.id, EdgeKind::Flow, ft);
                            }
                        }
                        Opcode::Call => {
                            // Call edge to callee entry; the return comes
                            // back to our fall-through.
                            if let Some(t) = addr_to_index.get(&ins.instr.imm) {
                                let tb = cfg.item_block[t];
                                cfg.add_edge(b.id, EdgeKind::Call, tb);
                            }
                            if let Some(ft) = fallthrough() {
                                cfg.add_edge(b.id, EdgeKind::CallSummary, ft);
                                returns_to.entry(ins.instr.imm).or_default().insert(ft);
                            }
                        }
                        Opcode::Ret => {
                            // Handled below once returns_to is complete.
                        }
                        Opcode::Halt => {}
                        Opcode::Jr | Opcode::Callr => {
                            // Indirect flow: the target is statically
                            // unknown, so conservatively add edges to every
                            // known function entry (over-approximation: the
                            // resulting policies permit more, never less —
                            // no false alarms). A callr additionally falls
                            // through, and every function's rets may return
                            // to it.
                            for &entry in &cfg.entries.clone() {
                                if let Some(t) = addr_to_index.get(&entry) {
                                    let tb = cfg.item_block[t];
                                    cfg.add_edge(b.id, EdgeKind::Call, tb);
                                }
                            }
                            if op == Opcode::Callr {
                                if let Some(ft) = fallthrough() {
                                    cfg.add_edge(b.id, EdgeKind::CallSummary, ft);
                                    for &entry in &cfg.entries.clone() {
                                        returns_to.entry(entry).or_default().insert(ft);
                                    }
                                }
                            }
                        }
                        Opcode::Syscall => {
                            if let Some(ft) = fallthrough() {
                                cfg.add_edge(b.id, EdgeKind::Flow, ft);
                            }
                        }
                        _ => {
                            // Non-terminator at block end: plain fallthrough
                            // (the next item was a leader for another
                            // reason, e.g. a branch target).
                            if let Some(ft) = fallthrough() {
                                cfg.add_edge(b.id, EdgeKind::Flow, ft);
                            }
                        }
                    }
                }
                IrItem::Raw { .. } => {
                    // Opaque region: assume it may fall through.
                    if let Some(nb) = blocks_snapshot.iter().find(|nb| nb.start == b.end) {
                        cfg.add_edge(b.id, EdgeKind::Flow, nb.id);
                    }
                }
            }
        }
        // Return edges.
        for b in &blocks_snapshot {
            let IrItem::Instr(ins) = &unit.items[b.last()] else {
                continue;
            };
            if ins.instr.op != Opcode::Ret {
                continue;
            }
            let Some(addr) = unit.addr_of(b.last()) else {
                continue;
            };
            let Some(entry) = func_of(addr) else { continue };
            if let Some(rets) = returns_to.get(&entry) {
                for &r in rets {
                    cfg.add_edge(b.id, EdgeKind::Return, r);
                }
            }
        }
        cfg
    }

    fn add_edge(&mut self, from: BlockId, kind: EdgeKind, to: BlockId) {
        self.succs.entry(from).or_default().insert((kind, to));
    }

    /// All blocks in layout order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing item `idx`.
    pub fn block_of(&self, idx: usize) -> Option<BlockId> {
        self.item_block.get(&idx).copied()
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> Option<&BasicBlock> {
        self.blocks.get(id as usize - 1)
    }

    /// Successor blocks (all edge kinds, deduplicated).
    pub fn succs(&self, id: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        let mut seen = BTreeSet::new();
        self.succs
            .get(&id)
            .into_iter()
            .flatten()
            .filter_map(move |&(_, to)| seen.insert(to).then_some(to))
    }

    /// Successor edges with their kinds.
    pub fn succ_edges(&self, id: BlockId) -> impl Iterator<Item = (EdgeKind, BlockId)> + '_ {
        self.succs.get(&id).into_iter().flatten().copied()
    }

    /// Predecessors of a block (computed on demand, any edge kind).
    pub fn preds(&self, id: BlockId) -> Vec<BlockId> {
        self.succs
            .iter()
            .filter(|(_, s)| s.iter().any(|&(_, to)| to == id))
            .map(|(&f, _)| f)
            .collect()
    }

    /// Discovered function entry addresses.
    pub fn entries(&self) -> &BTreeSet<u32> {
        &self.entries
    }
}

impl crate::ir::IrInstr {
    pub(crate) fn op_is_terminator(&self) -> bool {
        self.instr.op.is_terminator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Unit;
    use asc_asm::assemble;

    fn cfg_of(src: &str) -> (Unit, Cfg) {
        let unit = Unit::lift(&assemble(src).unwrap()).unwrap();
        let cfg = Cfg::build(&unit);
        (unit, cfg)
    }

    #[test]
    fn straight_line_is_one_block_per_terminator() {
        let (_, cfg) = cfg_of(
            "
            .text
        main:
            movi r0, 1
            movi r1, 2
            syscall        ; ends block 1
            halt           ; block 2
        ",
        );
        assert_eq!(cfg.blocks().len(), 2);
        assert_eq!(cfg.succs(1).collect::<Vec<_>>(), vec![2]);
        assert!(cfg.succs(2).next().is_none());
    }

    #[test]
    fn diamond() {
        let (_, cfg) = cfg_of(
            "
            .text
        main:
            movi r1, 1
            beq r1, r2, then    ; block 1
            movi r3, 2          ; block 2 (else)
            jmp join
        then:
            movi r3, 3          ; block 3
        join:
            halt                ; block 4
        ",
        );
        assert_eq!(cfg.blocks().len(), 4);
        let s1: Vec<_> = cfg.succs(1).collect();
        assert_eq!(s1, vec![2, 3]);
        assert_eq!(cfg.succs(2).collect::<Vec<_>>(), vec![4]);
        assert_eq!(cfg.succs(3).collect::<Vec<_>>(), vec![4]);
        assert_eq!(cfg.preds(4), vec![2, 3]);
    }

    #[test]
    fn loop_back_edge() {
        let (_, cfg) = cfg_of(
            "
            .text
        main:
            movi r1, 0          ; block 1
        loop:
            addi r1, r1, 1      ; block 2
            movi r2, 10
            bne r1, r2, loop
            halt                ; block 3
        ",
        );
        let s2: Vec<_> = cfg.succs(2).collect();
        assert!(s2.contains(&2), "back edge to self");
        assert!(s2.contains(&3));
    }

    #[test]
    fn call_and_return_edges() {
        let (_, cfg) = cfg_of(
            "
            .text
        main:
            call f              ; block 1 -> f entry (3); f ret -> block 2
            halt                ; block 2
        f:
            movi r0, 7          ; block 3
            ret
        ",
        );
        let calls: Vec<_> = cfg
            .succ_edges(1)
            .filter(|(k, _)| *k == EdgeKind::Call)
            .map(|(_, b)| b)
            .collect();
        assert_eq!(calls, vec![3]);
        let summaries: Vec<_> = cfg
            .succ_edges(1)
            .filter(|(k, _)| *k == EdgeKind::CallSummary)
            .map(|(_, b)| b)
            .collect();
        assert_eq!(summaries, vec![2]);
        let rets: Vec<_> = cfg
            .succ_edges(3)
            .filter(|(k, _)| *k == EdgeKind::Return)
            .map(|(_, b)| b)
            .collect();
        assert_eq!(rets, vec![2]);
    }

    #[test]
    fn shared_callee_returns_to_all_callers() {
        let (_, cfg) = cfg_of(
            "
            .text
        main:
            call f              ; block 1
            call f              ; block 2
            halt                ; block 3
        f:
            ret                 ; block 4
        ",
        );
        let s4: Vec<_> = cfg
            .succ_edges(4)
            .filter(|(k, _)| *k == EdgeKind::Return)
            .map(|(_, b)| b)
            .collect();
        assert_eq!(s4, vec![2, 3], "ret goes to both call fall-throughs");
    }

    #[test]
    fn block_lookup() {
        let (unit, cfg) = cfg_of("main: movi r0, 1\nsyscall\nhalt");
        assert_eq!(unit.items.len(), 3);
        assert_eq!(cfg.block_of(0), Some(1));
        assert_eq!(cfg.block_of(1), Some(1));
        assert_eq!(cfg.block_of(2), Some(2));
        assert_eq!(cfg.block(1).unwrap().last(), 1);
    }
}
