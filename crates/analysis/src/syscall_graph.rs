//! The system call graph: which calls can immediately precede which.
//!
//! The paper computes this by projecting the program's call graph onto its
//! system calls (§3.3). The equivalent dataflow formulation used here:
//! propagate, over the interprocedural CFG, the set of "most recent system
//! call blocks" reaching each block; a block ending in a syscall resets
//! the set to itself. Block id 0 denotes program start, so a syscall whose
//! predecessor set contains 0 may legally be the program's first call.

use std::collections::{BTreeMap, BTreeSet};

use asc_core::{FlowGraph, FLOW_START};
use asc_isa::Opcode;

use crate::cfg::{BlockId, Cfg};
use crate::ir::{IrItem, Unit};

/// For every block that ends with a system call, the set of blocks whose
/// system calls may immediately precede it (0 = program start).
pub fn predecessor_sets(unit: &Unit, cfg: &Cfg) -> BTreeMap<BlockId, BTreeSet<BlockId>> {
    let nblocks = cfg.blocks().len();
    let ends_in_syscall = |bid: BlockId| -> bool {
        let block = cfg.block(bid).expect("valid block");
        matches!(
            &unit.items[block.last()],
            IrItem::Instr(i) if i.instr.op == Opcode::Syscall
        )
    };

    let mut inn: Vec<BTreeSet<BlockId>> = vec![BTreeSet::new(); nblocks + 1];
    let mut out: Vec<BTreeSet<BlockId>> = vec![BTreeSet::new(); nblocks + 1];
    if nblocks > 0 {
        inn[1].insert(0); // program start reaches the entry block
    }
    let mut worklist: Vec<BlockId> = (1..=nblocks as BlockId).collect();
    while let Some(bid) = worklist.pop() {
        let new_out: BTreeSet<BlockId> = if ends_in_syscall(bid) {
            [bid].into_iter().collect()
        } else {
            inn[bid as usize].clone()
        };
        if new_out != out[bid as usize] {
            out[bid as usize] = new_out.clone();
            // Call-summary edges are excluded: they would bypass callee
            // syscalls, adding spurious (though conservative) predecessors;
            // the call/return edge pair models the same flow precisely.
            for (kind, succ) in cfg.succ_edges(bid) {
                if kind == crate::cfg::EdgeKind::CallSummary {
                    continue;
                }
                let before = inn[succ as usize].len();
                inn[succ as usize].extend(new_out.iter().copied());
                if inn[succ as usize].len() != before && !worklist.contains(&succ) {
                    worklist.push(succ);
                }
            }
        }
    }

    (1..=nblocks as BlockId)
        .filter(|&b| ends_in_syscall(b))
        .map(|b| (b, inn[b as usize].clone()))
        .collect()
}

/// Projects per-site predecessor sets down to the global syscall-transition
/// digraph (the SFIP tier's policy). Each element of `sites` is one call
/// site: `(syscall number, its block, its predecessor blocks)`.
///
/// For every site `s`, every predecessor block `p` of `s` contributes the
/// edge `(nr of p's site, nr of s)`; block 0 contributes
/// `(FLOW_START, nr of s)`. Because this is exactly the block-level
/// predecessor relation with block ids replaced by (coarser) syscall
/// numbers, any transition the policy-state check accepts maps to an edge
/// of the digraph: the flow tier is sound relative to the MAC tier, and
/// strictly coarser — distinct sites trapping the same number merge into
/// one node, which is the tier's deliberate precision loss.
pub fn flow_digraph(sites: &[(u16, BlockId, BTreeSet<BlockId>)]) -> FlowGraph {
    let mut nrs_of_block: BTreeMap<BlockId, BTreeSet<u16>> = BTreeMap::new();
    for (nr, block, _) in sites {
        nrs_of_block.entry(*block).or_default().insert(*nr);
    }
    let mut graph = FlowGraph::new();
    for (nr, _, preds) in sites {
        for p in preds {
            if *p == 0 {
                graph.insert(FLOW_START, *nr);
            } else if let Some(from_nrs) = nrs_of_block.get(p) {
                for from in from_nrs {
                    graph.insert(*from, *nr);
                }
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_asm::assemble;

    fn preds_of(src: &str) -> (Unit, Cfg, BTreeMap<BlockId, BTreeSet<BlockId>>) {
        let unit = Unit::lift(&assemble(src).unwrap()).unwrap();
        let cfg = Cfg::build(&unit);
        let preds = predecessor_sets(&unit, &cfg);
        (unit, cfg, preds)
    }

    fn set(ids: &[BlockId]) -> BTreeSet<BlockId> {
        ids.iter().copied().collect()
    }

    #[test]
    fn sequential_calls_chain() {
        let (_, _, preds) = preds_of(
            "
            .text
        main:
            movi r0, 5
            syscall        ; block 1
            movi r0, 3
            syscall        ; block 2
            movi r0, 1
            syscall        ; block 3
            halt
        ",
        );
        assert_eq!(preds[&1], set(&[0]), "first call follows program start");
        assert_eq!(preds[&2], set(&[1]));
        assert_eq!(preds[&3], set(&[2]));
    }

    #[test]
    fn branch_merges_predecessors() {
        let (_, _, preds) = preds_of(
            "
            .text
        main:
            beq r1, r2, right
            movi r0, 5
            syscall          ; block 2 (left open)
            jmp done
        right:
            movi r0, 6
            syscall          ; block 4 (right close)
        done:
            movi r0, 1
            syscall          ; block 5 (exit)
            halt
        ",
        );
        // exit's predecessors are both branches' calls.
        let exit_block = *preds.keys().max().unwrap();
        assert_eq!(preds[&exit_block], set(&[2, 4]));
        // Each branch call itself follows program start.
        assert_eq!(preds[&2], set(&[0]));
        assert_eq!(preds[&4], set(&[0]));
    }

    #[test]
    fn loop_allows_self_precedence() {
        let (_, _, preds) = preds_of(
            "
            .text
        main:
        loop:
            movi r0, 3
            syscall          ; read in a loop
            movi r2, 0
            bne r0, r2, loop
            movi r0, 1
            syscall
            halt
        ",
        );
        let read_block = *preds.keys().min().unwrap();
        assert!(
            preds[&read_block].contains(&read_block),
            "read may follow itself: {preds:?}"
        );
        assert!(preds[&read_block].contains(&0), "or be first");
    }

    #[test]
    fn calls_through_functions_are_tracked() {
        let (_, _, preds) = preds_of(
            "
            .text
        main:
            call do_open     ; block 1
            call do_read     ; block 2
            movi r0, 1
            syscall          ; block 3 (exit)
            halt
        do_open:
            movi r0, 5
            syscall          ; open block
            ret
        do_read:
            movi r0, 3
            syscall          ; read block
            ret
        ",
        );
        // Identify blocks by searching: exactly 3 syscall blocks.
        assert_eq!(preds.len(), 3);
        let mut iter = preds.iter();
        let (&exit_b, exit_preds) = iter.next().unwrap(); // lowest block id = exit (block 3)
        let (&open_b, open_preds) = iter.next().unwrap();
        let (&read_b, read_preds) = iter.next().unwrap();
        assert!(exit_b < open_b && open_b < read_b);
        assert_eq!(open_preds, &set(&[0]), "open is first");
        assert_eq!(read_preds, &set(&[open_b]), "read follows open");
        assert_eq!(exit_preds, &set(&[read_b]), "exit follows read");
    }

    #[test]
    fn shared_stub_context_insensitivity_is_conservative() {
        // One getpid stub called from two places around a write: the
        // context-insensitive analysis allows write to follow either
        // getpid, and getpid to follow getpid (spurious but conservative:
        // unneeded permissions, never false alarms).
        let (_, _, preds) = preds_of(
            "
            .text
        main:
            call getpid      ; 1
            movi r0, 4
            syscall          ; 2: write
            call getpid      ; 3
            halt
        getpid:
            movi r0, 20
            syscall          ; stub block
            ret
        ",
        );
        let stub_block = *preds.keys().max().unwrap();
        let write_block = 2;
        assert!(preds[&write_block].contains(&stub_block));
        assert!(preds[&stub_block].contains(&0));
        assert!(preds[&stub_block].contains(&write_block));
    }

    #[test]
    fn flow_digraph_projects_chains_and_loops() {
        // Chain: start -> 5 -> 3 -> 1.
        let g = flow_digraph(&[(5, 1, set(&[0])), (3, 2, set(&[1])), (1, 3, set(&[2]))]);
        assert!(g.contains(asc_core::FLOW_START, 5));
        assert!(g.contains(5, 3));
        assert!(g.contains(3, 1));
        assert!(!g.contains(5, 1), "skipping a call is not an edge");
        assert_eq!(g.len(), 3);

        // Loop: a read that may follow itself, then exit.
        let g = flow_digraph(&[(3, 1, set(&[0, 1])), (1, 2, set(&[1]))]);
        assert!(g.contains(3, 3), "loop produces a self-edge");
        assert!(g.contains(asc_core::FLOW_START, 3));
        assert!(g.contains(3, 1));

        // Branch merge: either branch's call may precede exit.
        let g = flow_digraph(&[(5, 2, set(&[0])), (6, 4, set(&[0])), (1, 5, set(&[2, 4]))]);
        assert!(g.contains(5, 1) && g.contains(6, 1));
        assert!(!g.contains(5, 6), "branches do not chain into each other");
    }

    #[test]
    fn flow_digraph_is_coarser_than_pred_sets() {
        // Two sites trap the same number 4 from different blocks; the
        // digraph merges them, so a transition only one block allows is an
        // edge for both — the documented precision loss of the flow tier.
        let g = flow_digraph(&[(4, 1, set(&[0])), (4, 3, set(&[1])), (9, 4, set(&[3]))]);
        assert!(g.contains(4, 4), "site-to-site chain becomes a self-edge");
        assert!(
            g.contains(4, 9),
            "edge granted to every site sharing nr 4, not just block 3"
        );
        // A predecessor block with no site contributes nothing.
        let g = flow_digraph(&[(7, 2, set(&[9]))]);
        assert!(g.is_empty());
    }

    #[test]
    fn unreachable_syscall_has_empty_predecessors() {
        let (_, _, preds) = preds_of(
            "
            .text
        main:
            movi r0, 1
            syscall          ; block 1
            halt
        dead:
            movi r0, 11
            syscall          ; block 3, unreachable
            halt
        ",
        );
        let dead_block = *preds.keys().max().unwrap();
        assert!(preds[&dead_block].is_empty());
    }
}
