//! Call-graph construction and system call stub inlining.
//!
//! libc wraps every system call in a small stub (`open:`, `read:`, ...)
//! invoked from many places. With one policy per *syscall instruction*,
//! all callers of a stub would share one over-broad policy; the paper
//! therefore inlines stubs into their callers so that each call site gets
//! its own policy (§4.1). The same transform happens here at the IR level.

use std::collections::{BTreeMap, HashMap};

use asc_isa::Opcode;
use asc_object::SymbolKind;

use crate::ir::{IrInstr, IrItem, Unit};

/// Upper bound on stub body length (instructions, excluding `ret`).
const MAX_STUB_LEN: usize = 10;

/// A call-graph edge list: caller function entry → callee entries.
pub fn call_graph(unit: &Unit) -> BTreeMap<u32, Vec<u32>> {
    let mut entries: Vec<u32> = unit
        .binary
        .symbols()
        .iter()
        .filter(|s| s.kind == SymbolKind::Func)
        .map(|s| s.addr)
        .collect();
    for item in &unit.items {
        if let IrItem::Instr(i) = item {
            if i.instr.op == Opcode::Call {
                entries.push(i.instr.imm);
            }
        }
    }
    entries.sort_unstable();
    entries.dedup();
    let func_of =
        |addr: u32| -> Option<u32> { entries.iter().rev().find(|&&e| e <= addr).copied() };
    let mut graph: BTreeMap<u32, Vec<u32>> = entries.iter().map(|&e| (e, Vec::new())).collect();
    for item in &unit.items {
        let IrItem::Instr(i) = item else { continue };
        if i.instr.op != Opcode::Call {
            continue;
        }
        let Some(site_addr) = i.orig_addr else {
            continue;
        };
        if let Some(caller) = func_of(site_addr) {
            graph.entry(caller).or_default().push(i.instr.imm);
        }
    }
    graph
}

/// Description of a detected stub.
#[derive(Clone, Debug)]
struct Stub {
    /// Cloneable body (everything up to but excluding the `ret`).
    body: Vec<IrInstr>,
    name: String,
}

/// Detects whether the function at `addr` is an inlineable syscall stub:
/// straight-line, at most [`MAX_STUB_LEN`] instructions, containing at
/// least one `syscall`, ending in `ret`, with no control flow inside.
fn detect_stub(unit: &Unit, addr: u32) -> Option<Stub> {
    let start = unit.item_at_addr(addr)?;
    let mut body = Vec::new();
    let mut has_syscall = false;
    for idx in start..unit.items.len() {
        let IrItem::Instr(ins) = &unit.items[idx] else {
            return None;
        };
        match ins.instr.op {
            Opcode::Ret => {
                if !has_syscall || body.len() > MAX_STUB_LEN {
                    return None;
                }
                let name = unit
                    .binary
                    .symbols()
                    .iter()
                    .find(|s| s.addr == addr && s.kind == SymbolKind::Func)
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|| format!("stub_{addr:#x}"));
                return Some(Stub { body, name });
            }
            Opcode::Syscall => {
                has_syscall = true;
                body.push(ins.clone());
            }
            op if op.is_terminator() => return None, // branches/calls/halt
            _ => {
                body.push(ins.clone());
                if body.len() > MAX_STUB_LEN {
                    return None;
                }
            }
        }
    }
    None
}

/// Inlines every detected stub at every direct call site. Returns
/// `(stub name, number of sites inlined)` per stub, for reporting.
///
/// The stub bodies themselves remain in the binary (their syscall sites
/// keep their own — now caller-less, hence unreachable-by-policy —
/// policies), and the first inlined instruction inherits the call's
/// original address so that branches targeting the call keep working after
/// the rewrite.
pub fn inline_stubs(unit: &mut Unit) -> Vec<(String, usize)> {
    // Pass 1: find call targets.
    let mut targets: Vec<u32> = unit
        .items
        .iter()
        .filter_map(|it| match it {
            IrItem::Instr(i) if i.instr.op == Opcode::Call => Some(i.instr.imm),
            _ => None,
        })
        .collect();
    targets.sort_unstable();
    targets.dedup();

    // Pass 2: detect stubs.
    let stubs: HashMap<u32, Stub> = targets
        .into_iter()
        .filter_map(|t| detect_stub(unit, t).map(|s| (t, s)))
        .collect();
    if stubs.is_empty() {
        return Vec::new();
    }

    // Pass 3: splice.
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut new_items = Vec::with_capacity(unit.items.len());
    for item in unit.items.drain(..) {
        match &item {
            IrItem::Instr(i) if i.instr.op == Opcode::Call && stubs.contains_key(&i.instr.imm) => {
                let stub = &stubs[&i.instr.imm];
                *counts.entry(stub.name.clone()).or_default() += 1;
                for (k, body_instr) in stub.body.iter().enumerate() {
                    let mut clone = body_instr.clone();
                    // The first clone inherits the call's address so that
                    // branch targets and the address map stay coherent;
                    // the rest are synthetic.
                    clone.orig_addr = if k == 0 { i.orig_addr } else { None };
                    new_items.push(IrItem::Instr(clone));
                }
            }
            _ => new_items.push(item),
        }
    }
    unit.items = new_items;
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_asm::assemble;
    use asc_isa::Reg;

    fn lift(src: &str) -> Unit {
        Unit::lift(&assemble(src).unwrap()).unwrap()
    }

    const STUB_PROGRAM: &str = "
        .text
    main:
        movi r1, 0x2000
        call open
        movi r1, 99
        call getpid
        halt
    open:
        movi r0, 5
        syscall
        ret
    getpid:
        movi r0, 20
        syscall
        ret
    ";

    #[test]
    fn call_graph_edges() {
        let unit = lift(STUB_PROGRAM);
        let graph = call_graph(&unit);
        let main = unit.binary.symbol("main").unwrap().addr;
        let open = unit.binary.symbol("open").unwrap().addr;
        let getpid = unit.binary.symbol("getpid").unwrap().addr;
        assert_eq!(graph[&main], vec![open, getpid]);
        assert!(graph[&open].is_empty());
    }

    #[test]
    fn stubs_detected_and_inlined() {
        let mut unit = lift(STUB_PROGRAM);
        let before = unit.items.len();
        let inlined = inline_stubs(&mut unit);
        assert_eq!(
            inlined,
            vec![("getpid".to_string(), 1), ("open".to_string(), 1)]
        );
        // Each call (1 item) replaced by movi+syscall (2 items): +2 total.
        assert_eq!(unit.items.len(), before + 2);
        // Syscall count: 2 original in stubs + 2 inlined.
        let syscalls = unit
            .items
            .iter()
            .filter(|it| matches!(it, IrItem::Instr(i) if i.instr.op == Opcode::Syscall))
            .count();
        assert_eq!(syscalls, 4);
        // The first inlined instruction keeps the call's address.
        let IrItem::Instr(first_inlined) = &unit.items[1] else {
            panic!()
        };
        assert_eq!(first_inlined.instr.op, Opcode::Movi);
        assert_eq!(first_inlined.instr.rd, Reg::R0);
        assert_eq!(first_inlined.instr.imm, 5);
        assert_eq!(first_inlined.orig_addr, Some(0x1008));
    }

    #[test]
    fn non_stubs_not_inlined() {
        // A function with a branch is not a stub; a function without a
        // syscall is not a stub.
        let mut unit = lift(
            "
            .text
        main:
            call branchy
            call plain
            halt
        branchy:
            movi r0, 5
            beq r1, r2, skip
            syscall
        skip:
            ret
        plain:
            movi r0, 7
            ret
        ",
        );
        let inlined = inline_stubs(&mut unit);
        assert!(inlined.is_empty());
    }

    #[test]
    fn long_functions_not_inlined() {
        let body: String = (0..12).map(|i| format!("movi r2, {i}\n")).collect();
        let mut unit = lift(&format!(
            "
            .text
        main:
            call big
            halt
        big:
            {body}
            movi r0, 5
            syscall
            ret
        "
        ));
        assert!(inline_stubs(&mut unit).is_empty());
    }

    #[test]
    fn shared_stub_inlined_at_every_site() {
        let mut unit = lift(
            "
            .text
        main:
            call w
            call w
            call w
            halt
        w:
            movi r0, 4
            syscall
            ret
        ",
        );
        let inlined = inline_stubs(&mut unit);
        assert_eq!(inlined, vec![("w".to_string(), 3)]);
    }

    #[test]
    fn rewritten_program_still_runs() {
        // End-to-end: inline, emit, patch the binary, execute.
        let mut unit = lift(STUB_PROGRAM);
        inline_stubs(&mut unit);
        let emitted = unit.emit_text(unit.text_addr());
        let mut binary = unit.binary.clone();
        // Remap address-immediates and data relocations.
        let text_idx = binary.section_index(".text").unwrap() as usize;
        {
            let text = &mut binary.sections_mut()[text_idx];
            text.data = emitted.bytes;
            text.mem_size = text.data.len() as u32;
        }
        for off in &emitted.addr_imm_offsets {
            let off = *off as usize;
            let text = &mut binary.sections_mut()[text_idx];
            let old = u32::from_le_bytes(text.data[off..off + 4].try_into().unwrap());
            let new = emitted.addr_map.get(&old).copied().unwrap_or(old);
            text.data[off..off + 4].copy_from_slice(&new.to_le_bytes());
        }
        let entry = binary.entry();
        binary.set_entry(*emitted.addr_map.get(&entry).unwrap_or(&entry));

        // Run under a trivial handler that records syscall numbers.
        #[derive(Default)]
        struct Rec(Vec<u32>);
        impl asc_vm::SyscallHandler for Rec {
            fn syscall(&mut self, ctx: &mut asc_vm::TrapContext<'_>) -> asc_vm::TrapOutcome {
                self.0.push(ctx.reg(Reg::R0));
                if self.0.len() >= 2 {
                    asc_vm::TrapOutcome::Exit(0)
                } else {
                    asc_vm::TrapOutcome::Continue
                }
            }
        }
        let mut m = asc_vm::Machine::load(&binary, Rec::default()).unwrap();
        let out = m.run(1_000_000);
        assert_eq!(out, asc_vm::RunOutcome::Exited(0));
        assert_eq!(
            m.handler().0,
            vec![5, 20],
            "inlined syscalls execute in order"
        );
    }
}
