//! Instruction-level IR lifted from a SOF binary and re-emittable after
//! transformation.
//!
//! The IR preserves two facts per instruction that make rewriting sound:
//! its *original address* (so control-flow targets can be remapped after
//! code motion) and whether its immediate *is an address* (from the
//! binary's relocation table — PLTO's relocatable-input requirement).

use std::collections::{BTreeSet, HashMap};

use asc_isa::{DecodeError, Instruction, INSTR_LEN};
use asc_object::{sections, Binary};

/// One item of the lifted text section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrItem {
    /// A decoded instruction.
    Instr(IrInstr),
    /// Bytes that failed to disassemble (kept opaque, addresses preserved).
    Raw {
        /// Original address of the region.
        orig_addr: u32,
        /// The raw bytes.
        bytes: Vec<u8>,
    },
}

/// A decoded instruction with rewriting metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrInstr {
    /// Address in the input binary (`None` for instructions synthesised by
    /// a transform, e.g. inlined stub bodies or installer-inserted moves).
    pub orig_addr: Option<u32>,
    /// The instruction.
    pub instr: Instruction,
    /// Whether `instr.imm` holds an address (per the relocation table) and
    /// must be remapped when code moves.
    pub imm_is_addr: bool,
}

/// Error lifting a binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiftError {
    /// The binary has no `.text` section.
    NoText,
    /// The binary carries no relocations, so it cannot be safely rewritten
    /// (the paper's installer has the same restriction).
    NotRelocatable,
}

impl std::fmt::Display for LiftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiftError::NoText => write!(f, "binary has no .text section"),
            LiftError::NotRelocatable => {
                write!(f, "binary has no relocation information; cannot rewrite")
            }
        }
    }
}

impl std::error::Error for LiftError {}

/// The lifted program: text as IR items plus the original binary (for data
/// sections, symbols, and non-text relocations).
#[derive(Clone, Debug)]
pub struct Unit {
    /// Lifted text items in layout order.
    pub items: Vec<IrItem>,
    /// The source binary (sections other than `.text` are reused as-is).
    pub binary: Binary,
    /// Warnings generated during lifting (undisassembled regions).
    pub lift_warnings: Vec<String>,
    text_addr: u32,
    text_len: u32,
}

impl Unit {
    /// Lifts a relocatable binary into IR.
    ///
    /// # Errors
    ///
    /// [`LiftError::NoText`] / [`LiftError::NotRelocatable`].
    pub fn lift(binary: &Binary) -> Result<Unit, LiftError> {
        let text_index = binary
            .section_index(sections::TEXT)
            .ok_or(LiftError::NoText)?;
        if !binary.is_relocatable() {
            return Err(LiftError::NotRelocatable);
        }
        let text = &binary.sections()[text_index as usize];
        // Offsets within text whose imm field is an address.
        let reloc_offsets: BTreeSet<u32> = binary
            .relocations()
            .iter()
            .filter(|r| r.section == text_index)
            .map(|r| r.offset)
            .collect();

        let mut items = Vec::new();
        let mut warnings = Vec::new();
        let mut off = 0usize;
        while off + INSTR_LEN <= text.data.len() {
            let addr = text.addr + off as u32;
            match Instruction::decode(&text.data[off..off + INSTR_LEN]) {
                Ok(instr) => {
                    let imm_is_addr = reloc_offsets.contains(&(off as u32 + 4));
                    items.push(IrItem::Instr(IrInstr {
                        orig_addr: Some(addr),
                        instr,
                        imm_is_addr,
                    }));
                }
                Err(DecodeError::BadOpcode(_)) | Err(DecodeError::BadRegister(_)) => {
                    // Opaque region: merge with a preceding Raw if adjacent.
                    let bytes = text.data[off..off + INSTR_LEN].to_vec();
                    if let Some(IrItem::Raw { bytes: prev, .. }) = items.last_mut() {
                        prev.extend_from_slice(&bytes);
                    } else {
                        warnings.push(format!(
                            "could not disassemble region at {addr:#x}; system calls inside it \
                             will not receive policies"
                        ));
                        items.push(IrItem::Raw {
                            orig_addr: addr,
                            bytes,
                        });
                    }
                }
                Err(DecodeError::Truncated) => break,
            }
            off += INSTR_LEN;
        }
        if off != text.data.len() {
            warnings.push(format!(
                "{} trailing text bytes ignored",
                text.data.len() - off
            ));
        }
        Ok(Unit {
            items,
            binary: binary.clone(),
            lift_warnings: warnings,
            text_addr: text.addr,
            text_len: text.data.len() as u32,
        })
    }

    /// Original address of item `idx` (raw regions report their start).
    pub fn addr_of(&self, idx: usize) -> Option<u32> {
        match &self.items[idx] {
            IrItem::Instr(i) => i.orig_addr,
            IrItem::Raw { orig_addr, .. } => Some(*orig_addr),
        }
    }

    /// Load address of the original text section.
    pub fn text_addr(&self) -> u32 {
        self.text_addr
    }

    /// Whether `addr` was inside the original text section.
    pub fn addr_in_text(&self, addr: u32) -> bool {
        addr >= self.text_addr && addr < self.text_addr + self.text_len
    }

    /// Finds the item index whose original address is `addr`.
    pub fn item_at_addr(&self, addr: u32) -> Option<usize> {
        self.items.iter().position(|it| match it {
            IrItem::Instr(i) => i.orig_addr == Some(addr),
            IrItem::Raw { orig_addr, bytes } => {
                *orig_addr <= addr && addr < *orig_addr + bytes.len() as u32
            }
        })
    }

    /// Emits the (possibly transformed) items as new text bytes based at
    /// `base`, returning the bytes, the old→new address map, and the text
    /// offsets of immediates that hold addresses (for the caller to remap
    /// and to rebuild relocations from).
    pub fn emit_text(&self, base: u32) -> EmittedText {
        let mut bytes = Vec::new();
        let mut addr_map = HashMap::new();
        let mut addr_imm_offsets = Vec::new();
        for item in &self.items {
            match item {
                IrItem::Instr(i) => {
                    if let Some(orig) = i.orig_addr {
                        addr_map.insert(orig, base + bytes.len() as u32);
                    }
                    if i.imm_is_addr {
                        addr_imm_offsets.push(bytes.len() as u32 + 4);
                    }
                    bytes.extend_from_slice(&i.instr.encode());
                }
                IrItem::Raw {
                    orig_addr,
                    bytes: raw,
                } => {
                    // Raw regions keep their bytes; map their start address
                    // (interior addresses of opaque regions cannot be
                    // remapped, which is precisely why PLTO warns).
                    addr_map.insert(*orig_addr, base + bytes.len() as u32);
                    bytes.extend_from_slice(raw);
                }
            }
        }
        EmittedText {
            bytes,
            addr_map,
            addr_imm_offsets,
        }
    }
}

/// Result of [`Unit::emit_text`].
#[derive(Debug)]
pub struct EmittedText {
    /// The new text bytes.
    pub bytes: Vec<u8>,
    /// Old address → new address for every surviving original instruction.
    pub addr_map: HashMap<u32, u32>,
    /// Offsets (within the new text) of 4-byte immediates holding
    /// addresses.
    pub addr_imm_offsets: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_asm::assemble;
    use asc_isa::{Opcode, Reg};

    fn lift_src(src: &str) -> Unit {
        Unit::lift(&assemble(src).unwrap()).unwrap()
    }

    #[test]
    fn lift_simple_program() {
        let unit = lift_src(
            "
            .text
        main:
            movi r1, msg
            movi r0, 4
            syscall
            halt
            .rodata
        msg: .asciz \"x\"
        ",
        );
        assert_eq!(unit.items.len(), 4);
        let IrItem::Instr(first) = &unit.items[0] else {
            panic!()
        };
        assert!(first.imm_is_addr, "movi r1, msg carries a relocation");
        let IrItem::Instr(second) = &unit.items[1] else {
            panic!()
        };
        assert!(!second.imm_is_addr, "movi r0, 4 is a plain constant");
        assert_eq!(first.orig_addr, Some(0x1000));
        assert!(unit.lift_warnings.is_empty());
    }

    #[test]
    fn lift_requires_relocations() {
        let mut binary = assemble("main: halt").unwrap();
        // This program has no relocations at all; simulate a stripped
        // binary by ensuring the list is empty and expect rejection.
        binary.strip_relocations();
        assert!(matches!(
            Unit::lift(&binary),
            Err(LiftError::NotRelocatable)
        ));
    }

    #[test]
    fn raw_regions_preserved_and_reported() {
        let mut binary = assemble(
            "
            .text
        main:
            movi r0, 20
            syscall
        island:
            .word 0xffffffff      ; invalid opcode 0xff
            .word 0x12345678
        after:
            halt
            movi r0, main         ; keep a relocation so lift() accepts
        ",
        )
        .unwrap();
        binary.push_relocation(asc_object::Relocation {
            section: 0,
            offset: 4 + 4 * 8,
        });
        let unit = Unit::lift(&binary).unwrap();
        let raws: Vec<_> = unit
            .items
            .iter()
            .filter(|i| matches!(i, IrItem::Raw { .. }))
            .collect();
        assert_eq!(raws.len(), 1);
        assert!(unit
            .lift_warnings
            .iter()
            .any(|w| w.contains("could not disassemble")));
    }

    #[test]
    fn emit_text_roundtrips_unmodified() {
        let unit = lift_src(
            "
            .text
        main:
            movi r1, 5
            call f
            halt
        f:
            add r0, r1, r1
            ret
        ",
        );
        let emitted = unit.emit_text(unit.text_addr());
        let orig = unit.binary.section_by_name(".text").unwrap();
        assert_eq!(emitted.bytes, orig.data);
        // Identity map.
        for (old, new) in &emitted.addr_map {
            assert_eq!(old, new);
        }
        assert_eq!(emitted.addr_imm_offsets, vec![12]); // the call's imm
    }

    #[test]
    fn emit_text_tracks_insertion_shifts() {
        let mut unit = lift_src(
            "
            .text
        main:
            movi r1, 5
            jmp end
        end:
            halt
        ",
        );
        // Insert two instructions before the jmp (simulating the
        // installer's authenticated-call argument loads).
        let insert = IrItem::Instr(IrInstr {
            orig_addr: None,
            instr: Instruction::movi(Reg::R7, 0xAA),
            imm_is_addr: false,
        });
        unit.items.insert(1, insert.clone());
        unit.items.insert(1, insert);
        let emitted = unit.emit_text(0x1000);
        // Old jmp at 0x1008 now at 0x1018; old target 0x1010 now 0x1020.
        assert_eq!(emitted.addr_map[&0x1008], 0x1018);
        assert_eq!(emitted.addr_map[&0x1010], 0x1020);
        // Re-decode the moved jmp to confirm encoding integrity.
        let jmp = Instruction::decode(&emitted.bytes[0x18..0x20]).unwrap();
        assert_eq!(jmp.op, Opcode::Jmp);
    }

    #[test]
    fn item_at_addr_lookup() {
        let unit = lift_src("main: movi r0, 1\nsyscall\n");
        assert_eq!(unit.item_at_addr(0x1000), Some(0));
        assert_eq!(unit.item_at_addr(0x1008), Some(1));
        assert_eq!(unit.item_at_addr(0x2000), None);
        assert!(unit.addr_in_text(0x1008));
        assert!(!unit.addr_in_text(0x2000));
    }
}
