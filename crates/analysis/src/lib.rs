//! Static binary analysis — the PLTO analogue.
//!
//! The trusted installer needs exactly the pipeline the paper describes in
//! §4.1, and this crate provides it:
//!
//! 1. [`ir`] — disassemble the binary into an instruction-level IR that
//!    remembers original addresses and relocation marks, and can be
//!    re-emitted after rewriting (PLTO's read/transform/write cycle).
//!    Regions that fail to disassemble are preserved opaquely and
//!    *reported* — the OpenBSD `close` effect of Table 2.
//! 2. [`mod@cfg`] — divide the program into basic blocks and build the control
//!    flow graph.
//! 3. [`callgraph`] — build the call graph, identify system call *stubs*
//!    (small straight-line functions that trap), and inline them into
//!    their callers so each call site can carry its own policy.
//! 4. [`dataflow`] — constant propagation / reaching definitions over each
//!    function to classify syscall arguments as String / Immediate /
//!    Unknown (plus the multi-value and syscall-return refinements that
//!    Table 3's `mv` and `fds` columns count).
//! 5. [`syscall_graph`] — project the interprocedural CFG onto system
//!    calls to compute, for every call, the set of calls that can
//!    immediately precede it (the control-flow policy).
//!
//! # Example
//!
//! ```
//! let binary = asc_asm::assemble("
//!     .text
//! main:
//!     movi r0, 20     ; SYS_getpid
//!     syscall
//!     movi r0, 1      ; SYS_exit
//!     movi r1, 0
//!     syscall
//! ")?;
//! let unit = asc_analysis::ir::Unit::lift(&binary)?;
//! let analysis = asc_analysis::ProgramAnalysis::run(unit);
//! assert_eq!(analysis.syscall_sites().len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod ir;
pub mod syscall_graph;

use std::collections::BTreeMap;

use cfg::{BlockId, Cfg};
use dataflow::Value;
use ir::Unit;

/// A discovered system call site with its analysis results.
#[derive(Clone, Debug)]
pub struct SyscallSite {
    /// Index of the `syscall` instruction in the unit's item list.
    pub item_index: usize,
    /// Basic block containing (ending with) the call.
    pub block: BlockId,
    /// Constant-propagated value of `R0` (the syscall number).
    pub nr: Value,
    /// Constant-propagated values of `R1..=R6`.
    pub args: [Value; 6],
    /// Blocks whose system calls may immediately precede this one
    /// (block 0 = program start).
    pub predecessors: std::collections::BTreeSet<BlockId>,
}

/// The full analysis of one program: the lifted unit plus every derived
/// artefact the installer consumes.
#[derive(Debug)]
pub struct ProgramAnalysis {
    unit: Unit,
    cfg: Cfg,
    sites: Vec<SyscallSite>,
    /// Functions that were inlined (name, number of call sites inlined).
    pub inlined_stubs: Vec<(String, usize)>,
    /// Human-readable warnings (undisassembled regions, unknown syscall
    /// numbers) for the administrator, mirroring "PLTO always reports when
    /// it cannot completely disassemble a binary".
    pub warnings: Vec<String>,
}

impl ProgramAnalysis {
    /// Runs the full pipeline: stub inlining, CFG, constant propagation,
    /// syscall identification, and the syscall graph.
    pub fn run(mut unit: Unit) -> ProgramAnalysis {
        let mut warnings = unit.lift_warnings.clone();
        let inlined_stubs = callgraph::inline_stubs(&mut unit);
        let cfg = Cfg::build(&unit);
        let consts = dataflow::propagate(&unit, &cfg);
        let pred_sets = syscall_graph::predecessor_sets(&unit, &cfg);

        let mut sites = Vec::new();
        for (idx, item) in unit.items.iter().enumerate() {
            let ir::IrItem::Instr(instr) = item else {
                continue;
            };
            if instr.instr.op != asc_isa::Opcode::Syscall {
                continue;
            }
            let block = cfg.block_of(idx).expect("every instr is in a block");
            let env = consts.at(idx);
            let nr = env.reg(asc_isa::Reg::R0);
            if !matches!(nr, Value::Const(_)) {
                warnings.push(format!(
                    "syscall at item {idx}: number not statically determined ({nr:?})"
                ));
            }
            let args = [
                env.reg(asc_isa::Reg::R1),
                env.reg(asc_isa::Reg::R2),
                env.reg(asc_isa::Reg::R3),
                env.reg(asc_isa::Reg::R4),
                env.reg(asc_isa::Reg::R5),
                env.reg(asc_isa::Reg::R6),
            ];
            let predecessors = pred_sets.get(&block).cloned().unwrap_or_default();
            sites.push(SyscallSite {
                item_index: idx,
                block,
                nr,
                args,
                predecessors,
            });
        }
        ProgramAnalysis {
            unit,
            cfg,
            sites,
            inlined_stubs,
            warnings,
        }
    }

    /// The (post-inlining) unit.
    pub fn unit(&self) -> &Unit {
        &self.unit
    }

    /// The control-flow graph.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// All discovered syscall sites.
    pub fn syscall_sites(&self) -> &[SyscallSite] {
        &self.sites
    }

    /// Sites grouped by their statically determined syscall number
    /// (`None` key = undetermined).
    pub fn sites_by_nr(&self) -> BTreeMap<Option<u32>, Vec<&SyscallSite>> {
        let mut map: BTreeMap<Option<u32>, Vec<&SyscallSite>> = BTreeMap::new();
        for s in &self.sites {
            let key = match s.nr {
                Value::Const(n) => Some(n),
                _ => None,
            };
            map.entry(key).or_default().push(s);
        }
        map
    }

    /// Consumes the analysis, returning the unit for rewriting.
    pub fn into_unit(self) -> Unit {
        self.unit
    }
}

/// Renders a human-readable disassembly listing of a binary's text
/// section, annotating syscall sites, function symbols, and opaque
/// regions — the toolchain's `objdump -d` analogue. Works on both
/// relocatable inputs and installed (non-relocatable) outputs.
pub fn disassembly(binary: &asc_object::Binary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let Some(text) = binary.section_by_name(".text") else {
        return "<no .text section>".to_string();
    };
    let mut off = 0usize;
    while off + asc_isa::INSTR_LEN <= text.data.len() {
        let addr = text.addr + off as u32;
        if let Some(sym) = binary
            .symbols()
            .iter()
            .find(|s| s.addr == addr && s.kind == asc_object::SymbolKind::Func)
        {
            let _ = writeln!(out, "\n{}:", sym.name);
        }
        match asc_isa::Instruction::decode(&text.data[off..off + asc_isa::INSTR_LEN]) {
            Ok(i) => {
                let marker = if i.op == asc_isa::Opcode::Syscall {
                    "  <== syscall"
                } else {
                    ""
                };
                let _ = writeln!(out, "  {addr:#08x}: {i}{marker}");
            }
            Err(_) => {
                let bytes = &text.data[off..off + asc_isa::INSTR_LEN];
                let _ = writeln!(out, "  {addr:#08x}: <not valid code: {bytes:02x?}>");
            }
        }
        off += asc_isa::INSTR_LEN;
    }
    out
}
