//! Constant propagation / reaching definitions over the interprocedural
//! CFG.
//!
//! This is the analysis that determines system call arguments (§4.1): each
//! argument register at a syscall site is classified as a single known
//! constant, a small set of possible constants (Table 3's `mv` column), a
//! value that came back from a previous system call (the `fds` column), or
//! unknown. Values flow along CFG edges — including call and return edges,
//! context-insensitively — so constants reach syscall stubs from their
//! callers even before inlining.

use std::collections::BTreeMap;

use asc_isa::{Opcode, Reg};

use crate::cfg::{Cfg, EdgeKind};
use crate::ir::{IrItem, Unit};

/// Maximum distinct constants tracked before giving up to [`Value::Unknown`].
const MAX_CONSTS: usize = 4;

/// The abstract value of a register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// No definition reaches here yet (lattice top).
    Undefined,
    /// Exactly this constant.
    Const(u32),
    /// Exactly this constant, and it is an *address* (it originates from a
    /// relocated immediate). The distinction matters to the installer:
    /// address constants must be remapped when the rewriter moves
    /// sections, plain numbers must not.
    Addr(u32),
    /// One of a small set of constants (multi-value, §5's `mv` statistic).
    Consts(Vec<u32>),
    /// The return value of some earlier system call (candidate file
    /// descriptor for capability tracking).
    SyscallRet,
    /// Statically unknown (lattice bottom).
    Unknown,
}

impl Value {
    /// Lattice join.
    pub fn join(&self, other: &Value) -> Value {
        use Value::*;
        match (self, other) {
            (Undefined, x) | (x, Undefined) => x.clone(),
            (Unknown, _) | (_, Unknown) => Unknown,
            (Addr(a), Addr(b)) if a == b => Addr(*a),
            // Joining distinct addresses (or an address with a number)
            // cannot be represented remappably.
            (Addr(_), _) | (_, Addr(_)) => Unknown,
            (Const(a), Const(b)) if a == b => Const(*a),
            (Const(a), Const(b)) => Consts(vec![*a.min(b), *a.max(b)]),
            (Consts(s), Const(c)) | (Const(c), Consts(s)) => {
                let mut s = s.clone();
                if !s.contains(c) {
                    s.push(*c);
                    s.sort_unstable();
                }
                if s.len() > MAX_CONSTS {
                    Unknown
                } else {
                    Consts(s)
                }
            }
            (Consts(a), Consts(b)) => {
                let mut s = a.clone();
                for c in b {
                    if !s.contains(c) {
                        s.push(*c);
                    }
                }
                s.sort_unstable();
                if s.len() > MAX_CONSTS {
                    Unknown
                } else {
                    Consts(s)
                }
            }
            (SyscallRet, SyscallRet) => SyscallRet,
            (SyscallRet, _) | (_, SyscallRet) => Unknown,
        }
    }

    /// The single constant (number or address), if exactly one.
    pub fn as_const(&self) -> Option<u32> {
        match self {
            Value::Const(c) | Value::Addr(c) => Some(*c),
            _ => None,
        }
    }

    /// Whether this is an address constant.
    pub fn is_addr(&self) -> bool {
        matches!(self, Value::Addr(_))
    }
}

/// Maximum abstract-stack depth tracked before poisoning.
const MAX_STACK: usize = 64;

/// The abstract machine state at a program point: the register file, the
/// expression stack (values moved by `push`/`pop` — the guest compiler
/// passes arguments this way), and the frame slots written through
/// `[fp±imm]` (where locals live).
///
/// Frame tracking assumes scalar frame slots are only accessed via
/// fp-relative addressing — true for compiler-generated code, where the
/// address of a scalar local is never taken. Byte stores through fp
/// invalidate overlapping slots; stores through computed pointers are
/// assumed not to alias scalar slots (a program violating that is
/// self-corrupting, and a mis-predicted constant can only make its own
/// policy stricter than its actual behaviour).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Env {
    regs: [Value; Reg::COUNT],
    stack: Vec<Value>,
    /// False once the stack model lost sync (unbalanced paths, overflow).
    stack_ok: bool,
    frame: BTreeMap<i32, Value>,
    /// False while the env is still lattice-top (no path has reached it):
    /// the first join must copy the incoming env wholesale, or the empty
    /// top stack/frame would wrongly meet real ones.
    seen: bool,
}

impl Env {
    fn top() -> Env {
        Env {
            regs: std::array::from_fn(|_| Value::Undefined),
            stack: Vec::new(),
            stack_ok: true,
            frame: BTreeMap::new(),
            seen: false,
        }
    }

    fn bottom() -> Env {
        Env {
            regs: std::array::from_fn(|_| Value::Unknown),
            stack: Vec::new(),
            stack_ok: false,
            frame: BTreeMap::new(),
            seen: true,
        }
    }

    /// Entry state: registers unknown, but the stack model is live.
    fn entry() -> Env {
        Env {
            stack_ok: true,
            ..Env::bottom()
        }
    }

    /// The value of a register.
    pub fn reg(&self, r: Reg) -> Value {
        self.regs[r.index()].clone()
    }

    /// Whether the expression-stack model is still in sync (diagnostics).
    pub fn stack_in_sync(&self) -> bool {
        self.stack_ok
    }

    /// The tracked value of frame slot `[fp + off]`, if any.
    pub fn frame_slot(&self, off: i32) -> Value {
        self.frame.get(&off).cloned().unwrap_or(Value::Unknown)
    }

    fn set(&mut self, r: Reg, v: Value) {
        self.regs[r.index()] = v;
    }

    fn poison_stack(&mut self) {
        self.stack.clear();
        self.stack_ok = false;
    }

    fn join_with(&mut self, other: &Env) -> bool {
        if !self.seen {
            *self = other.clone();
            self.seen = true;
            return true;
        }
        let mut changed = false;
        for i in 0..Reg::COUNT {
            let joined = self.regs[i].join(&other.regs[i]);
            if joined != self.regs[i] {
                self.regs[i] = joined;
                changed = true;
            }
        }
        // Stack: pointwise join when both models agree on depth.
        if self.stack_ok {
            if !other.stack_ok || self.stack.len() != other.stack.len() {
                self.poison_stack();
                changed = true;
            } else {
                for (a, b) in self.stack.iter_mut().zip(&other.stack) {
                    let j = a.join(b);
                    if j != *a {
                        *a = j;
                        changed = true;
                    }
                }
            }
        }
        // Frame: keys absent in `other` mean Unknown there -> drop them.
        let keys: Vec<i32> = self.frame.keys().copied().collect();
        for k in keys {
            match other.frame.get(&k) {
                Some(v) => {
                    let j = self.frame[&k].join(v);
                    if matches!(j, Value::Unknown) {
                        self.frame.remove(&k);
                        changed = true;
                    } else if j != self.frame[&k] {
                        self.frame.insert(k, j);
                        changed = true;
                    }
                }
                None => {
                    self.frame.remove(&k);
                    changed = true;
                }
            }
        }
        changed
    }

    /// The env a callee sees across a call edge: registers flow, but the
    /// callee has its own frame and an empty expression stack.
    fn for_call_edge(&self) -> Env {
        Env {
            regs: self.regs.clone(),
            stack: Vec::new(),
            stack_ok: true,
            frame: BTreeMap::new(),
            seen: true,
        }
    }

    /// The env after "some callee ran and returned" (call-summary edge):
    /// caller-saved registers are clobbered, the frame and expression
    /// stack survive (callees cannot address the caller's frame).
    fn for_call_summary(&self) -> Env {
        let mut out = self.clone();
        for r in 0..=12u8 {
            out.set(Reg::new(r), Value::Unknown);
        }
        out.set(Reg::LR, Value::Unknown);
        out
    }
}

fn eval_binop(op: Opcode, a: u32, b: u32) -> u32 {
    match op {
        Opcode::Add | Opcode::Addi => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul | Opcode::Muli => a.wrapping_mul(b),
        Opcode::Divu => a.checked_div(b).unwrap_or(0),
        Opcode::Remu => a.checked_rem(b).unwrap_or(0),
        Opcode::And | Opcode::Andi => a & b,
        Opcode::Or | Opcode::Ori => a | b,
        Opcode::Xor | Opcode::Xori => a ^ b,
        Opcode::Shl | Opcode::Shli => a.wrapping_shl(b & 31),
        Opcode::Shr | Opcode::Shri => a.wrapping_shr(b & 31),
        _ => unreachable!("not a binop"),
    }
}

/// Applies one instruction's transfer function to `env`.
fn transfer(item: &IrItem, env: &mut Env) {
    use Opcode::*;
    let IrItem::Instr(ins) = item else {
        // Opaque region: clobber everything.
        *env = Env::bottom();
        return;
    };
    let i = &ins.instr;
    match i.op {
        Nop | Halt | Jmp | Jr | Beq | Bne | Blt | Bge | Bltu | Bgeu | Ret => {}
        Movi => env.set(
            i.rd,
            if ins.imm_is_addr {
                Value::Addr(i.imm)
            } else {
                Value::Const(i.imm)
            },
        ),
        Mov => {
            if i.rd == Reg::FP {
                // `mov fp, sp`: a new frame begins (function prologue).
                env.frame.clear();
            }
            if i.rd == Reg::SP {
                // `mov sp, fp`: the stack is rewound past our model
                // (function epilogue).
                env.poison_stack();
            }
            let v = env.reg(i.rs1);
            env.set(i.rd, v);
        }
        Add | Sub | Mul | Divu | Remu | And | Or | Xor | Shl | Shr => {
            let (lhs, rhs) = (env.reg(i.rs1), env.reg(i.rs2));
            let v = match (lhs.as_const(), rhs.as_const()) {
                (Some(a), Some(b)) => {
                    let r = eval_binop(i.op, a, b);
                    // Address arithmetic keeps address-ness: addr ± number
                    // is an address; addr - addr is a number.
                    match (i.op, lhs.is_addr(), rhs.is_addr()) {
                        (Add, true, false) | (Add, false, true) | (Sub, true, false) => {
                            Value::Addr(r)
                        }
                        (_, false, false) => Value::Const(r),
                        (Sub, true, true) => Value::Const(r),
                        _ => Value::Unknown,
                    }
                }
                _ => Value::Unknown,
            };
            env.set(i.rd, v);
        }
        Addi | Andi | Ori | Xori | Shli | Shri | Muli => {
            let lhs = env.reg(i.rs1);
            let v = match lhs.as_const() {
                Some(a) => {
                    let r = eval_binop(i.op, a, i.imm);
                    match (i.op, lhs.is_addr()) {
                        (Addi, true) => Value::Addr(r),
                        (_, false) => Value::Const(r),
                        _ => Value::Unknown,
                    }
                }
                None => Value::Unknown,
            };
            env.set(i.rd, v);
        }
        Ldw => {
            let v = if i.rs1 == Reg::FP {
                env.frame_slot(i.simm())
            } else {
                Value::Unknown
            };
            env.set(i.rd, v);
        }
        Ldb => env.set(i.rd, Value::Unknown),
        Stw => {
            if i.rs1 == Reg::FP {
                let v = env.reg(i.rs2);
                if matches!(v, Value::Unknown | Value::Undefined) {
                    env.frame.remove(&i.simm());
                } else {
                    env.frame.insert(i.simm(), v);
                }
            }
        }
        Stb => {
            if i.rs1 == Reg::FP {
                // A byte store invalidates any word slot it overlaps.
                let k = i.simm();
                let stale: Vec<i32> = env
                    .frame
                    .keys()
                    .copied()
                    .filter(|&s| s <= k && k < s + 4)
                    .collect();
                for s in stale {
                    env.frame.remove(&s);
                }
            }
        }
        Push => {
            if env.stack_ok {
                let v = env.reg(i.rs1);
                env.stack.push(v);
                if env.stack.len() > MAX_STACK {
                    env.poison_stack();
                }
            }
        }
        Pop => {
            let v = if env.stack_ok {
                env.stack.pop().unwrap_or(Value::Unknown)
            } else {
                Value::Unknown
            };
            env.set(i.rd, v);
        }
        Call | Callr => {
            // Register/frame effects are modelled by the call-summary and
            // call edges in `propagate`, not here.
        }
        Syscall => {
            // The kernel writes the return value into R0; all other
            // registers are preserved by the trap handler.
            env.set(Reg::R0, Value::SyscallRet);
        }
    }
}

/// The computed environments: one per item, representing the state
/// *before* the item executes.
#[derive(Debug)]
pub struct ConstMap {
    envs: Vec<Env>,
}

impl ConstMap {
    /// Environment before item `idx`.
    pub fn at(&self, idx: usize) -> &Env {
        &self.envs[idx]
    }
}

/// Runs the fixpoint over the CFG and returns per-item environments.
pub fn propagate(unit: &Unit, cfg: &Cfg) -> ConstMap {
    let nblocks = cfg.blocks().len();
    let mut block_in: Vec<Env> = vec![Env::top(); nblocks + 1];
    let mut block_out: Vec<Env> = vec![Env::top(); nblocks + 1];

    // Entry block: registers hold loader values (unknown) but the stack
    // model starts live.
    if nblocks > 0 {
        block_in[1] = Env::entry();
    }

    let mut worklist: Vec<u32> = (1..=nblocks as u32).collect();
    while let Some(bid) = worklist.pop() {
        // Never evaluate a block whose in-state no path has reached yet:
        // a transfer over lattice-top would fabricate state (e.g. a wrong
        // stack depth) that poisons successors permanently.
        if bid != 1 && !block_in[bid as usize].seen {
            continue;
        }
        let block = cfg.block(bid).expect("valid id");
        let mut env = block_in[bid as usize].clone();
        for idx in block.start..block.end {
            transfer(&unit.items[idx], &mut env);
        }
        if env != block_out[bid as usize] {
            block_out[bid as usize] = env.clone();
            for (kind, succ) in cfg.succ_edges(bid) {
                let edge_env = match kind {
                    EdgeKind::Flow => env.clone(),
                    EdgeKind::Call => env.for_call_edge(),
                    EdgeKind::CallSummary => env.for_call_summary(),
                    // Return edges are replaced by call-summary edges in
                    // this analysis: context-insensitive return flow
                    // would smear one callee's exit state over every
                    // caller's frame model.
                    EdgeKind::Return => continue,
                };
                if block_in[succ as usize].join_with(&edge_env) && !worklist.contains(&succ) {
                    worklist.push(succ);
                }
            }
        }
    }

    // Final pass: record the env before every item.
    let mut envs = vec![Env::top(); unit.items.len()];
    for block in cfg.blocks() {
        let mut env = block_in[block.id as usize].clone();
        for idx in block.start..block.end {
            envs[idx] = env.clone();
            transfer(&unit.items[idx], &mut env);
        }
    }
    ConstMap { envs }
}

/// Debug hook: runs the fixpoint and reports, for one block, every join
/// that changed its in-state (used by harness diagnostics; not part of the
/// stable API).
#[doc(hidden)]
pub fn propagate_traced(unit: &Unit, cfg: &Cfg, watch: u32) -> ConstMap {
    let nblocks = cfg.blocks().len();
    let mut block_in: Vec<Env> = vec![Env::top(); nblocks + 1];
    let mut block_out: Vec<Env> = vec![Env::top(); nblocks + 1];
    if nblocks > 0 {
        block_in[1] = Env::entry();
    }
    let mut worklist: Vec<u32> = (1..=nblocks as u32).collect();
    while let Some(bid) = worklist.pop() {
        // Never evaluate a block whose in-state no path has reached yet:
        // a transfer over lattice-top would fabricate state (e.g. a wrong
        // stack depth) that poisons successors permanently.
        if bid != 1 && !block_in[bid as usize].seen {
            continue;
        }
        let block = cfg.block(bid).expect("valid id");
        let mut env = block_in[bid as usize].clone();
        for idx in block.start..block.end {
            transfer(&unit.items[idx], &mut env);
        }
        if env != block_out[bid as usize] {
            block_out[bid as usize] = env.clone();
            for (kind, succ) in cfg.succ_edges(bid) {
                let edge_env = match kind {
                    EdgeKind::Flow => env.clone(),
                    EdgeKind::Call => env.for_call_edge(),
                    EdgeKind::CallSummary => env.for_call_summary(),
                    EdgeKind::Return => continue,
                };
                let before = block_in[succ as usize].stack_ok;
                if block_in[succ as usize].join_with(&edge_env) && !worklist.contains(&succ) {
                    worklist.push(succ);
                }
                if succ == watch && before && !block_in[succ as usize].stack_ok {
                    eprintln!(
                        "JOIN poisoned in({succ}) from block {bid} kind {kind:?}: \
                         incoming ok={} len={} existing len was tracked",
                        edge_env.stack_ok,
                        edge_env.stack.len(),
                    );
                }
            }
        }
    }
    let mut envs = vec![Env::top(); unit.items.len()];
    for block in cfg.blocks() {
        let mut env = block_in[block.id as usize].clone();
        for idx in block.start..block.end {
            envs[idx] = env.clone();
            transfer(&unit.items[idx], &mut env);
        }
    }
    ConstMap { envs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_asm::assemble;

    fn analyze(src: &str) -> (Unit, Cfg, ConstMap) {
        let unit = Unit::lift(&assemble(src).unwrap()).unwrap();
        let cfg = Cfg::build(&unit);
        let consts = propagate(&unit, &cfg);
        (unit, cfg, consts)
    }

    fn syscall_env(unit: &Unit, consts: &ConstMap, nth: usize) -> Env {
        let idx = unit
            .items
            .iter()
            .enumerate()
            .filter(|(_, it)| matches!(it, IrItem::Instr(i) if i.instr.op == Opcode::Syscall))
            .map(|(i, _)| i)
            .nth(nth)
            .expect("syscall exists");
        consts.at(idx).clone()
    }

    #[test]
    fn straight_line_constants() {
        let (unit, _, consts) = analyze(
            "
            .text
        main:
            movi r0, 5
            movi r1, 0x2000
            movi r2, 3
            addi r2, r2, 2
            syscall
        ",
        );
        let env = syscall_env(&unit, &consts, 0);
        assert_eq!(env.reg(Reg::R0), Value::Const(5));
        assert_eq!(env.reg(Reg::R1), Value::Const(0x2000));
        assert_eq!(env.reg(Reg::R2), Value::Const(5));
    }

    #[test]
    fn branch_join_produces_multi_value() {
        let (unit, _, consts) = analyze(
            "
            .text
        main:
            beq r5, r6, other
            movi r2, 1
            jmp call
        other:
            movi r2, 2
        call:
            movi r0, 5
            syscall
        ",
        );
        let env = syscall_env(&unit, &consts, 0);
        assert_eq!(env.reg(Reg::R2), Value::Consts(vec![1, 2]));
        assert_eq!(env.reg(Reg::R0), Value::Const(5));
    }

    #[test]
    fn too_many_constants_degrade_to_unknown() {
        let (unit, _, consts) = analyze(
            "
            .text
        main:
            beq r5, r6, a
            movi r2, 1
            jmp done
        a:
            beq r5, r7, b
            movi r2, 2
            jmp done
        b:
            beq r5, r8, c
            movi r2, 3
            jmp done
        c:
            beq r5, r9, d
            movi r2, 4
            jmp done
        d:
            movi r2, 5
        done:
            movi r0, 5
            syscall
        ",
        );
        let env = syscall_env(&unit, &consts, 0);
        assert_eq!(env.reg(Reg::R2), Value::Unknown);
    }

    #[test]
    fn syscall_return_tracked_for_fd_flow() {
        let (unit, _, consts) = analyze(
            "
            .text
        main:
            movi r0, 5          ; open
            movi r1, 0x2000
            syscall
            mov r4, r0          ; fd
            movi r0, 3          ; read
            mov r1, r4
            movi r2, 0x3000
            movi r3, 64
            syscall
            halt
        ",
        );
        let env = syscall_env(&unit, &consts, 1);
        assert_eq!(
            env.reg(Reg::R1),
            Value::SyscallRet,
            "fd arg traced to open return"
        );
        assert_eq!(env.reg(Reg::R0), Value::Const(3));
        assert_eq!(env.reg(Reg::R3), Value::Const(64));
    }

    #[test]
    fn constants_flow_into_callees() {
        // Pre-inlining, the stub sees its caller's constant arguments via
        // the interprocedural edges.
        let (unit, _, consts) = analyze(
            "
            .text
        main:
            movi r1, 42
            call stub
            halt
        stub:
            movi r0, 20
            syscall
            ret
        ",
        );
        let env = syscall_env(&unit, &consts, 0);
        assert_eq!(env.reg(Reg::R1), Value::Const(42));
    }

    #[test]
    fn two_callers_join_arguments() {
        let (unit, _, consts) = analyze(
            "
            .text
        main:
            movi r1, 1
            call stub
            movi r1, 2
            call stub
            halt
        stub:
            movi r0, 20
            syscall
            ret
        ",
        );
        let env = syscall_env(&unit, &consts, 0);
        assert_eq!(env.reg(Reg::R1), Value::Consts(vec![1, 2]));
    }

    #[test]
    fn loads_are_unknown() {
        let (unit, _, consts) = analyze(
            "
            .text
        main:
            movi r2, 0x2000
            ldw r1, [r2]
            movi r0, 4
            syscall
        ",
        );
        let env = syscall_env(&unit, &consts, 0);
        assert_eq!(env.reg(Reg::R1), Value::Unknown);
    }

    #[test]
    fn join_laws() {
        use Value::*;
        assert_eq!(Const(1).join(&Const(1)), Const(1));
        assert_eq!(Const(2).join(&Const(1)), Consts(vec![1, 2]));
        assert_eq!(Consts(vec![1, 2]).join(&Const(3)), Consts(vec![1, 2, 3]));
        assert_eq!(SyscallRet.join(&SyscallRet), SyscallRet);
        assert_eq!(SyscallRet.join(&Const(1)), Unknown);
        assert_eq!(Undefined.join(&Const(9)), Const(9));
        assert_eq!(Unknown.join(&Const(9)), Unknown);
        // Commutativity on a few samples.
        let samples = [
            Undefined,
            Const(1),
            Const(2),
            Consts(vec![1, 2]),
            SyscallRet,
            Unknown,
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(a.join(b), b.join(a), "{a:?} vs {b:?}");
            }
        }
    }
}
