//! Edge cases of the constant-propagation model: frame-slot tracking,
//! byte-store invalidation, stack poisoning on unbalanced paths, and
//! address-constant propagation.

use asc_analysis::dataflow::Value;
use asc_analysis::{ir::Unit, ProgramAnalysis};
use asc_asm::assemble;

fn analyze(src: &str) -> ProgramAnalysis {
    ProgramAnalysis::run(Unit::lift(&assemble(src).unwrap()).unwrap())
}

fn first_syscall_arg(analysis: &ProgramAnalysis, n: usize) -> Value {
    analysis.syscall_sites()[0].args[n].clone()
}

#[test]
fn frame_slot_roundtrip() {
    let a = analyze(
        "
        .text
    main:
        push fp
        mov fp, sp
        addi sp, sp, -8
        movi r2, 1234
        stw [fp-4], r2
        movi r2, 0
        ldw r1, [fp-4]
        movi r0, 4
        syscall
    ",
    );
    assert_eq!(first_syscall_arg(&a, 0), Value::Const(1234));
}

#[test]
fn byte_store_invalidates_overlapping_slot() {
    let a = analyze(
        "
        .text
    main:
        push fp
        mov fp, sp
        addi sp, sp, -8
        movi r2, 1234
        stw [fp-4], r2
        movi r3, 9
        stb [fp-2], r3        ; clobbers a byte of the slot
        ldw r1, [fp-4]
        movi r0, 4
        syscall
    ",
    );
    assert_eq!(first_syscall_arg(&a, 0), Value::Unknown);
}

#[test]
fn adjacent_byte_store_does_not_invalidate() {
    let a = analyze(
        "
        .text
    main:
        push fp
        mov fp, sp
        addi sp, sp, -16
        movi r2, 1234
        stw [fp-4], r2
        movi r3, 9
        stb [fp-8], r3        ; different slot entirely
        ldw r1, [fp-4]
        movi r0, 4
        syscall
    ",
    );
    assert_eq!(first_syscall_arg(&a, 0), Value::Const(1234));
}

#[test]
fn pointer_store_does_not_clobber_frame_model() {
    // Documented assumption: scalar slots are only accessed fp-relative.
    let a = analyze(
        "
        .text
    main:
        push fp
        mov fp, sp
        addi sp, sp, -8
        movi r2, 77
        stw [fp-4], r2
        movi r3, 0x600000
        stw [r3], r2          ; store through a computed pointer
        ldw r1, [fp-4]
        movi r0, 4
        syscall
    ",
    );
    assert_eq!(first_syscall_arg(&a, 0), Value::Const(77));
}

#[test]
fn unbalanced_join_poisons_stack() {
    // One path pushes, the other does not; the pop after the join must
    // not claim a constant.
    let a = analyze(
        "
        .text
    main:
        movi r2, 5
        beq r3, r4, .skip
        push r2
        jmp .join
    .skip:
        push r2
        push r2
        pop r12
        jmp .join2
    .join:
    .join2:
        pop r1
        movi r0, 4
        syscall
    ",
    );
    // Depths differ at the join (1 vs 1 after the skip-path pop... the
    // skip path pushes twice and pops once -> depth 1; the other path
    // depth 1; equal depths, both hold Const(5)).
    assert_eq!(first_syscall_arg(&a, 0), Value::Const(5));

    let b = analyze(
        "
        .text
    main:
        movi r2, 5
        movi r5, 6
        beq r3, r4, .skip
        push r2
        jmp .join
    .skip:
        push r2
        push r5
    .join:
        pop r1
        movi r0, 4
        syscall
    ",
    );
    // Genuinely mismatched depths: the model must refuse to guess.
    assert_eq!(first_syscall_arg(&b, 0), Value::Unknown);
}

#[test]
fn join_same_depth_different_values_is_multivalue() {
    let a = analyze(
        "
        .text
    main:
        beq r3, r4, .b
        movi r2, 1
        push r2
        jmp .join
    .b:
        movi r2, 2
        push r2
    .join:
        pop r1
        movi r0, 4
        syscall
    ",
    );
    assert_eq!(first_syscall_arg(&a, 0), Value::Consts(vec![1, 2]));
}

#[test]
fn address_constants_distinguished_from_numbers() {
    let a = analyze(
        "
        .text
    main:
        movi r1, table        ; relocated -> address
        movi r2, 8192         ; same numeric value possible, but a number
        addi r1, r1, 4        ; address arithmetic keeps addr-ness
        movi r0, 4
        syscall
        halt
        .data
    table: .space 16
    ",
    );
    let site = &a.syscall_sites()[0];
    match &site.args[0] {
        Value::Addr(v) => {
            let table = 0x2000; // .data follows the one-page .text
            assert_eq!(*v, table + 4);
        }
        other => panic!("expected Addr, got {other:?}"),
    }
    assert_eq!(site.args[1], Value::Const(8192));
}

#[test]
fn epilogue_poisons_stack_model() {
    // After `mov sp, fp` the expression stack is meaningless.
    let a = analyze(
        "
        .text
    main:
        push fp
        mov fp, sp
        movi r2, 3
        push r2
        mov sp, fp
        pop r1                ; pops the saved fp, not the 3
        movi r0, 4
        syscall
    ",
    );
    assert_eq!(first_syscall_arg(&a, 0), Value::Unknown);
}

#[test]
fn raw_regions_are_reported_and_unreachable_ones_add_no_noise() {
    let binary = assemble(
        "
        .text
    main:
        movi r1, 7
        jmp .after
    island:
        .word 0xffffffff
        .word 0xffffffff
    .after:
        movi r0, 4
        syscall
        movi r9, main         ; a label reference keeps the unit relocatable
    ",
    )
    .unwrap();
    let a = ProgramAnalysis::run(Unit::lift(&binary).unwrap());
    // The island is skipped by the jmp and unreachable, so it contributes
    // no state to the join at .after — the constant survives — but the
    // administrator still gets the PLTO-style report.
    assert_eq!(a.syscall_sites()[0].args[0], Value::Const(7));
    assert!(a
        .warnings
        .iter()
        .any(|w| w.contains("could not disassemble")));
}

#[test]
fn syscall_ret_survives_frame_storage() {
    let a = analyze(
        "
        .text
    main:
        push fp
        mov fp, sp
        addi sp, sp, -8
        movi r0, 5
        syscall               ; open
        stw [fp-4], r0
        ldw r1, [fp-4]
        movi r0, 3
        syscall               ; read(fd, ...)
    ",
    );
    let read_site = &a.syscall_sites()[1];
    assert_eq!(read_site.args[0], Value::SyscallRet);
}
