//! Unit coverage for the small shared harness helpers: the cycle→seconds
//! conversion every table prints, and the paper's Table 6 reference
//! overheads (exact values, and a clean `None` on unknown names).

use asc_bench::{paper_overhead, sim_seconds, CLOCK_HZ};

#[test]
fn sim_seconds_is_exact_at_the_100mhz_clock() {
    assert_eq!(CLOCK_HZ, 100_000_000.0);
    assert_eq!(sim_seconds(0), 0.0);
    assert_eq!(sim_seconds(100_000_000), 1.0);
    assert_eq!(sim_seconds(50_000_000), 0.5);
    assert_eq!(sim_seconds(1), 1e-8);
    // 259.66 simulated seconds — the paper's Andrew original runtime.
    assert_eq!(sim_seconds(25_966_000_000), 259.66);
}

#[test]
fn paper_overheads_match_table_6_exactly() {
    let table6 = [
        ("gzip-spec", 1.41),
        ("crafty", 1.40),
        ("mcf", 0.73),
        ("vpr", 1.16),
        ("twolf", 1.70),
        ("gcc", 1.39),
        ("vortex", 0.84),
        ("pyramid", 7.92),
        ("gzip", 1.06),
    ];
    for (name, pct) in table6 {
        assert_eq!(paper_overhead(name), Some(pct), "{name}");
    }
}

#[test]
fn unknown_program_has_no_paper_overhead() {
    assert_eq!(paper_overhead("no-such-program"), None);
    assert_eq!(paper_overhead(""), None);
    // Programs the suite runs but the paper's Table 6 does not list.
    assert_eq!(paper_overhead("andrew"), None);
    assert_eq!(paper_overhead("victim"), None);
}

#[test]
fn server_json_fnv_digest_round_trips_all_64_bits() {
    // The interleaving digest is the determinism witness; squeezing it
    // through an f64 (the old encoding) silently merges digests above
    // 2^53. The JSON must carry the same zero-padded hex string the
    // human table prints, and it must survive a parse round-trip with
    // every bit set.
    use asc_bench::server::{server_to_value, ServerConfig, ServerMode, ServerRun};
    use asc_core::json::Value;

    let run = ServerRun {
        mode: ServerMode::Warm,
        config: ServerConfig::default(),
        rows: Vec::new(),
        aggregate: Default::default(),
        clock: 0,
        slices: 0,
        interleaving_fnv: u64::MAX,
        merged_metrics: asc_metrics::Snapshot::default(),
    };
    let text = server_to_value(&run).to_pretty();
    let parsed = Value::parse(&text).expect("server JSON parses");
    let Value::Object(fields) = parsed else {
        panic!("server JSON is an object");
    };
    let digest = fields
        .iter()
        .find(|(k, _)| k == "interleaving_fnv")
        .map(|(_, v)| v)
        .expect("digest field present");
    assert_eq!(
        digest,
        &Value::Str("0xffffffffffffffff".into()),
        "all 64 bits survive the JSON round-trip"
    );
}
