//! Byte-identity guard for the paper tables: with no trace sink attached
//! (the default for every table binary), the flight recorder must not
//! change a single byte of output relative to the checked-in goldens.
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! for t in table1 table2 table3 table4 table6 ablation andrew server tiers audit coverage; do
//!     cargo run --release -p asc-bench --bin $t > crates/bench/golden/$t.txt
//! done
//! ```

use std::process::Command;

fn check(bin: &str, golden: &str) {
    let out = Command::new(bin).output().expect("table binary runs");
    assert!(
        out.status.success(),
        "{golden}: exit {:?}, stderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let path = format!("{}/golden/{golden}", env!("CARGO_MANIFEST_DIR"));
    let want = std::fs::read(&path).expect("golden checked in");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&want),
        "{golden} drifted from its golden — if intentional, regenerate it \
         (see this file's header)"
    );
}

#[test]
fn table1_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_table1"), "table1.txt");
}

#[test]
fn table2_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_table2"), "table2.txt");
}

#[test]
fn table3_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_table3"), "table3.txt");
}

#[test]
fn table4_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_table4"), "table4.txt");
}

#[test]
fn table6_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_table6"), "table6.txt");
}

#[test]
fn ablation_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_ablation"), "ablation.txt");
}

#[test]
#[ignore = "multi-iteration Andrew benchmark takes ~40s; run with --ignored"]
fn andrew_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_andrew"), "andrew.txt");
}

#[test]
fn server_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_server"), "server.txt");
}

#[test]
fn tiers_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_tiers"), "tiers.txt");
}

#[test]
fn coverage_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_coverage"), "coverage.txt");
}

#[test]
fn audit_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_audit"), "audit.txt");
}

#[test]
fn health_is_byte_identical() {
    check(env!("CARGO_BIN_EXE_health"), "health.txt");
}
