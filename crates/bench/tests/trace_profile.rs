//! Flight-recorder acceptance tests: the profile's attribution must agree
//! with the kernel's own counters *exactly*, and attaching any sink must
//! not change the cycles a run is charged.

use asc_bench::{bench_key, build_and_install, profile_workload};
use asc_kernel::{FileSystem, Kernel, KernelOptions, KernelStats, Personality};
use asc_trace::{NullSink, RingSink, TraceSink};
use asc_vm::Machine;
use asc_workloads::{program, RUN_BUDGET};

#[test]
fn profile_totals_match_kernel_stats_exactly() {
    let run = profile_workload("calc");
    let t = run.profile.totals();
    let s = &run.stats;
    assert_eq!(t.calls, s.verified, "one span per verified call");
    assert_eq!(t.warm_calls, s.cache_hits, "warm split mirrors the cache");
    assert_eq!(t.kills, 0, "clean workload");
    assert_eq!(
        t.aes_blocks, s.verify_aes_blocks,
        "per-check AES attribution partitions the measured total"
    );
    assert_eq!(
        t.verify_cycles, s.verify_cycles,
        "per-span cycles sum to the charged total"
    );
    // Stronger than the totals: within every call site, the fixed cost
    // plus the per-check costs reconstruct the charged cycles exactly —
    // the cost model is linear in (AES blocks, bytes) and the meter's
    // snapshots partition both.
    for row in run.profile.rows() {
        let check_cycles: u64 = row.checks.iter().map(|c| c.cycles).sum();
        assert_eq!(
            row.verify_cycles,
            row.fixed_cycles + check_cycles,
            "site {:#x} ({})",
            row.site,
            Personality::Linux.name_of(row.nr)
        );
        let check_blocks: u64 = row.checks.iter().map(|c| c.aes_blocks).sum();
        assert_eq!(row.aes_blocks, check_blocks, "site {:#x}", row.site);
    }
}

fn run_calc(sink: Option<Box<dyn TraceSink>>) -> (u64, KernelStats) {
    let spec = program("calc").expect("registered");
    let (_, auth, _) = build_and_install(spec, Personality::Linux, 9);
    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let mut kernel = Kernel::with_fs(
        KernelOptions::enforcing(Personality::Linux).with_verify_cache(),
        fs,
    );
    kernel.set_key(bench_key());
    kernel.set_stdin(spec.stdin.to_vec());
    kernel.set_brk(auth.highest_addr());
    if let Some(sink) = sink {
        kernel.set_trace_sink(sink);
    }
    let mut machine = Machine::load(&auth, kernel).expect("loads");
    let outcome = machine.run(RUN_BUDGET);
    assert!(outcome.is_success(), "{outcome:?}");
    let cycles = machine.cycles();
    (cycles, *machine.handler().stats())
}

#[test]
fn sinks_do_not_perturb_charged_cycles() {
    // The no-perturbation rule: recording observes costs, never incurs
    // them. Any sink (recording, bounded, or disabled) leaves both the
    // total cycle count and every kernel counter untouched.
    let (base_cycles, base_stats) = run_calc(None);
    let (ring_cycles, ring_stats) = run_calc(Some(Box::new(RingSink::new(64))));
    let (null_cycles, null_stats) = run_calc(Some(Box::new(NullSink)));
    assert_eq!(base_cycles, ring_cycles, "RingSink perturbed the run");
    assert_eq!(base_cycles, null_cycles, "NullSink perturbed the run");
    assert_eq!(base_stats.verify_cycles, ring_stats.verify_cycles);
    assert_eq!(base_stats.verify_aes_blocks, ring_stats.verify_aes_blocks);
    assert_eq!(base_stats.kernel_cycles, ring_stats.kernel_cycles);
    assert_eq!(base_stats.verify_cycles, null_stats.verify_cycles);
}

#[test]
fn ring_sink_bounds_kernel_event_stream() {
    let spec = program("calc").expect("registered");
    let (_, auth, _) = build_and_install(spec, Personality::Linux, 9);
    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let mut kernel = Kernel::with_fs(
        KernelOptions::enforcing(Personality::Linux).with_verify_cache(),
        fs,
    );
    kernel.set_key(bench_key());
    kernel.set_stdin(spec.stdin.to_vec());
    kernel.set_brk(auth.highest_addr());
    kernel.set_trace_sink(Box::new(RingSink::new(32)));
    let mut machine = Machine::load(&auth, kernel).expect("loads");
    assert!(machine.run(RUN_BUDGET).is_success());
    let mut kernel = machine.into_handler();
    let ring = kernel
        .take_trace_sink()
        .expect("sink attached")
        .into_any()
        .downcast::<RingSink>()
        .expect("ring sink");
    assert_eq!(ring.len(), 32, "ring holds exactly its capacity");
    assert!(
        ring.dropped_events() > 0,
        "a 94-call workload overflows 32 slots"
    );
    // Timestamps ride the virtual clock: events arrive in nondecreasing
    // cycle order even across the wraparound.
    let stamps: Vec<u64> = ring.events().map(|e| e.at_cycles).collect();
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "{stamps:?}");
}

#[test]
fn trace_json_matches_golden() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_trace"))
        .args(["--workload", "calc", "--json"])
        .output()
        .expect("trace binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let path = format!("{}/golden/trace_calc.json", env!("CARGO_MANIFEST_DIR"));
    let want = std::fs::read(&path).expect("golden checked in");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&want),
        "trace JSON drifted — if intentional, regenerate with \
         `cargo run --release -p asc-bench --bin trace -- --workload calc --json \
         > crates/bench/golden/trace_calc.json`"
    );
}
