//! End-to-end guard for the perf-trajectory harness: the `perf` bin must
//! sweep cleanly, emit a `BENCH_4.json` that passes the gate against the
//! checked-in baseline, round-trip through `asc_core::json`, and the gate
//! must demonstrably fail on an injected slowdown.
//!
//! Regenerate the baseline after an intentional perf change with:
//!
//! ```sh
//! cargo run --release -p asc-bench --bin perf -- \
//!     --out crates/bench/golden/perf_baseline.json
//! ```
//! (then reset `git_commit`/`git_dirty` to `"baseline"`/`false`).

use std::process::Command;

use asc_bench::perf::compare;
use asc_core::json::Value;

fn baseline_path() -> String {
    format!("{}/golden/perf_baseline.json", env!("CARGO_MANIFEST_DIR"))
}

/// One sweep, shared by every assertion below (the sweep is the expensive
/// part; everything else is JSON shuffling).
fn sweep_once() -> (Value, Value) {
    let out = std::env::temp_dir().join(format!("asc_perf_gate_{}.json", std::process::id()));
    let run = Command::new(env!("CARGO_BIN_EXE_perf"))
        .args([
            "--out",
            out.to_str().expect("temp path is UTF-8"),
            "--check",
            &baseline_path(),
        ])
        .output()
        .expect("perf binary runs");
    assert!(
        run.status.success(),
        "perf gate failed against the checked-in baseline:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&run.stdout),
        String::from_utf8_lossy(&run.stderr)
    );
    let report_text = std::fs::read_to_string(&out).expect("perf wrote its report");
    let _ = std::fs::remove_file(&out);
    let report = Value::parse(&report_text).expect("emitted BENCH_4.json parses");
    let baseline_text = std::fs::read_to_string(baseline_path()).expect("baseline checked in");
    let baseline = Value::parse(&baseline_text).expect("baseline parses");
    (report, baseline)
}

/// Scales every cycle total and quantile in `report` down by `factor`,
/// which makes the *other* report look that much slower to the gate.
fn scaled_down(report: &Value, factor: f64) -> Value {
    fn walk(v: &Value, factor: f64) -> Value {
        match v {
            Value::Object(fields) => Value::Object(
                fields
                    .iter()
                    .map(|(k, val)| {
                        let scaled = match (k.as_str(), val) {
                            (
                                "base_cycles" | "cold_cycles" | "warm_cycles" | "sum" | "p50"
                                | "p90" | "p99" | "max",
                                Value::Num(n),
                            ) => Value::Num((n * factor).floor()),
                            _ => walk(val, factor),
                        };
                        (k.clone(), scaled)
                    })
                    .collect(),
            ),
            Value::Array(items) => Value::Array(items.iter().map(|i| walk(i, factor)).collect()),
            other => other.clone(),
        }
    }
    walk(report, factor)
}

#[test]
fn perf_bin_passes_gate_and_detects_injected_slowdown() {
    let (report, baseline) = sweep_once();

    // The emitted report re-renders to the same value (schema round-trip).
    let reparsed = Value::parse(&report.to_pretty()).expect("re-render parses");
    assert_eq!(reparsed, report, "BENCH_4.json does not round-trip");

    // Library-level gate agrees with the bin: no regressions vs baseline.
    let clean = compare(&baseline, &report).expect("schemas match");
    assert_eq!(clean, Vec::<String>::new());

    // Injected slowdown: against a baseline 25% faster across the board,
    // the same report must trip the gate on every workload's totals.
    let fast_baseline = scaled_down(&baseline, 0.75);
    let regressions = compare(&fast_baseline, &report).expect("schemas match");
    let workloads = baseline
        .get("workloads")
        .and_then(Value::as_array)
        .expect("baseline has workloads")
        .len();
    assert!(
        regressions.len() >= workloads,
        "expected at least one regression per workload, got {regressions:?}"
    );
    assert!(
        regressions.iter().any(|r| r.contains("cold_cycles")),
        "{regressions:?}"
    );
}
