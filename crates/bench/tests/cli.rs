//! Shared CLI convention: every bench binary rejects an unknown flag
//! with exit code 2 and a `usage:` line on stderr, so a typo can never
//! be mistaken for a successful run (several CI jobs pipe these binaries
//! into `diff`, where a silently ignored flag would corrupt a golden).

use std::process::Command;

fn rejects_unknown_flag(bin: &str) {
    let out = Command::new(bin)
        .arg("--definitely-not-a-flag")
        .output()
        .expect("bench binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{bin}: expected exit 2 on an unknown flag, got {:?} (stderr: {stderr})",
        out.status
    );
    assert!(
        stderr.contains("unknown argument"),
        "{bin}: stderr names the offending flag: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{bin}: stderr carries a usage line: {stderr}"
    );
}

macro_rules! cli_tests {
    ($($name:ident => $env:literal),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                rejects_unknown_flag(env!($env));
            }
        )*
    };
}

cli_tests! {
    ablation_rejects_unknown_flags => "CARGO_BIN_EXE_ablation",
    andrew_rejects_unknown_flags => "CARGO_BIN_EXE_andrew",
    attacks_rejects_unknown_flags => "CARGO_BIN_EXE_attacks",
    audit_rejects_unknown_flags => "CARGO_BIN_EXE_audit",
    coverage_rejects_unknown_flags => "CARGO_BIN_EXE_coverage",
    faults_rejects_unknown_flags => "CARGO_BIN_EXE_faults",
    health_rejects_unknown_flags => "CARGO_BIN_EXE_health",
    perf_rejects_unknown_flags => "CARGO_BIN_EXE_perf",
    policy_dump_rejects_unknown_flags => "CARGO_BIN_EXE_policy_dump",
    server_rejects_unknown_flags => "CARGO_BIN_EXE_server",
    table1_rejects_unknown_flags => "CARGO_BIN_EXE_table1",
    table2_rejects_unknown_flags => "CARGO_BIN_EXE_table2",
    table3_rejects_unknown_flags => "CARGO_BIN_EXE_table3",
    table4_rejects_unknown_flags => "CARGO_BIN_EXE_table4",
    table6_rejects_unknown_flags => "CARGO_BIN_EXE_table6",
    tiers_rejects_unknown_flags => "CARGO_BIN_EXE_tiers",
    trace_rejects_unknown_flags => "CARGO_BIN_EXE_trace",
}
