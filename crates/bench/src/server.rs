//! The multi-process "server" throughput benchmark behind
//! `asc-bench --bin server`.
//!
//! The ROADMAP's north-star scenario is a server juggling many untrusted
//! processes. This harness builds it: M concurrent processes cycling over
//! the syscall-heavy policy workloads, time-sliced by the deterministic
//! [`Scheduler`] (seeded-random interleaving by default), each with its own
//! enforcing kernel, per-pid metrics registry
//! ([`KernelMetrics::for_pid`]), and a pid namespace inside one shared
//! [`asc_core::SharedVerifyCache`]. The report gives aggregate verified
//! calls per simulated second plus per-pid verify-cycle quantiles, and
//! feeds the `perf` trajectory (`BENCH_4.json`) via
//! [`crate::perf::measure_server`].
//!
//! Everything is a pure function of the seed: the table is golden-pinned
//! (`crates/bench/golden/server.txt`) and a fixed-seed run is diffed in CI.

use asc_core::json::Value;
use asc_kernel::{FileSystem, Kernel, KernelMetrics, KernelOptions, KernelStats, Personality};
use asc_metrics::Snapshot;
use asc_object::Binary;
use asc_sched::{Pid, ProcState, SchedConfig, SchedPolicy, Scheduler};
use asc_vm::Machine;
use asc_workloads::{program, ProgramSpec};

use crate::{bench_key, sim_seconds};

/// Default interleaving seed for the golden table and the CI smoke run.
pub const DEFAULT_SEED: u64 = 0x5EB5_EED1;

/// The syscall-heavy workloads the server processes cycle over (the
/// paper's policy workloads minus `screen`, whose interactive loop
/// dominates cycles without adding syscall pressure).
pub const SERVER_WORKLOADS: [&str; 3] = ["bison", "calc", "tar"];

/// Which kernel configuration the processes run under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMode {
    /// Unauthenticated binaries, plain kernels (throughput baseline).
    Base,
    /// Enforcing kernels, no verify cache (paper-faithful cost).
    Cold,
    /// Enforcing kernels with the shared pid-aware verify cache — the
    /// actual server scenario, and what the `server` bin reports.
    Warm,
}

impl ServerMode {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ServerMode::Base => "base",
            ServerMode::Cold => "cold",
            ServerMode::Warm => "warm",
        }
    }
}

/// Server benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Number of concurrent processes (cycling over [`SERVER_WORKLOADS`]).
    pub procs: usize,
    /// Interleaving seed (ignored under round-robin).
    pub seed: u64,
    /// Retired-instruction quantum per slice.
    pub slice_instrs: u64,
    /// Use round-robin instead of seeded-random interleaving.
    pub round_robin: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            procs: 4,
            seed: DEFAULT_SEED,
            slice_instrs: 10_000,
            round_robin: false,
        }
    }
}

/// One process's results.
#[derive(Clone, Debug)]
pub struct ServerRow {
    /// Process id (spawn order).
    pub pid: Pid,
    /// Workload the process ran.
    pub workload: String,
    /// Cycles the process consumed.
    pub cycles: u64,
    /// System calls trapped.
    pub syscalls: u64,
    /// Calls that went through ASC verification.
    pub verified: u64,
    /// Verifications served warm from this pid's cache namespace.
    pub cache_hits: u64,
    /// Per-call verify-cycle quantiles from this pid's own metrics
    /// registry (all paths merged; 0 in base mode).
    pub p50: u64,
    /// 90th percentile of per-call verify cycles.
    pub p90: u64,
    /// 99th percentile of per-call verify cycles.
    pub p99: u64,
}

/// One full multi-process run.
#[derive(Clone, Debug)]
pub struct ServerRun {
    /// Mode the processes ran under.
    pub mode: ServerMode,
    /// The configuration used.
    pub config: ServerConfig,
    /// Per-pid results, in pid order.
    pub rows: Vec<ServerRow>,
    /// Kernel stats summed over all processes.
    pub aggregate: KernelStats,
    /// Shared virtual clock: total cycles across all slices.
    pub clock: u64,
    /// Total slices scheduled.
    pub slices: u64,
    /// FNV-1a digest of the pid interleaving (determinism witness: same
    /// seed ⇒ same digest).
    pub interleaving_fnv: u64,
    /// Per-pid metrics snapshots merged into one (every entry carries a
    /// `pid` label, so nothing collides).
    pub merged_metrics: Snapshot,
}

impl ServerRun {
    /// Aggregate verified calls per simulated second on the shared clock.
    pub fn verified_per_sim_second(&self) -> f64 {
        let secs = sim_seconds(self.clock);
        if secs > 0.0 {
            self.aggregate.verified as f64 / secs
        } else {
            0.0
        }
    }
}

pub(crate) fn fnv64(pids: &[Pid]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for pid in pids {
        for byte in pid.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

pub(crate) fn server_specs() -> Vec<&'static ProgramSpec> {
    SERVER_WORKLOADS
        .iter()
        .map(|name| program(name).expect("server workload appears in the program registry"))
        .collect()
}

pub(crate) fn server_binaries(specs: &[&ProgramSpec], mode: ServerMode) -> Vec<Binary> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            if mode == ServerMode::Base {
                asc_workloads::build(spec, Personality::Linux)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name))
            } else {
                crate::build_and_install(spec, Personality::Linux, 40 + i as u16).1
            }
        })
        .collect()
}

/// Runs M concurrent processes under the scheduler and collects per-pid
/// and aggregate results. Fully deterministic for a given config.
pub fn run_server(config: &ServerConfig, mode: ServerMode) -> ServerRun {
    assert!(config.procs >= 1, "at least one process");
    let personality = Personality::Linux;
    let specs = server_specs();
    let binaries = server_binaries(&specs, mode);

    let policy = if config.round_robin {
        SchedPolicy::RoundRobin
    } else {
        SchedPolicy::SeededRandom(config.seed)
    };
    let sched_config = SchedConfig {
        policy,
        slice_instrs: config.slice_instrs,
        budget_cycles: asc_workloads::RUN_BUDGET,
        batch_depth: None,
    };
    let mut sched = if mode == ServerMode::Warm {
        Scheduler::with_shared_cache(sched_config)
    } else {
        Scheduler::new(sched_config)
    };

    for m in 0..config.procs {
        let i = m % specs.len();
        let spec = specs[i];
        let mut fs = FileSystem::new();
        (spec.setup_fs)(&mut fs);
        let opts = match mode {
            ServerMode::Base => KernelOptions::plain(personality),
            ServerMode::Cold => KernelOptions::enforcing(personality),
            ServerMode::Warm => KernelOptions::enforcing(personality).with_verify_cache(),
        };
        let mut kernel = Kernel::with_fs(opts, fs);
        if mode != ServerMode::Base {
            kernel.set_key(bench_key());
        }
        kernel.set_stdin(spec.stdin.to_vec());
        kernel.set_brk(binaries[i].highest_addr());
        let machine =
            Machine::load(&binaries[i], kernel).expect("workload binary fits in guest memory");
        let pid = sched.spawn(spec.name, machine);
        // Per-pid registry: every metric carries a pid label, so the
        // merged snapshot keeps the processes' distributions apart.
        sched
            .process_mut(pid)
            .kernel_mut()
            .set_metrics(Box::new(KernelMetrics::for_pid(pid)));
    }

    sched.run();

    let mut rows = Vec::new();
    let mut merged = Snapshot::default();
    for proc in sched.processes() {
        assert!(
            matches!(proc.state(), ProcState::Exited(_)),
            "pid {} ({}) did not exit cleanly: {:?} (alerts: {:?})",
            proc.pid(),
            proc.name(),
            proc.state(),
            proc.kernel().alerts(),
        );
        let stats = proc.stats();
        let snap = proc
            .kernel()
            .metrics()
            .expect("metrics were attached at spawn")
            .snapshot();
        let verify = snap.histogram_across_labels("asc_verify_cycles");
        rows.push(ServerRow {
            pid: proc.pid(),
            workload: proc.name().to_string(),
            cycles: proc.machine().cycles(),
            syscalls: stats.syscalls,
            verified: stats.verified,
            cache_hits: stats.cache_hits,
            p50: verify.quantile(0.50),
            p90: verify.quantile(0.90),
            p99: verify.quantile(0.99),
        });
        merged.merge(&snap);
    }
    ServerRun {
        mode,
        config: *config,
        rows,
        aggregate: sched.aggregate_stats(),
        clock: sched.clock(),
        slices: sched.interleaving().len() as u64,
        interleaving_fnv: fnv64(sched.interleaving()),
        merged_metrics: merged,
    }
}

/// Renders the human throughput table (the golden-pinned output of the
/// `server` bin).
pub fn render_server(run: &ServerRun) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let cfg = &run.config;
    let policy = if cfg.round_robin {
        "round-robin".to_string()
    } else {
        format!("seeded-random (seed {:#x})", cfg.seed)
    };
    let _ = writeln!(
        out,
        "Multi-process server throughput — {} processes, {} kernels, {} interleaving, slice {} instrs",
        cfg.procs,
        run.mode.label(),
        policy,
        cfg.slice_instrs,
    );
    let _ = writeln!(
        out,
        "{:>4} {:<10} {:>10} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "pid", "workload", "sim-s", "syscalls", "verified", "warm", "p50-vc", "p90-vc", "p99-vc"
    );
    for row in &run.rows {
        let _ = writeln!(
            out,
            "{:>4} {:<10} {:>10.4} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
            row.pid,
            row.workload,
            sim_seconds(row.cycles),
            row.syscalls,
            row.verified,
            row.cache_hits,
            row.p50,
            row.p90,
            row.p99,
        );
    }
    let _ = writeln!(
        out,
        "aggregate: {} verified calls in {:.4} sim-seconds -> {:.1} verified calls/sim-sec",
        run.aggregate.verified,
        sim_seconds(run.clock),
        run.verified_per_sim_second(),
    );
    let _ = writeln!(
        out,
        "schedule: {} slices, interleaving fnv64 {:#018x}",
        run.slices, run.interleaving_fnv,
    );
    out
}

/// Converts a run to a JSON value for the `--json` report mode.
pub fn server_to_value(run: &ServerRun) -> Value {
    let rows: Vec<Value> = run
        .rows
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("pid".into(), Value::Num(r.pid as f64)),
                ("workload".into(), Value::Str(r.workload.clone())),
                ("cycles".into(), Value::Num(r.cycles as f64)),
                ("syscalls".into(), Value::Num(r.syscalls as f64)),
                ("verified".into(), Value::Num(r.verified as f64)),
                ("cache_hits".into(), Value::Num(r.cache_hits as f64)),
                ("p50_verify_cycles".into(), Value::Num(r.p50 as f64)),
                ("p90_verify_cycles".into(), Value::Num(r.p90 as f64)),
                ("p99_verify_cycles".into(), Value::Num(r.p99 as f64)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("mode".into(), Value::Str(run.mode.label().into())),
        ("procs".into(), Value::Num(run.config.procs as f64)),
        ("seed".into(), Value::Num(run.config.seed as f64)),
        (
            "slice_instrs".into(),
            Value::Num(run.config.slice_instrs as f64),
        ),
        ("round_robin".into(), Value::Bool(run.config.round_robin)),
        ("clock_cycles".into(), Value::Num(run.clock as f64)),
        ("slices".into(), Value::Num(run.slices as f64)),
        // The determinism witness must survive JSON round-trips exactly;
        // Value::Num would squeeze the u64 through an f64 and silently
        // collide digests above 2^53. Emit the same zero-padded hex string
        // the human table prints.
        (
            "interleaving_fnv".into(),
            Value::Str(format!("{:#018x}", run.interleaving_fnv)),
        ),
        (
            "verified_total".into(),
            Value::Num(run.aggregate.verified as f64),
        ),
        (
            "verified_per_sim_second".into(),
            Value::Num(run.verified_per_sim_second()),
        ),
        ("processes".into(), Value::Array(rows)),
    ])
}
