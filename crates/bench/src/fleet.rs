//! The fleet-scale benchmark behind `asc-bench --bin server --fleet`.
//!
//! Where the `server` harness shows the paper's scenario at table scale
//! (a handful of processes), this one stresses the *fleet* regime:
//! N=1000+ processes with spawn/exit churn, a hot/cold workload mix, and
//! the two amortisation layers this repo adds for that regime —
//! pid-sharded verify-cache namespaces ([`asc_core::pid_shard`]) and the
//! kernel's batched trap path (`SchedConfig::batch_depth`). The report is
//! per-*shard* rather than per-pid (cardinality stays bounded as N
//! grows), and the amortisation claims are measured, not modeled:
//!
//! * shared-structure traffic via the cache family's shard probe
//!   counters ([`asc_core::SharedVerifyCache::probes`]),
//! * batch-window behaviour via [`asc_kernel::BatchStats`],
//! * AES key-schedule reuse via the fleet-wide `block_ops` meter on one
//!   [`asc_crypto::MacKey::shared_schedule`] family (every kernel holds a
//!   handle; fresh per-kernel keys would each burn a subkey derivation).
//!
//! Fleet throughput is reported on a *parallel* clock: the fleet's
//! simulated wall time is the maximum per-process cycle count (processes
//! on real hardware run on their own cores; the scheduler's serial
//! interleaving is a verification artifact, not a cost). Per-call work is
//! O(1) in fleet size, so aggregate verified-calls per fleet-second must
//! scale near-linearly in N — `measure_fleet` in the perf trajectory
//! asserts exactly that.
//!
//! Everything is a pure function of the seed; the default configuration's
//! table is golden-pinned (`crates/bench/golden/fleet.txt`) and diffed by
//! the `fleet-smoke` CI job.

use std::collections::BTreeMap;

use asc_core::json::Value;
use asc_core::pid_shard;
use asc_crypto::MacKey;
use asc_kernel::{
    BatchStats, FileSystem, Kernel, KernelMetrics, KernelOptions, KernelStats, Personality,
};
use asc_metrics::{Histogram, MetricValue, Snapshot};
use asc_object::Binary;
use asc_sched::{Pid, ProcState, SchedConfig, SchedPolicy, Scheduler};
use asc_vm::Machine;
use asc_workloads::ProgramSpec;

use crate::server::{fnv64, server_binaries, server_specs, ServerMode, DEFAULT_SEED};
use crate::{bench_key, sim_seconds};

/// Shard count the fleet's cache family and metric labels use (the
/// [`asc_core::SharedVerifyCache::new`] default).
pub const FLEET_SHARDS: usize = 64;

/// Fleet benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Initial number of concurrent processes.
    pub procs: usize,
    /// Interleaving seed.
    pub seed: u64,
    /// Retired-instruction quantum per slice.
    pub slice_instrs: u64,
    /// Kernel batch-window depth (`None` runs the unbatched trap path).
    pub batch_depth: Option<usize>,
    /// Churn: extra processes spawned, one per observed exit, until this
    /// many replacements have joined the fleet.
    pub churn_spawns: usize,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            procs: 64,
            seed: DEFAULT_SEED,
            slice_instrs: 10_000,
            batch_depth: Some(16),
            churn_spawns: 16,
        }
    }
}

/// One cache shard's aggregated results.
#[derive(Clone, Debug)]
pub struct FleetShardRow {
    /// Shard index ([`asc_core::pid_shard`] of each member pid).
    pub shard: usize,
    /// Processes whose pid hashed into this shard.
    pub procs: u64,
    /// Maximum per-process cycles in the shard (parallel-clock view).
    pub max_cycles: u64,
    /// System calls trapped across the shard's processes.
    pub syscalls: u64,
    /// Calls that went through ASC verification.
    pub verified: u64,
    /// Verifications served warm from the members' cache namespaces.
    pub cache_hits: u64,
    /// Shared-structure probes charged to this shard.
    pub probes: u64,
    /// Per-call verify-cycle quantiles from the shard-labeled registry
    /// (all paths merged; 0 in base mode).
    pub p50: u64,
    /// 90th percentile of per-call verify cycles.
    pub p90: u64,
    /// 99th percentile of per-call verify cycles.
    pub p99: u64,
}

/// One full fleet run.
#[derive(Clone, Debug)]
pub struct FleetRun {
    /// Mode the processes ran under.
    pub mode: ServerMode,
    /// The configuration used.
    pub config: FleetConfig,
    /// Per-shard results, occupied shards only, in shard order.
    pub rows: Vec<FleetShardRow>,
    /// Kernel stats summed over all processes.
    pub aggregate: KernelStats,
    /// Batch-path counters summed over all kernels.
    pub batch: BatchStats,
    /// Shared virtual clock: total cycles across all slices (serial view).
    pub clock: u64,
    /// Maximum per-process cycle count (parallel-clock fleet wall time).
    pub max_proc_cycles: u64,
    /// Total slices scheduled.
    pub slices: u64,
    /// FNV-1a digest of the pid interleaving (determinism witness).
    pub interleaving_fnv: u64,
    /// Processes spawned in total (initial + churn replacements).
    pub spawned: u64,
    /// Shared-cache probes across every shard (0 outside warm mode).
    pub shared_probes: u64,
    /// AES block operations through the fleet's one shared key schedule
    /// (0 in base mode, which installs no key).
    pub aes_block_ops: u64,
    /// Subkey-derivation block operations avoided by handing kernels
    /// [`MacKey::shared_schedule`] handles instead of fresh keys: one per
    /// spawn beyond the first.
    pub key_setups_saved: u64,
    /// Per-shard metrics snapshots merged into one (every entry carries a
    /// `shard` label, so cardinality is bounded by [`FLEET_SHARDS`]).
    pub merged_metrics: Snapshot,
}

impl FleetRun {
    /// Fleet wall time in simulated seconds on the parallel clock.
    pub fn fleet_sim_seconds(&self) -> f64 {
        sim_seconds(self.max_proc_cycles)
    }

    /// Aggregate verified calls per simulated second of fleet wall time.
    pub fn verified_per_fleet_second(&self) -> f64 {
        let secs = self.fleet_sim_seconds();
        if secs > 0.0 {
            self.aggregate.verified as f64 / secs
        } else {
            0.0
        }
    }

    /// Shared-cache probes per verified call (the amortisation the batch
    /// path buys; meaningful in warm mode only).
    pub fn probes_per_verified(&self) -> f64 {
        if self.aggregate.verified > 0 {
            self.shared_probes as f64 / self.aggregate.verified as f64
        } else {
            0.0
        }
    }
}

/// Hot pids (roughly a quarter of the fleet, picked by the same pid hash
/// the cache shards use) run the long syscall-heavy workload; cold pids
/// alternate between the two short ones.
fn workload_index(pid: Pid, specs: &[&ProgramSpec]) -> usize {
    let calc = specs
        .iter()
        .position(|s| s.name == "calc")
        .expect("calc is a server workload");
    if pid_shard(pid, 4) == 0 {
        calc
    } else {
        // The two non-calc workloads, alternating by pid.
        let others: Vec<usize> = (0..specs.len()).filter(|&i| i != calc).collect();
        others[pid as usize % others.len()]
    }
}

fn spawn_fleet_proc(
    sched: &mut Scheduler,
    specs: &[&ProgramSpec],
    binaries: &[Binary],
    mode: ServerMode,
    fleet_key: &MacKey,
) -> Pid {
    // Pids are assigned in spawn order; predict the next one to pick the
    // workload before the kernel exists.
    let pid = (sched.processes().len() + 1) as Pid;
    let i = workload_index(pid, specs);
    let spec = specs[i];
    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let opts = match mode {
        ServerMode::Base => KernelOptions::plain(Personality::Linux),
        ServerMode::Cold => KernelOptions::enforcing(Personality::Linux),
        ServerMode::Warm => KernelOptions::enforcing(Personality::Linux).with_verify_cache(),
    };
    let mut kernel = Kernel::with_fs(opts, fs);
    if mode != ServerMode::Base {
        // A handle to the fleet's one expanded schedule: no per-spawn
        // subkey derivation, and every kernel meters into one counter.
        kernel.set_key(fleet_key.shared_schedule());
    }
    kernel.set_stdin(spec.stdin.to_vec());
    kernel.set_brk(binaries[i].highest_addr());
    let machine =
        Machine::load(&binaries[i], kernel).expect("workload binary fits in guest memory");
    let spawned = sched.spawn(spec.name, machine);
    debug_assert_eq!(spawned, pid);
    sched
        .process_mut(spawned)
        .kernel_mut()
        .set_metrics(Box::new(KernelMetrics::for_shard(pid_shard(
            spawned,
            FLEET_SHARDS,
        ))));
    spawned
}

/// Merges `asc_verify_cycles` across paths for one shard label.
fn shard_verify_histogram(snap: &Snapshot, shard: usize) -> Histogram {
    let shard = shard.to_string();
    let mut merged = Histogram::new();
    for (key, value) in snap.entries() {
        if key.name == "asc_verify_cycles" && key.label("shard") == Some(shard.as_str()) {
            if let MetricValue::Histogram(h) = value {
                merged.merge(h);
            }
        }
    }
    merged
}

/// Runs the fleet under churn and collects per-shard and aggregate
/// results. Fully deterministic for a given config.
pub fn run_fleet(config: &FleetConfig, mode: ServerMode) -> FleetRun {
    assert!(config.procs >= 1, "at least one process");
    let specs = server_specs();
    let binaries = server_binaries(&specs, mode);
    let fleet_key = bench_key();
    let key_ops_at_rest = fleet_key.block_ops();

    let sched_config = SchedConfig {
        policy: SchedPolicy::SeededRandom(config.seed),
        slice_instrs: config.slice_instrs,
        budget_cycles: asc_workloads::RUN_BUDGET,
        batch_depth: config.batch_depth,
    };
    let mut sched = if mode == ServerMode::Warm {
        Scheduler::with_shared_cache(sched_config)
    } else {
        Scheduler::new(sched_config)
    };

    for _ in 0..config.procs {
        spawn_fleet_proc(&mut sched, &specs, &binaries, mode, &fleet_key);
    }

    // Churn driver: every observed exit spawns one replacement until the
    // churn budget is used up, so the fleet shrinks only at the end.
    let mut churn_left = config.churn_spawns;
    while let Some(pid) = sched.step() {
        if churn_left > 0 && !sched.process(pid).state().is_runnable() {
            spawn_fleet_proc(&mut sched, &specs, &binaries, mode, &fleet_key);
            churn_left -= 1;
        }
    }

    let mut merged = Snapshot::default();
    let mut shards: BTreeMap<usize, FleetShardRow> = BTreeMap::new();
    let mut max_proc_cycles = 0u64;
    for proc in sched.processes() {
        assert!(
            matches!(proc.state(), ProcState::Exited(_)),
            "pid {} ({}) did not exit cleanly: {:?} (alerts: {:?})",
            proc.pid(),
            proc.name(),
            proc.state(),
            proc.kernel().alerts(),
        );
        let stats = proc.stats();
        let cycles = proc.machine().cycles();
        max_proc_cycles = max_proc_cycles.max(cycles);
        let shard = pid_shard(proc.pid(), FLEET_SHARDS);
        let row = shards.entry(shard).or_insert_with(|| FleetShardRow {
            shard,
            procs: 0,
            max_cycles: 0,
            syscalls: 0,
            verified: 0,
            cache_hits: 0,
            probes: 0,
            p50: 0,
            p90: 0,
            p99: 0,
        });
        row.procs += 1;
        row.max_cycles = row.max_cycles.max(cycles);
        row.syscalls += stats.syscalls;
        row.verified += stats.verified;
        row.cache_hits += stats.cache_hits;
        merged.absorb_registry(
            proc.kernel()
                .metrics()
                .expect("metrics were attached at spawn")
                .registry(),
        );
    }

    let mut shared_probes = 0u64;
    if let Some(shared) = sched.shared_cache() {
        let shared = shared.borrow();
        shared_probes = shared.probes();
        for row in shards.values_mut() {
            row.probes = shared.shard_probes(row.shard);
        }
    }
    for row in shards.values_mut() {
        let verify = shard_verify_histogram(&merged, row.shard);
        row.p50 = verify.quantile(0.50);
        row.p90 = verify.quantile(0.90);
        row.p99 = verify.quantile(0.99);
    }

    let spawned = sched.processes().len() as u64;
    let aes_block_ops = if mode == ServerMode::Base {
        0
    } else {
        fleet_key.block_ops() - key_ops_at_rest
    };
    FleetRun {
        mode,
        config: *config,
        rows: shards.into_values().collect(),
        aggregate: sched.aggregate_stats(),
        batch: sched.batch_stats(),
        clock: sched.clock(),
        max_proc_cycles,
        slices: sched.interleaving().len() as u64,
        interleaving_fnv: fnv64(sched.interleaving()),
        spawned,
        shared_probes,
        aes_block_ops,
        key_setups_saved: if mode == ServerMode::Base {
            0
        } else {
            spawned.saturating_sub(1)
        },
        merged_metrics: merged,
    }
}

/// Renders the human per-shard table (the golden-pinned output of
/// `--bin server --fleet`).
pub fn render_fleet(run: &FleetRun) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let cfg = &run.config;
    let batch = match cfg.batch_depth {
        Some(k) => format!("batch depth {k}"),
        None => "unbatched".to_string(),
    };
    let _ = writeln!(
        out,
        "Fleet verification throughput — {} procs (+{} churn), {} kernels, seed {:#x}, slice {} instrs, {}",
        cfg.procs, cfg.churn_spawns, run.mode.label(), cfg.seed, cfg.slice_instrs, batch,
    );
    let _ = writeln!(
        out,
        "{:>5} {:>5} {:>10} {:>9} {:>9} {:>9} {:>7} {:>8} {:>8} {:>8}",
        "shard",
        "procs",
        "max-sim-s",
        "syscalls",
        "verified",
        "warm",
        "probes",
        "p50-vc",
        "p90-vc",
        "p99-vc"
    );
    for row in &run.rows {
        let _ = writeln!(
            out,
            "{:>5} {:>5} {:>10.4} {:>9} {:>9} {:>9} {:>7} {:>8} {:>8} {:>8}",
            row.shard,
            row.procs,
            sim_seconds(row.max_cycles),
            row.syscalls,
            row.verified,
            row.cache_hits,
            row.probes,
            row.p50,
            row.p90,
            row.p99,
        );
    }
    let _ = writeln!(
        out,
        "fleet: {} processes over {} shards, {} verified calls in {:.4} fleet sim-seconds -> {:.1} verified calls/fleet-sec",
        run.spawned,
        run.rows.len(),
        run.aggregate.verified,
        run.fleet_sim_seconds(),
        run.verified_per_fleet_second(),
    );
    let _ = writeln!(
        out,
        "shared cache: {} probes ({:.4} per verified call)",
        run.shared_probes,
        run.probes_per_verified(),
    );
    let _ = writeln!(
        out,
        "batch: {} opened / {} closed, {} detached windows, {} submitted, {} drained ({:.2} fill), ring depth {}",
        run.batch.opened,
        run.batch.closed,
        run.batch.windows,
        run.batch.submitted,
        run.batch.drained,
        run.batch.fill_ratio(),
        run.batch.max_depth,
    );
    let _ = writeln!(
        out,
        "crypto: {} AES block ops through one shared schedule, {} key setups saved",
        run.aes_block_ops, run.key_setups_saved,
    );
    let _ = writeln!(
        out,
        "schedule: {} slices, interleaving fnv64 {:#018x}",
        run.slices, run.interleaving_fnv,
    );
    out
}

/// Converts a fleet run to a JSON value for the `--json` report mode.
pub fn fleet_to_value(run: &FleetRun) -> Value {
    let rows: Vec<Value> = run
        .rows
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("shard".into(), Value::Num(r.shard as f64)),
                ("procs".into(), Value::Num(r.procs as f64)),
                ("max_cycles".into(), Value::Num(r.max_cycles as f64)),
                ("syscalls".into(), Value::Num(r.syscalls as f64)),
                ("verified".into(), Value::Num(r.verified as f64)),
                ("cache_hits".into(), Value::Num(r.cache_hits as f64)),
                ("probes".into(), Value::Num(r.probes as f64)),
                ("p50_verify_cycles".into(), Value::Num(r.p50 as f64)),
                ("p90_verify_cycles".into(), Value::Num(r.p90 as f64)),
                ("p99_verify_cycles".into(), Value::Num(r.p99 as f64)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("mode".into(), Value::Str(run.mode.label().into())),
        ("procs".into(), Value::Num(run.config.procs as f64)),
        (
            "churn_spawns".into(),
            Value::Num(run.config.churn_spawns as f64),
        ),
        ("seed".into(), Value::Num(run.config.seed as f64)),
        (
            "slice_instrs".into(),
            Value::Num(run.config.slice_instrs as f64),
        ),
        (
            "batch_depth".into(),
            match run.config.batch_depth {
                Some(k) => Value::Num(k as f64),
                None => Value::Null,
            },
        ),
        ("spawned".into(), Value::Num(run.spawned as f64)),
        ("clock_cycles".into(), Value::Num(run.clock as f64)),
        (
            "max_proc_cycles".into(),
            Value::Num(run.max_proc_cycles as f64),
        ),
        ("slices".into(), Value::Num(run.slices as f64)),
        // Same zero-padded hex encoding as the server report: the
        // determinism witness must survive JSON round-trips above 2^53.
        (
            "interleaving_fnv".into(),
            Value::Str(format!("{:#018x}", run.interleaving_fnv)),
        ),
        (
            "verified_total".into(),
            Value::Num(run.aggregate.verified as f64),
        ),
        (
            "verified_per_fleet_second".into(),
            Value::Num(run.verified_per_fleet_second()),
        ),
        ("shared_probes".into(), Value::Num(run.shared_probes as f64)),
        ("batch_opened".into(), Value::Num(run.batch.opened as f64)),
        ("batch_closed".into(), Value::Num(run.batch.closed as f64)),
        ("batch_windows".into(), Value::Num(run.batch.windows as f64)),
        ("batch_fill".into(), Value::Num(run.batch.fill_ratio())),
        (
            "batch_submitted".into(),
            Value::Num(run.batch.submitted as f64),
        ),
        ("batch_drained".into(), Value::Num(run.batch.drained as f64)),
        (
            "batch_max_depth".into(),
            Value::Num(run.batch.max_depth as f64),
        ),
        ("aes_block_ops".into(), Value::Num(run.aes_block_ops as f64)),
        (
            "key_setups_saved".into(),
            Value::Num(run.key_setups_saved as f64),
        ),
        ("shards".into(), Value::Array(rows)),
    ])
}
