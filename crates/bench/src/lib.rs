//! Shared harness code for the table-regeneration binaries.

use asc_core::json::Value;
use asc_crypto::MacKey;
use asc_installer::{InstallReport, Installer, InstallerOptions};
use asc_kernel::Personality;
use asc_object::Binary;
use asc_workloads::{measure, program, ProgramSpec, RunReport};

/// The fixed experiment key (the security administrator's secret).
pub fn bench_key() -> MacKey {
    MacKey::from_seed(0x0DD5_EED5)
}

/// Simulated clock for converting cycles to "seconds" in reports (100 MHz
/// keeps the magnitudes readable; only ratios matter).
pub const CLOCK_HZ: f64 = 100_000_000.0;

/// Builds and installs one registered program, returning both binaries.
pub fn build_and_install(
    spec: &ProgramSpec,
    personality: Personality,
    program_id: u16,
) -> (Binary, Binary, InstallReport) {
    let plain =
        asc_workloads::build(spec, personality).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let installer = Installer::new(
        bench_key(),
        InstallerOptions::new(personality).with_program_id(program_id),
    );
    let (auth, report) = installer
        .install(&plain, spec.name)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    (plain, auth, report)
}

/// One row of the Table 6 experiment.
#[derive(Clone, Debug)]
pub struct PerfRow {
    /// Program name.
    pub name: String,
    /// Table 5 classification.
    pub kind: String,
    /// Cycles of the unauthenticated run.
    pub base_cycles: u64,
    /// Cycles of the authenticated run.
    pub auth_cycles: u64,
    /// Percentage overhead.
    pub overhead_pct: f64,
    /// System calls made.
    pub syscalls: u64,
    /// Paper's reported overhead (for the comparison column).
    pub paper_pct: f64,
}

impl PerfRow {
    /// Converts to a JSON value for the `--json` report mode.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("kind".into(), Value::Str(self.kind.clone())),
            ("base_cycles".into(), Value::Num(self.base_cycles as f64)),
            ("auth_cycles".into(), Value::Num(self.auth_cycles as f64)),
            ("overhead_pct".into(), Value::Num(self.overhead_pct)),
            ("syscalls".into(), Value::Num(self.syscalls as f64)),
            ("paper_pct".into(), Value::Num(self.paper_pct)),
        ])
    }
}

/// Paper Table 6 overhead percentages.
pub fn paper_overhead(name: &str) -> f64 {
    match name {
        "gzip-spec" => 1.41,
        "crafty" => 1.40,
        "mcf" => 0.73,
        "vpr" => 1.16,
        "twolf" => 1.70,
        "gcc" => 1.39,
        "vortex" => 0.84,
        "pyramid" => 7.92,
        "gzip" => 1.06,
        _ => f64::NAN,
    }
}

/// Runs the original-vs-authenticated measurement for one program.
pub fn measure_program(name: &str, program_id: u16) -> PerfRow {
    let spec = program(name).expect("registered program");
    let personality = Personality::Linux;
    let (plain, auth, _) = build_and_install(spec, personality, program_id);
    let base = expect_ok(spec, measure(spec, &plain, personality, None));
    let with = expect_ok(spec, measure(spec, &auth, personality, Some(bench_key())));
    let overhead_pct = (with.cycles as f64 - base.cycles as f64) / base.cycles as f64 * 100.0;
    PerfRow {
        name: name.to_string(),
        kind: format!("{:?}", spec.kind),
        base_cycles: base.cycles,
        auth_cycles: with.cycles,
        overhead_pct,
        syscalls: base.kernel.stats().syscalls,
        paper_pct: paper_overhead(name),
    }
}

fn expect_ok(spec: &ProgramSpec, report: RunReport) -> RunReport {
    assert!(
        report.outcome.is_success(),
        "{} failed: {:?} (alerts: {:?}, stderr: {:?})",
        spec.name,
        report.outcome,
        report.kernel.alerts(),
        String::from_utf8_lossy(report.kernel.stderr()),
    );
    report
}

/// Formats cycles as simulated seconds.
pub fn sim_seconds(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ
}
