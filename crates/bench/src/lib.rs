//! Shared harness code for the table-regeneration binaries.

pub mod audit;
pub mod cli;
pub mod fleet;
pub mod health;
pub mod perf;
pub mod server;

use std::collections::HashMap;

use asc_core::json::Value;
use asc_crypto::MacKey;
use asc_installer::{InstallReport, Installer, InstallerOptions};
use asc_kernel::{FileSystem, Kernel, KernelOptions, KernelStats, Personality};
use asc_object::Binary;
use asc_trace::{CheckKind, Profile, ProfileTotals, SiteProfile, CHECK_FAMILIES};
use asc_vm::Machine;
use asc_workloads::tools::{iteration_plan, setup_corpus, tool_source, TOOLS};
use asc_workloads::{measure, program, ProgramSpec, RunReport};

/// The fixed experiment key (the security administrator's secret).
pub fn bench_key() -> MacKey {
    MacKey::from_seed(0x0DD5_EED5)
}

/// Simulated clock for converting cycles to "seconds" in reports (100 MHz
/// keeps the magnitudes readable; only ratios matter).
pub const CLOCK_HZ: f64 = 100_000_000.0;

/// Builds and installs one registered program, returning both binaries.
pub fn build_and_install(
    spec: &ProgramSpec,
    personality: Personality,
    program_id: u16,
) -> (Binary, Binary, InstallReport) {
    let plain =
        asc_workloads::build(spec, personality).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let installer = Installer::new(
        bench_key(),
        InstallerOptions::new(personality).with_program_id(program_id),
    );
    let (auth, report) = installer
        .install(&plain, spec.name)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    (plain, auth, report)
}

/// One row of the Table 6 experiment.
#[derive(Clone, Debug)]
pub struct PerfRow {
    /// Program name.
    pub name: String,
    /// Table 5 classification.
    pub kind: String,
    /// Cycles of the unauthenticated run.
    pub base_cycles: u64,
    /// Cycles of the authenticated run.
    pub auth_cycles: u64,
    /// Percentage overhead.
    pub overhead_pct: f64,
    /// System calls made.
    pub syscalls: u64,
    /// Paper's reported overhead (for the comparison column).
    pub paper_pct: f64,
}

impl PerfRow {
    /// Converts to a JSON value for the `--json` report mode.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("kind".into(), Value::Str(self.kind.clone())),
            ("base_cycles".into(), Value::Num(self.base_cycles as f64)),
            ("auth_cycles".into(), Value::Num(self.auth_cycles as f64)),
            ("overhead_pct".into(), Value::Num(self.overhead_pct)),
            ("syscalls".into(), Value::Num(self.syscalls as f64)),
            ("paper_pct".into(), Value::Num(self.paper_pct)),
        ])
    }
}

/// Paper Table 6 overhead percentages; `None` for programs the paper did
/// not measure (callers decide how to render the gap — the table binaries
/// print `NaN` via [`f64::NAN`]).
pub fn paper_overhead(name: &str) -> Option<f64> {
    match name {
        "gzip-spec" => Some(1.41),
        "crafty" => Some(1.40),
        "mcf" => Some(0.73),
        "vpr" => Some(1.16),
        "twolf" => Some(1.70),
        "gcc" => Some(1.39),
        "vortex" => Some(0.84),
        "pyramid" => Some(7.92),
        "gzip" => Some(1.06),
        _ => None,
    }
}

/// Runs the original-vs-authenticated measurement for one program.
pub fn measure_program(name: &str, program_id: u16) -> PerfRow {
    let spec = program(name).expect("name appears in the asc_workloads program registry");
    let personality = Personality::Linux;
    let (plain, auth, _) = build_and_install(spec, personality, program_id);
    let base = expect_ok(spec, measure(spec, &plain, personality, None));
    let with = expect_ok(spec, measure(spec, &auth, personality, Some(bench_key())));
    let overhead_pct = (with.cycles as f64 - base.cycles as f64) / base.cycles as f64 * 100.0;
    PerfRow {
        name: name.to_string(),
        kind: format!("{:?}", spec.kind),
        base_cycles: base.cycles,
        auth_cycles: with.cycles,
        overhead_pct,
        syscalls: base.kernel.stats().syscalls,
        paper_pct: paper_overhead(name).unwrap_or(f64::NAN),
    }
}

fn expect_ok(spec: &ProgramSpec, report: RunReport) -> RunReport {
    assert!(
        report.outcome.is_success(),
        "{} failed: {:?} (alerts: {:?}, stderr: {:?})",
        spec.name,
        report.outcome,
        report.kernel.alerts(),
        String::from_utf8_lossy(report.kernel.stderr()),
    );
    report
}

/// Formats cycles as simulated seconds.
pub fn sim_seconds(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ
}

/// Prints a JSON value in the shared pretty format — the single `--json`
/// output path for every reporting binary.
pub fn print_json(value: &Value) {
    println!("{}", value.to_pretty());
}

/// A profiled enforcing run: the flight-recorder [`Profile`] plus the
/// kernel's own counters, so reports can cross-check the two.
pub struct ProfiledRun {
    /// Workload label for report headers.
    pub workload: String,
    /// Per-call-site aggregation from the attached trace sink.
    pub profile: Profile,
    /// The kernel's aggregate counters for the same run(s).
    pub stats: KernelStats,
    /// Events the sink discarded under memory pressure
    /// ([`asc_trace::TraceSink::dropped`]). The unbounded [`Profile`]
    /// sink never drops, so this is 0 here and nonzero only for bounded
    /// ring sinks — surfaced so every report states its own completeness.
    pub ring_dropped: u64,
}

/// Runs one registered workload under an enforcing, cache-enabled kernel
/// with a [`Profile`] sink attached. The installer's pass spans land in the
/// same profile, so the report covers install-time coverage too.
pub fn profile_workload(name: &str) -> ProfiledRun {
    let spec = program(name).expect("name appears in the asc_workloads program registry");
    let personality = Personality::Linux;
    let plain =
        asc_workloads::build(spec, personality).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let installer = Installer::new(
        bench_key(),
        InstallerOptions::new(personality).with_program_id(1),
    );
    let mut profile = Profile::new();
    profile.set_context(spec.name);
    let (auth, _) = installer
        .install_traced(&plain, spec.name, &mut profile)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));

    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let mut kernel = Kernel::with_fs(
        KernelOptions::enforcing(personality).with_verify_cache(),
        fs,
    );
    kernel.set_key(bench_key());
    kernel.set_stdin(spec.stdin.to_vec());
    kernel.set_brk(auth.highest_addr());
    kernel.set_trace_sink(Box::new(profile));
    let mut machine = Machine::load(&auth, kernel).expect("workload binary fits in guest memory");
    let outcome = machine.run(asc_workloads::RUN_BUDGET);
    let mut kernel = machine.into_handler();
    assert!(
        outcome.is_success(),
        "{} failed: {outcome:?} (alerts: {:?}, stderr: {:?})",
        spec.name,
        kernel.alerts(),
        String::from_utf8_lossy(kernel.stderr()),
    );
    let stats = *kernel.stats();
    let sink = kernel
        .take_trace_sink()
        .expect("the trace sink attached before the run is still present");
    let ring_dropped = sink.dropped();
    let profile = sink
        .into_any()
        .downcast::<Profile>()
        .expect("the attached sink was the Profile installed above");
    ProfiledRun {
        workload: name.to_string(),
        profile: *profile,
        stats,
        ring_dropped,
    }
}

/// Profiles one iteration of the Andrew-style multiprogram benchmark: every
/// tool step runs on its own enforcing, cache-enabled kernel, with a single
/// [`Profile`] threaded through them (context = tool name, so same-address
/// call sites of different tools do not merge).
pub fn profile_andrew() -> ProfiledRun {
    let personality = Personality::Linux;
    let tools: HashMap<&'static str, Binary> = TOOLS
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let src = tool_source(t.name).expect("tool name appears in the Andrew tool registry");
            let plain = asc_workloads::build_source(&src, personality)
                .expect("registered tool source compiles and links");
            let installer = Installer::new(
                bench_key(),
                InstallerOptions::new(personality).with_program_id(200 + i as u16),
            );
            let auth = installer
                .install(&plain, t.name)
                .expect("installer authenticates the plain tool binary")
                .0;
            (t.name, auth)
        })
        .collect();

    let mut fs = FileSystem::new();
    setup_corpus(&mut fs);
    let mut profile = Box::new(Profile::new());
    let mut stats = KernelStats::default();
    let mut ring_dropped = 0u64;
    for step in iteration_plan() {
        let binary = &tools[step.tool];
        let mut kernel = Kernel::with_fs(
            KernelOptions::enforcing(personality).with_verify_cache(),
            fs,
        );
        kernel.set_key(bench_key());
        kernel.set_stdin(step.stdin.clone().into_bytes());
        kernel.set_brk(binary.highest_addr());
        profile.set_context(step.tool);
        kernel.set_trace_sink(profile);
        let mut machine = Machine::load(binary, kernel).expect("tool binary fits in guest memory");
        let outcome = machine.run(10_000_000_000);
        let mut kernel = machine.into_handler();
        assert!(
            outcome.is_success(),
            "step `{}` failed: {outcome:?} (alerts: {:?}, stderr: {:?})",
            step.tool,
            kernel.alerts(),
            String::from_utf8_lossy(kernel.stderr()),
        );
        stats.absorb(kernel.stats());
        let sink = kernel
            .take_trace_sink()
            .expect("the trace sink attached before the run is still present");
        ring_dropped += sink.dropped();
        profile = sink
            .into_any()
            .downcast::<Profile>()
            .expect("the attached sink was the Profile installed above");
        fs = kernel.into_fs();
    }
    ProfiledRun {
        workload: "andrew".to_string(),
        profile: *profile,
        stats,
        ring_dropped,
    }
}

/// Renders a profiled run as the per-call-site text table.
pub fn render_profile(run: &ProfiledRun) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Verifier flight recorder — per-call-site profile ({})",
        run.workload
    );
    let _ = writeln!(
        out,
        "{:<10} {:>10}  {:<12} {:>7} {:>6} {:>6} {:>12} {:>12} {:>9}",
        "context",
        "site",
        "syscall",
        "calls",
        "warm",
        "kills",
        "verify-cyc",
        "fixed-cyc",
        "aes-blk"
    );
    for row in run.profile.rows() {
        let _ = writeln!(
            out,
            "{:<10} {:>#10x}  {:<12} {:>7} {:>6} {:>6} {:>12} {:>12} {:>9}",
            row.context,
            row.site,
            Personality::Linux.name_of(row.nr),
            row.calls,
            row.warm_calls,
            row.kills,
            row.verify_cycles,
            row.fixed_cycles,
            row.aes_blocks,
        );
        for family in 0..CHECK_FAMILIES {
            let agg = &row.checks[family];
            if agg.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "           | {:<12} {:>5} checks ({} failed)  {:>7} aes-blk  {:>10} cyc  {:>8} B  cache {}h/{}f/{}s",
                CheckKind::family_name(family),
                agg.count,
                agg.failed,
                agg.aes_blocks,
                agg.cycles,
                agg.bytes,
                agg.hits,
                agg.fallbacks,
                agg.scrubs,
            );
        }
    }
    let t = run.profile.totals();
    let _ = writeln!(
        out,
        "totals: {} calls ({} warm, {} cold), {} kills, {} verify cycles ({} fixed), {} aes blocks, {} bytes checked",
        t.calls,
        t.warm_calls,
        t.calls - t.warm_calls,
        t.kills,
        t.verify_cycles,
        t.fixed_cycles,
        t.aes_blocks,
        t.bytes,
    );
    let s = &run.stats;
    let _ = writeln!(
        out,
        "kernel:  {} verified ({} cache hits, {} fallbacks, {} scrubs), {} verify cycles, {} aes blocks",
        s.verified, s.cache_hits, s.cache_fallbacks, s.cache_scrubs, s.verify_cycles, s.verify_aes_blocks,
    );
    let _ = writeln!(
        out,
        "ring:    {} events dropped by the trace sink",
        run.ring_dropped,
    );
    if !run.profile.passes().is_empty() {
        let _ = writeln!(out, "installer passes:");
        for (pass, counters) in run.profile.passes() {
            let rendered: Vec<String> = counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(out, "  {:<16} {}", pass, rendered.join(" "));
        }
    }
    out
}

fn site_to_value(row: &SiteProfile) -> Value {
    let mut checks = Vec::new();
    for family in 0..CHECK_FAMILIES {
        let agg = &row.checks[family];
        if agg.count == 0 {
            continue;
        }
        checks.push((
            CheckKind::family_name(family).to_string(),
            Value::Object(vec![
                ("count".into(), Value::Num(agg.count as f64)),
                ("failed".into(), Value::Num(agg.failed as f64)),
                ("aes_blocks".into(), Value::Num(agg.aes_blocks as f64)),
                ("cycles".into(), Value::Num(agg.cycles as f64)),
                ("bytes".into(), Value::Num(agg.bytes as f64)),
                ("hits".into(), Value::Num(agg.hits as f64)),
                ("fallbacks".into(), Value::Num(agg.fallbacks as f64)),
                ("scrubs".into(), Value::Num(agg.scrubs as f64)),
            ]),
        ));
    }
    Value::Object(vec![
        ("context".into(), Value::Str(row.context.clone())),
        ("site".into(), Value::Num(row.site as f64)),
        ("nr".into(), Value::Num(row.nr as f64)),
        (
            "syscall".into(),
            Value::Str(Personality::Linux.name_of(row.nr).to_string()),
        ),
        ("calls".into(), Value::Num(row.calls as f64)),
        ("warm_calls".into(), Value::Num(row.warm_calls as f64)),
        ("kills".into(), Value::Num(row.kills as f64)),
        ("verify_cycles".into(), Value::Num(row.verify_cycles as f64)),
        ("fixed_cycles".into(), Value::Num(row.fixed_cycles as f64)),
        ("aes_blocks".into(), Value::Num(row.aes_blocks as f64)),
        ("checks".into(), Value::Object(checks)),
    ])
}

fn totals_to_value(t: &ProfileTotals) -> Value {
    Value::Object(vec![
        ("calls".into(), Value::Num(t.calls as f64)),
        ("warm_calls".into(), Value::Num(t.warm_calls as f64)),
        ("kills".into(), Value::Num(t.kills as f64)),
        ("verify_cycles".into(), Value::Num(t.verify_cycles as f64)),
        ("fixed_cycles".into(), Value::Num(t.fixed_cycles as f64)),
        ("aes_blocks".into(), Value::Num(t.aes_blocks as f64)),
        ("bytes".into(), Value::Num(t.bytes as f64)),
    ])
}

/// Converts a profiled run to a JSON value for the `--json` report mode.
pub fn profile_to_value(run: &ProfiledRun) -> Value {
    let sites: Vec<Value> = run.profile.rows().map(site_to_value).collect();
    let passes: Vec<Value> = run
        .profile
        .passes()
        .iter()
        .map(|(pass, counters)| {
            Value::Object(vec![
                ("pass".into(), Value::Str(pass.clone())),
                (
                    "counters".into(),
                    Value::Object(
                        counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let s = &run.stats;
    Value::Object(vec![
        ("workload".into(), Value::Str(run.workload.clone())),
        ("totals".into(), totals_to_value(&run.profile.totals())),
        (
            "kernel_stats".into(),
            Value::Object(vec![
                ("syscalls".into(), Value::Num(s.syscalls as f64)),
                ("verified".into(), Value::Num(s.verified as f64)),
                ("cache_hits".into(), Value::Num(s.cache_hits as f64)),
                (
                    "cache_fallbacks".into(),
                    Value::Num(s.cache_fallbacks as f64),
                ),
                ("cache_scrubs".into(), Value::Num(s.cache_scrubs as f64)),
                ("verify_cycles".into(), Value::Num(s.verify_cycles as f64)),
                (
                    "verify_aes_blocks".into(),
                    Value::Num(s.verify_aes_blocks as f64),
                ),
                (
                    "warm_verify_cycles".into(),
                    Value::Num(s.warm_verify_cycles as f64),
                ),
                (
                    "warm_aes_blocks".into(),
                    Value::Num(s.warm_aes_blocks as f64),
                ),
            ]),
        ),
        ("ring_dropped".into(), Value::Num(run.ring_dropped as f64)),
        ("sites".into(), Value::Array(sites)),
        ("passes".into(), Value::Array(passes)),
    ])
}
