//! The forensic flight-recorder demonstration harness (`--bin audit`).
//!
//! One seeded fleet runs with the scheduler's black-box recorder
//! attached; a kernel-side fault kills one pid mid-run. The harness then
//! exercises the full forensic loop and asserts every link of it:
//!
//! 1. **recording is free** — a twin run without the recorder is
//!    bit-identical (cycles, stats, stdout, interleaving), so the black
//!    box costs 0 metered cycles;
//! 2. **the kill yields a bundle** — serialized, digest-stamped, and
//!    JSON round-trippable;
//! 3. **the bundle replays** — re-running the scenario from its seeds
//!    reproduces the same pid, violation, and kill cycle bit-identically;
//! 4. **sampling stays exact** — a half-sampled rerun accounts for every
//!    span event either in a ring (`retained + dropped`) or
//!    reconstructed from the unsampled pid's [`asc_kernel::KernelStats`].
//!
//! Deterministic end to end — CI diffs the text output against
//! `crates/bench/golden/audit.txt` (the `audit-smoke` job) and the binary
//! exits nonzero on any [`AuditReport::problems`] entry.

use asc_audit::{fnv64_pids, replay, Bundle, FleetScenario, ReplayVerdict};
use asc_core::json::Value;
use asc_kernel::{FaultAction, Personality, TrapFault, VerifyTier};
use asc_sched::{AuditLog, Pid, ProcState, RecorderConfig, Scheduler};
use asc_workloads::RUN_BUDGET;

/// The demo fleet: eight processes over the paper's three policy
/// workloads, a seeded random interleaving, kernel batch windows, and an
/// epoch-counter skew armed on pid 2's fifth trap (a fault the verifier
/// always catches, so the kill is deterministic).
pub fn demo_scenario() -> FleetScenario {
    FleetScenario {
        procs: [
            "bison", "calc", "tar", "calc", "bison", "tar", "calc", "bison",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        personality: Personality::Linux,
        tier: VerifyTier::Mac,
        key_seed: 0x0AD1_7C0D,
        program_id_base: 0x0AD0,
        sched_seed: 0x0AD1_75ED,
        slice_instrs: 2_000,
        budget_cycles: RUN_BUDGET,
        batch_depth: Some(4),
        fault: Some((
            DEMO_VICTIM,
            TrapFault {
                at_trap: 5,
                action: FaultAction::SkewCounter { delta: 3 },
            },
        )),
    }
}

/// The pid the demo fault is armed on.
pub const DEMO_VICTIM: Pid = 2;

/// One pid's line in the audit summary table.
#[derive(Clone, Debug)]
pub struct PidSummary {
    /// The pid.
    pub pid: Pid,
    /// Workload name.
    pub name: String,
    /// Whether the recorder sampled this pid (owned a ring).
    pub sampled: bool,
    /// Slices the pid received.
    pub slices: u64,
    /// Final state label.
    pub state: String,
    /// Ring events retained (0 for unsampled pids).
    pub retained: u64,
    /// Ring events dropped under memory pressure (exact).
    pub dropped: u64,
    /// Span-level event total reconstructed from the pid's kernel
    /// counters alone (`syscalls + verified`) — the exactness anchor for
    /// unsampled pids.
    pub span_events: u64,
}

/// The recorder-off twin comparison: the no-perturbation proof.
#[derive(Clone, Debug)]
pub struct OverheadCheck {
    /// Whether the recorded and bare runs were bit-identical.
    pub identical: bool,
    /// Shared virtual clock of both runs (equal when `identical`).
    pub clock: u64,
    /// FNV-64 of the interleaving (equal for both runs when `identical`).
    pub interleaving_fnv: u64,
    /// First divergence found, if any.
    pub detail: String,
}

/// The half-sampled rerun's accounting summary.
#[derive(Clone, Debug)]
pub struct SamplingSummary {
    /// Pids that owned a ring.
    pub sampled: u32,
    /// Pids reconstructed from kernel counters alone.
    pub unsampled: u32,
    /// Total ring events dropped across sampled pids (exact).
    pub dropped_total: u64,
    /// Whether every unsampled pid's counters matched the fully-sampled
    /// run's (exact reconstruction holds).
    pub exact: bool,
}

/// Everything the audit demonstration produced.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// The scenario that ran.
    pub scenario: FleetScenario,
    /// Recorder configuration of the main (fully sampled) run.
    pub recorder: RecorderConfig,
    /// Per-pid summary rows, in pid order.
    pub pids: Vec<PidSummary>,
    /// Merged timeline length (slice boundaries + kernel events + kills).
    pub timeline_len: usize,
    /// The victim's alert rendering.
    pub alert: Option<String>,
    /// Shared virtual clock at the kill mark.
    pub kill_clock: Option<u64>,
    /// Global slice index of the killing slice.
    pub kill_slice: Option<u64>,
    /// The forensic bundle captured for the kill.
    pub bundle: Option<Bundle>,
    /// Whether `Bundle::from_json(bundle.to_json())` verified (schema and
    /// digest round-trip).
    pub roundtrip_ok: bool,
    /// The deterministic replay verdict.
    pub replay: Option<ReplayVerdict>,
    /// The recorder-off twin comparison.
    pub overhead: OverheadCheck,
    /// The half-sampled rerun's accounting.
    pub sampling: SamplingSummary,
}

impl AuditReport {
    /// Everything wrong with the forensic loop; empty means every link
    /// held (no-perturbation, bundle capture, round-trip, replay,
    /// sampling exactness).
    pub fn problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if !self.overhead.identical {
            problems.push(format!(
                "recorder attachment perturbed the run: {}",
                self.overhead.detail
            ));
        }
        match (&self.bundle, &self.replay) {
            (None, _) => problems.push("the kill produced no forensic bundle".into()),
            (Some(_), None) => problems.push("the bundle was never replayed".into()),
            (Some(_), Some(v)) if !v.matched => {
                problems.push(format!("IRREPRODUCIBLE: replay diverged: {}", v.detail));
            }
            _ => {}
        }
        if self.bundle.is_some() && !self.roundtrip_ok {
            problems.push("bundle JSON round-trip failed schema/digest verification".into());
        }
        if !self.sampling.exact {
            problems.push("half-sampled rerun lost exactness for an unsampled pid".into());
        }
        problems
    }
}

fn state_label(state: &ProcState) -> String {
    match state {
        ProcState::Runnable => "runnable".into(),
        ProcState::Exited(code) => format!("exited({code})"),
        ProcState::Killed(_) => "killed".into(),
        ProcState::Faulted(_) => "faulted".into(),
    }
}

/// Compares the recorded run against the bare twin, field by field.
fn check_overhead(with: &Scheduler, without: &Scheduler) -> OverheadCheck {
    let fnv = fnv64_pids(with.interleaving());
    let diverged = |detail: String| OverheadCheck {
        identical: false,
        clock: with.clock(),
        interleaving_fnv: fnv,
        detail,
    };
    if with.clock() != without.clock() {
        return diverged(format!("clock {} vs {}", with.clock(), without.clock()));
    }
    if with.interleaving() != without.interleaving() {
        return diverged(format!(
            "interleaving fnv {:#018x} vs {:#018x}",
            fnv,
            fnv64_pids(without.interleaving())
        ));
    }
    for (a, b) in with.processes().iter().zip(without.processes()) {
        if a.machine().cycles() != b.machine().cycles() {
            return diverged(format!(
                "pid {} cycles {} vs {}",
                a.pid(),
                a.machine().cycles(),
                b.machine().cycles()
            ));
        }
        if a.stats() != b.stats() {
            return diverged(format!("pid {} kernel stats diverged", a.pid()));
        }
        if a.stdout() != b.stdout() {
            return diverged(format!("pid {} stdout diverged", a.pid()));
        }
        if a.state() != b.state() {
            return diverged(format!("pid {} state diverged", a.pid()));
        }
    }
    OverheadCheck {
        identical: true,
        clock: with.clock(),
        interleaving_fnv: fnv,
        detail: "bit-identical".into(),
    }
}

fn pid_rows(sched: &Scheduler, audit: &AuditLog) -> Vec<PidSummary> {
    sched
        .processes()
        .iter()
        .map(|p| {
            let pa = audit.pid(p.pid()).expect("every pid has an audit record");
            PidSummary {
                pid: p.pid(),
                name: p.name().to_string(),
                sampled: pa.sampled,
                slices: p.slices(),
                state: state_label(p.state()),
                retained: pa.events.len() as u64,
                dropped: pa.dropped,
                span_events: pa.span_events(),
            }
        })
        .collect()
}

/// Runs the full demonstration: recorded run, bare twin, bundle capture,
/// round-trip, replay, and the half-sampled rerun.
pub fn run_audit() -> AuditReport {
    let scenario = demo_scenario();
    let recorder = RecorderConfig::default();

    let mut with = scenario.run(Some(recorder));
    let audit = with.take_audit().expect("recorder was attached");
    let without = scenario.run(None);
    let overhead = check_overhead(&with, &without);

    let pids = pid_rows(&with, &audit);
    let timeline_len = audit.timeline().len();
    let mark = audit.kills.iter().find(|k| k.pid == DEMO_VICTIM);
    let alert = with
        .process(DEMO_VICTIM)
        .kernel()
        .alerts()
        .last()
        .map(|a| a.to_string());

    let bundle = Bundle::from_fleet(&scenario, &with, &audit, DEMO_VICTIM);
    let roundtrip_ok = bundle
        .as_ref()
        .is_some_and(|b| Bundle::from_json(&b.to_json()).is_ok());
    let verdict = bundle.as_ref().map(replay);

    // The half-sampled rerun: same fleet, rings on half the pids. The
    // run itself is bit-identical (recording never perturbs), so the
    // unsampled pids' kernel counters must equal the fully-sampled run's
    // — that equality *is* the exact-reconstruction claim.
    let half = RecorderConfig {
        ring_capacity: 32,
        sample_num: 1,
        sample_den: 2,
        ..recorder
    };
    let mut half_sched = scenario.run(Some(half));
    let half_audit = half_sched.take_audit().expect("recorder was attached");
    let mut exact = true;
    for pa in &half_audit.pids {
        let full = audit.pid(pa.pid).expect("same fleet, same pids");
        if pa.stats != full.stats || pa.span_events() != full.span_events() {
            exact = false;
        }
        if !pa.sampled && (pa.dropped != 0 || !pa.events.is_empty()) {
            exact = false;
        }
    }
    let sampling = SamplingSummary {
        sampled: half_audit.pids.iter().filter(|p| p.sampled).count() as u32,
        unsampled: half_audit.pids.iter().filter(|p| !p.sampled).count() as u32,
        dropped_total: half_audit.pids.iter().map(|p| p.dropped).sum(),
        exact,
    };

    AuditReport {
        scenario,
        recorder,
        pids,
        timeline_len,
        alert,
        kill_clock: mark.map(|k| k.clock),
        kill_slice: mark.and_then(|k| k.slice_index),
        bundle,
        roundtrip_ok,
        replay: verdict,
        overhead,
        sampling,
    }
}

/// Renders the audit demonstration as the deterministic text report.
pub fn render_audit(report: &AuditReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let s = &report.scenario;
    let _ = writeln!(out, "Forensic flight recorder: black box, bundle, replay");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "fleet: {} procs  sched_seed={:#x}  slice={}  batch={:?}  tier={}",
        s.procs.len(),
        s.sched_seed,
        s.slice_instrs,
        s.batch_depth,
        s.tier.name()
    );
    let _ = writeln!(
        out,
        "recorder: ring={} sample={}/{} (all pids)",
        report.recorder.ring_capacity, report.recorder.sample_num, report.recorder.sample_den
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<4} {:<8} {:<8} {:>6} {:>8} {:>8} {:>6} {:<12}",
        "pid", "workload", "sampled", "slices", "spans", "retained", "drop", "state"
    );
    for row in &report.pids {
        let _ = writeln!(
            out,
            "{:<4} {:<8} {:<8} {:>6} {:>8} {:>8} {:>6} {:<12}",
            row.pid,
            row.name,
            if row.sampled { "yes" } else { "no" },
            row.slices,
            row.span_events,
            row.retained,
            row.dropped,
            row.state,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "timeline: {} entries", report.timeline_len);
    let _ = writeln!(
        out,
        "no-perturbation: {} (clock {}, interleaving fnv {:#018x})",
        if report.overhead.identical {
            "recorder costs 0 metered cycles"
        } else {
            "RECORDER PERTURBED THE RUN"
        },
        report.overhead.clock,
        report.overhead.interleaving_fnv,
    );
    let _ = writeln!(out);
    match (&report.alert, &report.bundle) {
        (Some(alert), Some(bundle)) => {
            let _ = writeln!(out, "kill: {alert}");
            if let (Some(clock), Some(slice)) = (report.kill_clock, report.kill_slice) {
                let _ = writeln!(out, "      at shared clock {clock}, slice {slice}");
            }
            let _ = writeln!(
                out,
                "bundle: digest {:#018x}, {} bytes, json round-trip {}",
                bundle.digest(),
                bundle.to_json().len(),
                if report.roundtrip_ok { "ok" } else { "FAILED" },
            );
            match &report.replay {
                Some(v) if v.matched => {
                    let _ = writeln!(out, "replay: reproduced — {}", v.detail);
                }
                Some(v) => {
                    let _ = writeln!(out, "replay: IRREPRODUCIBLE — {}", v.detail);
                }
                None => {
                    let _ = writeln!(out, "replay: not run");
                }
            }
        }
        _ => {
            let _ = writeln!(out, "kill: MISSING — the armed fault produced no bundle");
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "sampling (1/2): {} ringed, {} reconstructed from counters, {} dropped — {}",
        report.sampling.sampled,
        report.sampling.unsampled,
        report.sampling.dropped_total,
        if report.sampling.exact {
            "exact"
        } else {
            "INEXACT"
        },
    );
    out
}

/// Converts the audit demonstration to a JSON value for `--json` mode.
/// The full bundle rides along verbatim, so the output is itself a
/// machine-readable forensic artifact.
pub fn audit_to_value(report: &AuditReport) -> Value {
    let pids: Vec<Value> = report
        .pids
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("pid".into(), Value::Num(f64::from(r.pid))),
                ("workload".into(), Value::Str(r.name.clone())),
                ("sampled".into(), Value::Bool(r.sampled)),
                ("slices".into(), Value::Num(r.slices as f64)),
                ("span_events".into(), Value::Num(r.span_events as f64)),
                ("retained".into(), Value::Num(r.retained as f64)),
                ("dropped".into(), Value::Num(r.dropped as f64)),
                ("state".into(), Value::Str(r.state.clone())),
            ])
        })
        .collect();
    Value::Object(vec![
        ("pids".into(), Value::Array(pids)),
        (
            "timeline_entries".into(),
            Value::Num(report.timeline_len as f64),
        ),
        (
            "no_perturbation".into(),
            Value::Object(vec![
                ("identical".into(), Value::Bool(report.overhead.identical)),
                ("clock".into(), Value::Num(report.overhead.clock as f64)),
                (
                    "interleaving_fnv".into(),
                    Value::Str(format!("{:#018x}", report.overhead.interleaving_fnv)),
                ),
            ]),
        ),
        (
            "kill".into(),
            report
                .alert
                .as_ref()
                .map(|a| Value::Str(a.clone()))
                .unwrap_or(Value::Null),
        ),
        (
            "bundle".into(),
            report
                .bundle
                .as_ref()
                .map(Bundle::to_value)
                .unwrap_or(Value::Null),
        ),
        ("roundtrip_ok".into(), Value::Bool(report.roundtrip_ok)),
        (
            "replay".into(),
            report
                .replay
                .as_ref()
                .map(|v| {
                    Value::Object(vec![
                        ("matched".into(), Value::Bool(v.matched)),
                        ("detail".into(), Value::Str(v.detail.clone())),
                    ])
                })
                .unwrap_or(Value::Null),
        ),
        (
            "sampling".into(),
            Value::Object(vec![
                (
                    "sampled".into(),
                    Value::Num(f64::from(report.sampling.sampled)),
                ),
                (
                    "unsampled".into(),
                    Value::Num(f64::from(report.sampling.unsampled)),
                ),
                (
                    "dropped_total".into(),
                    Value::Num(report.sampling.dropped_total as f64),
                ),
                ("exact".into(), Value::Bool(report.sampling.exact)),
            ]),
        ),
    ])
}
