//! Regenerates Table 6 (performance overhead of authenticated binaries on
//! the nine-program benchmark suite) and prints Table 5 (the suite
//! description) alongside.

use asc_bench::{measure_program, sim_seconds};

const SUITE: &[&str] = &[
    "gzip-spec",
    "crafty",
    "mcf",
    "vpr",
    "twolf",
    "gcc",
    "vortex",
    "pyramid",
    "gzip",
];

fn main() {
    let json = asc_bench::cli::json_flag_only("table6");

    println!("Table 5: Benchmark suite");
    println!("{:<12} {:<14} description", "Program", "Type");
    for name in SUITE {
        let spec = asc_workloads::program(name)
            .expect("name appears in the asc_workloads program registry");
        let kind = match spec.kind {
            asc_workloads::ProgramKind::Cpu => "CPU",
            asc_workloads::ProgramKind::Syscall => "syscall",
            asc_workloads::ProgramKind::Mixed => "syscall & CPU",
        };
        println!("{:<12} {:<14} {}", spec.name, kind, spec.description);
    }
    println!();

    println!("Table 6: Performance overhead (simulated seconds @100MHz)");
    println!(
        "{:<12} {:>12} {:>14} {:>10} {:>10} {:>9} {:>9}",
        "Program", "Original(s)", "Authentic.(s)", "Overhead%", "Paper%", "Syscalls", "Cycles/M"
    );
    let mut rows = Vec::new();
    for (i, name) in SUITE.iter().enumerate() {
        let row = measure_program(name, 100 + i as u16);
        println!(
            "{:<12} {:>12.4} {:>14.4} {:>10.2} {:>10.2} {:>9} {:>9.1}",
            row.name,
            sim_seconds(row.base_cycles),
            sim_seconds(row.auth_cycles),
            row.overhead_pct,
            row.paper_pct,
            row.syscalls,
            row.base_cycles as f64 / 1e6,
        );
        rows.push(row);
    }
    if json {
        let doc =
            asc_core::json::Value::Array(rows.iter().map(asc_bench::PerfRow::to_value).collect());
        println!("{}", doc.to_pretty());
    }
}
