//! Regenerates Table 4: per-system-call cost of authentication.
//!
//! Methodology mirrors the paper: each system call executes in a tight
//! loop (the paper used 10,000 iterations and `rdtsc`; the simulator's
//! cycle counter is exact, so 1,000 iterations suffice), the loop overhead
//! is measured separately and subtracted, and the experiment runs once
//! with the unmodified binary and once with the installed binary. As in
//! the paper, the authenticated binaries here are built *without* control
//! flow policies.

use asc_bench::bench_key;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{FileSystem, Kernel, KernelOptions, Personality};
use asc_vm::Machine;

const N: u32 = 1000;

struct Case {
    name: &'static str,
    /// Paper Table 4 original / authenticated cycles for comparison.
    paper: (u64, u64),
    /// Assembly for one loop body iteration (argument setup + call).
    body: &'static str,
    /// One-time setup before the loop.
    setup: &'static str,
    /// Extra data/bss sections.
    data: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "getpid()",
        paper: (1141, 5045),
        setup: "",
        body: "
            movi r0, 20
            syscall
        ",
        data: "",
    },
    Case {
        name: "gettimeofday()",
        paper: (1395, 5703),
        setup: "",
        body: "
            movi r1, tvbuf
            movi r2, 0
            movi r0, 78
            syscall
        ",
        data: "
            .bss
        tvbuf: .space 16
        ",
    },
    Case {
        name: "read(4096)",
        paper: (7324, 10013),
        setup: "
            movi r0, 5          ; open(\"/bigfile\", O_RDONLY)
            movi r1, bigpath
            movi r2, 0
            movi r3, 0
            syscall
            mov r6, r0
        ",
        body: "
            mov r1, r6
            movi r2, iobuf
            movi r3, 4096
            movi r0, 3
            syscall
        ",
        data: "
            .rodata
        bigpath: .asciz \"/bigfile\"
            .bss
        iobuf: .space 4096
        ",
    },
    Case {
        name: "write(4096)",
        paper: (39479, 40396),
        setup: "
            movi r0, 5          ; open(\"/out\", O_WRONLY|O_CREAT|O_TRUNC)
            movi r1, outpath
            movi r2, 0x241
            movi r3, 0x1b6
            syscall
            mov r6, r0
        ",
        body: "
            mov r1, r6
            movi r2, iobuf
            movi r3, 4096
            movi r0, 4
            syscall
        ",
        data: "
            .rodata
        outpath: .asciz \"/out\"
            .bss
        iobuf: .space 4096
        ",
    },
    Case {
        name: "brk()",
        paper: (1155, 5083),
        setup: "
            movi r0, 45
            movi r1, 0
            syscall
            mov r6, r0          ; current break
        ",
        body: "
            mov r1, r6
            movi r0, 45
            syscall
        ",
        data: "",
    },
];

fn program(case: &Case, empty_loop: bool) -> String {
    let body = if empty_loop { "" } else { case.body };
    format!(
        "
            .text
            .entry main
        main:
        {setup}
            movi r4, 0
        loop:
        {body}
            addi r4, r4, 1
            movi r5, {N}
            bne r4, r5, loop
            movi r1, 0
            movi r0, 1
            syscall
        {data}
        ",
        setup = case.setup,
        data = case.data,
    )
}

fn fixture_fs() -> FileSystem {
    let mut fs = FileSystem::new();
    fs.write_file("/bigfile", vec![0x41; (N as usize + 1) * 4096])
        .expect("fixture file writes into the fresh in-memory filesystem");
    fs
}

/// Runs a program and returns total cycles plus the kernel's statistics.
/// `cache` additionally enables the verified-call cache (warm fast path).
fn run_measured(src: &str, authenticated: bool, cache: bool) -> (u64, asc_kernel::KernelStats) {
    let binary = asc_asm::assemble(src).expect("micro-benchmark source assembles");
    let (binary, enforce) = if authenticated {
        let installer = Installer::new(
            bench_key(),
            // Per the paper: microbenchmarks measure authenticated calls
            // WITHOUT control flow policies.
            InstallerOptions::new(Personality::Linux).without_control_flow(),
        );
        let (auth, _) = installer
            .install(&binary, "micro")
            .expect("installer authenticates the plain binary");
        (auth, true)
    } else {
        (binary, false)
    };
    let opts = if enforce {
        let opts = KernelOptions::enforcing(Personality::Linux);
        if cache {
            opts.with_verify_cache()
        } else {
            opts
        }
    } else {
        KernelOptions::plain(Personality::Linux)
    };
    let mut kernel = Kernel::with_fs(opts, fixture_fs());
    if enforce {
        kernel.set_key(bench_key());
    }
    kernel.set_brk(binary.highest_addr());
    let mut machine =
        Machine::load(&binary, kernel).expect("authenticated binary fits in guest memory");
    let outcome = machine.run(10_000_000_000);
    assert!(
        outcome.is_success(),
        "micro case failed: {outcome:?} alerts={:?}",
        machine.handler().alerts()
    );
    let cycles = machine.cycles();
    (cycles, *machine.into_handler().stats())
}

fn run_cycles(src: &str, authenticated: bool) -> u64 {
    run_measured(src, authenticated, false).0
}

fn main() {
    asc_bench::cli::reject_args("table4");
    println!("Table 4: Effect of authentication (cycles per call, {N} iterations)");
    println!("Auth(warm) = same loop with the verified-call cache enabled.");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>9} | paper: {:>8} {:>8} {:>8}",
        "System Call", "Original", "Authent.", "Auth(warm)", "Ovhd%", "orig", "auth", "ovhd%"
    );
    let mut warm_stats_sum = (0u64, 0u64); // (cold cycles/call, warm cycles/call) maxima
    for case in CASES {
        // Loop overhead: the same loop with an empty body.
        let loop_only = run_cycles(&program(case, true), false);
        let orig = run_cycles(&program(case, false), false);
        let auth = run_cycles(&program(case, false), true);
        let (warm, warm_stats) = run_measured(&program(case, false), true, true);
        // The final exit syscall appears in all variants; the subtraction
        // removes it along with the loop scaffold.
        let per_orig = (orig - loop_only) / N as u64;
        let per_auth = (auth.saturating_sub(loop_only)) / N as u64;
        let per_warm = (warm.saturating_sub(loop_only)) / N as u64;
        let ovhd = (per_auth as f64 - per_orig as f64) / per_orig as f64 * 100.0;
        let paper_ovhd = (case.paper.1 as f64 - case.paper.0 as f64) / case.paper.0 as f64 * 100.0;
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>9.1} | {:>14} {:>8} {:>8.1}",
            case.name, per_orig, per_auth, per_warm, ovhd, case.paper.0, case.paper.1, paper_ovhd
        );
        warm_stats_sum.0 = warm_stats_sum
            .0
            .max(warm_stats.cold_verify_cycles_per_call());
        warm_stats_sum.1 = warm_stats_sum
            .1
            .max(warm_stats.warm_verify_cycles_per_call());
    }
    // The measurement-overhead rows of the paper's table.
    let loop_cost = run_cycles(&program(&CASES[0], true), false) / N as u64;
    println!("{:<16} {:>10}", "loop cost", loop_cost);
    println!(
        "verify cycles/call: cold <= {}, warm <= {} (measured AES blocks; cache hits skip \
         the CMAC recomputation)",
        warm_stats_sum.0, warm_stats_sum.1
    );
}
