//! Regenerates Table 3: argument coverage of the generated policies for
//! bison, calc, screen, and tar.

use asc_bench::bench_key;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::Personality;
use asc_workloads::{build, program};

/// Paper Table 3 rows: (sites, calls, args, o/p, auth, mv, fds).
fn paper_row(name: &str) -> (u32, u32, u32, u32, u32, u32, u32) {
    match name {
        "bison" => (158, 31, 321, 31, 90, 2, 69),
        "calc" => (275, 54, 544, 78, 183, 2, 109),
        "screen" => (639, 67, 1164, 133, 363, 7, 297),
        "tar" => (381, 58, 750, 105, 238, 3, 152),
        _ => (0, 0, 0, 0, 0, 0, 0),
    }
}

fn main() {
    asc_bench::cli::reject_args("table3");
    println!("Table 3: Argument coverage");
    println!(
        "{:<8} {:>6} {:>6} {:>6} {:>5} {:>6} {:>4} {:>5} {:>7} | paper: sites calls args o/p auth mv fds",
        "prog", "sites", "calls", "args", "o/p", "auth", "mv", "fds", "auth%"
    );
    for name in ["bison", "calc", "screen", "tar"] {
        let spec = program(name).expect("name appears in the asc_workloads program registry");
        let binary =
            build(spec, Personality::Linux).expect("registered workload source compiles and links");
        let installer = Installer::new(bench_key(), InstallerOptions::new(Personality::Linux));
        let (_, stats, _) = installer
            .generate_policy(&binary, name)
            .expect("installer lifts and analyzes the plain binary");
        let p = paper_row(name);
        println!(
            "{:<8} {:>6} {:>6} {:>6} {:>5} {:>6} {:>4} {:>5} {:>6.1}% | {:>12} {:>5} {:>4} {:>3} {:>4} {:>2} {:>3}",
            name,
            stats.sites,
            stats.calls,
            stats.args,
            stats.out_params,
            stats.auth,
            stats.multi_value,
            stats.fds,
            stats.auth as f64 / stats.args.max(1) as f64 * 100.0,
            p.0, p.1, p.2, p.3, p.4, p.5, p.6,
        );
    }
    println!();
    println!("The paper reports 30-40% of arguments statically determined (auth/args);");
    println!("the auth% column shows the reproduction's coverage.");
}
