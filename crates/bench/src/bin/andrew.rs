//! Regenerates the §4.3 multiprogram (Andrew-style) benchmark: a series of
//! routine file-manipulation tasks — creation, copying, permission checks,
//! archival, compression, sorting, moving, deleting — performed by
//! general-purpose tools over a shared filesystem, run once with original
//! binaries and once with authenticated ones.
//!
//! The paper reports ≈12,000 system calls per iteration and a 0.96%
//! execution-time increase (259.66s → 262.14s).

use std::collections::HashMap;

use asc_bench::{bench_key, sim_seconds};
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{FileSystem, Kernel, KernelOptions, Personality};
use asc_object::Binary;
use asc_vm::Machine;
use asc_workloads::tools::{iteration_plan, setup_corpus, tool_source, TOOLS};

const PERSONALITY: Personality = Personality::Linux;

fn build_tools(authenticated: bool) -> HashMap<&'static str, Binary> {
    TOOLS
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let src = tool_source(t.name).expect("tool name appears in the Andrew tool registry");
            let plain = asc_workloads::build_source(&src, PERSONALITY)
                .expect("registered tool source compiles and links");
            let binary = if authenticated {
                let installer = Installer::new(
                    bench_key(),
                    InstallerOptions::new(PERSONALITY).with_program_id(200 + i as u16),
                );
                installer
                    .install(&plain, t.name)
                    .expect("installer authenticates the plain tool binary")
                    .0
            } else {
                plain
            };
            (t.name, binary)
        })
        .collect()
}

/// Runs one full iteration over `fs`; returns (cycles, syscalls, fs).
fn run_iteration(
    tools: &HashMap<&'static str, Binary>,
    mut fs: FileSystem,
    authenticated: bool,
) -> (u64, u64, FileSystem) {
    let mut cycles = 0u64;
    let mut syscalls = 0u64;
    for step in iteration_plan() {
        let binary = &tools[step.tool];
        let opts = if authenticated {
            KernelOptions::enforcing(PERSONALITY)
        } else {
            KernelOptions::plain(PERSONALITY)
        };
        let mut kernel = Kernel::with_fs(opts, fs);
        if authenticated {
            kernel.set_key(bench_key());
        }
        kernel.set_stdin(step.stdin.clone().into_bytes());
        kernel.set_brk(binary.highest_addr());
        let mut machine = Machine::load(binary, kernel).expect("tool binary fits in guest memory");
        let outcome = machine.run(10_000_000_000);
        assert!(
            outcome.is_success(),
            "step `{}` failed: {outcome:?} (alerts: {:?}, stderr: {:?})",
            step.tool,
            machine.handler().alerts(),
            String::from_utf8_lossy(machine.handler().stderr()),
        );
        cycles += machine.cycles();
        syscalls += machine.handler().stats().syscalls;
        fs = machine.into_handler().into_fs();
    }
    (cycles, syscalls, fs)
}

fn measure(iterations: u32, authenticated: bool) -> (u64, u64) {
    let tools = build_tools(authenticated);
    let mut fs = FileSystem::new();
    setup_corpus(&mut fs);
    let mut total_cycles = 0;
    let mut total_syscalls = 0;
    for _ in 0..iterations {
        let (c, s, next_fs) = run_iteration(&tools, fs, authenticated);
        total_cycles += c;
        total_syscalls += s;
        fs = next_fs;
    }
    (total_cycles, total_syscalls)
}

fn main() {
    asc_bench::cli::reject_args("andrew");
    let iterations = 5;
    let (orig_cycles, orig_calls) = measure(iterations, false);
    let (auth_cycles, auth_calls) = measure(iterations, true);
    let overhead = (auth_cycles as f64 - orig_cycles as f64) / orig_cycles as f64 * 100.0;
    println!("Andrew-style multiprogram benchmark ({iterations} iterations)");
    println!(
        "  original:      {:>10.4} sim-seconds  ({} syscalls/iter)",
        sim_seconds(orig_cycles),
        orig_calls / iterations as u64
    );
    println!(
        "  authenticated: {:>10.4} sim-seconds  ({} syscalls/iter)",
        sim_seconds(auth_cycles),
        auth_calls / iterations as u64
    );
    println!("  overhead:      {overhead:.2}%   (paper: 0.96%, ~12,000 syscalls/iter)");
}
