//! Multi-process server throughput benchmark: M concurrent processes over
//! the syscall-heavy workloads, time-sliced deterministically, each with
//! its own enforcing kernel and a pid namespace in the shared verify
//! cache. Reports aggregate verified calls per simulated second plus
//! per-pid verify-cycle quantiles.
//!
//! The default configuration is fully fixed-seed: its output is pinned at
//! `crates/bench/golden/server.txt` and diffed by the `server-smoke` CI
//! job.
//!
//! ```text
//! cargo run --release -p asc-bench --bin server -- \
//!     [--procs N] [--seed N] [--slice N] [--round-robin] [--json]
//! ```

use asc_bench::server::{render_server, run_server, server_to_value, ServerConfig, ServerMode};

fn main() {
    let mut config = ServerConfig::default();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--procs" => {
                let value = args.next().expect("--procs needs a value");
                config.procs = value.parse().expect("--procs needs a number");
            }
            "--seed" => {
                let value = args.next().expect("--seed needs a value");
                config.seed = parse_u64(&value);
            }
            "--slice" => {
                let value = args.next().expect("--slice needs a value");
                config.slice_instrs = value.parse().expect("--slice needs a number");
            }
            "--round-robin" => config.round_robin = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let run = run_server(&config, ServerMode::Warm);
    if json {
        asc_bench::print_json(&server_to_value(&run));
    } else {
        print!("{}", render_server(&run));
    }
}

fn parse_u64(text: &str) -> u64 {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).expect("--seed hex digits parse as u64")
    } else {
        text.parse().expect("--seed decimal digits parse as u64")
    }
}
