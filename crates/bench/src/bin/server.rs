//! Multi-process server throughput benchmark: M concurrent processes over
//! the syscall-heavy workloads, time-sliced deterministically, each with
//! its own enforcing kernel and a pid namespace in the shared verify
//! cache. Reports aggregate verified calls per simulated second plus
//! per-pid verify-cycle quantiles.
//!
//! With `--fleet` the harness switches to the fleet-scale scenario:
//! spawn/exit churn, hot/cold workload mix, pid-sharded cache namespaces,
//! the batched trap path, and a per-shard report (see
//! `asc_bench::fleet`). `--procs`/`--seed`/`--slice` apply to both;
//! `--batch` and `--churn` are fleet-only.
//!
//! Both default configurations are fully fixed-seed: their outputs are
//! pinned at `crates/bench/golden/server.txt` and
//! `crates/bench/golden/fleet.txt` and diffed by the `server-smoke` and
//! `fleet-smoke` CI jobs.
//!
//! ```text
//! cargo run --release -p asc-bench --bin server -- \
//!     [--fleet] [--procs N] [--seed N] [--slice N] [--round-robin] \
//!     [--batch N] [--churn N] [--json]
//! ```

use asc_bench::fleet::{fleet_to_value, render_fleet, run_fleet, FleetConfig};
use asc_bench::server::{render_server, run_server, server_to_value, ServerConfig, ServerMode};

const SERVER_USAGE: &str =
    "[--fleet] [--procs N] [--seed N] [--slice N] [--batch K] [--churn N] [--round-robin] [--json]";

fn main() {
    let mut config = ServerConfig::default();
    let mut fleet_config = FleetConfig::default();
    let mut fleet = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fleet" => fleet = true,
            "--procs" => {
                let value = args.next().expect("--procs needs a value");
                config.procs = value.parse().expect("--procs needs a number");
                fleet_config.procs = config.procs;
            }
            "--seed" => {
                let value = args.next().expect("--seed needs a value");
                config.seed = parse_u64(&value);
                fleet_config.seed = config.seed;
            }
            "--slice" => {
                let value = args.next().expect("--slice needs a value");
                config.slice_instrs = value.parse().expect("--slice needs a number");
                fleet_config.slice_instrs = config.slice_instrs;
            }
            "--batch" => {
                let value = args.next().expect("--batch needs a value");
                let depth: usize = value.parse().expect("--batch needs a number");
                fleet_config.batch_depth = (depth > 0).then_some(depth);
            }
            "--churn" => {
                let value = args.next().expect("--churn needs a value");
                fleet_config.churn_spawns = value.parse().expect("--churn needs a number");
            }
            "--round-robin" => config.round_robin = true,
            "--json" => json = true,
            other => asc_bench::cli::unknown_arg("server", other, SERVER_USAGE),
        }
    }

    if fleet {
        let run = run_fleet(&fleet_config, ServerMode::Warm);
        if json {
            asc_bench::print_json(&fleet_to_value(&run));
        } else {
            print!("{}", render_fleet(&run));
        }
    } else {
        let run = run_server(&config, ServerMode::Warm);
        if json {
            asc_bench::print_json(&server_to_value(&run));
        } else {
            print!("{}", render_server(&run));
        }
    }
}

fn parse_u64(text: &str) -> u64 {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).expect("--seed hex digits parse as u64")
    } else {
        text.parse().expect("--seed decimal digits parse as u64")
    }
}
