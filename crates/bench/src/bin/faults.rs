//! Fault-injection campaign: seeded corruption of every artifact the
//! verifier trusts, with fail-stop classification.
//!
//! Every trial flips one byte (or one trapped register / one cache
//! entry / the in-kernel counter) and demands the run either dies
//! with an administrator alert *before* the corrupted call dispatches
//! or behaves bit-identically to the clean run. Any other outcome is
//! silent corruption and fails the campaign (non-zero exit).
//!
//! A second section runs the cross-process classes: one pid of a
//! scheduled fleet is perturbed (shared-cache poisoning, counter skew)
//! and every peer must stay bit-identical — any cross-pid leak fails
//! the campaign.
//!
//! A third section repeats the authenticated-string faults against a
//! deliberately weakened verifier (string-contents check disabled) to
//! prove the oracle actually detects bypasses: that configuration
//! must produce a SILENT-CORRUPTION row.
//!
//! ```text
//! cargo run --release -p asc-bench --bin faults -- \
//!     [--seed N] [--trials N] [--workloads a,b,c] [--json] [--no-demo] [--no-cross]
//! ```

use asc_faults::{
    run_campaign, run_cross_campaign, run_weakened_demo, CampaignConfig, CrossConfig, Outcome,
};
use asc_kernel::Personality;

fn main() {
    let mut cfg = CampaignConfig::new(0x0A5C_F417, 8);
    let mut json = false;
    let mut demo = true;
    let mut cross = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let value = args.next().expect("--seed needs a value");
                cfg.seed = parse_u64(&value);
            }
            "--trials" => {
                let value = args.next().expect("--trials needs a value");
                cfg.trials = value.parse().expect("--trials needs a number");
            }
            "--workloads" => {
                let value = args.next().expect("--workloads needs a list");
                cfg.workloads = value.split(',').map(str::to_string).collect();
            }
            "--json" => json = true,
            "--no-demo" => demo = false,
            "--no-cross" => cross = false,
            other => asc_bench::cli::unknown_arg(
                "faults",
                other,
                "[--seed N] [--trials N] [--workloads a,b,c] [--json] [--no-demo] [--no-cross]",
            ),
        }
    }

    let report = run_campaign(&cfg);
    if json {
        asc_bench::print_json(&report.to_value());
    } else {
        println!("{}", report.render());
        if let Some(alert) = report.rows.iter().find_map(|r| r.sample_alert.as_ref()) {
            println!("sample alert: {alert}");
        }
    }

    let mut problems = report.problems();
    if !problems.is_empty() {
        eprintln!("\nCAMPAIGN FAILED:");
        for problem in &problems {
            eprintln!("  {problem}");
        }
    }

    if cross {
        let cross_cfg = CrossConfig {
            workloads: cfg.workloads.clone(),
            ..CrossConfig::new(cfg.seed ^ 0x0C80_5501, cfg.trials)
        };
        let cross_report = run_cross_campaign(&cross_cfg);
        if json {
            asc_bench::print_json(&cross_report.to_value());
        } else {
            println!("{}", cross_report.render());
            if let Some(alert) = cross_report
                .rows
                .iter()
                .find_map(|r| r.sample_alert.as_ref())
            {
                println!("sample cross-pid alert: {alert}");
            }
        }
        let cross_problems = cross_report.problems();
        if !cross_problems.is_empty() {
            eprintln!("\nCROSS-PROCESS CAMPAIGN FAILED:");
            for problem in &cross_problems {
                eprintln!("  {problem}");
            }
            problems.extend(cross_problems);
        }
    }

    let mut demo_failed = false;
    if demo {
        let result = run_weakened_demo(
            cfg.workloads.first().map(String::as_str).unwrap_or("bison"),
            Personality::Linux,
            128,
        );
        if !json {
            println!("\nWeakened-verifier demonstration ({}):", result.workload);
        }
        match &result.silent {
            Some((addr, offset, detail)) => {
                if !json {
                    println!(
                        "  corrupting authenticated string at {addr:#x}+{offset} \
                         with the string check disabled: SILENT-CORRUPTION ({detail})"
                    );
                    let verdict = result
                        .hardened_outcome
                        .map(Outcome::label)
                        .unwrap_or("not run");
                    println!("  same fault against the hardened verifier: {verdict}");
                }
                if result.hardened_outcome == Some(Outcome::SilentCorruption) {
                    eprintln!("DEMO FAILED: hardened verifier also silent");
                    demo_failed = true;
                }
            }
            None => {
                eprintln!(
                    "DEMO FAILED: weakened verifier produced no silent corruption \
                     in {} trials — the oracle may be vacuous",
                    result.scanned
                );
                demo_failed = true;
            }
        }
    }

    if !problems.is_empty() || demo_failed {
        std::process::exit(1);
    }
}

fn parse_u64(text: &str) -> u64 {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).expect("--seed hex digits parse as u64")
    } else {
        text.parse().expect("--seed decimal digits parse as u64")
    }
}
