//! Perf-trajectory harness: sweeps every registered workload (the SPEC
//! analogues plus the Andrew multiprogram benchmark) base/cold/warm with a
//! metrics registry attached, writes the schema-versioned `BENCH_4.json`,
//! prints the quantile table, and — with `--check <baseline.json>` — exits
//! nonzero when any tracked total or quantile regressed beyond its
//! per-metric tolerance. CI runs this as the `perf-gate` job against
//! `crates/bench/golden/perf_baseline.json`.
//!
//! Usage: `perf [--out FILE] [--check BASELINE] [--json]`

use std::process::ExitCode;

use asc_bench::perf::{compare, render_table, sweep, REPORT_FILE};
use asc_core::json::Value;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = REPORT_FILE.to_string();
    let mut check: Option<String> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .unwrap_or_else(|| {
                        eprintln!("--out requires a file path");
                        std::process::exit(2);
                    })
                    .clone();
            }
            "--check" => {
                i += 1;
                check = Some(
                    args.get(i)
                        .unwrap_or_else(|| {
                            eprintln!("--check requires a baseline file path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            "--json" => json = true,
            other => asc_bench::cli::unknown_arg(
                "perf",
                other,
                "[--out FILE] [--check BASELINE] [--json]",
            ),
        }
        i += 1;
    }

    let report = sweep(|name| eprintln!("measuring {name}..."));
    let value = report.to_value();
    let text = value.to_pretty();
    if let Err(e) = std::fs::write(&out, format!("{text}\n")) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{}", render_table(&report));
    println!("report written to {out}");
    if json {
        println!("{text}");
    }

    let Some(baseline_path) = check else {
        return ExitCode::SUCCESS;
    };
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Value::parse(&baseline_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("baseline {baseline_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match compare(&baseline, &value) {
        Ok(regressions) if regressions.is_empty() => {
            println!("perf gate: OK (no regressions vs {baseline_path})");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            eprintln!(
                "perf gate: {} regression(s) vs {baseline_path}:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("perf gate: cannot compare reports: {e}");
            ExitCode::FAILURE
        }
    }
}
