//! Ablation: enforcement-architecture comparison (§2.3's cost argument).
//!
//! Runs the same workloads under four regimes: no monitoring,
//! authenticated system calls (policies in the binary, checks in the trap
//! handler), an in-kernel policy-table monitor, and a Systrace-style
//! user-space daemon (two extra context switches per call). The paper's
//! claim: ASC's total overhead is below both alternatives even though it
//! checks *every* call.

use asc_bench::{bench_key, build_and_install};
use asc_kernel::Personality;
use asc_monitors::{train, InKernelMonitor, MonitoredKernel, UserSpaceMonitor};
use asc_vm::Machine;
use asc_workloads::{kernel_for, measure, measure_cached, program};

const PERSONALITY: Personality = Personality::Linux;

fn run_monitored(
    name: &str,
    make: fn(asc_kernel::Kernel, asc_monitors::SystracePolicy) -> MonitoredKernel,
) -> u64 {
    let spec = program(name).expect("name appears in the asc_workloads program registry");
    let binary = asc_workloads::build(spec, PERSONALITY)
        .expect("registered workload source compiles and links");
    // Train the monitor on one observation run.
    let (outcome, kernel) = asc_workloads::run_plain(spec, &binary, PERSONALITY);
    assert!(outcome.is_success());
    let policy = train(name, [asc_monitors::trace_names(&kernel)]);
    // Enforced run under the wrapped kernel.
    let mut inner = kernel_for(spec, PERSONALITY, false);
    inner.set_brk(binary.highest_addr());
    let mut handler = make(inner, policy);
    handler.set_personality(PERSONALITY);
    let mut machine =
        Machine::load(&binary, handler).expect("authenticated binary fits in guest memory");
    let outcome = machine.run(asc_workloads::RUN_BUDGET);
    assert!(
        outcome.is_success(),
        "{name} under monitor failed: {outcome:?} ({:?})",
        machine.handler().violations()
    );
    machine.cycles()
}

fn main() {
    asc_bench::cli::reject_args("ablation");
    println!("Ablation: enforcement architecture cost (overhead % vs unmonitored)");
    println!("ASC warm% = ASC with the verified-call cache (MAC cache) enabled.");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Program", "base cycles", "ASC%", "ASC warm%", "in-kernel%", "user-space%"
    );
    for (i, name) in ["gzip", "pyramid", "vortex"].iter().enumerate() {
        let spec = program(name).expect("name appears in the asc_workloads program registry");
        let (plain, auth, _) = build_and_install(spec, PERSONALITY, 300 + i as u16);
        let base = measure(spec, &plain, PERSONALITY, None);
        assert!(base.outcome.is_success());
        let asc = measure(spec, &auth, PERSONALITY, Some(bench_key()));
        assert!(asc.outcome.is_success());
        let warm = measure_cached(spec, &auth, PERSONALITY, bench_key());
        assert!(warm.outcome.is_success());
        assert!(
            warm.cycles <= asc.cycles,
            "warm run must not cost more than cold"
        );
        let in_kernel = run_monitored(name, InKernelMonitor::new);
        let user_space = run_monitored(name, UserSpaceMonitor::new);
        let pct = |c: u64| (c as f64 - base.cycles as f64) / base.cycles as f64 * 100.0;
        println!(
            "{:<10} {:>12} {:>11.2} {:>11.2} {:>11.2} {:>11.2}",
            name,
            base.cycles,
            pct(asc.cycles),
            pct(warm.cycles),
            pct(in_kernel),
            pct(user_space),
        );
    }
    println!();
    println!("The user-space daemon pays context switches per call and costs 3-4x");
    println!("ASC (the paper's §2.3 speed argument). The in-kernel table monitor is");
    println!("slightly cheaper per trap but only matches the syscall *name* and");
    println!("needs policy storage + lookup logic inside the kernel — ASC enforces");
    println!("full per-site argument and control-flow policies with ~250 lines of");
    println!("kernel code (the paper's simplicity argument).");
}
