//! Verification-tier ablation: what the SFIP flow tier costs and what it
//! buys.
//!
//! Cost: the paper's policy workloads (bison, calc, tar) under every
//! [`VerifyTier`] — total simulated cycles, overhead versus the
//! unauthenticated base, verification cycles per call, and AES blocks
//! (the flow tier must run zero).
//!
//! Coverage: the seeded tier × fault-class matrix from `asc-faults`,
//! including one syscall-reorder attack trial per tier. The run exits
//! nonzero if the coverage model is violated (see
//! `asc_faults::TierReport::problems`).
//!
//! Deterministic end to end — CI diffs the output against
//! `crates/bench/golden/tiers.txt` (the `tiers-smoke` job).

use asc_bench::{bench_key, build_and_install};
use asc_faults::{run_tier_matrix, TierMatrixConfig};
use asc_kernel::{Personality, VerifyTier};
use asc_workloads::{measure, measure_tier, program};

const PERSONALITY: Personality = Personality::Linux;

/// Fixed seed/trials so the table is byte-reproducible.
const SEED: u64 = 0x5F1F_CA5E;
const TRIALS: u32 = 3;

fn main() {
    asc_bench::cli::reject_args("tiers");
    println!("Verification-tier ablation: cost x coverage");
    println!();
    println!(
        "{:<10} {:<10} {:>12} {:>8} {:>12} {:>11}",
        "workload", "tier", "cycles", "over%", "verify/call", "aes-blocks"
    );
    for (i, name) in ["bison", "calc", "tar"].iter().enumerate() {
        let spec = program(name).expect("name appears in the asc_workloads program registry");
        let (plain, auth, _) = build_and_install(spec, PERSONALITY, 0x0F60 + i as u16);
        let base = measure(spec, &plain, PERSONALITY, None);
        assert!(base.outcome.is_success());
        println!(
            "{:<10} {:<10} {:>12} {:>8} {:>12} {:>11}",
            name, "none", base.cycles, "-", "-", "-"
        );
        for tier in VerifyTier::ALL {
            let run = measure_tier(spec, &auth, PERSONALITY, bench_key(), tier);
            assert!(
                run.outcome.is_success(),
                "{name} under {} failed: {:?} (alerts: {:?})",
                tier.name(),
                run.outcome,
                run.kernel.alerts()
            );
            let stats = run.kernel.stats();
            let over = (run.cycles as f64 - base.cycles as f64) / base.cycles as f64 * 100.0;
            let per_call = stats.verify_cycles as f64 / stats.verified.max(1) as f64;
            println!(
                "{:<10} {:<10} {:>12} {:>8.2} {:>12.0} {:>11}",
                "",
                tier.name(),
                run.cycles,
                over,
                per_call,
                stats.verify_aes_blocks
            );
        }
    }
    println!();
    let report = run_tier_matrix(&TierMatrixConfig::new(SEED, TRIALS));
    print!("{}", report.render());
    let problems = report.problems();
    if !problems.is_empty() {
        eprintln!("tier coverage model violated:");
        for p in &problems {
            eprintln!("  {p}");
        }
        std::process::exit(1);
    }
    println!();
    println!("coverage model: OK (flow-only catches ordering but misses in-edge");
    println!("forgeries; mac alone misses the reorder attack; mac+flow dominates");
    println!("with zero silent rows)");
}
