//! Continuous fleet-health monitoring dashboard: windowed telemetry on a
//! healthy monitored fleet, quiet-SLO verdicts for the default detector
//! suite, and the fault-campaign detection-latency coverage matrix.
//!
//! The default report is golden-pinned (`crates/bench/golden/health.txt`)
//! and diffed by the `health-smoke` CI job. Exits nonzero if the healthy
//! fleet fires any quiet-SLO detector, any fault class goes undetected,
//! or a detection's monitoring lag exceeds the hard bound.
//!
//! ```text
//! cargo run --release -p asc-bench --bin health -- \
//!     [--seed N] [--window CYCLES] [--json]
//! ```

use asc_bench::cli::unknown_arg;
use asc_bench::health::{health_to_value, render_health, run_health, HealthConfig};

const USAGE: &str = "[--seed N] [--window CYCLES] [--json]";

fn main() {
    let mut cfg = HealthConfig::default();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let value = args.next().expect("--seed needs a value");
                cfg.seed = parse_u64(&value);
            }
            "--window" => {
                let value = args.next().expect("--window needs a value");
                cfg.window_cycles = value.parse().expect("--window needs a cycle count");
            }
            "--json" => json = true,
            other => unknown_arg("health", other, USAGE),
        }
    }

    let run = run_health(&cfg);
    if json {
        asc_bench::print_json(&health_to_value(&run));
    } else {
        print!("{}", render_health(&run));
    }

    let problems = run.problems();
    if !problems.is_empty() {
        eprintln!("\nHEALTH BENCH FAILED:");
        for problem in &problems {
            eprintln!("  {problem}");
        }
        std::process::exit(1);
    }
}

fn parse_u64(text: &str) -> u64 {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).expect("--seed hex digits parse as u64")
    } else {
        text.parse().expect("--seed decimal digits parse as u64")
    }
}
