//! Regenerates Table 2: per-syscall comparison of the bison policies on
//! OpenBSD — which calls the static-analysis (ASC) policy permits versus
//! the trained Systrace policy (with fsread/fswrite aliases expanded).

use std::collections::BTreeSet;

use asc_bench::bench_key;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::Personality;
use asc_monitors::{trace_names, train};
use asc_workloads::{build, program, run_plain};

/// The paper's Table 2 rows, for the comparison column.
fn paper_row(name: &str) -> Option<(&'static str, &'static str)> {
    Some(match name {
        "__syscall" => ("yes", "NO"),
        "close" => ("NO", "yes"),
        "fcntl" => ("yes", "NO"),
        "fstatfs" => ("yes", "NO"),
        "getdirentries" => ("yes", "NO"),
        "getpid" => ("yes", "NO"),
        "gettimeofday" => ("yes", "NO"),
        "kill" => ("yes", "NO"),
        "madvise" => ("yes", "NO"),
        "mkdir" => ("NO", "yes (fswrite)"),
        "mmap" => ("NO", "yes"),
        "nanosleep" => ("yes", "NO"),
        "readlink" => ("NO", "yes (fsread)"),
        "rmdir" => ("NO", "yes (fswrite)"),
        "sendto" => ("yes", "NO"),
        "sigaction" => ("yes", "NO"),
        "socket" => ("yes", "NO"),
        "sysconf" => ("yes", "NO"),
        "uname" => ("yes", "NO"),
        "unlink" => ("NO", "yes (fswrite)"),
        "writev" => ("yes", "NO"),
        _ => return None,
    })
}

fn main() {
    asc_bench::cli::reject_args("table2");
    let personality = Personality::OpenBsd;
    let spec = program("bison").expect("name appears in the asc_workloads program registry");
    let binary = build(spec, personality).expect("registered workload source compiles and links");

    // ASC policy via static analysis.
    let installer = Installer::new(bench_key(), InstallerOptions::new(personality));
    let (policy, _, warnings) = installer
        .generate_policy(&binary, "bison")
        .expect("installer lifts and analyzes the plain binary");
    let asc: BTreeSet<String> = policy
        .distinct_syscalls()
        .iter()
        .map(|&nr| personality.name_of(nr).to_string())
        .collect();

    // Systrace policy via training.
    let (outcome, kernel) = run_plain(spec, &binary, personality);
    assert!(outcome.is_success(), "training run failed: {outcome:?}");
    let systrace = train("bison", [trace_names(&kernel)]);
    let systrace_permitted = systrace.permitted();

    println!("Table 2: Comparison of policies for bison (OpenBSD)");
    println!(
        "{:<16} {:<6} {:<16} | paper: {:<6} Systrace",
        "System call", "ASC", "Systrace", "ASC"
    );
    let mut all: BTreeSet<String> = asc.union(&systrace_permitted).cloned().collect();
    // Also include rows the paper lists (e.g. mmap, which our ASC policy
    // sees as __syscall).
    for (name, _) in ["mmap", "close"]
        .iter()
        .map(|n| (n.to_string(), ()))
        .collect::<Vec<_>>()
    {
        all.insert(name);
    }
    let mut agree = 0;
    let mut total_diff = 0;
    for name in &all {
        let in_asc = asc.contains(name);
        let in_st = systrace_permitted.contains(name);
        if in_asc == in_st {
            agree += 1;
            continue; // the paper's table lists only the differences
        }
        total_diff += 1;
        let st_label = match systrace.permit_reason(name) {
            Some("trained") => "yes".to_string(),
            Some(alias) => format!("yes ({alias})"),
            None => "NO".to_string(),
        };
        let paper = paper_row(name)
            .map(|(a, s)| format!("{a:<6} {s}"))
            .unwrap_or_else(|| "(not listed)".to_string());
        println!(
            "{:<16} {:<6} {:<16} | {:<7} {}",
            name,
            if in_asc { "yes" } else { "NO" },
            st_label,
            "",
            paper
        );
    }
    println!();
    println!("{total_diff} differing syscalls, {agree} in agreement.");
    println!(
        "Disassembly warnings reported to the administrator: {}",
        warnings
            .iter()
            .filter(|w| w.contains("disassemble"))
            .count()
    );
}
