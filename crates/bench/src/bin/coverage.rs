//! Installer precision over the hostile-guest corpus, plus the origin
//! (`.ascsites`) enforcement verdict for every guest.
//!
//! The corpus (`asc_workloads::hostile`) collects the adversarial code
//! shapes that B-Side-style evaluations show binary-level syscall
//! identification must be measured on: function-pointer dispatch, deep
//! `__syscall` wrapper indirection, un-disassemblable stubs, data
//! masquerading as text, and a raw misaligned `SYSCALL` gadget. For
//! each guest the table reports the installer's own precision counters
//! (discovered vs rewritten sites, unknown-number sites, regions the
//! lifter could not disassemble, unknown-argument rate, pred-set
//! over-approximation) and then runs the installed guest under every
//! verification tier with its `.ascsites` registry loaded.
//!
//! Expected shape, enforced with a non-zero exit:
//!
//! * verdicts agree across tiers (the origin check precedes tier
//!   dispatch);
//! * every guest whose hidden syscall survives rewriting is killed
//!   with `unrewritten-site` — in particular the raw-gadget guest dies
//!   before its smuggled `write` produces a single byte of output.
//!
//! Deterministic end to end — CI diffs the output against
//! `crates/bench/golden/coverage.txt` (the `coverage-smoke` job).

use asc_bench::bench_key;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{Kernel, KernelOptions, Personality, VerifyTier};
use asc_object::Binary;
use asc_vm::{Machine, RunOutcome};
use asc_workloads::hostile::{build_hostile, HOSTILE};

const PERSONALITY: Personality = Personality::Linux;

fn main() {
    asc_bench::cli::reject_args("coverage");
    println!("Installer precision x origin enforcement: hostile-guest corpus");
    println!();
    println!(
        "{:<14} {:>5} {:>5} {:>6} {:>7} {:>6} {:>5} {:>9} {:>9} {:>7} {:>7} {:>5}",
        "guest",
        "disc",
        "rewr",
        "rate%",
        "unk-nr",
        "undis",
        "args",
        "unk-args",
        "unk-arg%",
        "pred-e",
        "pred-s",
        "over"
    );
    let mut guests: Vec<(&str, Binary)> = Vec::new();
    for (i, spec) in HOSTILE.iter().enumerate() {
        let plain = build_hostile(spec).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let installer = Installer::new(
            bench_key(),
            InstallerOptions::new(PERSONALITY).with_program_id(0x0C00 + i as u16),
        );
        let (auth, report) = installer
            .install(&plain, spec.name)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let p = &report.precision;
        println!(
            "{:<14} {:>5} {:>5} {:>6.1} {:>7} {:>6} {:>5} {:>9} {:>9.1} {:>7} {:>7} {:>5.1}",
            spec.name,
            p.discovered,
            p.rewritten,
            p.rewrite_rate() * 100.0,
            p.unknown_nr,
            p.undisassembled_regions,
            p.input_args,
            p.unknown_args,
            p.unknown_arg_rate() * 100.0,
            p.pred_entries,
            p.pred_sites,
            p.pred_over_approx(),
        );
        guests.push((spec.name, auth));
    }

    println!();
    println!(
        "{:<14} {:<24} {:<24} {:<24}",
        "guest", "flow-only", "mac", "mac+flow"
    );
    let mut problems: Vec<String> = Vec::new();
    for (name, auth) in &guests {
        let verdicts: Vec<String> = VerifyTier::ALL
            .iter()
            .map(|&tier| verdict(auth, tier))
            .collect();
        println!(
            "{:<14} {:<24} {:<24} {:<24}",
            name, verdicts[0], verdicts[1], verdicts[2]
        );
        if verdicts.iter().any(|v| v != &verdicts[0]) {
            problems.push(format!(
                "{name}: verdicts diverge across tiers ({verdicts:?}) — the \
                 origin check must fire before tier dispatch"
            ));
        }
        if *name == "gadget" && verdicts[0] != "killed:unrewritten-site" {
            problems.push(format!(
                "{name}: raw-gadget guest must die on the origin check, got {}",
                verdicts[0]
            ));
        }
    }

    if !problems.is_empty() {
        eprintln!("coverage model violated:");
        for p in &problems {
            eprintln!("  {p}");
        }
        std::process::exit(1);
    }
    println!();
    println!("origin model: OK (tier-independent verdicts; hidden syscalls die");
    println!("as unrewritten-site before any side effect)");
}

/// Runs one installed guest under `tier` with its `.ascsites` registry
/// loaded and renders how the run ended.
fn verdict(auth: &Binary, tier: VerifyTier) -> String {
    let key = bench_key();
    let mut kernel = Kernel::new(KernelOptions::enforcing(PERSONALITY).with_tier(tier));
    kernel.set_key(key.clone());
    if tier.checks_flow() {
        kernel.set_flow_graph(asc_workloads::flow_graph_of(auth, &key));
    }
    kernel.set_site_registry(asc_workloads::sites_of(auth, &key));
    kernel.set_brk(auth.highest_addr());
    let mut m = Machine::load(auth, kernel).expect("guest fits");
    let outcome = m.run(100_000_000);
    let kernel = m.into_handler();
    match &outcome {
        RunOutcome::Exited(code) => format!("exited({code})"),
        RunOutcome::Killed(_) => match kernel.alerts().last() {
            Some(alert) => format!("killed:{}", alert.reason().code()),
            None => "killed:<no alert>".into(),
        },
        other => format!("{other:?}"),
    }
}
