//! Regenerates the §4.1 attack experiments and the §5.5 Frankenstein
//! experiment: every attack against the protected binary must be blocked;
//! against the unprotected binary the injection attacks succeed.

use asc_attacks::{frankenstein::run_frankenstein, AttackLab, AttackOutcome};
use asc_bench::bench_key;

fn show(label: &str, outcome: &AttackOutcome, expected_blocked: bool) {
    let verdict = match (outcome, expected_blocked) {
        (AttackOutcome::Blocked(_), true) | (AttackOutcome::Succeeded(_), false) => "as expected",
        _ => "UNEXPECTED",
    };
    let desc = match outcome {
        AttackOutcome::Succeeded(s) => format!("SUCCEEDED: {s}"),
        AttackOutcome::Blocked(s) => format!("blocked: {s}"),
        AttackOutcome::Failed(s) => format!("failed: {s}"),
    };
    println!("  {label:<44} {desc}  [{verdict}]");
}

fn main() {
    asc_bench::cli::reject_args("attacks");
    let lab = AttackLab::new(bench_key());
    println!("Attack experiments (victim: reads a file name, runs /bin/ls on it)\n");

    println!("Against the UNPROTECTED binary:");
    show(
        "shellcode injection (execve /bin/sh)",
        &lab.shellcode_attack(false),
        false,
    );
    show(
        "non-control-data (/bin/ls -> /bin/sh)",
        &lab.non_control_data_attack(false),
        false,
    );
    println!();

    println!("Against the INSTALLED (authenticated) binary:");
    show(
        "shellcode injection (unauthenticated call)",
        &lab.shellcode_attack(true),
        true,
    );
    show(
        "mimicry via stolen authenticated gadget",
        &lab.mimicry_attack(),
        true,
    );
    show(
        "non-control-data (authenticated string)",
        &lab.non_control_data_attack(true),
        true,
    );
    println!();

    println!("Against the INSTALLED binary with the verified-call cache (warm fast path):");
    let warm = AttackLab::new(bench_key()).with_verify_cache();
    show(
        "shellcode injection (warm cache)",
        &warm.shellcode_attack(true),
        true,
    );
    show(
        "stale-cache string rewrite mid-run",
        &warm.stale_cache_string_attack(),
        true,
    );
    show(
        "stale-cache policy-state replay",
        &warm.stale_cache_state_replay_attack(),
        true,
    );
    println!();

    println!("Frankenstein attack (program stitched from two donors' gadgets):");
    show(
        "without unique block ids (§5.5 off)",
        &run_frankenstein(&bench_key(), false),
        false,
    );
    show(
        "with unique block ids (countermeasure)",
        &run_frankenstein(&bench_key(), true),
        true,
    );
}
