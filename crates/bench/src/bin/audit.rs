//! The forensic flight-recorder demonstration: black-box recording of a
//! seeded fleet, on-kill bundle capture, and deterministic
//! replay-to-kill.
//!
//! Runs one 8-process fleet with a kernel fault armed on pid 2, with the
//! scheduler's recorder attached. Verifies the four forensic guarantees
//! end to end — recording costs 0 metered cycles (a recorder-off twin is
//! bit-identical), every kill yields a digest-stamped bundle, the bundle
//! replays to the identical kill, and deterministic pid-sampling keeps
//! event accounting exact — and exits nonzero if any guarantee fails.
//!
//! `--json` exports the same data (full bundle included) as JSON.
//! Deterministic end to end — CI diffs the text output against
//! `crates/bench/golden/audit.txt` (the `audit-smoke` job).

use asc_bench::audit::{audit_to_value, render_audit, run_audit};
use asc_bench::print_json;

fn main() {
    let json = asc_bench::cli::json_flag_only("audit");
    let report = run_audit();
    if json {
        print_json(&audit_to_value(&report));
    } else {
        print!("{}", render_audit(&report));
    }
    let problems = report.problems();
    if !problems.is_empty() {
        eprintln!("forensic loop violated:");
        for p in &problems {
            eprintln!("  {p}");
        }
        std::process::exit(1);
    }
}
