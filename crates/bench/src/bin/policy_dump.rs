//! Utility: dump the generated policy for any registered workload, in the
//! §3.1 human-readable rendering or as JSON.
//!
//! ```sh
//! cargo run -p asc-bench --bin policy_dump -- bison openbsd
//! cargo run -p asc-bench --bin policy_dump -- tar linux --json
//! ```

use asc_bench::bench_key;
use asc_core::ArgPolicy;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::Personality;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(flag) = args.iter().find(|a| a.starts_with('-') && *a != "--json") {
        asc_bench::cli::unknown_arg("policy_dump", flag, "[PROGRAM] [linux|openbsd] [--json]");
    }
    let positional: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let program = positional.first().copied().unwrap_or("bison");
    let personality = match positional.get(1).copied() {
        Some("openbsd") => Personality::OpenBsd,
        _ => Personality::Linux,
    };
    let json = args.iter().any(|a| a == "--json");

    let Some(spec) = asc_workloads::program(program) else {
        eprintln!("unknown program `{program}`; registered:");
        for p in asc_workloads::programs() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    };
    let binary = asc_workloads::build(spec, personality)
        .expect("registered workload source compiles and links");
    let installer = Installer::new(bench_key(), InstallerOptions::new(personality));
    let (policy, stats, warnings) = installer
        .generate_policy(&binary, program)
        .expect("installer lifts and analyzes the plain binary");

    if json {
        asc_bench::print_json(&policy.to_value());
        return;
    }

    println!(
        "# {} on {}: {} sites, {} distinct syscalls, {}/{} args authenticated\n",
        program,
        personality.name(),
        stats.sites,
        policy.distinct_syscalls().len(),
        stats.auth,
        stats.args
    );
    for p in policy.iter() {
        println!(
            "Permit {} from location {:#x} in basic block {}",
            personality.name_of(p.syscall_nr),
            p.call_site,
            p.block_id
        );
        for (i, arg) in p.args.iter().enumerate() {
            match arg {
                ArgPolicy::Any => {}
                ArgPolicy::Immediate(v) => println!("    Parameter {i} equals {v}"),
                ArgPolicy::ImmediateAddr(v) => {
                    println!("    Parameter {i} equals address {v:#x}")
                }
                ArgPolicy::StringLit(s) => {
                    println!(
                        "    Parameter {i} equals \"{}\"",
                        String::from_utf8_lossy(s)
                    )
                }
                ArgPolicy::Pattern(pat) => {
                    println!("    Parameter {i} matches pattern \"{pat}\"")
                }
                ArgPolicy::Capability => {
                    println!("    Parameter {i} must be an active descriptor")
                }
            }
        }
        if let Some(preds) = &p.predecessors {
            let list: Vec<String> = preds.iter().map(u32::to_string).collect();
            println!(
                "    If preceded by the system call in block {{{}}}",
                list.join(", ")
            );
        }
        println!();
    }
    for w in &warnings {
        println!("administrator warning: {w}");
    }
}
