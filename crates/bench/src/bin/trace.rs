//! The verifier flight recorder report: per-call-site verification
//! profile of a workload under an enforcing, cache-enabled kernel.
//!
//! For every authenticated call site the table shows the call count, the
//! cold/warm split, and — per check family (call-MAC, auth-string,
//! pattern, capability, predecessor-set, policy-state) — how many checks
//! ran, how many failed, and what they cost in AES blocks, cycles, and
//! bytes. This is the per-check attribution behind the paper's end-to-end
//! overhead numbers (§4.3).
//!
//! `--workload <name>` profiles one registered program (installer pass
//! spans included); the default profiles one iteration of the Andrew-style
//! multiprogram benchmark. `--json` exports the same data as JSON.

use asc_bench::{print_json, profile_andrew, profile_to_value, profile_workload, render_profile};

const USAGE: &str = "[--workload NAME] [--json]";

fn main() {
    let mut json = false;
    let mut workload: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--workload" => workload = Some(args.next().expect("--workload takes a name")),
            other => asc_bench::cli::unknown_arg("trace", other, USAGE),
        }
    }

    let run = match workload.as_deref() {
        None | Some("andrew") => profile_andrew(),
        Some(name) => profile_workload(name),
    };
    if json {
        print_json(&profile_to_value(&run));
    } else {
        print!("{}", render_profile(&run));
    }
}
