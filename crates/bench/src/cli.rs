//! Shared CLI conventions for the bench binaries.
//!
//! Every binary routes unknown arguments through [`unknown_arg`]: the
//! offending flag and a usage line go to stderr and the process exits 2,
//! so a typo can never be mistaken for a successful run (CI jobs pipe
//! these binaries into `diff`). `tests/cli.rs` pins the convention for
//! every binary in the crate.

/// Prints the offending argument and a `usage:` line to stderr, then
/// exits 2 — the shared unknown-argument path.
pub fn unknown_arg(bin: &str, arg: &str, usage: &str) -> ! {
    eprintln!("unknown argument: {arg}");
    eprintln!("usage: {bin} {usage}");
    std::process::exit(2)
}

/// For binaries that take no arguments: rejects anything via
/// [`unknown_arg`].
pub fn reject_args(bin: &str) {
    if let Some(arg) = std::env::args().nth(1) {
        unknown_arg(bin, &arg, "(takes no arguments)");
    }
}

/// For binaries whose only flag is `--json`: parses it, rejecting
/// anything else via [`unknown_arg`].
pub fn json_flag_only(bin: &str) -> bool {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => unknown_arg(bin, other, "[--json]"),
        }
    }
    json
}
