//! The fleet-health dashboard behind `asc-bench --bin health`.
//!
//! Two sections, both pure functions of the seed:
//!
//! 1. **Healthy-fleet dashboard** — a monitored fleet (every kernel at
//!    the strongest tier, metrics registries attached, shared verify
//!    cache, batched trap path) driven to completion with an
//!    [`asc_sentinel::Sentinel`] sampling on slice boundaries. The
//!    per-window table shows every derived series the detectors watch,
//!    and the SLO section proves the whole default suite stayed quiet.
//! 2. **Detection-latency matrix** — the
//!    [`asc_faults::run_latency_campaign`] coverage matrix: every fault
//!    class detected, with armed/effect/detected clocks and the
//!    monitoring-lag bound enforced.
//!
//! The sentinel observes through shared references only, so attaching it
//! cannot perturb the run (`tests/sentinel.rs` proves bit-identity); the
//! default report is golden-pinned (`crates/bench/golden/health.txt`)
//! and diffed by the `health-smoke` CI job. The binary exits nonzero if
//! the healthy fleet fires any quiet-SLO detector or the latency
//! campaign reports a problem.

use asc_core::json::Value;
use asc_faults::{run_latency_campaign, LatencyConfig, LatencyReport};
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{FileSystem, Kernel, KernelMetrics, KernelOptions, Personality, VerifyTier};
use asc_sched::{SchedConfig, SchedPolicy, Scheduler};
use asc_sentinel::{HealthReport, Sentinel, SentinelConfig, Series, WindowSample};
use asc_vm::Machine;
use asc_workloads::{build, flow_graph_of, program, RUN_BUDGET};

use crate::bench_key;

/// Workloads the monitored dashboard fleet runs (two kernels each).
const HEALTH_WORKLOADS: [&str; 3] = ["bison", "calc", "tar"];

/// Health-bench parameters.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Interleaving / campaign seed.
    pub seed: u64,
    /// Sentinel window length on the shared virtual clock.
    pub window_cycles: u64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            seed: 0x5E17_BEA7,
            window_cycles: 200_000,
        }
    }
}

/// One full health-bench run: the monitored fleet's windows and report,
/// plus the detection-latency matrix.
pub struct HealthRun {
    /// The configuration used.
    pub config: HealthConfig,
    /// Final shared virtual clock of the dashboard fleet.
    pub clock: u64,
    /// Retained telemetry windows, in order.
    pub windows: Vec<WindowSample>,
    /// Detector events and SLO verdicts over those windows.
    pub report: HealthReport,
    /// The fault-campaign detection-latency coverage matrix.
    pub latency: LatencyReport,
}

impl HealthRun {
    /// Everything that fails the bench: a fired quiet-SLO detector on
    /// the healthy fleet, or any latency-campaign problem.
    pub fn problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for v in &self.report.verdicts {
            if !v.pass {
                problems.push(format!(
                    "healthy fleet fired quiet-SLO detector `{}` {} time(s)",
                    v.detector, v.fired
                ));
            }
        }
        problems.extend(self.latency.problems());
        problems
    }
}

fn spawn_monitored_fleet(config: &HealthConfig) -> Scheduler {
    let personality = Personality::Linux;
    let mut sched = Scheduler::with_shared_cache(SchedConfig {
        policy: SchedPolicy::SeededRandom(config.seed),
        slice_instrs: 2_000,
        budget_cycles: RUN_BUDGET,
        batch_depth: Some(8),
    });
    for copy in 0..2u16 {
        for (i, name) in HEALTH_WORKLOADS.iter().enumerate() {
            let spec = program(name).expect("health workload is registered");
            let plain = build(spec, personality).expect("health workload builds");
            let installer = Installer::new(
                bench_key(),
                InstallerOptions::new(personality).with_program_id(0x4EA0 + copy * 0x10 + i as u16),
            );
            let (auth, _) = installer.install(&plain, spec.name).expect("installs");
            let mut fs = FileSystem::new();
            (spec.setup_fs)(&mut fs);
            let opts = KernelOptions::enforcing(personality)
                .with_verify_cache()
                .with_tier(VerifyTier::MacPlusFlow);
            let mut kernel = Kernel::with_fs(opts, fs);
            kernel.set_key(bench_key());
            kernel.set_flow_graph(flow_graph_of(&auth, &bench_key()));
            kernel.set_stdin(spec.stdin.to_vec());
            kernel.set_brk(auth.highest_addr());
            kernel.set_metrics(Box::new(KernelMetrics::new()));
            let machine =
                Machine::load(&auth, kernel).expect("workload binary fits in guest memory");
            sched.spawn(spec.name, machine);
        }
    }
    sched
}

/// Runs the monitored fleet and the latency campaign. Fully
/// deterministic for a given config.
pub fn run_health(config: &HealthConfig) -> HealthRun {
    let mut sched = spawn_monitored_fleet(config);
    let sentinel = Sentinel::drive(&mut sched, SentinelConfig::new(config.window_cycles));
    let report = sentinel.report();
    let latency = run_latency_campaign(&LatencyConfig::new(config.seed));
    HealthRun {
        config: *config,
        clock: sched.clock(),
        windows: sentinel.windows().to_vec(),
        report,
        latency,
    }
}

fn ratio_cell(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.3}"),
        None => "-".to_string(),
    }
}

/// Renders the human dashboard (the golden-pinned output of
/// `--bin health`).
pub fn render_health(run: &HealthRun) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let cfg = &run.config;
    let _ = writeln!(
        out,
        "Fleet health dashboard — {} monitored kernels, seed {:#x}, {}-cycle windows",
        HEALTH_WORKLOADS.len() * 2,
        cfg.seed,
        cfg.window_cycles,
    );
    let _ = writeln!(
        out,
        "{:>6} {:>9} {:>9} {:>8} {:>8} {:>6} {:>8} {:>7} {:>7} {:>9} {:>6} {:>6}",
        "window",
        "start",
        "end",
        "syscalls",
        "verified",
        "warm",
        "vc/call",
        "p99-vc",
        "probes",
        "batchfil",
        "alerts",
        "live",
    );
    for w in &run.windows {
        let _ = writeln!(
            out,
            "{:>6} {:>9} {:>9} {:>8} {:>8} {:>6} {:>8} {:>7} {:>7} {:>9} {:>6} {:>6}",
            w.index,
            w.start,
            w.end,
            w.syscalls,
            w.verified,
            ratio_cell(Series::WarmHitRatio.value(w)),
            ratio_cell(Series::VerifyCyclesPerCall.value(w)),
            w.verify_p99.map(|p| p.to_string()).unwrap_or("-".into()),
            w.probes,
            ratio_cell(Series::BatchFill.value(w)),
            w.alerts_total,
            w.live,
        );
    }
    let _ = writeln!(
        out,
        "fleet: {} windows over {} cycles, {} health events",
        run.report.windows_total,
        run.clock,
        run.report.events.len(),
    );
    let _ = writeln!(
        out,
        "\nSLO verdicts (quiet-SLO detectors on the healthy fleet):"
    );
    for v in &run.report.verdicts {
        let _ = writeln!(
            out,
            "  {:<18} fired {:>3}  {}",
            v.detector,
            v.fired,
            if v.pass { "pass" } else { "FAIL" },
        );
    }
    let _ = writeln!(
        out,
        "\nDetection latency — seeded fault campaign, {}-cycle windows, lag bound {} cycles:",
        run.latency.window_cycles, run.latency.bound_cycles,
    );
    let _ = write!(out, "{}", run.latency.render());
    out
}

/// Converts a health run to a JSON value for the `--json` report mode.
pub fn health_to_value(run: &HealthRun) -> Value {
    Value::Object(vec![
        ("seed".into(), Value::Num(run.config.seed as f64)),
        (
            "window_cycles".into(),
            Value::Num(run.config.window_cycles as f64),
        ),
        ("clock_cycles".into(), Value::Num(run.clock as f64)),
        (
            "windows".into(),
            Value::Array(run.windows.iter().map(WindowSample::to_value).collect()),
        ),
        ("report".into(), run.report.to_value()),
        ("latency".into(), run.latency.to_value()),
    ])
}
