//! The perf-trajectory harness behind `asc-bench --bin perf`.
//!
//! Sweeps every registered performance workload (the SPEC analogues from
//! Table 5/6 plus the Andrew-style multiprogram benchmark) three ways —
//! unauthenticated base, enforcing cold (paper-faithful), enforcing warm
//! (MAC cache) — with a [`asc_metrics`] registry attached to the kernel, and
//! reduces each run to a schema-versioned report (`BENCH_4.json`): cycle
//! totals, overhead percentages, and per-histogram quantile summaries.
//!
//! [`compare`] is the regression gate: given a baseline report (checked in
//! at `crates/bench/golden/perf_baseline.json`) and a current one, it
//! returns every tracked total or quantile that *regressed* beyond its
//! per-metric tolerance. Improvements never fail the gate. Everything the
//! gate compares comes off the virtual cycle clock, so a regression is a
//! real cost-model or code change, never machine noise; the only wall-clock
//! metrics in the stack (`asc_installer_pass_us`) are deliberately absent
//! from this report.

use std::collections::HashMap;

use asc_core::json::Value;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{FileSystem, Kernel, KernelOptions, Personality};
use asc_metrics::{MetricValue, Snapshot};
use asc_object::Binary;
use asc_vm::Machine;
use asc_workloads::tools::{iteration_plan, setup_corpus, tool_source, TOOLS};
use asc_workloads::ProgramSpec;

use crate::{bench_key, sim_seconds};

/// Report schema name (`BENCH_4.json` carries it so future readers can
/// reject reports they do not understand).
pub const SCHEMA: &str = "asc-perf-trajectory";

/// Report schema version. Bump when fields change meaning.
pub const SCHEMA_VERSION: u64 = 1;

/// Default output file name.
pub const REPORT_FILE: &str = "BENCH_4.json";

const PERSONALITY: Personality = Personality::Linux;

/// Relative tolerance for cycle totals (deterministic, so anything beyond
/// rounding is a real change; 1% absorbs intentional micro-tuning).
pub const TOTAL_TOLERANCE: f64 = 0.01;

/// Relative tolerance for histogram quantiles (log-linear buckets carry
/// ≤6.25% representation error; 10% leaves headroom above that).
pub const QUANTILE_TOLERANCE: f64 = 0.10;

/// One histogram's quantile summary, keyed by run mode and rendered metric
/// (e.g. `cold:asc_verify_cycles{path="cold"}`).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSummary {
    /// `mode:name{labels}` identifier.
    pub metric: String,
    /// Exact number of observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

impl MetricSummary {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("metric".into(), Value::Str(self.metric.clone())),
            ("count".into(), Value::Num(self.count as f64)),
            ("sum".into(), Value::Num(self.sum as f64)),
            ("p50".into(), Value::Num(self.p50 as f64)),
            ("p90".into(), Value::Num(self.p90 as f64)),
            ("p99".into(), Value::Num(self.p99 as f64)),
            ("max".into(), Value::Num(self.max as f64)),
        ])
    }
}

/// One workload's full measurement.
#[derive(Clone, Debug)]
pub struct WorkloadPerf {
    /// Workload name (`andrew` for the multiprogram benchmark).
    pub name: String,
    /// Cycles of the unauthenticated run.
    pub base_cycles: u64,
    /// Cycles of the enforcing run without the verify cache.
    pub cold_cycles: u64,
    /// Cycles of the enforcing run with the verify cache.
    pub warm_cycles: u64,
    /// Cold overhead over base, percent.
    pub cold_overhead_pct: f64,
    /// Warm overhead over base, percent.
    pub warm_overhead_pct: f64,
    /// System calls in the base run.
    pub syscalls: u64,
    /// Histogram quantile summaries from the cold and warm runs.
    pub metrics: Vec<MetricSummary>,
}

impl WorkloadPerf {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("base_cycles".into(), Value::Num(self.base_cycles as f64)),
            ("cold_cycles".into(), Value::Num(self.cold_cycles as f64)),
            ("warm_cycles".into(), Value::Num(self.warm_cycles as f64)),
            (
                "cold_overhead_pct".into(),
                Value::Num(self.cold_overhead_pct),
            ),
            (
                "warm_overhead_pct".into(),
                Value::Num(self.warm_overhead_pct),
            ),
            ("syscalls".into(), Value::Num(self.syscalls as f64)),
            (
                "metrics".into(),
                Value::Array(self.metrics.iter().map(MetricSummary::to_value).collect()),
            ),
        ])
    }
}

/// The whole sweep.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// `git rev-parse HEAD` at sweep time (`unknown` outside a checkout).
    /// Metadata only — [`compare`] never reads it.
    pub git_commit: String,
    /// Whether the worktree had uncommitted changes.
    pub git_dirty: bool,
    /// Per-workload measurements.
    pub workloads: Vec<WorkloadPerf>,
}

impl PerfReport {
    /// Serialises with the schema header. Round-trips through
    /// [`asc_core::json::Value::parse`] exactly (integers only, no floats
    /// that lose precision — overheads are the one exception and re-parse
    /// to the same `f64`).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("schema_version".into(), Value::Num(SCHEMA_VERSION as f64)),
            ("clock_hz".into(), Value::Num(crate::CLOCK_HZ)),
            ("git_commit".into(), Value::Str(self.git_commit.clone())),
            ("git_dirty".into(), Value::Bool(self.git_dirty)),
            (
                "workloads".into(),
                Value::Array(self.workloads.iter().map(WorkloadPerf::to_value).collect()),
            ),
        ])
    }
}

/// Reads git metadata for the report header; never fails (falls back to
/// `unknown`/clean when git or the repo is unavailable).
pub fn git_metadata() -> (String, bool) {
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| !o.stdout.is_empty())
        .unwrap_or(false);
    (commit, dirty)
}

/// Reduces a snapshot to quantile summaries, one per non-empty histogram,
/// prefixed with the run mode so cold and warm distributions never merge.
pub fn summarize_snapshot(mode: &str, snap: &Snapshot) -> Vec<MetricSummary> {
    snap.entries()
        .filter_map(|(key, value)| match value {
            MetricValue::Histogram(h) if h.count() > 0 => Some(MetricSummary {
                metric: format!("{mode}:{}", key.render()),
                count: h.count(),
                sum: h.sum(),
                p50: h.quantile(0.50),
                p90: h.quantile(0.90),
                p99: h.quantile(0.99),
                max: h.max(),
            }),
            _ => None,
        })
        .collect()
}

fn overhead_pct(base: u64, with: u64) -> f64 {
    (with as f64 - base as f64) / base as f64 * 100.0
}

/// Enforcing run of one registered workload with metrics attached.
fn metered_run(spec: &ProgramSpec, auth: &Binary, cached: bool) -> (u64, Snapshot) {
    let mut fs = FileSystem::new();
    (spec.setup_fs)(&mut fs);
    let opts = if cached {
        KernelOptions::enforcing(PERSONALITY).with_verify_cache()
    } else {
        KernelOptions::enforcing(PERSONALITY)
    };
    let mut kernel = Kernel::with_fs(opts, fs);
    kernel.set_stdin(spec.stdin.to_vec());
    kernel.set_key(bench_key());
    kernel.set_brk(auth.highest_addr());
    kernel.attach_metrics();
    let mut machine = Machine::load(auth, kernel).expect("workload binary fits in guest memory");
    let outcome = machine.run(asc_workloads::RUN_BUDGET);
    let cycles = machine.cycles();
    let mut kernel = machine.into_handler();
    assert!(
        outcome.is_success(),
        "{} failed: {outcome:?} (alerts: {:?}, stderr: {:?})",
        spec.name,
        kernel.alerts(),
        String::from_utf8_lossy(kernel.stderr()),
    );
    let snapshot = kernel
        .take_metrics()
        .expect("metrics were attached before the run")
        .snapshot();
    (cycles, snapshot)
}

/// Measures one registered workload base/cold/warm.
pub fn measure_workload(spec: &ProgramSpec, program_id: u16) -> WorkloadPerf {
    let plain =
        asc_workloads::build(spec, PERSONALITY).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let installer = Installer::new(
        bench_key(),
        InstallerOptions::new(PERSONALITY).with_program_id(program_id),
    );
    let (auth, _) = installer
        .install(&plain, spec.name)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));

    let base = asc_workloads::measure(spec, &plain, PERSONALITY, None);
    assert!(
        base.outcome.is_success(),
        "{} base run failed: {:?}",
        spec.name,
        base.outcome
    );
    let (cold_cycles, cold_snap) = metered_run(spec, &auth, false);
    let (warm_cycles, warm_snap) = metered_run(spec, &auth, true);

    let mut metrics = summarize_snapshot("cold", &cold_snap);
    metrics.extend(summarize_snapshot("warm", &warm_snap));
    WorkloadPerf {
        name: spec.name.to_string(),
        base_cycles: base.cycles,
        cold_cycles,
        warm_cycles,
        cold_overhead_pct: overhead_pct(base.cycles, cold_cycles),
        warm_overhead_pct: overhead_pct(base.cycles, warm_cycles),
        syscalls: base.kernel.stats().syscalls,
        metrics,
    }
}

/// One Andrew iteration, optionally enforcing/cached, with a merged metrics
/// snapshot across the per-tool kernels.
fn andrew_iteration(
    tools: &HashMap<&'static str, Binary>,
    mut fs: FileSystem,
    enforcing: bool,
    cached: bool,
) -> (u64, u64, Snapshot, FileSystem) {
    let mut cycles = 0u64;
    let mut syscalls = 0u64;
    let mut merged = Snapshot::default();
    for step in iteration_plan() {
        let binary = &tools[step.tool];
        let opts = match (enforcing, cached) {
            (false, _) => KernelOptions::plain(PERSONALITY),
            (true, false) => KernelOptions::enforcing(PERSONALITY),
            (true, true) => KernelOptions::enforcing(PERSONALITY).with_verify_cache(),
        };
        let mut kernel = Kernel::with_fs(opts, fs);
        if enforcing {
            kernel.set_key(bench_key());
        }
        kernel.set_stdin(step.stdin.clone().into_bytes());
        kernel.set_brk(binary.highest_addr());
        kernel.attach_metrics();
        let mut machine = Machine::load(binary, kernel).expect("tool binary fits in guest memory");
        let outcome = machine.run(10_000_000_000);
        let step_cycles = machine.cycles();
        let mut kernel = machine.into_handler();
        assert!(
            outcome.is_success(),
            "step `{}` failed: {outcome:?} (alerts: {:?}, stderr: {:?})",
            step.tool,
            kernel.alerts(),
            String::from_utf8_lossy(kernel.stderr()),
        );
        cycles += step_cycles;
        syscalls += kernel.stats().syscalls;
        merged.merge(
            &kernel
                .take_metrics()
                .expect("metrics were attached before the run")
                .snapshot(),
        );
        fs = kernel.into_fs();
    }
    (cycles, syscalls, merged, fs)
}

fn andrew_tools(authenticated: bool) -> HashMap<&'static str, Binary> {
    TOOLS
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let src = tool_source(t.name).expect("tool name appears in the Andrew tool registry");
            let plain = asc_workloads::build_source(&src, PERSONALITY)
                .expect("registered tool source compiles and links");
            let binary = if authenticated {
                let installer = Installer::new(
                    bench_key(),
                    InstallerOptions::new(PERSONALITY).with_program_id(200 + i as u16),
                );
                installer
                    .install(&plain, t.name)
                    .expect("installer authenticates the plain tool binary")
                    .0
            } else {
                plain
            };
            (t.name, binary)
        })
        .collect()
}

/// Measures the Andrew-style multiprogram benchmark base/cold/warm.
pub fn measure_andrew() -> WorkloadPerf {
    let plain_tools = andrew_tools(false);
    let auth_tools = andrew_tools(true);

    let fresh = || {
        let mut fs = FileSystem::new();
        setup_corpus(&mut fs);
        fs
    };
    let (base_cycles, syscalls, _, _) = andrew_iteration(&plain_tools, fresh(), false, false);
    let (cold_cycles, _, cold_snap, _) = andrew_iteration(&auth_tools, fresh(), true, false);
    let (warm_cycles, _, warm_snap, _) = andrew_iteration(&auth_tools, fresh(), true, true);

    let mut metrics = summarize_snapshot("cold", &cold_snap);
    metrics.extend(summarize_snapshot("warm", &warm_snap));
    WorkloadPerf {
        name: "andrew".to_string(),
        base_cycles,
        cold_cycles,
        warm_cycles,
        cold_overhead_pct: overhead_pct(base_cycles, cold_cycles),
        warm_overhead_pct: overhead_pct(base_cycles, warm_cycles),
        syscalls,
        metrics,
    }
}

/// Measures the multi-process server workload base/cold/warm with the
/// default fixed-seed configuration (`asc-bench --bin server`'s scenario).
/// Every histogram summary carries a `pid` label, so the trajectory gate
/// covers per-pid distributions, not just the single-process ones.
pub fn measure_server() -> WorkloadPerf {
    use crate::server::{run_server, ServerConfig, ServerMode};
    let config = ServerConfig::default();
    let base = run_server(&config, ServerMode::Base);
    let cold = run_server(&config, ServerMode::Cold);
    let warm = run_server(&config, ServerMode::Warm);

    let mut metrics = summarize_snapshot("cold", &cold.merged_metrics);
    metrics.extend(summarize_snapshot("warm", &warm.merged_metrics));
    // Per-pid entries carry a `pid` label, so the table's all-process
    // lookup key would miss; add the cross-pid aggregate under the same
    // key the single-process workloads use.
    let across = cold
        .merged_metrics
        .histogram_across_labels("asc_verify_cycles");
    if across.count() > 0 {
        metrics.push(MetricSummary {
            metric: "cold:asc_verify_cycles{path=\"cold\"}".into(),
            count: across.count(),
            sum: across.sum(),
            p50: across.quantile(0.50),
            p90: across.quantile(0.90),
            p99: across.quantile(0.99),
            max: across.max(),
        });
    }
    WorkloadPerf {
        name: "server".to_string(),
        base_cycles: base.clock,
        cold_cycles: cold.clock,
        warm_cycles: warm.clock,
        cold_overhead_pct: overhead_pct(base.clock, cold.clock),
        warm_overhead_pct: overhead_pct(base.clock, warm.clock),
        syscalls: base.aggregate.syscalls,
        metrics,
    }
}

/// Measures the fleet-scale scenario (`--bin server --fleet`): base/cold/
/// warm at the default N=64 churn configuration, plus the scaling check —
/// aggregate verified calls per fleet-second at N=1024 must stay within
/// 0.8× of linear extrapolation from the per-pid rate at N=8. The floor is
/// a hard assertion here (the gate's `regressed` only fires on increases,
/// and a *better* ratio must never fail); what the trajectory gates is the
/// inverse `fleet_slowdown_vs_linear_millis`, where an increase is a real
/// scaling regression.
pub fn measure_fleet() -> WorkloadPerf {
    use crate::fleet::{run_fleet, FleetConfig};
    use crate::server::ServerMode;
    let config = FleetConfig::default();
    let base = run_fleet(&config, ServerMode::Base);
    let cold = run_fleet(&config, ServerMode::Cold);
    let warm = run_fleet(&config, ServerMode::Warm);

    let mut metrics = Vec::new();
    // Cross-shard aggregate distributions (the per-shard breakdown stays
    // in the fleet report itself; the trajectory tracks the fleet-wide
    // shape so the baseline file stays reviewable).
    for (mode, run) in [("cold", &cold), ("warm", &warm)] {
        for name in ["asc_verify_cycles", "asc_verify_aes_blocks"] {
            let h = run.merged_metrics.histogram_across_labels(name);
            if h.count() > 0 {
                metrics.push(MetricSummary {
                    metric: format!("{mode}:{name}{{fleet=\"all-shards\"}}"),
                    count: h.count(),
                    sum: h.sum(),
                    p50: h.quantile(0.50),
                    p90: h.quantile(0.90),
                    p99: h.quantile(0.99),
                    max: h.max(),
                });
            }
        }
    }
    // Measured amortisation: shared-cache probes per verified call, in
    // thousandths. Unbatched this is 1000; the batch path must keep it
    // well under — a rise past tolerance fails the gate.
    let probes_milli = (warm.probes_per_verified() * 1000.0).round() as u64;
    metrics.push(MetricSummary {
        metric: "warm:fleet_shared_probes_per_verified_millis".into(),
        count: warm.aggregate.verified,
        sum: warm.shared_probes,
        p50: probes_milli,
        p90: probes_milli,
        p99: probes_milli,
        max: probes_milli,
    });

    // Scaling: near-linear aggregate throughput in fleet size.
    let scale_small = run_fleet(
        &FleetConfig {
            procs: 8,
            churn_spawns: 0,
            ..config
        },
        ServerMode::Warm,
    );
    let scale_large = run_fleet(
        &FleetConfig {
            procs: 1024,
            churn_spawns: 0,
            ..config
        },
        ServerMode::Warm,
    );
    let per_pid_small = scale_small.verified_per_fleet_second() / scale_small.spawned as f64;
    let linear = per_pid_small * scale_large.spawned as f64;
    let ratio = scale_large.verified_per_fleet_second() / linear;
    assert!(
        ratio >= 0.8,
        "fleet throughput fell below near-linear scaling: N={} achieves {:.1} verified \
         calls/fleet-sec, {:.2}x of the {:.1} linear extrapolation from N={} (floor 0.8x)",
        scale_large.spawned,
        scale_large.verified_per_fleet_second(),
        ratio,
        linear,
        scale_small.spawned,
    );
    let slowdown_milli = (1000.0 / ratio).round() as u64;
    metrics.push(MetricSummary {
        metric: "warm:fleet_slowdown_vs_linear_millis".into(),
        count: scale_large.spawned,
        sum: slowdown_milli,
        p50: slowdown_milli,
        p90: slowdown_milli,
        p99: slowdown_milli,
        max: slowdown_milli,
    });

    WorkloadPerf {
        name: "fleet".to_string(),
        base_cycles: base.clock,
        cold_cycles: cold.clock,
        warm_cycles: warm.clock,
        cold_overhead_pct: overhead_pct(base.clock, cold.clock),
        warm_overhead_pct: overhead_pct(base.clock, warm.clock),
        syscalls: base.aggregate.syscalls,
        metrics,
    }
}

/// Measures the verification-tier ablation: the paper's policy workloads
/// (bison, calc, tar) in aggregate under every [`asc_kernel::VerifyTier`].
/// The report slots map tiers, not cache temperature: `base` is the
/// unauthenticated run, `cold` the full MAC tier, `warm` the SFIP
/// flow-only tier; `mac+flow` and the per-tier verification costs land in
/// the metrics list so the trajectory gates all three tiers.
///
/// Hard floor, asserted here rather than gated (the gate only fires on
/// increases, and a *cheaper* flow check must never fail): flow-only
/// verification must cost under 25% of the MAC tier per call — the
/// whole point of the cheap tier — and must run zero AES blocks.
pub fn measure_tiers() -> WorkloadPerf {
    use asc_kernel::VerifyTier;
    const WORKLOADS: [&str; 3] = ["bison", "calc", "tar"];
    let mut base_cycles = 0u64;
    let mut syscalls = 0u64;
    // Indexed by position in `VerifyTier::ALL` (flow-only, mac, mac+flow).
    let mut cycles = [0u64; 3];
    let mut verify_cycles = [0u64; 3];
    let mut verified = [0u64; 3];
    let mut aes_blocks = [0u64; 3];
    for (i, name) in WORKLOADS.iter().enumerate() {
        let spec = asc_workloads::program(name).expect("tier workload registered");
        let plain =
            asc_workloads::build(spec, PERSONALITY).unwrap_or_else(|e| panic!("{name}: {e}"));
        let installer = Installer::new(
            bench_key(),
            InstallerOptions::new(PERSONALITY).with_program_id(0x0F50 + i as u16),
        );
        let (auth, _) = installer
            .install(&plain, spec.name)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let base = asc_workloads::measure(spec, &plain, PERSONALITY, None);
        assert!(
            base.outcome.is_success(),
            "{name} base run failed: {:?}",
            base.outcome
        );
        base_cycles += base.cycles;
        syscalls += base.kernel.stats().syscalls;
        for (ti, &tier) in VerifyTier::ALL.iter().enumerate() {
            let run = asc_workloads::measure_tier(spec, &auth, PERSONALITY, bench_key(), tier);
            assert!(
                run.outcome.is_success(),
                "{name} {} run failed: {:?} (alerts: {:?})",
                tier.name(),
                run.outcome,
                run.kernel.alerts()
            );
            let stats = run.kernel.stats();
            cycles[ti] += run.cycles;
            verify_cycles[ti] += stats.verify_cycles;
            verified[ti] += stats.verified;
            aes_blocks[ti] += stats.verify_aes_blocks;
        }
    }

    let slot = |tier: VerifyTier| {
        VerifyTier::ALL
            .iter()
            .position(|&t| t == tier)
            .expect("tier listed in ALL")
    };
    let (flow, mac, both) = (
        slot(VerifyTier::FlowOnly),
        slot(VerifyTier::Mac),
        slot(VerifyTier::MacPlusFlow),
    );
    let per_call = |ti: usize| verify_cycles[ti] as f64 / verified[ti].max(1) as f64;
    assert!(
        per_call(flow) < 0.25 * per_call(mac),
        "flow-only verification is not cheap enough: {:.0} cycles/call vs {:.0} \
         under mac (floor: <25%)",
        per_call(flow),
        per_call(mac),
    );
    assert_eq!(
        aes_blocks[flow], 0,
        "the flow-only tier must never touch AES"
    );
    assert!(
        verify_cycles[both] > verify_cycles[mac],
        "mac+flow must charge for the extra edge check"
    );

    let mut metrics = Vec::new();
    for (ti, &tier) in VerifyTier::ALL.iter().enumerate() {
        let millis = (per_call(ti) * 1000.0).round() as u64;
        metrics.push(MetricSummary {
            metric: format!(
                "tiers:verify_cycles_per_call_millis{{tier=\"{}\"}}",
                tier.name()
            ),
            count: verified[ti],
            sum: verify_cycles[ti],
            p50: millis,
            p90: millis,
            p99: millis,
            max: millis,
        });
        metrics.push(MetricSummary {
            metric: format!("tiers:total_cycles{{tier=\"{}\"}}", tier.name()),
            count: 1,
            sum: cycles[ti],
            p50: cycles[ti],
            p90: cycles[ti],
            p99: cycles[ti],
            max: cycles[ti],
        });
    }
    WorkloadPerf {
        name: "tiers".to_string(),
        base_cycles,
        cold_cycles: cycles[mac],
        warm_cycles: cycles[flow],
        cold_overhead_pct: overhead_pct(base_cycles, cycles[mac]),
        warm_overhead_pct: overhead_pct(base_cycles, cycles[flow]),
        syscalls,
        metrics,
    }
}

/// The names the sweep covers: every registered `perf_experiment` workload
/// plus `andrew`, the multi-process `server` scenario, the fleet-scale
/// `fleet` scenario, and the verification-tier ablation `tiers`.
pub fn sweep_names() -> Vec<String> {
    let mut names: Vec<String> = asc_workloads::programs()
        .iter()
        .filter(|p| p.perf_experiment)
        .map(|p| p.name.to_string())
        .collect();
    names.push("andrew".to_string());
    names.push("server".to_string());
    names.push("fleet".to_string());
    names.push("tiers".to_string());
    names
}

/// Runs the full sweep. `progress` is called with each workload name before
/// it runs (the bin prints these so a long sweep shows life).
pub fn sweep(mut progress: impl FnMut(&str)) -> PerfReport {
    let mut workloads = Vec::new();
    for (i, spec) in asc_workloads::programs()
        .iter()
        .filter(|p| p.perf_experiment)
        .enumerate()
    {
        progress(spec.name);
        workloads.push(measure_workload(spec, 100 + i as u16));
    }
    progress("andrew");
    workloads.push(measure_andrew());
    progress("server");
    workloads.push(measure_server());
    progress("fleet");
    workloads.push(measure_fleet());
    progress("tiers");
    workloads.push(measure_tiers());
    let (git_commit, git_dirty) = git_metadata();
    PerfReport {
        git_commit,
        git_dirty,
        workloads,
    }
}

/// Renders the human table: per-workload totals plus the cold verify-cycle
/// quantiles (the distribution the paper's averages hide).
pub fn render_table(report: &PerfReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Perf trajectory — base vs enforcing cold/warm (simulated seconds @100MHz)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>7} {:>10} {:>7} {:>9} {:>8} {:>8} {:>8}",
        "Workload",
        "Base(s)",
        "Cold(s)",
        "Cold%",
        "Warm(s)",
        "Warm%",
        "Syscalls",
        "p50",
        "p99",
        "max"
    );
    for w in &report.workloads {
        let cold_verify = w
            .metrics
            .iter()
            .find(|m| m.metric == "cold:asc_verify_cycles{path=\"cold\"}");
        let (p50, p99, max) = cold_verify.map_or((0, 0, 0), |m| (m.p50, m.p99, m.max));
        let _ = writeln!(
            out,
            "{:<10} {:>10.4} {:>10.4} {:>7.2} {:>10.4} {:>7.2} {:>9} {:>8} {:>8} {:>8}",
            w.name,
            sim_seconds(w.base_cycles),
            sim_seconds(w.cold_cycles),
            w.cold_overhead_pct,
            sim_seconds(w.warm_cycles),
            w.warm_overhead_pct,
            w.syscalls,
            p50,
            p99,
            max,
        );
    }
    let _ = writeln!(
        out,
        "(p50/p99/max are cold per-call verify cycles; full distributions in {REPORT_FILE})"
    );
    out
}

fn num(value: &Value, key: &str) -> Option<f64> {
    match value.get(key) {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    }
}

fn regressed(baseline: f64, current: f64, tolerance: f64) -> bool {
    current > baseline * (1.0 + tolerance) + 0.5
}

/// Compares two reports (as parsed JSON) and returns every regression:
/// a tracked total or quantile in `current` above its `baseline` value by
/// more than the per-metric tolerance. Missing workloads or metrics are
/// regressions (coverage loss); new ones are not. Git metadata is ignored.
///
/// # Errors
///
/// Returns a message when either document does not carry the expected
/// schema (wrong `schema`/`schema_version` or missing fields).
pub fn compare(baseline: &Value, current: &Value) -> Result<Vec<String>, String> {
    for (label, doc) in [("baseline", baseline), ("current", current)] {
        match doc.get("schema").and_then(Value::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("{label}: unexpected schema {other:?}")),
        }
        match doc.get("schema_version").and_then(Value::as_u64) {
            Some(SCHEMA_VERSION) => {}
            other => return Err(format!("{label}: unexpected schema_version {other:?}")),
        }
    }
    let base_workloads = baseline
        .get("workloads")
        .and_then(Value::as_array)
        .ok_or("baseline: missing workloads array")?;
    let cur_workloads = current
        .get("workloads")
        .and_then(Value::as_array)
        .ok_or("current: missing workloads array")?;

    let mut regressions = Vec::new();
    for bw in base_workloads {
        let name = bw
            .get("name")
            .and_then(Value::as_str)
            .ok_or("baseline: workload without a name")?;
        let Some(cw) = cur_workloads
            .iter()
            .find(|w| w.get("name").and_then(Value::as_str) == Some(name))
        else {
            regressions.push(format!("{name}: workload missing from current report"));
            continue;
        };
        for total in ["base_cycles", "cold_cycles", "warm_cycles"] {
            let (Some(b), Some(c)) = (num(bw, total), num(cw, total)) else {
                regressions.push(format!("{name}: {total} missing"));
                continue;
            };
            if regressed(b, c, TOTAL_TOLERANCE) {
                regressions.push(format!(
                    "{name}: {total} regressed {b:.0} -> {c:.0} (+{:.2}%, tolerance {:.1}%)",
                    (c - b) / b * 100.0,
                    TOTAL_TOLERANCE * 100.0
                ));
            }
        }
        let empty = Vec::new();
        let base_metrics = bw
            .get("metrics")
            .and_then(Value::as_array)
            .unwrap_or(&empty);
        let cur_metrics = cw
            .get("metrics")
            .and_then(Value::as_array)
            .unwrap_or(&empty);
        for bm in base_metrics {
            let metric = bm
                .get("metric")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("baseline: {name}: metric without a name"))?;
            let Some(cm) = cur_metrics
                .iter()
                .find(|m| m.get("metric").and_then(Value::as_str) == Some(metric))
            else {
                regressions.push(format!("{name}: {metric} missing from current report"));
                continue;
            };
            for q in ["sum", "p50", "p90", "p99", "max"] {
                let (Some(b), Some(c)) = (num(bm, q), num(cm, q)) else {
                    regressions.push(format!("{name}: {metric}.{q} missing"));
                    continue;
                };
                if regressed(b, c, QUANTILE_TOLERANCE) {
                    regressions.push(format!(
                        "{name}: {metric}.{q} regressed {b:.0} -> {c:.0} (+{:.2}%, tolerance {:.1}%)",
                        (c - b) / b * 100.0,
                        QUANTILE_TOLERANCE * 100.0
                    ));
                }
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PerfReport {
        PerfReport {
            git_commit: "unknown".into(),
            git_dirty: false,
            workloads: vec![WorkloadPerf {
                name: "toy".into(),
                base_cycles: 1_000_000,
                cold_cycles: 1_020_000,
                warm_cycles: 1_010_000,
                cold_overhead_pct: 2.0,
                warm_overhead_pct: 1.0,
                syscalls: 42,
                metrics: vec![MetricSummary {
                    metric: "cold:asc_verify_cycles{path=\"cold\"}".into(),
                    count: 42,
                    sum: 20_000,
                    p50: 450,
                    p90: 520,
                    p99: 600,
                    max: 640,
                }],
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let value = tiny_report().to_value();
        let text = value.to_pretty();
        let parsed = Value::parse(&text).expect("report re-parses");
        assert_eq!(parsed, value);
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let v = tiny_report().to_value();
        assert_eq!(
            compare(&v, &v).expect("schemas match"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn injected_slowdown_fails_the_gate() {
        let baseline = tiny_report().to_value();
        let mut slow = tiny_report();
        slow.workloads[0].cold_cycles = (slow.workloads[0].cold_cycles as f64 * 1.25) as u64;
        slow.workloads[0].metrics[0].p99 = (slow.workloads[0].metrics[0].p99 as f64 * 1.25) as u64;
        let regressions = compare(&baseline, &slow.to_value()).expect("schemas match");
        assert_eq!(regressions.len(), 2, "{regressions:?}");
        assert!(regressions[0].contains("cold_cycles"), "{regressions:?}");
        assert!(regressions[1].contains("p99"), "{regressions:?}");
    }

    #[test]
    fn improvements_never_fail_the_gate() {
        let baseline = tiny_report().to_value();
        let mut fast = tiny_report();
        fast.workloads[0].cold_cycles /= 2;
        fast.workloads[0].metrics[0].p99 /= 2;
        assert_eq!(
            compare(&baseline, &fast.to_value()).expect("schemas match"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn missing_workload_or_metric_is_a_regression() {
        let baseline = tiny_report().to_value();
        let mut gutted = tiny_report();
        gutted.workloads[0].metrics.clear();
        let regressions = compare(&baseline, &gutted.to_value()).expect("schemas match");
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("missing"), "{regressions:?}");

        let mut empty = tiny_report();
        empty.workloads.clear();
        let regressions = compare(&baseline, &empty.to_value()).expect("schemas match");
        assert!(
            regressions[0].contains("workload missing"),
            "{regressions:?}"
        );
    }

    #[test]
    fn small_jitter_within_tolerance_passes() {
        let baseline = tiny_report().to_value();
        let mut near = tiny_report();
        near.workloads[0].cold_cycles += 5_000; // +0.49% < 1%
        near.workloads[0].metrics[0].p99 += 30; // +5% < 10%
        assert_eq!(
            compare(&baseline, &near.to_value()).expect("schemas match"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn wrong_schema_is_an_error_not_a_pass() {
        let good = tiny_report().to_value();
        let bad = Value::Object(vec![
            ("schema".into(), Value::Str("something-else".into())),
            ("schema_version".into(), Value::Num(1.0)),
            ("workloads".into(), Value::Array(vec![])),
        ]);
        assert!(compare(&bad, &good).is_err());
        assert!(compare(&good, &bad).is_err());
    }
}
