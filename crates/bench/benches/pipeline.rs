//! Host-side benchmarks of the toolchain: compilation, static analysis,
//! installation (the paper reports 3.49s–86.17s per program for PLTO +
//! rewriting on 2005 hardware), and simulator execution rates.

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use asc_bench::bench_key;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{Kernel, KernelOptions, Personality};
use asc_vm::Machine;

fn bench_toolchain(c: &mut Criterion) {
    let spec = asc_workloads::program("bison").expect("registered");
    c.bench_function("toolchain/compile_and_link_bison", |b| {
        b.iter(|| {
            std::hint::black_box(
                asc_workloads::build(spec, Personality::Linux).expect("builds"),
            )
        })
    });

    let binary = asc_workloads::build(spec, Personality::Linux).expect("builds");
    let installer = Installer::new(bench_key(), InstallerOptions::new(Personality::Linux));
    c.bench_function("toolchain/policy_generation_bison", |b| {
        b.iter(|| {
            std::hint::black_box(
                installer.generate_policy(&binary, "bison").expect("analyzes"),
            )
        })
    });
    c.bench_function("toolchain/install_bison", |b| {
        b.iter(|| std::hint::black_box(installer.install(&binary, "bison").expect("installs")))
    });
}

fn bench_execution(c: &mut Criterion) {
    // Interpreter throughput on a CPU-bound guest.
    let spec = asc_workloads::program("crafty").expect("registered");
    let plain = asc_workloads::build(spec, Personality::Linux).expect("builds");
    let installer = Installer::new(bench_key(), InstallerOptions::new(Personality::Linux));
    let (auth, _) = installer.install(&plain, "crafty").expect("installs");

    let mut group = c.benchmark_group("execution");
    group.sample_size(10);
    let report = asc_workloads::measure(spec, &plain, Personality::Linux, None);
    group.throughput(Throughput::Elements(report.instret));
    group.bench_function("crafty_plain", |b| {
        b.iter(|| {
            let r = asc_workloads::measure(spec, &plain, Personality::Linux, None);
            assert!(r.outcome.is_success());
            std::hint::black_box(r.cycles)
        })
    });
    group.bench_function("crafty_authenticated", |b| {
        b.iter(|| {
            let r = asc_workloads::measure(spec, &auth, Personality::Linux, Some(bench_key()));
            assert!(r.outcome.is_success());
            std::hint::black_box(r.cycles)
        })
    });
    group.finish();
}

fn bench_syscall_dispatch(c: &mut Criterion) {
    // 1000 getpid calls through the trap handler, plain vs enforcing —
    // the host-side analogue of Table 4.
    let src = "
        .text
        .entry main
    main:
        movi r4, 0
    loop:
        movi r0, 20
        syscall
        addi r4, r4, 1
        movi r5, 1000
        bne r4, r5, loop
        movi r0, 1
        movi r1, 0
        syscall
    ";
    let plain = asc_asm::assemble(src).expect("assembles");
    let installer = Installer::new(
        bench_key(),
        InstallerOptions::new(Personality::Linux).without_control_flow(),
    );
    let (auth, _) = installer.install(&plain, "micro").expect("installs");

    let mut group = c.benchmark_group("syscall_dispatch_1000x");
    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut kernel = Kernel::new(KernelOptions::plain(Personality::Linux));
            kernel.set_brk(plain.highest_addr());
            let mut m = Machine::load(&plain, kernel).expect("loads");
            assert!(m.run(100_000_000).is_success());
            std::hint::black_box(m.cycles())
        })
    });
    group.bench_function("authenticated", |b| {
        b.iter(|| {
            let mut kernel = Kernel::new(KernelOptions::enforcing(Personality::Linux));
            kernel.set_key(bench_key());
            kernel.set_brk(auth.highest_addr());
            let mut m = Machine::load(&auth, kernel).expect("loads");
            assert!(m.run(100_000_000).is_success());
            std::hint::black_box(m.cycles())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_toolchain, bench_execution, bench_syscall_dispatch);
criterion_main!(benches);
