//! Host-side microbenchmarks of the cryptographic and verification
//! primitives (the building blocks behind Table 4's simulated costs).

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use asc_core::{encode_call, verify_call, AuthCallRegs, EncodedArg, EncodedCall, PolicyDescriptor, UserMemory, Violation};
use asc_crypto::{Aes128, AuthenticatedString, MacKey, MemoryChecker};

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new(&[7u8; 16]);
    c.bench_function("aes128/block", |b| {
        let mut block = [0x42u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            std::hint::black_box(block[0])
        })
    });
    c.bench_function("aes128/key_schedule", |b| {
        b.iter(|| std::hint::black_box(Aes128::new(&[9u8; 16])))
    });
}

fn bench_cmac(c: &mut Criterion) {
    let key = MacKey::from_seed(1);
    let mut group = c.benchmark_group("cmac");
    for size in [16usize, 64, 256, 4096] {
        let msg = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &msg, |b, msg| {
            b.iter(|| std::hint::black_box(key.mac(msg)))
        });
    }
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let call = EncodedCall {
        syscall_nr: 5,
        descriptor: PolicyDescriptor::new()
            .with_call_site()
            .with_control_flow()
            .with_string_arg(0)
            .with_immediate_arg(1),
        call_site: 0x1040,
        block_id: 9,
        args: vec![
            (0, EncodedArg::AuthString { addr: 0x9000, len: 12, mac: [1; 16] }),
            (1, EncodedArg::Immediate(0)),
        ],
        pred_set: Some((0x9100, 8, [2; 16])),
        lb_ptr: Some(0x9200),
    };
    c.bench_function("encode_call", |b| b.iter(|| std::hint::black_box(encode_call(&call))));
    let key = MacKey::from_seed(2);
    c.bench_function("call_mac", |b| b.iter(|| std::hint::black_box(call.mac(&key))));
}

/// Flat mock memory for verification benches.
struct FlatMem(Vec<u8>);

impl UserMemory for FlatMem {
    fn read_u32(&self, addr: u32) -> Result<u32, Violation> {
        let i = addr as usize;
        self.0
            .get(i..i + 4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
            .ok_or(Violation::MemoryFault { addr })
    }
    fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, Violation> {
        let i = addr as usize;
        self.0
            .get(i..i + len as usize)
            .map(<[u8]>::to_vec)
            .ok_or(Violation::MemoryFault { addr })
    }
    fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Violation> {
        let i = addr as usize;
        self.0
            .get_mut(i..i + bytes.len())
            .map(|s| s.copy_from_slice(bytes))
            .ok_or(Violation::MemoryFault { addr })
    }
}

fn bench_verify(c: &mut Criterion) {
    // Set up a fully authenticated call in flat memory, then measure the
    // kernel-side verification (the paper's "couple hundred lines in the
    // trap handler").
    let key = MacKey::from_seed(3);
    let mut mem = FlatMem(vec![0u8; 0x10000]);
    let path = AuthenticatedString::build(&key, b"/etc/motd".to_vec());
    let as_addr = 0x9100u32;
    mem.write_bytes(as_addr - 20, &path.to_bytes()).unwrap();
    let preds: Vec<u8> = [0u32, 7].iter().flat_map(|p| p.to_le_bytes()).collect();
    let ps = AuthenticatedString::build(&key, preds);
    let ps_addr = 0x9200u32;
    mem.write_bytes(ps_addr - 20, &ps.to_bytes()).unwrap();
    let lb_addr = 0x9300u32;
    mem.write_bytes(lb_addr, &MemoryChecker::initial_state(&key).to_bytes()).unwrap();
    let descriptor = PolicyDescriptor::new()
        .with_call_site()
        .with_control_flow()
        .with_string_arg(0)
        .with_immediate_arg(1);
    let encoded = EncodedCall {
        syscall_nr: 5,
        descriptor,
        call_site: 0x1040,
        block_id: 9,
        args: vec![
            (0, EncodedArg::AuthString { addr: as_addr, len: 9, mac: *path.mac() }),
            (1, EncodedArg::Immediate(0)),
        ],
        pred_set: Some((ps_addr, 8, *ps.mac())),
        lb_ptr: Some(lb_addr),
    };
    let mac_addr = 0x9400u32;
    mem.write_bytes(mac_addr, &encoded.mac(&key)).unwrap();
    let regs = AuthCallRegs {
        nr: 5,
        call_site: 0x1040,
        args: [as_addr, 0, 0, 0, 0, 0],
        pol_des: descriptor.bits(),
        block_id: 9,
        pred_set_ptr: ps_addr,
        lb_ptr: lb_addr,
        call_mac_ptr: mac_addr,
        hint_ptr: 0,
    };
    c.bench_function("verify_call/full_policy", |b| {
        b.iter_batched(
            || {
                // Fresh state each iteration: reset the policy-state cell
                // and the kernel counter.
                let mut m = FlatMem(mem.0.clone());
                m.write_bytes(lb_addr, &MemoryChecker::initial_state(&key).to_bytes())
                    .unwrap();
                (m, MemoryChecker::new())
            },
            |(mut m, mut checker)| {
                verify_call(&key, &mut checker, &mut m, &regs, None).expect("verifies")
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_authenticated_string(c: &mut Criterion) {
    let key = MacKey::from_seed(4);
    let mut group = c.benchmark_group("authenticated_string_verify");
    for size in [16usize, 256, 4096] {
        let s = AuthenticatedString::build(&key, vec![b'x'; size]);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &s, |b, s| {
            b.iter(|| std::hint::black_box(s.verify(&key)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_aes,
    bench_cmac,
    bench_encoding,
    bench_verify,
    bench_authenticated_string
);
criterion_main!(benches);
