//! Baseline system call monitors for comparison with authenticated system
//! calls.
//!
//! * [`SystracePolicy`] + [`train`] — a Systrace-style policy produced by
//!   *training* (observing sample runs), with the `fsread`/`fswrite`
//!   wildcard aliases the published Project Hairy Eyeball policies use.
//!   Training by nature misses cold paths, which is what Tables 1–2
//!   measure against the installer's static-analysis policies.
//! * [`UserSpaceMonitor`] — enforcement through a user-space policy
//!   daemon: every syscall costs an extra pair of context switches
//!   (the §2.3 cost argument, quantified by the ablation bench).
//! * [`InKernelMonitor`] — enforcement through an in-kernel policy table:
//!   cheaper per call, but the kernel must store policies and map each
//!   call to the right one (the complexity ASC avoids).
//!
//! # Example
//!
//! ```
//! use asc_monitors::{train, SystracePolicy};
//!
//! let policy = train("demo", [vec!["open".to_string(), "read".to_string()]]);
//! assert!(policy.permits("read"));
//! assert!(!policy.permits("execve"));
//! // the fsread/fswrite aliases cover untrained path-based calls:
//! assert!(policy.permits("readlink"));
//! assert!(policy.permits("unlink"));
//! ```

use std::collections::BTreeSet;

use asc_isa::Reg;
use asc_kernel::{Kernel, Personality};
use asc_vm::{SyscallHandler, TrapContext, TrapOutcome};

/// Wildcard aliases used by Systrace policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Alias {
    /// Read-related filesystem calls.
    FsRead,
    /// Write-related filesystem calls.
    FsWrite,
}

impl Alias {
    /// Name as printed in policies.
    pub fn name(self) -> &'static str {
        match self {
            Alias::FsRead => "fsread",
            Alias::FsWrite => "fswrite",
        }
    }
}

/// Calls covered by `fsread`: path-based read-side filesystem calls (the
/// wildcard matches filename arguments, so fd-based calls like `read` and
/// `readv` still need their own entries).
pub const FSREAD_FAMILY: &[&str] = &["stat", "lstat", "access", "readlink", "statfs"];

/// Calls covered by `fswrite`: path-based write-side filesystem calls.
pub const FSWRITE_FAMILY: &[&str] = &[
    "creat", "mkdir", "rmdir", "unlink", "rename", "truncate", "chmod", "utime", "link", "symlink",
    "mknod", "lchown",
];

/// A Systrace-style policy: explicitly permitted syscalls plus aliases.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SystracePolicy {
    /// Program name.
    pub program: String,
    /// Explicitly permitted syscall names (as observed in training).
    pub entries: BTreeSet<String>,
    /// Wildcard aliases added by the conventional hand edit.
    pub aliases: BTreeSet<Alias>,
}

impl SystracePolicy {
    /// Whether the policy permits `name`.
    pub fn permits(&self, name: &str) -> bool {
        if self.entries.contains(name) {
            return true;
        }
        (self.aliases.contains(&Alias::FsRead) && FSREAD_FAMILY.contains(&name))
            || (self.aliases.contains(&Alias::FsWrite) && FSWRITE_FAMILY.contains(&name))
    }

    /// Number of policy entries — what Table 1 counts for Systrace
    /// policies (observed syscalls plus alias lines).
    pub fn entry_count(&self) -> usize {
        self.entries.len() + self.aliases.len()
    }

    /// The full set of syscall names the policy effectively permits
    /// (aliases expanded) — used for the Table 2 per-call comparison.
    pub fn permitted(&self) -> BTreeSet<String> {
        let mut out = self.entries.clone();
        if self.aliases.contains(&Alias::FsRead) {
            out.extend(FSREAD_FAMILY.iter().map(|s| s.to_string()));
        }
        if self.aliases.contains(&Alias::FsWrite) {
            out.extend(FSWRITE_FAMILY.iter().map(|s| s.to_string()));
        }
        out
    }

    /// Why a permitted-but-untrained call is allowed ("fsread"/"fswrite"),
    /// for table annotations.
    pub fn permit_reason(&self, name: &str) -> Option<&'static str> {
        if self.entries.contains(name) {
            return Some("trained");
        }
        if self.aliases.contains(&Alias::FsRead) && FSREAD_FAMILY.contains(&name) {
            return Some("fsread");
        }
        if self.aliases.contains(&Alias::FsWrite) && FSWRITE_FAMILY.contains(&name) {
            return Some("fswrite");
        }
        None
    }
}

/// Produces a Systrace-style policy from training runs: the union of
/// observed syscall names, plus the conventional `fsread`/`fswrite`
/// aliases when any member of the family was observed (the hand edit the
/// published policies apply).
pub fn train<I, T>(program: &str, runs: I) -> SystracePolicy
where
    I: IntoIterator<Item = T>,
    T: IntoIterator<Item = String>,
{
    let mut entries = BTreeSet::new();
    for run in runs {
        entries.extend(run);
    }
    let mut aliases = BTreeSet::new();
    if entries
        .iter()
        .any(|e| FSREAD_FAMILY.contains(&e.as_str()) || e == "open")
    {
        aliases.insert(Alias::FsRead);
    }
    // Hand-editors add fswrite for any program observed creating or
    // writing files — including creation through open(O_CREAT).
    if entries
        .iter()
        .any(|e| FSWRITE_FAMILY.contains(&e.as_str()) || e == "open" || e == "creat")
    {
        aliases.insert(Alias::FsWrite);
    }
    SystracePolicy {
        program: program.to_string(),
        entries,
        aliases,
    }
}

/// Extracts the observed syscall-name sequence from a kernel's trace.
pub fn trace_names(kernel: &Kernel) -> Vec<String> {
    kernel
        .trace()
        .iter()
        .map(|t| asc_kernel::spec(t.id).name.to_string())
        .collect()
}

/// Which baseline enforcement architecture a [`MonitoredKernel`] models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorKind {
    /// User-space policy daemon: pays context switches per call.
    UserSpace,
    /// In-kernel policy table: pays a table lookup per call.
    InKernel,
}

/// A kernel wrapped with a Systrace-style monitor: checks the policy
/// before delegating, charging the architecture's per-call cost.
pub struct MonitoredKernel {
    kernel: Kernel,
    policy: SystracePolicy,
    kind: MonitorKind,
    personality: Personality,
    violations: Vec<String>,
    monitor_cycles: u64,
}

/// User-space monitor constructor.
pub struct UserSpaceMonitor;

impl UserSpaceMonitor {
    /// Wraps `kernel` with a user-space daemon monitor.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(kernel: Kernel, policy: SystracePolicy) -> MonitoredKernel {
        MonitoredKernel::new(kernel, policy, MonitorKind::UserSpace)
    }
}

/// In-kernel monitor constructor.
pub struct InKernelMonitor;

impl InKernelMonitor {
    /// Wraps `kernel` with an in-kernel table monitor.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(kernel: Kernel, policy: SystracePolicy) -> MonitoredKernel {
        MonitoredKernel::new(kernel, policy, MonitorKind::InKernel)
    }
}

impl MonitoredKernel {
    fn new(kernel: Kernel, policy: SystracePolicy, kind: MonitorKind) -> MonitoredKernel {
        let personality = kernel.personality();
        MonitoredKernel {
            kernel,
            policy,
            kind,
            personality,
            violations: Vec::new(),
            monitor_cycles: 0,
        }
    }

    /// The wrapped kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Recorded policy violations.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Cycles attributable to the monitor itself.
    pub fn monitor_cycles(&self) -> u64 {
        self.monitor_cycles
    }

    /// Consumes the wrapper, returning the kernel.
    pub fn into_kernel(self) -> Kernel {
        self.kernel
    }
}

impl MonitoredKernel {
    /// Overrides the personality used for syscall-name lookups.
    pub fn set_personality(&mut self, personality: Personality) {
        self.personality = personality;
    }
}

impl SyscallHandler for MonitoredKernel {
    fn syscall(&mut self, ctx: &mut TrapContext<'_>) -> TrapOutcome {
        let cost = match self.kind {
            MonitorKind::UserSpace => asc_kernel::CostModel::default().context_switch,
            MonitorKind::InKernel => asc_kernel::CostModel::default().table_lookup,
        };
        ctx.charge(cost);
        self.monitor_cycles += cost;
        let nr = ctx.reg(Reg::R0) as u16;
        // Resolve __syscall indirection the way Systrace sees it.
        let name = match self.personality.id(nr) {
            Some(asc_kernel::SyscallId::IndirectSyscall) => {
                self.personality.name_of(ctx.reg(Reg::R1) as u16)
            }
            Some(id) => asc_kernel::spec(id).name,
            None => "unknown",
        };
        if !self.policy.permits(name) {
            let msg = format!("systrace: `{name}` denied for {}", self.policy.program);
            self.violations.push(msg.clone());
            return TrapOutcome::Kill(msg);
        }
        self.kernel.syscall(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_produces_aliases() {
        let policy = train(
            "p",
            [vec![
                "read".to_string(),
                "open".to_string(),
                "write".to_string(),
            ]],
        );
        assert_eq!(policy.entries.len(), 3);
        // "open" alone justifies both aliases (creation + reading).
        assert_eq!(policy.aliases.len(), 2);
        assert_eq!(policy.entry_count(), 5);
        assert!(policy.permits("open"));
        // Alias over-permission: never-trained family members allowed.
        assert!(policy.permits("unlink"));
        assert!(policy.permits("readlink"));
        assert_eq!(policy.permit_reason("unlink"), Some("fswrite"));
        assert_eq!(policy.permit_reason("readlink"), Some("fsread"));
        assert_eq!(policy.permit_reason("open"), Some("trained"));
        // Non-family calls stay denied.
        assert!(!policy.permits("socket"));
        assert_eq!(policy.permit_reason("socket"), None);
    }

    #[test]
    fn training_without_fs_ops_has_no_aliases() {
        let policy = train("p", [vec!["getpid".to_string()]]);
        assert!(policy.aliases.is_empty());
        assert!(!policy.permits("read"));
    }

    #[test]
    fn multiple_runs_union() {
        let policy = train(
            "p",
            [vec!["getpid".to_string()], vec!["gettimeofday".to_string()]],
        );
        assert!(policy.permits("getpid"));
        assert!(policy.permits("gettimeofday"));
        assert_eq!(policy.entry_count(), 2);
    }

    #[test]
    fn permitted_expansion() {
        let policy = train("p", [vec!["stat".to_string()]]);
        let permitted = policy.permitted();
        assert!(
            permitted.contains("access"),
            "fsread expands path-based reads"
        );
        assert!(
            !permitted.contains("mkdir"),
            "no write observed -> no fswrite"
        );
        // fd-based calls are never covered by aliases.
        assert!(!permitted.contains("read"));
        assert!(!permitted.contains("writev"));
    }
}
