//! Abstract syntax tree.

/// Binary operators (all unsigned 32-bit semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(u32),
    /// String literal; evaluates to the address of the NUL-terminated
    /// bytes in `.rodata`.
    Str(Vec<u8>),
    /// Variable / constant / array-name reference.
    Ident(String),
    /// `base[index]` — byte load; `base` may be an array name or any
    /// address-valued expression.
    Index(Box<Expr>, Box<Expr>),
    /// Function call (user function, libc symbol, or intrinsic).
    Call(String, Vec<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `var name;` / `var name = expr;` — scalar local.
    Var(String, Option<Expr>),
    /// `var name[SIZE];` — local byte array.
    VarArray(String, u32),
    /// `name = expr;`
    Assign(String, Expr),
    /// `base[index] = expr;` — byte store.
    IndexAssign(Expr, Expr, Expr),
    /// Bare expression (typically a call).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return;` / `return expr;`
    Return(Option<Expr>),
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Name (also the assembly label).
    pub name: String,
    /// Parameter names (at most 6).
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Definition line (for errors).
    pub line: usize,
}

/// Top-level items.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Item {
    /// `const NAME = value;`
    Const(String, u32),
    /// `global name;` — zero-initialised u32.
    Global(String),
    /// `global name[SIZE];` — zero-initialised byte array.
    GlobalArray(String, u32),
    /// `str NAME = "...";` — named string constant.
    StrConst(String, Vec<u8>),
    /// A function.
    Func(Function),
}

/// A parsed program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}
