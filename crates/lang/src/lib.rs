//! A small C-like language compiled to SVM32 assembly.
//!
//! The paper's guest programs (bison, calc, screen, tar, gzip, the
//! SPECint-2000 subset...) are C programs compiled with gcc. Their
//! analogues in this repository are written in this language, which exists
//! so the workloads have realistic *shape* for the static analyses: real
//! call graphs, libc-style stubs, string constants in `.rodata`, constant
//! and non-constant syscall arguments, cold error paths, and so on.
//!
//! # Language
//!
//! ```text
//! // line comments
//! const N = 64;                 // compile-time constant
//! global counter;               // u32 global (zero-initialised)
//! global table[256];            // global byte array
//! str BANNER = "hello\n";       // string constant; value = its address
//!
//! fn add(a, b) { return a + b; }
//!
//! fn main() {
//!     var x = add(2, 3);        // locals are u32 words
//!     var buf[32];              // local byte array (value = its address)
//!     if (x >= 5 && x != 9) { x = x << 1; } else { x = 0; }
//!     while (x) { x = x - 1; if (x == 2) { break; } }
//!     buf[0] = 'A';             // byte load/store through arrays
//!     poke(buf + 4, x);         // word store intrinsic (peek/pokeb/peekb)
//!     write(1, BANNER, 6);      // unresolved calls become libc references
//!     return x;
//! }
//! ```
//!
//! Everything is an unsigned 32-bit word; comparisons are unsigned;
//! arrays are byte arrays whose name evaluates to their address. Functions
//! take up to 6 parameters (registers `R1..=R6`). The compiler emits a
//! `_start` that calls `main` and passes its result to the libc `exit`.
//!
//! # Example
//!
//! ```
//! let asm = asc_lang::compile("fn main() { return 41 + 1; }")?;
//! assert!(asm.contains("_start"));
//! # Ok::<(), asc_lang::CompileError>(())
//! ```

mod ast;
mod codegen;
mod lexer;
mod parser;

pub use ast::{BinOp, Expr, Function, Item, Program, Stmt, UnOp};
pub use codegen::compile_program;
pub use lexer::{CompileError, Token};
pub use parser::parse;

/// Compiles source text to SVM32 assembly.
///
/// # Errors
///
/// Returns a [`CompileError`] with a line number on lexical, syntax, or
/// semantic errors.
pub fn compile(source: &str) -> Result<String, CompileError> {
    let program = parse(source)?;
    compile_program(&program)
}
