//! Lexer for the guest language.

/// A compilation error with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl CompileError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> CompileError {
        CompileError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal, hex, or char).
    Num(u32),
    /// String literal (unescaped bytes).
    Str(Vec<u8>),
    /// Punctuation / operator, e.g. `"+"`, `"<<"`, `"&&"`.
    Punct(&'static str),
}

/// A token with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

const PUNCTS: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "(", ")", "{", "}", "[", "]", ",", ";", "=",
    "+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "!", "~",
];

/// Tokenises `source`.
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed literals or stray characters.
pub fn tokenize(source: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && bytes.get(i + 1).is_some_and(|&b| b == b'x' || b == b'X') {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = &source[start + 2..i];
                    let n = u32::from_str_radix(text, 16)
                        .map_err(|_| CompileError::new(line, "bad hex literal"))?;
                    out.push(Spanned {
                        token: Token::Num(n),
                        line,
                    });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let n = source[start..i]
                        .parse::<u32>()
                        .map_err(|_| CompileError::new(line, "bad number"))?;
                    out.push(Spanned {
                        token: Token::Num(n),
                        line,
                    });
                }
            }
            b'\'' => {
                let (b, consumed) = match bytes.get(i + 1) {
                    Some(b'\\') => {
                        let esc = bytes
                            .get(i + 2)
                            .ok_or_else(|| CompileError::new(line, "dangling char escape"))?;
                        let b = match esc {
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'r' => b'\r',
                            b'0' => 0,
                            b'\\' => b'\\',
                            b'\'' => b'\'',
                            _ => return Err(CompileError::new(line, "unknown char escape")),
                        };
                        (b, 4)
                    }
                    Some(&b) => (b, 3),
                    None => return Err(CompileError::new(line, "unterminated char literal")),
                };
                if bytes.get(i + consumed - 1) != Some(&b'\'') {
                    return Err(CompileError::new(line, "unterminated char literal"));
                }
                out.push(Spanned {
                    token: Token::Num(b as u32),
                    line,
                });
                i += consumed;
            }
            b'"' => {
                let mut s = Vec::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            return Err(CompileError::new(line, "unterminated string"))
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes
                                .get(i + 1)
                                .ok_or_else(|| CompileError::new(line, "dangling escape"))?;
                            s.push(match esc {
                                b'n' => b'\n',
                                b't' => b'\t',
                                b'r' => b'\r',
                                b'0' => 0,
                                b'\\' => b'\\',
                                b'"' => b'"',
                                _ => return Err(CompileError::new(line, "unknown escape")),
                            });
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(source[start..i].to_string()),
                    line,
                });
            }
            _ => {
                let rest = &source[i..];
                let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) else {
                    return Err(CompileError::new(
                        line,
                        format!("stray character `{}`", c as char),
                    ));
                };
                out.push(Spanned {
                    token: Token::Punct(p),
                    line,
                });
                i += p.len();
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn numbers_and_idents() {
        assert_eq!(
            toks("foo 42 0x2A 'A' '\\n'"),
            vec![
                Token::Ident("foo".into()),
                Token::Num(42),
                Token::Num(42),
                Token::Num(65),
                Token::Num(10),
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a<<b <= == != && || < ="),
            vec![
                Token::Ident("a".into()),
                Token::Punct("<<"),
                Token::Ident("b".into()),
                Token::Punct("<="),
                Token::Punct("=="),
                Token::Punct("!="),
                Token::Punct("&&"),
                Token::Punct("||"),
                Token::Punct("<"),
                Token::Punct("="),
            ]
        );
    }

    #[test]
    fn strings_and_comments() {
        assert_eq!(
            toks("\"a\\nb\" // comment\nx"),
            vec![Token::Str(b"a\nb".to_vec()), Token::Ident("x".into())]
        );
    }

    #[test]
    fn line_tracking() {
        let spanned = tokenize("a\nb\n  c").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 3);
    }

    #[test]
    fn errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("'x").is_err());
        assert!(tokenize("@").is_err());
    }
}
