//! Recursive-descent parser with precedence climbing.

use crate::ast::*;
use crate::lexer::{tokenize, CompileError, Spanned, Token};

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// Parses source text into a [`Program`].
///
/// # Errors
///
/// Returns a [`CompileError`] on syntax errors.
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let toks = tokenize(source)?;
    let mut p = Parser { toks, pos: 0 };
    let mut items = Vec::new();
    while !p.done() {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

impl Parser {
    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg)
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.token)
    }

    fn next(&mut self) -> Result<Token, CompileError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|s| s.token.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), CompileError> {
        match self.next()? {
            Token::Punct(q) if q == p => Ok(()),
            other => Err(self.err(format!("expected `{p}`, found {other:?}"))),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Token::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<u32, CompileError> {
        match self.next()? {
            Token::Num(n) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        let kw = self.ident()?;
        match kw.as_str() {
            "const" => {
                let name = self.ident()?;
                self.eat_punct("=")?;
                let value = self.number()?;
                self.eat_punct(";")?;
                Ok(Item::Const(name, value))
            }
            "global" => {
                let name = self.ident()?;
                if self.try_punct("[") {
                    let size = self.number()?;
                    self.eat_punct("]")?;
                    self.eat_punct(";")?;
                    Ok(Item::GlobalArray(name, size))
                } else {
                    self.eat_punct(";")?;
                    Ok(Item::Global(name))
                }
            }
            "str" => {
                let name = self.ident()?;
                self.eat_punct("=")?;
                let value = match self.next()? {
                    Token::Str(s) => s,
                    other => return Err(self.err(format!("expected string, found {other:?}"))),
                };
                self.eat_punct(";")?;
                Ok(Item::StrConst(name, value))
            }
            "fn" => {
                let line = self.line();
                let name = self.ident()?;
                self.eat_punct("(")?;
                let mut params = Vec::new();
                if !self.try_punct(")") {
                    loop {
                        params.push(self.ident()?);
                        if self.try_punct(")") {
                            break;
                        }
                        self.eat_punct(",")?;
                    }
                }
                if params.len() > 6 {
                    return Err(self.err("functions take at most 6 parameters"));
                }
                let body = self.block()?;
                Ok(Item::Func(Function {
                    name,
                    params,
                    body,
                    line,
                }))
            }
            other => Err(self.err(format!("expected item, found `{other}`"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.try_punct("}") {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek() {
            Some(Token::Ident(kw)) => match kw.as_str() {
                "var" | "let" => {
                    self.pos += 1;
                    let name = self.ident()?;
                    if self.try_punct("[") {
                        let size = self.number()?;
                        self.eat_punct("]")?;
                        self.eat_punct(";")?;
                        return Ok(Stmt::VarArray(name, size));
                    }
                    let init = if self.try_punct("=") {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.eat_punct(";")?;
                    Ok(Stmt::Var(name, init))
                }
                "if" => {
                    self.pos += 1;
                    self.eat_punct("(")?;
                    let cond = self.expr()?;
                    self.eat_punct(")")?;
                    let then = self.block()?;
                    let els = if matches!(self.peek(), Some(Token::Ident(k)) if k == "else") {
                        self.pos += 1;
                        if matches!(self.peek(), Some(Token::Ident(k)) if k == "if") {
                            vec![self.stmt()?]
                        } else {
                            self.block()?
                        }
                    } else {
                        Vec::new()
                    };
                    Ok(Stmt::If(cond, then, els))
                }
                "while" => {
                    self.pos += 1;
                    self.eat_punct("(")?;
                    let cond = self.expr()?;
                    self.eat_punct(")")?;
                    let body = self.block()?;
                    Ok(Stmt::While(cond, body))
                }
                "break" => {
                    self.pos += 1;
                    self.eat_punct(";")?;
                    Ok(Stmt::Break)
                }
                "continue" => {
                    self.pos += 1;
                    self.eat_punct(";")?;
                    Ok(Stmt::Continue)
                }
                "return" => {
                    self.pos += 1;
                    if self.try_punct(";") {
                        Ok(Stmt::Return(None))
                    } else {
                        let e = self.expr()?;
                        self.eat_punct(";")?;
                        Ok(Stmt::Return(Some(e)))
                    }
                }
                _ => self.assign_or_expr(),
            },
            _ => self.assign_or_expr(),
        }
    }

    fn assign_or_expr(&mut self) -> Result<Stmt, CompileError> {
        let e = self.expr()?;
        if self.try_punct("=") {
            let rhs = self.expr()?;
            self.eat_punct(";")?;
            match e {
                Expr::Ident(name) => Ok(Stmt::Assign(name, rhs)),
                Expr::Index(base, index) => Ok(Stmt::IndexAssign(*base, *index, rhs)),
                _ => Err(self.err("invalid assignment target")),
            }
        } else {
            self.eat_punct(";")?;
            Ok(Stmt::Expr(e))
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let Some(Token::Punct(p)) = self.peek() else {
                break;
            };
            let Some((op, prec)) = bin_op(p) else { break };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if self.try_punct("-") {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.try_punct("!") {
            return Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.try_punct("~") {
            return Ok(Expr::Un(UnOp::BitNot, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            if self.try_punct("[") {
                let index = self.expr()?;
                self.eat_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(index));
            } else if matches!(e, Expr::Ident(_)) && self.try_punct("(") {
                let Expr::Ident(name) = e else { unreachable!() };
                let mut args = Vec::new();
                if !self.try_punct(")") {
                    loop {
                        args.push(self.expr()?);
                        if self.try_punct(")") {
                            break;
                        }
                        self.eat_punct(",")?;
                    }
                }
                if args.len() > 6 {
                    return Err(self.err("calls take at most 6 arguments"));
                }
                e = Expr::Call(name, args);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.next()? {
            Token::Num(n) => Ok(Expr::Num(n)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::Ident(name) => Ok(Expr::Ident(name)),
            Token::Punct("(") => {
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// `(operator, precedence)`; higher binds tighter. C-like ordering.
fn bin_op(p: &str) -> Option<(BinOp, u8)> {
    Some(match p {
        "||" => (BinOp::LogOr, 1),
        "&&" => (BinOp::LogAnd, 2),
        "|" => (BinOp::Or, 3),
        "^" => (BinOp::Xor, 4),
        "&" => (BinOp::And, 5),
        "==" => (BinOp::Eq, 6),
        "!=" => (BinOp::Ne, 6),
        "<" => (BinOp::Lt, 7),
        "<=" => (BinOp::Le, 7),
        ">" => (BinOp::Gt, 7),
        ">=" => (BinOp::Ge, 7),
        "<<" => (BinOp::Shl, 8),
        ">>" => (BinOp::Shr, 8),
        "+" => (BinOp::Add, 9),
        "-" => (BinOp::Sub, 9),
        "*" => (BinOp::Mul, 10),
        "/" => (BinOp::Div, 10),
        "%" => (BinOp::Rem, 10),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items() {
        let p = parse(
            r#"
            const N = 10;
            global g;
            global table[64];
            str S = "hi";
            fn f(a, b) { return a + b; }
            "#,
        )
        .unwrap();
        assert_eq!(p.items.len(), 5);
        assert_eq!(p.items[0], Item::Const("N".into(), 10));
        assert_eq!(p.items[2], Item::GlobalArray("table".into(), 64));
        let Item::Func(f) = &p.items[4] else { panic!() };
        assert_eq!(f.params, vec!["a", "b"]);
    }

    #[test]
    fn precedence() {
        let p = parse("fn f() { return 1 + 2 * 3 == 7 && 1 < 2; }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        let Stmt::Return(Some(e)) = &f.body[0] else {
            panic!()
        };
        // (((1 + (2*3)) == 7) && (1 < 2))
        let Expr::Bin(BinOp::LogAnd, lhs, rhs) = e else {
            panic!("{e:?}")
        };
        assert!(matches!(**lhs, Expr::Bin(BinOp::Eq, _, _)));
        assert!(matches!(**rhs, Expr::Bin(BinOp::Lt, _, _)));
    }

    #[test]
    fn statements() {
        let p = parse(
            r#"
            fn f(x) {
                var a = 1;
                var buf[16];
                buf[a] = 'Z';
                a = buf[0];
                if (x) { a = a + 1; } else if (a) { a = 2; }
                while (a != 0) { a = a - 1; break; continue; }
                g(a, 2);
                return;
            }
            "#,
        )
        .unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert_eq!(f.body.len(), 8);
        assert!(matches!(f.body[2], Stmt::IndexAssign(..)));
        assert!(matches!(f.body[4], Stmt::If(..)));
    }

    #[test]
    fn nested_calls_and_index_chains() {
        let p = parse("fn f() { return g(h(1), t[i + 1]) * 2; }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert!(matches!(f.body[0], Stmt::Return(Some(_))));
    }

    #[test]
    fn errors() {
        assert!(parse("fn f( { }").is_err());
        assert!(parse("fn f() { 1 + ; }").is_err());
        assert!(parse("fn f() { (1 = 2); }").is_err());
        assert!(parse("bogus x;").is_err());
        assert!(parse("fn f(a,b,c,d,e,f,g) {}").is_err());
    }
}
