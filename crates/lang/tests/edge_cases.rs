//! Guest-language edge cases: nesting, scoping, and operator corners that
//! the workloads lean on.

use asc_asm::assemble_many;
use asc_kernel::{Kernel, KernelOptions, Personality};
use asc_vm::{Machine, RunOutcome};

const TEST_LIBC: &str = "
    .text
exit:
    movi r0, 1
    syscall
    ret
write:
    movi r0, 4
    syscall
    ret
";

fn exit_code(src: &str) -> u32 {
    let asm = asc_lang::compile(src).expect("compiles");
    let binary = assemble_many(&[asm.as_str(), TEST_LIBC]).expect("assembles");
    let mut kernel = Kernel::new(KernelOptions::plain(Personality::Linux));
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(&binary, kernel).expect("loads");
    match machine.run(200_000_000) {
        RunOutcome::Exited(c) => c,
        other => panic!("{other:?}"),
    }
}

#[test]
fn nested_loops_with_break_levels() {
    // break/continue bind to the innermost loop.
    let src = r#"
        fn main() {
            var total = 0;
            var i = 0;
            while (i < 5) {
                var j = 0;
                while (1) {
                    j = j + 1;
                    if (j > i) { break; }
                    if (j == 2) { continue; }
                    total = total + 1;
                }
                i = i + 1;
            }
            return total;    // j==2 skipped: i=2..4 contribute (1,2,3)-1 each
        }
    "#;
    // i=0: inner breaks immediately (j=1>0) -> 0
    // i=1: j=1 counts -> 1
    // i=2: j=1 counts, j=2 skipped -> 1
    // i=3: j=1, j=3 count -> 2 ; i=4: j=1,3,4 -> 3
    assert_eq!(exit_code(src), 7);
}

#[test]
fn recursion_with_arrays_in_frame() {
    // Each recursion level gets its own array slice.
    let src = r#"
        fn fill(depth) {
            var buf[8];
            var i = 0;
            while (i < 8) { buf[i] = depth; i = i + 1; }
            if (depth == 0) { return buf[3]; }
            var below = fill(depth - 1);
            return buf[3] * 10 + below;     // frames must not alias
        }
        fn main() { return fill(3); }
    "#;
    // fill(0)=0, fill(1)=10, fill(2)=30, fill(3)=60. If recursion levels
    // shared one frame, the deeper calls would have clobbered buf[3].
    assert_eq!(exit_code(src), 60);
}

#[test]
fn chained_comparisons_and_precedence() {
    assert_eq!(exit_code("fn main() { return 1 < 2 == 1; }"), 1);
    assert_eq!(exit_code("fn main() { return (3 & 1) == 1; }"), 1);
    assert_eq!(exit_code("fn main() { return 1 | 2 == 2; }"), 1 | 1);
    assert_eq!(exit_code("fn main() { return 2 + 3 << 1; }"), 10);
}

#[test]
fn unary_chains() {
    assert_eq!(exit_code("fn main() { return !!5; }"), 1);
    assert_eq!(exit_code("fn main() { return -(-7); }"), 7);
    assert_eq!(exit_code("fn main() { return ~~9; }"), 9);
    assert_eq!(exit_code("fn main() { return !(1 == 2); }"), 1);
}

#[test]
fn global_array_as_scratch_between_calls() {
    let src = r#"
        global shared[16];
        fn put(i, v) { shared[i] = v; return 0; }
        fn get(i) { return shared[i]; }
        fn main() {
            put(0, 11);
            put(15, 22);
            return get(0) + get(15);
        }
    "#;
    assert_eq!(exit_code(src), 33);
}

#[test]
fn expression_statement_calls_discard_values() {
    let src = r#"
        global n;
        fn bump() { n = n + 1; return n; }
        fn main() {
            bump();
            bump();
            bump();
            return n;
        }
    "#;
    assert_eq!(exit_code(src), 3);
}

#[test]
fn index_into_call_result() {
    // base[index] where base is an arbitrary address expression.
    let src = r#"
        global tab[8];
        fn base() { return tab + 2; }
        fn main() {
            tab[2] = 40;
            tab[5] = 2;
            return base()[0] + base()[3];
        }
    "#;
    assert_eq!(exit_code(src), 42);
}

#[test]
fn while_condition_side_effects() {
    let src = r#"
        global countdown;
        fn dec() { countdown = countdown - 1; return countdown; }
        fn main() {
            countdown = 5;
            var iters = 0;
            while (dec()) { iters = iters + 1; }
            return iters;
        }
    "#;
    assert_eq!(exit_code(src), 4);
}

#[test]
fn shadowing_params_forbidden_but_distinct_fns_independent() {
    assert!(asc_lang::compile("fn f(a) { var a; }").is_err());
    // Same local name in different functions is fine.
    assert_eq!(
        exit_code("fn f() { var x = 1; return x; } fn g() { var x = 2; return x; } fn main() { return f() + g(); }"),
        3
    );
}

#[test]
fn big_frame_with_many_locals() {
    let mut body = String::new();
    for i in 0..60 {
        body.push_str(&format!("var v{i} = {i};\n"));
    }
    let mut sum = String::from("return 0");
    for i in 0..60 {
        sum.push_str(&format!(" + v{i}"));
    }
    sum.push(';');
    let src = format!("fn main() {{ {body} {sum} }}");
    assert_eq!(exit_code(&src), (0..60).sum::<u32>());
}

#[test]
fn comparison_result_is_plain_value() {
    assert_eq!(
        exit_code("fn main() { return (3 > 2) * 10 + (2 > 3); }"),
        10
    );
}
