//! Execution tests: compile guest-language programs, link a minimal libc,
//! run on the simulated kernel, and check observable behaviour.

use asc_asm::assemble_many;
use asc_kernel::{Kernel, KernelOptions, Personality};
use asc_vm::{Machine, RunOutcome};

/// Minimal libc (Linux personality numbers) for these tests.
const TEST_LIBC: &str = "
    .text
exit:
    movi r0, 1
    syscall
    ret
write:
    movi r0, 4
    syscall
    ret
read:
    movi r0, 3
    syscall
    ret
open:
    movi r0, 5
    syscall
    ret
close:
    movi r0, 6
    syscall
    ret
getpid:
    movi r0, 20
    syscall
    ret
";

fn run(src: &str, stdin: &[u8]) -> (RunOutcome, Kernel) {
    let asm = asc_lang::compile(src).expect("compiles");
    let binary = assemble_many(&[asm.as_str(), TEST_LIBC]).expect("assembles");
    let mut kernel = Kernel::new(KernelOptions::plain(Personality::Linux));
    kernel.set_stdin(stdin.to_vec());
    kernel.set_brk(binary.highest_addr());
    let mut machine = Machine::load(&binary, kernel).expect("loads");
    let outcome = machine.run(200_000_000);
    (outcome, machine.into_handler())
}

fn exit_code(src: &str) -> u32 {
    match run(src, b"") {
        (RunOutcome::Exited(c), _) => c,
        (other, k) => panic!(
            "{other:?} (stdout: {:?})",
            String::from_utf8_lossy(k.stdout())
        ),
    }
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(exit_code("fn main() { return 2 + 3 * 4; }"), 14);
    assert_eq!(exit_code("fn main() { return (2 + 3) * 4; }"), 20);
    assert_eq!(exit_code("fn main() { return 100 / 7; }"), 14);
    assert_eq!(exit_code("fn main() { return 100 % 7; }"), 2);
    assert_eq!(exit_code("fn main() { return 1 << 5; }"), 32);
    assert_eq!(exit_code("fn main() { return 0xF0 >> 4; }"), 15);
    assert_eq!(
        exit_code("fn main() { return (0xFF & 0x0F) | 0x30; }"),
        0x3F
    );
    assert_eq!(exit_code("fn main() { return 5 ^ 3; }"), 6);
    assert_eq!(exit_code("fn main() { return -1 >> 28; }"), 15);
    assert_eq!(exit_code("fn main() { return ~0 >> 28; }"), 15);
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(exit_code("fn main() { return 3 < 5; }"), 1);
    assert_eq!(exit_code("fn main() { return 5 < 3; }"), 0);
    assert_eq!(exit_code("fn main() { return 5 <= 5; }"), 1);
    assert_eq!(exit_code("fn main() { return 5 > 3; }"), 1);
    assert_eq!(exit_code("fn main() { return 3 >= 5; }"), 0);
    assert_eq!(exit_code("fn main() { return 4 == 4; }"), 1);
    assert_eq!(exit_code("fn main() { return 4 != 4; }"), 0);
    assert_eq!(exit_code("fn main() { return 1 && 2; }"), 1);
    assert_eq!(exit_code("fn main() { return 1 && 0; }"), 0);
    assert_eq!(exit_code("fn main() { return 0 || 3; }"), 1);
    assert_eq!(exit_code("fn main() { return 0 || 0; }"), 0);
    assert_eq!(exit_code("fn main() { return !0; }"), 1);
    assert_eq!(exit_code("fn main() { return !7; }"), 0);
}

#[test]
fn short_circuit_side_effects() {
    // The right operand must not run when the left decides.
    let src = r#"
        global hits;
        fn bump() { hits = hits + 1; return 1; }
        fn main() {
            var t = 0 && bump();
            t = 1 || bump();
            t = 1 && bump();
            t = 0 || bump();
            return hits;
        }
    "#;
    assert_eq!(exit_code(src), 2);
}

#[test]
fn control_flow() {
    let src = r#"
        fn main() {
            var sum = 0;
            var i = 1;
            while (i <= 10) {
                if (i % 2 == 0) { sum = sum + i; }
                i = i + 1;
            }
            return sum;    // 2+4+6+8+10
        }
    "#;
    assert_eq!(exit_code(src), 30);
}

#[test]
fn break_and_continue() {
    let src = r#"
        fn main() {
            var n = 0;
            var i = 0;
            while (1) {
                i = i + 1;
                if (i > 100) { break; }
                if (i % 3 != 0) { continue; }
                n = n + 1;
            }
            return n;      // multiples of 3 in 1..=100
        }
    "#;
    assert_eq!(exit_code(src), 33);
}

#[test]
fn functions_recursion() {
    let src = r#"
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { return fib(12); }
    "#;
    assert_eq!(exit_code(src), 144);
}

#[test]
fn six_parameters() {
    let src = r#"
        fn f(a, b, c, d, e, g) { return a + b * 2 + c * 3 + d * 4 + e * 5 + g * 6; }
        fn main() { return f(1, 1, 1, 1, 1, 1); }
    "#;
    assert_eq!(exit_code(src), 21);
}

#[test]
fn globals_and_arrays() {
    let src = r#"
        global counter;
        global table[16];
        fn main() {
            counter = 5;
            counter = counter + 2;
            table[3] = 'x';
            table[4] = table[3] + 1;
            return counter * 100 + table[4];   // 700 + 'y'
        }
    "#;
    assert_eq!(exit_code(src), 700 + b'y' as u32);
}

#[test]
fn local_arrays_and_intrinsics() {
    let src = r#"
        fn main() {
            var buf[16];
            buf[0] = 65;
            poke(buf + 4, 0xDEAD);
            var w = peek(buf + 4);
            pokeb(buf + 1, buf[0] + 1);
            return (w == 0xDEAD) * 100 + peekb(buf + 1);  // 100 + 66
        }
    "#;
    assert_eq!(exit_code(src), 166);
}

#[test]
fn string_literals_and_write() {
    let src = r#"
        str GREETING = "hey ";
        fn main() {
            write(1, GREETING, 4);
            write(1, "you\n", 4);
            return 0;
        }
    "#;
    let (outcome, kernel) = run(src, b"");
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(kernel.stdout(), b"hey you\n");
}

#[test]
fn read_stdin_loop() {
    let src = r#"
        fn main() {
            var buf[8];
            var total = 0;
            var n = read(0, buf, 8);
            while (n != 0) {
                var i = 0;
                while (i < n) {
                    total = total + buf[i];
                    i = i + 1;
                }
                n = read(0, buf, 8);
            }
            return total;
        }
    "#;
    let (outcome, _) = run(src, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    assert_eq!(outcome, RunOutcome::Exited(55));
}

#[test]
fn open_read_file() {
    let src = r#"
        fn main() {
            let fd = open("/etc/motd", 0, 0);
            var buf[32];
            let n = read(fd, buf, 32);
            write(1, buf, n);
            close(fd);
            return 0;
        }
    "#;
    let (outcome, kernel) = run(src, b"");
    assert_eq!(outcome, RunOutcome::Exited(0));
    assert_eq!(kernel.stdout(), b"welcome to svm32\n");
}

#[test]
fn string_dedup_in_rodata() {
    let asm =
        asc_lang::compile(r#"fn main() { write(1, "same", 4); write(1, "same", 4); return 0; }"#)
            .unwrap();
    assert_eq!(
        asm.matches("\"same\"").count(),
        1,
        "literal interned once:\n{asm}"
    );
}

#[test]
fn const_items() {
    let src = r#"
        const WIDTH = 6;
        const HEIGHT = 7;
        fn main() { return WIDTH * HEIGHT; }
    "#;
    assert_eq!(exit_code(src), 42);
}

#[test]
fn else_if_chain() {
    let src = r#"
        fn grade(x) {
            if (x >= 90) { return 4; }
            else if (x >= 80) { return 3; }
            else if (x >= 70) { return 2; }
            else { return 0; }
        }
        fn main() { return grade(95) * 100 + grade(85) * 10 + grade(50); }
    "#;
    assert_eq!(exit_code(src), 430);
}

#[test]
fn semantic_errors() {
    assert!(asc_lang::compile("fn main() { return x; }").is_err());
    assert!(asc_lang::compile("fn main() { x = 1; }").is_err());
    assert!(asc_lang::compile("fn main() { var a; var a; }").is_err());
    assert!(asc_lang::compile("fn f() {} fn f() {}").is_err());
    assert!(asc_lang::compile("fn main() { break; }").is_err());
    assert!(asc_lang::compile("const C = 1; fn main() { C = 2; }").is_err());
    assert!(asc_lang::compile("global g[4]; fn main() { g = 2; }").is_err());
}

#[test]
fn fallthrough_returns_zero() {
    assert_eq!(exit_code("fn main() { var x = 9; }"), 0);
}

#[test]
fn nested_call_arguments_evaluate_in_order() {
    let src = r#"
        global log;
        fn tag(v) { log = log * 10 + v; return v; }
        fn three(a, b, c) { return a * 100 + b * 10 + c; }
        fn main() {
            var r = three(tag(1), tag(2), tag(3));
            return (log == 123) * 1000 + r;
        }
    "#;
    assert_eq!(exit_code(src), 1123);
}
