//! Exhaustive opcode-semantics tests: every arithmetic edge the guest
//! compiler and the attack payloads rely on.

use asc_asm::assemble;
use asc_vm::{Machine, RunOutcome, SyscallHandler, TrapContext, TrapOutcome};

/// Exit-only kernel: syscall 1 = exit(R1).
#[derive(Debug, Default)]
struct ExitKernel;

impl SyscallHandler for ExitKernel {
    fn syscall(&mut self, ctx: &mut TrapContext<'_>) -> TrapOutcome {
        TrapOutcome::Exit(ctx.reg(asc_isa::Reg::R1))
    }
}

fn eval(body: &str) -> u32 {
    let src = format!(
        "
        .text
        .entry main
    main:
        {body}
        movi r0, 1
        syscall
    "
    );
    let binary = assemble(&src).expect("assembles");
    let mut m = Machine::load(&binary, ExitKernel).expect("loads");
    match m.run(1_000_000) {
        RunOutcome::Exited(v) => v,
        other => panic!("{other:?}"),
    }
}

#[test]
fn division_by_zero_yields_zero() {
    assert_eq!(eval("movi r2, 7\nmovi r3, 0\ndivu r1, r2, r3"), 0);
    assert_eq!(eval("movi r2, 7\nmovi r3, 0\nremu r1, r2, r3"), 0);
}

#[test]
fn division_normal() {
    assert_eq!(eval("movi r2, 100\nmovi r3, 7\ndivu r1, r2, r3"), 14);
    assert_eq!(eval("movi r2, 100\nmovi r3, 7\nremu r1, r2, r3"), 2);
}

#[test]
fn shifts_mask_to_five_bits() {
    assert_eq!(eval("movi r2, 1\nmovi r3, 33\nshl r1, r2, r3"), 2);
    assert_eq!(eval("movi r2, 0x80000000\nmovi r3, 63\nshr r1, r2, r3"), 1);
    assert_eq!(eval("movi r2, 1\nshli r1, r2, 32"), 1);
}

#[test]
fn wrapping_arithmetic() {
    assert_eq!(eval("movi r2, 0xffffffff\nmovi r3, 2\nadd r1, r2, r3"), 1);
    assert_eq!(eval("movi r2, 0\nmovi r3, 1\nsub r1, r2, r3"), 0xffff_ffff);
    assert_eq!(
        eval("movi r2, 0x10000\nmovi r3, 0x10000\nmul r1, r2, r3"),
        0
    );
    assert_eq!(eval("movi r2, 0xffffffff\nmuli r1, r2, 3"), 0xffff_fffd);
}

#[test]
fn signed_vs_unsigned_branches() {
    // -1 < 1 signed, but not unsigned.
    let signed = eval(
        "movi r2, 0xffffffff
         movi r3, 1
         movi r1, 0
         blt r2, r3, .taken
         jmp .done
     .taken:
         movi r1, 1
     .done:",
    );
    assert_eq!(signed, 1);
    let unsigned = eval(
        "movi r2, 0xffffffff
         movi r3, 1
         movi r1, 0
         bltu r2, r3, .taken
         jmp .done
     .taken:
         movi r1, 1
     .done:",
    );
    assert_eq!(unsigned, 0);
    // bge/bgeu complements.
    assert_eq!(
        eval(
            "movi r2, 0xffffffff
             movi r3, 1
             movi r1, 0
             bge r2, r3, .t
             jmp .d
         .t: movi r1, 1
         .d:"
        ),
        0
    );
    assert_eq!(
        eval(
            "movi r2, 0xffffffff
             movi r3, 1
             movi r1, 0
             bgeu r2, r3, .t
             jmp .d
         .t: movi r1, 1
         .d:"
        ),
        1
    );
}

#[test]
fn bitwise_ops() {
    assert_eq!(
        eval("movi r2, 0xf0f0\nmovi r3, 0x0ff0\nand r1, r2, r3"),
        0x0ff0 & 0xf0f0
    );
    assert_eq!(
        eval("movi r2, 0xf0f0\nmovi r3, 0x0ff0\nor r1, r2, r3"),
        0xfff0
    );
    assert_eq!(
        eval("movi r2, 0xf0f0\nmovi r3, 0x0ff0\nxor r1, r2, r3"),
        0xff00
    );
    assert_eq!(eval("movi r2, 0xff\nandi r1, r2, 0x0f"), 0x0f);
    assert_eq!(eval("movi r2, 0xf0\nori r1, r2, 0x0f"), 0xff);
    assert_eq!(eval("movi r2, 0xff\nxori r1, r2, 0xffffffff"), 0xffff_ff00);
}

#[test]
fn byte_memory_ops_zero_extend() {
    let v = eval(
        "addi sp, sp, -8
         movi r2, 0x1ff
         stb [sp], r2          ; stores 0xff
         ldb r1, [sp]",
    );
    assert_eq!(v, 0xff);
}

#[test]
fn callr_and_jr() {
    let v = eval(
        "movi r2, .target
         callr r2
         mov r1, r0
         jmp .out
     .target:
         movi r0, 77
         ret
     .out:",
    );
    assert_eq!(v, 77);
}

#[test]
fn nested_calls_preserve_stack_discipline() {
    let v = eval(
        "movi r1, 3
         call .f
         mov r1, r0
         jmp .end
     .f:
         push r1
         addi r1, r1, 1
         movi r2, 5
         beq r1, r2, .base
         call .f
         pop r1
         addi r0, r0, 1
         ret
     .base:
         pop r1
         movi r0, 100
         ret
     .end:",
    );
    assert_eq!(v, 101);
}

#[test]
fn stack_overflow_into_unmapped_faults() {
    let src = "
        .text
        .entry main
    main:
        push r0
        jmp main
    ";
    let binary = assemble(src).unwrap();
    let mut m = Machine::load_with(&binary, ExitKernel, 1 << 20, 0x2000).unwrap();
    let outcome = m.run(100_000_000);
    assert!(
        matches!(outcome, RunOutcome::Fault(_)),
        "pushing forever must eventually fault: {outcome:?}"
    );
}

#[test]
fn jump_to_unmapped_is_exec_fault() {
    let v = assemble(".text\n.entry main\nmain: jmp 0x500000").unwrap();
    let mut m = Machine::load(&v, ExitKernel).unwrap();
    assert!(matches!(
        m.run(1000),
        RunOutcome::Fault(asc_vm::MemFault::NoExec { .. })
    ));
}

#[test]
fn cycle_accounting_is_deterministic() {
    let src = "
        .text
        .entry main
    main:
        movi r2, 0
        movi r3, 1000
    .loop:
        addi r2, r2, 1
        bne r2, r3, .loop
        movi r1, 0
        movi r0, 1
        syscall
    ";
    let binary = assemble(src).unwrap();
    let run = || {
        let mut m = Machine::load(&binary, ExitKernel).unwrap();
        m.run(10_000_000);
        (m.cycles(), m.instret())
    };
    let (c1, i1) = run();
    let (c2, i2) = run();
    assert_eq!(c1, c2);
    assert_eq!(i1, i2);
    // 2 setup + 2000 loop + 2 exit setup + 1 syscall.
    assert_eq!(i1, 2 + 2000 + 3);
}
