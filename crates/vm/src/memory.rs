//! Flat byte-addressable memory with page-granular protection.

use asc_object::{Binary, SectionFlags};

/// Page size for protection granularity.
pub const PAGE_SIZE: u32 = 0x1000;

/// Per-page access permissions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PageFlags(u8);

impl PageFlags {
    /// No access (unmapped).
    pub const NONE: PageFlags = PageFlags(0);
    /// Readable.
    pub const R: PageFlags = PageFlags(1);
    /// Readable + writable.
    pub const RW: PageFlags = PageFlags(1 | 2);
    /// Readable + executable.
    pub const RX: PageFlags = PageFlags(1 | 4);
    /// Readable + writable + executable (the stack).
    pub const RWX: PageFlags = PageFlags(1 | 2 | 4);

    /// Whether reads are allowed.
    pub fn readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether writes are allowed.
    pub fn writable(self) -> bool {
        self.0 & 2 != 0
    }

    /// Whether instruction fetch is allowed.
    pub fn executable(self) -> bool {
        self.0 & 4 != 0
    }

    /// Whether the page is mapped at all.
    pub fn mapped(self) -> bool {
        self.0 != 0
    }

    /// Converts section flags to page flags.
    pub fn from_section(flags: SectionFlags) -> PageFlags {
        let mut bits = 0;
        if flags.contains(SectionFlags::READ) {
            bits |= 1;
        }
        if flags.contains(SectionFlags::WRITE) {
            bits |= 2;
        }
        if flags.contains(SectionFlags::EXEC) {
            bits |= 4;
        }
        PageFlags(bits)
    }
}

/// An access violation or out-of-range access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemFault {
    /// Address beyond the end of physical memory.
    OutOfRange {
        /// The faulting address.
        addr: u32,
    },
    /// Read from a non-readable or unmapped page.
    NoRead {
        /// The faulting address.
        addr: u32,
    },
    /// Write to a non-writable or unmapped page.
    NoWrite {
        /// The faulting address.
        addr: u32,
    },
    /// Instruction fetch from a non-executable or unmapped page.
    NoExec {
        /// The faulting address.
        addr: u32,
    },
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemFault::OutOfRange { addr } => write!(f, "address {addr:#x} out of range"),
            MemFault::NoRead { addr } => write!(f, "read fault at {addr:#x}"),
            MemFault::NoWrite { addr } => write!(f, "write fault at {addr:#x}"),
            MemFault::NoExec { addr } => write!(f, "exec fault at {addr:#x}"),
        }
    }
}

impl std::error::Error for MemFault {}

/// The simulated physical memory of one process.
#[derive(Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    pages: Vec<PageFlags>,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mapped = self.pages.iter().filter(|p| p.mapped()).count();
        f.debug_struct("Memory")
            .field("size", &self.bytes.len())
            .field("mapped_pages", &mapped)
            .finish()
    }
}

impl Memory {
    /// Creates zeroed, fully unmapped memory of `size` bytes (rounded up to
    /// a whole number of pages).
    pub fn new(size: u32) -> Memory {
        let pages = size.div_ceil(PAGE_SIZE) as usize;
        Memory {
            bytes: vec![0; pages * PAGE_SIZE as usize],
            pages: vec![PageFlags::NONE; pages],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Loads a binary's sections and maps their pages; maps a stack of
    /// `stack_size` bytes (RWX — see crate docs) at the top of memory.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::OutOfRange`] if any section or the stack does not
    /// fit.
    pub fn load(&mut self, binary: &Binary, stack_size: u32) -> Result<(), MemFault> {
        for section in binary.sections() {
            let end = section.addr + section.mem_size;
            if end > self.size() {
                return Err(MemFault::OutOfRange { addr: end });
            }
            let start = section.addr as usize;
            self.bytes[start..start + section.data.len()].copy_from_slice(&section.data);
            // Zero-fill the bss tail.
            for b in &mut self.bytes[start + section.data.len()..start + section.mem_size as usize]
            {
                *b = 0;
            }
            self.protect(
                section.addr,
                section.mem_size,
                PageFlags::from_section(section.flags),
            );
        }
        let stack_base = self.size() - stack_size;
        self.protect(stack_base, stack_size, PageFlags::RWX);
        Ok(())
    }

    /// Initial stack pointer (top of memory, 16-byte aligned).
    pub fn initial_sp(&self) -> u32 {
        self.size() & !0xf
    }

    /// Sets protection for the pages covering `[addr, addr+len)`.
    pub fn protect(&mut self, addr: u32, len: u32, flags: PageFlags) {
        if len == 0 {
            return;
        }
        let first = (addr / PAGE_SIZE) as usize;
        let last = ((addr + len - 1) / PAGE_SIZE) as usize;
        for p in first..=last.min(self.pages.len() - 1) {
            self.pages[p] = flags;
        }
    }

    /// Protection flags of the page containing `addr`.
    pub fn flags_at(&self, addr: u32) -> PageFlags {
        self.pages
            .get((addr / PAGE_SIZE) as usize)
            .copied()
            .unwrap_or(PageFlags::NONE)
    }

    fn check(
        &self,
        addr: u32,
        len: u32,
        need: fn(PageFlags) -> bool,
        fault: fn(u32) -> MemFault,
    ) -> Result<(), MemFault> {
        if addr as u64 + len as u64 > self.size() as u64 {
            return Err(MemFault::OutOfRange { addr });
        }
        if len == 0 {
            return Ok(());
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for p in first..=last {
            if !need(self.pages[p as usize]) {
                return Err(fault(p * PAGE_SIZE));
            }
        }
        Ok(())
    }

    /// User-mode byte read.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemFault> {
        self.check(addr, 1, PageFlags::readable, |a| MemFault::NoRead {
            addr: a,
        })?;
        Ok(self.bytes[addr as usize])
    }

    /// User-mode byte write.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemFault> {
        self.check(addr, 1, PageFlags::writable, |a| MemFault::NoWrite {
            addr: a,
        })?;
        self.bytes[addr as usize] = value;
        Ok(())
    }

    /// User-mode 32-bit read (little-endian, unaligned allowed).
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemFault> {
        self.check(addr, 4, PageFlags::readable, |a| MemFault::NoRead {
            addr: a,
        })?;
        let i = addr as usize;
        Ok(u32::from_le_bytes(
            self.bytes[i..i + 4].try_into().expect("4 bytes"),
        ))
    }

    /// User-mode 32-bit write.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemFault> {
        self.check(addr, 4, PageFlags::writable, |a| MemFault::NoWrite {
            addr: a,
        })?;
        let i = addr as usize;
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Instruction fetch: returns the 8 instruction bytes at `pc`.
    pub fn fetch(&self, pc: u32) -> Result<&[u8], MemFault> {
        self.check(pc, asc_isa::INSTR_LEN as u32, PageFlags::executable, |a| {
            MemFault::NoExec { addr: a }
        })?;
        Ok(&self.bytes[pc as usize..pc as usize + asc_isa::INSTR_LEN])
    }

    /// Kernel-mode read: bounds-checked but ignores page protection
    /// (the kernel may read any mapped user memory).
    pub fn kread(&self, addr: u32, len: u32) -> Result<&[u8], MemFault> {
        self.check(addr, len, PageFlags::mapped, |a| MemFault::NoRead {
            addr: a,
        })?;
        Ok(&self.bytes[addr as usize..(addr + len) as usize])
    }

    /// Kernel-mode 32-bit read.
    pub fn kread_u32(&self, addr: u32) -> Result<u32, MemFault> {
        let b = self.kread(addr, 4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Kernel-mode write: bounds-checked but ignores page protection (the
    /// kernel updates the policy state inside the application's `.asc`
    /// section and fills output buffers).
    pub fn kwrite(&mut self, addr: u32, data: &[u8]) -> Result<(), MemFault> {
        self.check(addr, data.len() as u32, PageFlags::mapped, |a| {
            MemFault::NoWrite { addr: a }
        })?;
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Kernel-mode read of a NUL-terminated string, capped at `max` bytes.
    ///
    /// # Errors
    ///
    /// Faults if the string runs off mapped memory or exceeds `max` bytes
    /// without a terminator (the kernel defends itself against unterminated
    /// strings, as real kernels must).
    pub fn kread_cstr(&self, addr: u32, max: u32) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.kread(addr + i, 1)?[0];
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
        }
        Err(MemFault::NoRead { addr: addr + max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_object::{Section, SectionFlags};

    fn mem_with_binary() -> Memory {
        let mut b = Binary::new(0x1000);
        b.push_section(Section::new(
            ".text",
            0x1000,
            vec![0xAA; 64],
            SectionFlags::RX,
        ));
        b.push_section(Section::new(
            ".data",
            0x2000,
            vec![1, 2, 3, 4],
            SectionFlags::RW,
        ));
        b.push_section(Section::zeroed(".bss", 0x3000, 32, SectionFlags::RW));
        let mut m = Memory::new(1 << 20);
        m.load(&b, 0x4000).unwrap();
        m
    }

    #[test]
    fn load_and_protection() {
        let m = mem_with_binary();
        assert_eq!(m.read_u8(0x1000).unwrap(), 0xAA);
        assert_eq!(m.read_u32(0x2000).unwrap(), 0x04030201);
        assert_eq!(m.read_u8(0x3000).unwrap(), 0);
        // text not writable
        let mut m2 = m.clone();
        assert_eq!(
            m2.write_u8(0x1000, 0),
            Err(MemFault::NoWrite { addr: 0x1000 })
        );
        // data not executable
        assert_eq!(m.fetch(0x2000), Err(MemFault::NoExec { addr: 0x2000 }));
        // text executable
        assert!(m.fetch(0x1000).is_ok());
        // unmapped page
        assert_eq!(m.read_u8(0x9000), Err(MemFault::NoRead { addr: 0x9000 }));
    }

    #[test]
    fn stack_is_rwx() {
        let m = mem_with_binary();
        let sp = m.initial_sp();
        let stack_page = sp - 8;
        assert!(m.flags_at(stack_page).writable());
        assert!(m.flags_at(stack_page).executable());
    }

    #[test]
    fn out_of_range() {
        let m = mem_with_binary();
        assert!(matches!(
            m.read_u32(m.size() - 2),
            Err(MemFault::OutOfRange { .. })
        ));
        let mut m2 = m.clone();
        assert!(matches!(
            m2.write_u32(m.size(), 1),
            Err(MemFault::OutOfRange { .. })
        ));
    }

    #[test]
    fn kernel_access_ignores_protection() {
        let mut m = mem_with_binary();
        // Kernel can write into .text (e.g. nothing stops it), and read .data.
        m.kwrite(0x1000, &[1, 2, 3]).unwrap();
        assert_eq!(m.kread(0x1000, 3).unwrap(), &[1, 2, 3]);
        // But not unmapped pages.
        assert!(m.kwrite(0x9000, &[0]).is_err());
    }

    #[test]
    fn kread_cstr() {
        let mut m = mem_with_binary();
        m.kwrite(0x2000, b"hi\0").unwrap();
        assert_eq!(m.kread_cstr(0x2000, 100).unwrap(), b"hi");
        // Unterminated within cap:
        m.kwrite(0x2000, &[b'x'; 4]).unwrap();
        assert!(m.kread_cstr(0x2000, 3).is_err());
    }

    #[test]
    fn unaligned_word_access() {
        let mut m = mem_with_binary();
        m.write_u32(0x2001, 0xdead_beef).unwrap();
        assert_eq!(m.read_u32(0x2001).unwrap(), 0xdead_beef);
    }

    #[test]
    fn cross_page_check() {
        let m = mem_with_binary();
        // A 4-byte read straddling the .bss page into unmapped space.
        let boundary = 0x3000 + 0x1000 - 2;
        assert!(m.read_u32(boundary).is_err());
        // Whereas straddling two mapped readable pages succeeds.
        assert!(m.read_u32(0x1000 + 0x1000 - 2).is_ok());
    }
}
