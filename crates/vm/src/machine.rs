//! The CPU interpreter.

use asc_isa::{base_cycles, DecodeError, Instruction, Opcode, Reg};
use asc_object::Binary;

use crate::memory::{MemFault, Memory};
use crate::{DEFAULT_MEM_SIZE, DEFAULT_STACK_SIZE};

/// What the kernel decided about a trapped system call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrapOutcome {
    /// Let the process continue; the handler has written the return value
    /// into `R0`.
    Continue,
    /// The process called `exit` (or an equivalent); stop with this code.
    Exit(u32),
    /// The kernel killed the process (e.g. a policy violation). The string
    /// is the log message for the administrator alert.
    Kill(String),
}

/// Execution context handed to the syscall handler at trap time.
///
/// The handler sees the full register file, the faulting PC (which is how
/// the kernel learns the *call site*, like the return address of the
/// interrupt handler in the paper), the process memory, and a cycle meter.
pub struct TrapContext<'a> {
    /// The register file; `regs[0]` carries the syscall number in and the
    /// return value out.
    pub regs: &'a mut [u32; Reg::COUNT],
    /// Address of the `syscall` instruction.
    pub pc: u32,
    /// Process memory.
    pub mem: &'a mut Memory,
    cycles: &'a mut u64,
}

impl<'a> TrapContext<'a> {
    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// Charges kernel-side work to the process's cycle meter.
    pub fn charge(&mut self, cycles: u64) {
        *self.cycles += cycles;
    }

    /// Current value of the process's cycle meter (used to timestamp
    /// kernel-side trace events on the virtual clock).
    pub fn cycles(&self) -> u64 {
        *self.cycles
    }
}

/// The kernel interface: invoked on every `syscall` instruction.
pub trait SyscallHandler {
    /// Handles one trap.
    fn syscall(&mut self, ctx: &mut TrapContext<'_>) -> TrapOutcome;
}

/// Why a [`Machine::run`] stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The process exited normally with this code.
    Exited(u32),
    /// A `halt` instruction was executed (bare-metal stop).
    Halted,
    /// The kernel killed the process. Carries the kernel's log message —
    /// this is the paper's fail-stop outcome for policy violations.
    Killed(String),
    /// A memory access or protection fault.
    Fault(MemFault),
    /// An invalid instruction was fetched.
    BadInstruction {
        /// Address of the undecodable instruction.
        pc: u32,
        /// Why decoding failed.
        error: DecodeError,
    },
    /// The cycle budget given to `run` was exhausted.
    CycleLimit,
}

impl RunOutcome {
    /// Whether the run ended by normal exit with status 0.
    pub fn is_success(&self) -> bool {
        matches!(self, RunOutcome::Exited(0) | RunOutcome::Halted)
    }

    /// Whether the kernel killed the process (policy violation).
    pub fn is_killed(&self) -> bool {
        matches!(self, RunOutcome::Killed(_))
    }
}

/// Result of a single [`Machine::step`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Execution continues.
    Running,
    /// Execution finished with the given outcome.
    Done(RunOutcome),
}

/// A loaded process: CPU state, memory, and its kernel.
pub struct Machine<H> {
    regs: [u32; Reg::COUNT],
    pc: u32,
    cycles: u64,
    mem: Memory,
    handler: H,
    instret: u64,
}

impl<H: std::fmt::Debug> std::fmt::Debug for Machine<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &format_args!("{:#x}", self.pc))
            .field("cycles", &self.cycles)
            .field("handler", &self.handler)
            .finish()
    }
}

impl<H: SyscallHandler> Machine<H> {
    /// Loads `binary` into fresh default-sized memory with `handler` as the
    /// kernel.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the binary does not fit in memory.
    pub fn load(binary: &Binary, handler: H) -> Result<Machine<H>, MemFault> {
        Machine::load_with(binary, handler, DEFAULT_MEM_SIZE, DEFAULT_STACK_SIZE)
    }

    /// Loads with explicit memory and stack sizes.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the binary does not fit in memory.
    pub fn load_with(
        binary: &Binary,
        handler: H,
        mem_size: u32,
        stack_size: u32,
    ) -> Result<Machine<H>, MemFault> {
        let mut mem = Memory::new(mem_size);
        mem.load(binary, stack_size)?;
        let mut regs = [0u32; Reg::COUNT];
        regs[Reg::SP.index()] = mem.initial_sp();
        Ok(Machine {
            regs,
            pc: binary.entry(),
            cycles: 0,
            mem,
            handler,
            instret: 0,
        })
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (for test setup and attack harnesses).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// Cycles consumed so far (the `rdtsc` analogue).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// The process memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to process memory (attack harnesses corrupt state
    /// through this, playing the role of a memory-safety exploit).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The kernel.
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutable access to the kernel.
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Consumes the machine, returning the kernel.
    pub fn into_handler(self) -> H {
        self.handler
    }

    /// Executes one instruction.
    pub fn step(&mut self) -> StepOutcome {
        use Opcode::*;
        let raw = match self.mem.fetch(self.pc) {
            Ok(b) => b,
            Err(f) => return StepOutcome::Done(RunOutcome::Fault(f)),
        };
        let instr = match Instruction::decode(raw) {
            Ok(i) => i,
            Err(error) => {
                return StepOutcome::Done(RunOutcome::BadInstruction { pc: self.pc, error })
            }
        };
        self.cycles += base_cycles(instr.op);
        self.instret += 1;
        let next_pc = self.pc + asc_isa::INSTR_LEN as u32;
        let rd = instr.rd.index();
        let rs1 = self.regs[instr.rs1.index()];
        let rs2 = self.regs[instr.rs2.index()];
        let imm = instr.imm;

        macro_rules! mem_try {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(f) => return StepOutcome::Done(RunOutcome::Fault(f)),
                }
            };
        }

        let mut jump: Option<u32> = None;
        match instr.op {
            Nop => {}
            Halt => return StepOutcome::Done(RunOutcome::Halted),
            Movi => self.regs[rd] = imm,
            Mov => self.regs[rd] = rs1,
            Add => self.regs[rd] = rs1.wrapping_add(rs2),
            Sub => self.regs[rd] = rs1.wrapping_sub(rs2),
            Mul => self.regs[rd] = rs1.wrapping_mul(rs2),
            Divu => self.regs[rd] = rs1.checked_div(rs2).unwrap_or(0),
            Remu => self.regs[rd] = rs1.checked_rem(rs2).unwrap_or(0),
            And => self.regs[rd] = rs1 & rs2,
            Or => self.regs[rd] = rs1 | rs2,
            Xor => self.regs[rd] = rs1 ^ rs2,
            Shl => self.regs[rd] = rs1.wrapping_shl(rs2 & 31),
            Shr => self.regs[rd] = rs1.wrapping_shr(rs2 & 31),
            Addi => self.regs[rd] = rs1.wrapping_add(imm),
            Andi => self.regs[rd] = rs1 & imm,
            Ori => self.regs[rd] = rs1 | imm,
            Xori => self.regs[rd] = rs1 ^ imm,
            Shli => self.regs[rd] = rs1.wrapping_shl(imm & 31),
            Shri => self.regs[rd] = rs1.wrapping_shr(imm & 31),
            Muli => self.regs[rd] = rs1.wrapping_mul(imm),
            Ldw => self.regs[rd] = mem_try!(self.mem.read_u32(rs1.wrapping_add(imm))),
            Stw => mem_try!(self.mem.write_u32(rs1.wrapping_add(imm), rs2)),
            Ldb => self.regs[rd] = mem_try!(self.mem.read_u8(rs1.wrapping_add(imm))) as u32,
            Stb => mem_try!(self.mem.write_u8(rs1.wrapping_add(imm), rs2 as u8)),
            Push => {
                let sp = self.regs[Reg::SP.index()].wrapping_sub(4);
                mem_try!(self.mem.write_u32(sp, rs1));
                self.regs[Reg::SP.index()] = sp;
            }
            Pop => {
                let sp = self.regs[Reg::SP.index()];
                self.regs[rd] = mem_try!(self.mem.read_u32(sp));
                self.regs[Reg::SP.index()] = sp.wrapping_add(4);
            }
            Jmp => jump = Some(imm),
            Jr => jump = Some(rs1),
            Beq => {
                if rs1 == rs2 {
                    jump = Some(imm)
                }
            }
            Bne => {
                if rs1 != rs2 {
                    jump = Some(imm)
                }
            }
            Blt => {
                if (rs1 as i32) < (rs2 as i32) {
                    jump = Some(imm)
                }
            }
            Bge => {
                if (rs1 as i32) >= (rs2 as i32) {
                    jump = Some(imm)
                }
            }
            Bltu => {
                if rs1 < rs2 {
                    jump = Some(imm)
                }
            }
            Bgeu => {
                if rs1 >= rs2 {
                    jump = Some(imm)
                }
            }
            Call | Callr => {
                let sp = self.regs[Reg::SP.index()].wrapping_sub(4);
                mem_try!(self.mem.write_u32(sp, next_pc));
                self.regs[Reg::SP.index()] = sp;
                jump = Some(if instr.op == Call { imm } else { rs1 });
            }
            Ret => {
                let sp = self.regs[Reg::SP.index()];
                jump = Some(mem_try!(self.mem.read_u32(sp)));
                self.regs[Reg::SP.index()] = sp.wrapping_add(4);
            }
            Syscall => {
                let mut ctx = TrapContext {
                    regs: &mut self.regs,
                    pc: self.pc,
                    mem: &mut self.mem,
                    cycles: &mut self.cycles,
                };
                match self.handler.syscall(&mut ctx) {
                    TrapOutcome::Continue => {}
                    TrapOutcome::Exit(code) => return StepOutcome::Done(RunOutcome::Exited(code)),
                    TrapOutcome::Kill(reason) => {
                        return StepOutcome::Done(RunOutcome::Killed(reason))
                    }
                }
            }
        }
        self.pc = jump.unwrap_or(next_pc);
        StepOutcome::Running
    }

    /// Runs until `instret` reaches `target` (or the program finishes
    /// first). Returns [`StepOutcome::Running`] when the target was
    /// reached with the program still alive — the caller may then inspect
    /// or mutate machine state (fault-injection campaigns corrupt memory
    /// at a deterministic instruction index this way) and resume with
    /// [`Machine::run`].
    pub fn run_until_instret(&mut self, target: u64, max_cycles: u64) -> StepOutcome {
        let limit = self.cycles.saturating_add(max_cycles);
        while self.instret < target {
            match self.step() {
                StepOutcome::Running => {
                    if self.cycles >= limit {
                        return StepOutcome::Done(RunOutcome::CycleLimit);
                    }
                }
                done => return done,
            }
        }
        StepOutcome::Running
    }

    /// Runs until completion or until `max_cycles` additional cycles have
    /// been consumed.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        let limit = self.cycles.saturating_add(max_cycles);
        loop {
            match self.step() {
                StepOutcome::Running => {
                    if self.cycles >= limit {
                        return RunOutcome::CycleLimit;
                    }
                }
                StepOutcome::Done(outcome) => return outcome,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_asm::assemble;

    /// A toy kernel for VM tests: syscall 1 = exit(R1); syscall 2 = add 100
    /// to R1 and return in R0; syscall 3 = kill.
    #[derive(Debug, Default)]
    struct ToyKernel {
        calls: Vec<(u32, u32)>,
    }

    impl SyscallHandler for ToyKernel {
        fn syscall(&mut self, ctx: &mut TrapContext<'_>) -> TrapOutcome {
            let nr = ctx.reg(Reg::R0);
            self.calls.push((nr, ctx.pc));
            ctx.charge(100);
            match nr {
                1 => TrapOutcome::Exit(ctx.reg(Reg::R1)),
                2 => {
                    let v = ctx.reg(Reg::R1) + 100;
                    ctx.set_reg(Reg::R0, v);
                    TrapOutcome::Continue
                }
                _ => TrapOutcome::Kill("unknown syscall".into()),
            }
        }
    }

    fn run_asm(src: &str) -> (RunOutcome, Machine<ToyKernel>) {
        let b = assemble(src).unwrap();
        let mut m = Machine::load(&b, ToyKernel::default()).unwrap();
        let outcome = m.run(1_000_000);
        (outcome, m)
    }

    #[test]
    fn arithmetic_loop() {
        // sum 1..=10 then exit(sum)
        let (outcome, _) = run_asm(
            "
            .text
        main:
            movi r1, 0
            movi r2, 0
        loop:
            addi r2, r2, 1
            add r1, r1, r2
            movi r3, 10
            bne r2, r3, loop
            movi r0, 1
            syscall
        ",
        );
        assert_eq!(outcome, RunOutcome::Exited(55));
    }

    #[test]
    fn call_ret_and_stack() {
        let (outcome, _) = run_asm(
            "
            .text
        main:
            movi r1, 5
            call double
            mov r1, r0
            movi r0, 1
            syscall
        double:
            add r0, r1, r1
            ret
        ",
        );
        assert_eq!(outcome, RunOutcome::Exited(10));
    }

    #[test]
    fn syscall_return_value_and_trace() {
        let (outcome, m) = run_asm(
            "
            .text
        main:
            movi r1, 7
            movi r0, 2
            syscall
            mov r1, r0
            movi r0, 1
            syscall
        ",
        );
        assert_eq!(outcome, RunOutcome::Exited(107));
        assert_eq!(m.handler().calls.len(), 2);
        assert_eq!(m.handler().calls[0].0, 2);
    }

    #[test]
    fn kill_is_fail_stop() {
        let (outcome, _) = run_asm(
            "
            .text
        main:
            movi r0, 99
            syscall
            movi r0, 1
            movi r1, 0
            syscall
        ",
        );
        assert!(outcome.is_killed());
    }

    #[test]
    fn write_to_text_faults() {
        let (outcome, _) = run_asm(
            "
            .text
        main:
            movi r1, main
            movi r2, 0
            stw [r1], r2
            halt
        ",
        );
        assert!(matches!(
            outcome,
            RunOutcome::Fault(MemFault::NoWrite { .. })
        ));
    }

    #[test]
    fn shellcode_on_stack_executes() {
        // Write `movi r0,1; movi r1,42; syscall` onto the stack and jump
        // there: the pre-NX stack lets it run (this is the substrate for
        // the paper's attack experiments).
        let (outcome, _) = run_asm(
            "
            .text
        main:
            addi r4, sp, -64
            movi r5, code
            movi r6, 24
            movi r7, 0
        copy:
            add r2, r5, r7
            ldb r3, [r2]
            add r2, r4, r7
            stb [r2], r3
            addi r7, r7, 1
            bne r7, r6, copy
            jr r4
        code:
            movi r0, 1
            movi r1, 42
            syscall
        ",
        );
        assert_eq!(outcome, RunOutcome::Exited(42));
    }

    #[test]
    fn cycle_limit() {
        let b = assemble("main: jmp main").unwrap();
        let mut m = Machine::load(&b, ToyKernel::default()).unwrap();
        assert_eq!(m.run(1000), RunOutcome::CycleLimit);
        assert!(m.cycles() >= 1000);
    }

    #[test]
    fn kernel_charge_adds_cycles() {
        let b = assemble("main: movi r0, 2\nmovi r1, 1\nsyscall\nmovi r0,1\nmovi r1,0\nsyscall")
            .unwrap();
        let mut m = Machine::load(&b, ToyKernel::default()).unwrap();
        m.run(1_000_000);
        // 2 syscalls * 100 charged + a handful of instruction cycles.
        assert!(m.cycles() >= 200);
        assert!(m.cycles() < 300);
    }

    #[test]
    fn bad_instruction_stops() {
        let b = assemble("main: halt").unwrap();
        let mut m = Machine::load(&b, ToyKernel::default()).unwrap();
        // Corrupt the instruction with an invalid opcode via kernel write.
        m.mem_mut().kwrite(0x1000, &[0xff]).unwrap();
        assert!(matches!(
            m.step(),
            StepOutcome::Done(RunOutcome::BadInstruction { .. })
        ));
    }

    #[test]
    fn run_until_instret_pauses_then_resumes() {
        let b = assemble(
            "
            .text
        main:
            movi r1, 0
            movi r2, 0
        loop:
            addi r2, r2, 1
            add r1, r1, r2
            movi r3, 10
            bne r2, r3, loop
            movi r0, 1
            syscall
        ",
        )
        .unwrap();
        let mut m = Machine::load(&b, ToyKernel::default()).unwrap();
        assert_eq!(m.run_until_instret(5, 1_000_000), StepOutcome::Running);
        assert_eq!(m.instret(), 5);
        assert_eq!(m.run(1_000_000), RunOutcome::Exited(55));
        // A target beyond program end just finishes the program.
        let mut m2 = Machine::load(&b, ToyKernel::default()).unwrap();
        assert_eq!(
            m2.run_until_instret(1_000_000, 1_000_000),
            StepOutcome::Done(RunOutcome::Exited(55))
        );
    }

    #[test]
    fn halt_outcome_is_success() {
        let (outcome, _) = run_asm("main: halt");
        assert_eq!(outcome, RunOutcome::Halted);
        assert!(outcome.is_success());
    }
}
