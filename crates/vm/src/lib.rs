//! The SVM32 virtual machine: memory with page-level protection, the CPU
//! interpreter, and deterministic cycle accounting.
//!
//! The VM executes SOF binaries instruction by instruction. System calls
//! trap to a [`SyscallHandler`] — the simulated kernel lives in
//! `asc-kernel` and implements that trait; this crate knows nothing about
//! syscall semantics or policies.
//!
//! Cycle accounting plays the role of the Pentium `rdtsc` counter in the
//! paper's measurements: every instruction charges its
//! [`asc_isa::base_cycles`] cost and the kernel charges trap, handler, and
//! verification costs through [`TrapContext::charge`].
//!
//! Page protection is deliberately period-accurate: section permissions are
//! honoured (no writes to `.text`), but the *stack is executable*, because
//! the paper's threat model includes classic stack-smashing shellcode and
//! system call monitoring is explicitly not a defence against the overflow
//! itself, only against what the compromised process can do afterwards.

mod machine;
mod memory;

pub use machine::{Machine, RunOutcome, StepOutcome, SyscallHandler, TrapContext, TrapOutcome};
pub use memory::{MemFault, Memory, PageFlags, PAGE_SIZE};

/// Default memory size (8 MiB).
pub const DEFAULT_MEM_SIZE: u32 = 8 << 20;

/// Default stack size (256 KiB), mapped at the top of memory.
pub const DEFAULT_STACK_SIZE: u32 = 256 << 10;
