//! The forensic bundle: serialization, digesting, and replay verdicts.

use asc_core::json::Value;
use asc_core::{pid_shard, CacheStats};
use asc_kernel::KernelStats;
use asc_sched::{AuditLog, Pid, Scheduler};

use crate::scenario::{FleetScenario, Scenario, SoloParams, SoloRun};
use crate::{
    event_to_value, field, fnv64_bytes, fnv64_pids, hex64, num, run_solo, str_field, u64_field,
    BUNDLE_SPAN_CAPACITY,
};

/// Bundle schema identifier (bumped on incompatible layout changes).
pub const BUNDLE_SCHEMA: &str = "asc-audit-bundle/v1";

/// Shard count used for the victim's cache-shard attribution (matches the
/// fleet benchmark's `FLEET_SHARDS`).
const AUDIT_SHARDS: usize = 64;

/// The kill a bundle reproduces, with every comparison target replay
/// checks bit-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KillRecord {
    /// The killed pid.
    pub pid: u32,
    /// Call-site address of the killing trap.
    pub site: u32,
    /// Trapped syscall number.
    pub nr: u16,
    /// The personality's name for that syscall.
    pub syscall: String,
    /// Structured reason code (kebab-case).
    pub reason: String,
    /// The full alert rendering (covers pid, violation, site, syscall).
    pub alert: String,
    /// The victim's machine-cycle clock at the kill.
    pub kill_cycles: u64,
    /// Traps the victim had taken, including the killing one.
    pub syscalls: u64,
    /// The victim's in-kernel anti-replay counter at the kill.
    pub policy_counter: u64,
    /// Fleet only: the scheduler's shared clock at the end of the killing
    /// slice.
    pub sched_clock: Option<u64>,
    /// Fleet only: global slice index of the killing slice.
    pub slice_index: Option<u64>,
    /// Fleet only: FNV-64 of the interleaving through the killing slice.
    pub interleaving_fnv: Option<u64>,
}

impl KillRecord {
    fn to_value(&self) -> Value {
        let opt = |v: Option<u64>| v.map(num).unwrap_or(Value::Null);
        Value::Object(vec![
            ("pid".into(), num(u64::from(self.pid))),
            ("site".into(), num(u64::from(self.site))),
            ("nr".into(), num(u64::from(self.nr))),
            ("syscall".into(), Value::Str(self.syscall.clone())),
            ("reason".into(), Value::Str(self.reason.clone())),
            ("alert".into(), Value::Str(self.alert.clone())),
            ("kill_cycles".into(), num(self.kill_cycles)),
            ("syscalls".into(), num(self.syscalls)),
            ("policy_counter".into(), num(self.policy_counter)),
            ("sched_clock".into(), opt(self.sched_clock)),
            ("slice_index".into(), opt(self.slice_index)),
            (
                "interleaving_fnv".into(),
                self.interleaving_fnv.map(hex64).unwrap_or(Value::Null),
            ),
        ])
    }

    fn from_value(value: &Value) -> Result<KillRecord, String> {
        let opt = |key: &str| -> Result<Option<u64>, String> {
            match field(value, key)? {
                Value::Null => Ok(None),
                v => Ok(Some(crate::parse_u64(v)?)),
            }
        };
        Ok(KillRecord {
            pid: u64_field(value, "pid")? as u32,
            site: u64_field(value, "site")? as u32,
            nr: u64_field(value, "nr")? as u16,
            syscall: str_field(value, "syscall")?,
            reason: str_field(value, "reason")?,
            alert: str_field(value, "alert")?,
            kill_cycles: u64_field(value, "kill_cycles")?,
            syscalls: u64_field(value, "syscalls")?,
            policy_counter: u64_field(value, "policy_counter")?,
            sched_clock: opt("sched_clock")?,
            slice_index: opt("slice_index")?,
            interleaving_fnv: opt("interleaving_fnv")?,
        })
    }
}

fn stats_to_value(s: &KernelStats) -> Value {
    Value::Object(vec![
        ("syscalls".into(), num(s.syscalls)),
        ("verified".into(), num(s.verified)),
        ("verify_aes_blocks".into(), num(s.verify_aes_blocks)),
        ("verify_cycles".into(), num(s.verify_cycles)),
        ("kernel_cycles".into(), num(s.kernel_cycles)),
        ("cache_hits".into(), num(s.cache_hits)),
        ("warm_aes_blocks".into(), num(s.warm_aes_blocks)),
        ("warm_verify_cycles".into(), num(s.warm_verify_cycles)),
        ("cache_fallbacks".into(), num(s.cache_fallbacks)),
        ("cache_scrubs".into(), num(s.cache_scrubs)),
    ])
}

fn cache_to_value(c: &CacheStats) -> Value {
    Value::Object(vec![
        ("hits".into(), num(c.hits)),
        ("misses".into(), num(c.misses)),
        ("blob_hits".into(), num(c.blob_hits)),
        ("state_hits".into(), num(c.state_hits)),
        ("evictions".into(), num(c.evictions)),
        ("stale_misses".into(), num(c.stale_misses)),
        ("scrubs".into(), num(c.scrubs)),
    ])
}

/// One forensic bundle: a [`Scenario`] (how to reproduce the run), a
/// [`KillRecord`] (what replay must match), the victim's forensic payload
/// (last spans, counters, cache-shard stats, ring accounting), and — for
/// fleets — the scheduling context around the kill.
#[derive(Clone, Debug)]
pub struct Bundle {
    /// The scenario replay re-runs.
    pub scenario: Scenario,
    /// The kill and its bit-exact comparison targets.
    pub kill: KillRecord,
    /// The victim's forensic payload (opaque JSON; carried verbatim
    /// through parse → serialize round trips).
    pub victim: Value,
    /// Fleet scheduling context around the kill, if any.
    pub schedule: Option<Value>,
}

impl Bundle {
    /// Captures a bundle from a solo run that died. Returns `None` if the
    /// run was not a kill or carries no alert (both campaign anomalies in
    /// their own right).
    pub fn from_solo(scenario: crate::SoloScenario, run: &SoloRun) -> Option<Bundle> {
        if !run.outcome.is_killed() {
            return None;
        }
        let alert = run.alerts.last()?;
        let kill = KillRecord {
            pid: alert.pid,
            site: alert.site,
            nr: alert.nr,
            syscall: alert.name.clone(),
            reason: alert.reason().code().into(),
            alert: alert.to_string(),
            kill_cycles: run.cycles,
            syscalls: run.stats.syscalls,
            policy_counter: run.policy_counter,
            sched_clock: None,
            slice_index: None,
            interleaving_fnv: None,
        };
        let victim = Value::Object(vec![
            ("stats".into(), stats_to_value(&run.stats)),
            ("cache".into(), cache_to_value(&run.cache)),
            (
                "cache_shard".into(),
                num(pid_shard(alert.pid, AUDIT_SHARDS) as u64),
            ),
            (
                "spans".into(),
                Value::Array(
                    run.spans
                        .iter()
                        .map(|e| event_to_value(e.at_cycles, e))
                        .collect(),
                ),
            ),
            (
                "ring".into(),
                Value::Object(vec![
                    ("capacity".into(), num(BUNDLE_SPAN_CAPACITY as u64)),
                    ("retained".into(), num(run.spans.len() as u64)),
                    ("dropped".into(), num(run.ring_dropped)),
                ]),
            ),
        ]);
        Some(Bundle {
            scenario: Scenario::Solo(scenario),
            kill,
            victim,
            schedule: None,
        })
    }

    /// Captures a bundle for `victim` from a finished fleet run with an
    /// attached recorder's harvested [`AuditLog`]. Returns `None` if the
    /// victim was not verifier-killed or the audit log has no kill mark
    /// for it.
    pub fn from_fleet(
        scenario: &FleetScenario,
        sched: &Scheduler,
        audit: &AuditLog,
        victim: Pid,
    ) -> Option<Bundle> {
        let proc = sched.process(victim);
        let alert = proc.kernel().alerts().last()?;
        let mark = audit.kills.iter().find(|k| k.pid == victim)?;
        let slice_index = mark.slice_index?;
        let prefix = &sched.interleaving()[..=slice_index as usize];
        let kill = KillRecord {
            pid: alert.pid,
            site: alert.site,
            nr: alert.nr,
            syscall: alert.name.clone(),
            reason: alert.reason().code().into(),
            alert: alert.to_string(),
            kill_cycles: proc.machine().cycles(),
            syscalls: proc.stats().syscalls,
            policy_counter: proc.kernel().policy_counter(),
            sched_clock: Some(mark.clock),
            slice_index: Some(slice_index),
            interleaving_fnv: Some(fnv64_pids(prefix)),
        };
        let pid_audit = audit.pid(victim)?;
        let victim_value = Value::Object(vec![
            ("stats".into(), stats_to_value(&pid_audit.stats)),
            ("cache".into(), cache_to_value(&proc.kernel().cache_stats())),
            (
                "cache_shard".into(),
                num(pid_shard(victim, AUDIT_SHARDS) as u64),
            ),
            (
                "spans".into(),
                Value::Array(
                    pid_audit
                        .events
                        .iter()
                        .map(|(at, e)| event_to_value(*at, e))
                        .collect(),
                ),
            ),
            (
                "ring".into(),
                Value::Object(vec![
                    ("capacity".into(), num(audit.config.ring_capacity as u64)),
                    ("retained".into(), num(pid_audit.events.len() as u64)),
                    ("dropped".into(), num(pid_audit.dropped)),
                ]),
            ),
            ("sampled".into(), Value::Bool(pid_audit.sampled)),
        ]);
        // The interleaving window around the kill: up to 8 slices either
        // side, so an operator sees who ran just before and after.
        let lo = (slice_index as usize).saturating_sub(8);
        let hi = ((slice_index as usize) + 9).min(sched.interleaving().len());
        let window: Vec<Value> = sched.interleaving()[lo..hi]
            .iter()
            .map(|p| num(u64::from(*p)))
            .collect();
        let dropped_total: u64 = audit.pids.iter().map(|p| p.dropped).sum();
        let schedule = Value::Object(vec![
            ("sched_seed".into(), hex64(scenario.sched_seed)),
            ("slice_instrs".into(), num(scenario.slice_instrs)),
            (
                "batch_depth".into(),
                scenario
                    .batch_depth
                    .map(|d| num(d as u64))
                    .unwrap_or(Value::Null),
            ),
            ("procs".into(), num(scenario.procs.len() as u64)),
            ("window_start".into(), num(lo as u64)),
            ("window".into(), Value::Array(window)),
            (
                "sampled_pids".into(),
                num(audit.pids.iter().filter(|p| p.sampled).count() as u64),
            ),
            ("ring_dropped_total".into(), num(dropped_total)),
        ]);
        Some(Bundle {
            scenario: Scenario::Fleet(scenario.clone()),
            kill,
            victim: victim_value,
            schedule: Some(schedule),
        })
    }

    fn body_value(&self) -> Value {
        Value::Object(vec![
            ("schema".into(), Value::Str(BUNDLE_SCHEMA.into())),
            ("scenario".into(), self.scenario.to_value()),
            ("kill".into(), self.kill.to_value()),
            ("victim".into(), self.victim.clone()),
            (
                "schedule".into(),
                self.schedule.clone().unwrap_or(Value::Null),
            ),
        ])
    }

    /// FNV-64 over the rendered bundle body (everything but the digest
    /// field itself).
    pub fn digest(&self) -> u64 {
        fnv64_bytes(self.body_value().to_pretty().as_bytes())
    }

    /// Serializes the bundle, digest included.
    pub fn to_value(&self) -> Value {
        let digest = self.digest();
        let Value::Object(mut fields) = self.body_value() else {
            unreachable!("body is an object")
        };
        fields.push(("digest".into(), hex64(digest)));
        Value::Object(fields)
    }

    /// The bundle as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// Embeds the fleet's last closed health window
    /// ([`asc_sentinel::WindowSample`]) into the victim payload, so an
    /// operator reading the bundle sees what the sentinel saw just
    /// before the kill next to the victim's own forensics. Replaces any
    /// previously embedded window. The digest is computed at
    /// serialization time, so bundles with embedded windows round-trip
    /// and verify like any other.
    pub fn embed_health_window(&mut self, window: &asc_sentinel::WindowSample) {
        let Value::Object(fields) = &mut self.victim else {
            return;
        };
        fields.retain(|(k, _)| k != "health_window");
        fields.push(("health_window".into(), window.to_value()));
    }

    /// The embedded health window's JSON payload, if any.
    pub fn health_window(&self) -> Option<&Value> {
        let Value::Object(fields) = &self.victim else {
            return None;
        };
        fields
            .iter()
            .find(|(k, _)| k == "health_window")
            .map(|(_, v)| v)
    }

    /// Parses a bundle serialized by [`Bundle::to_value`], verifying the
    /// schema tag and the digest.
    pub fn from_value(value: &Value) -> Result<Bundle, String> {
        let schema = str_field(value, "schema")?;
        if schema != BUNDLE_SCHEMA {
            return Err(format!("unknown bundle schema {schema:?}"));
        }
        let bundle = Bundle {
            scenario: Scenario::from_value(field(value, "scenario")?)?,
            kill: KillRecord::from_value(field(value, "kill")?)?,
            victim: field(value, "victim")?.clone(),
            schedule: match field(value, "schedule")? {
                Value::Null => None,
                v => Some(v.clone()),
            },
        };
        let recorded = u64_field(value, "digest")?;
        let recomputed = bundle.digest();
        if recorded != recomputed {
            return Err(format!(
                "bundle digest mismatch: recorded {recorded:#018x}, recomputed {recomputed:#018x}"
            ));
        }
        Ok(bundle)
    }

    /// Parses a bundle from JSON text (schema + digest verified).
    pub fn from_json(text: &str) -> Result<Bundle, String> {
        Bundle::from_value(&Value::parse(text)?)
    }
}

/// The outcome of a replay: either every comparison target matched
/// bit-identically, or the first divergence found.
#[derive(Clone, Debug)]
pub struct ReplayVerdict {
    /// Whether the replay reproduced the kill exactly.
    pub matched: bool,
    /// Human-readable detail: the reproduced kill on a match, the first
    /// divergence otherwise.
    pub detail: String,
}

impl ReplayVerdict {
    fn matched(kill: &KillRecord) -> ReplayVerdict {
        ReplayVerdict {
            matched: true,
            detail: format!(
                "pid {} died with {} at cycle {} (bit-identical)",
                kill.pid, kill.reason, kill.kill_cycles
            ),
        }
    }

    fn diverged(detail: String) -> ReplayVerdict {
        ReplayVerdict {
            matched: false,
            detail,
        }
    }
}

macro_rules! expect_eq {
    ($what:expr, $got:expr, $want:expr) => {
        if $got != $want {
            return ReplayVerdict::diverged(format!(
                "{} diverged: replay {:?}, bundle {:?}",
                $what, $got, $want
            ));
        }
    };
}

/// Replays a solo bundle against already-prepared artifacts (the fault
/// campaign holds one build per workload and replays many kills against
/// it). [`crate::replay`] prepares from the scenario seeds and lands
/// here.
pub fn replay_solo_in(bundle: &Bundle, params: &SoloParams<'_>) -> ReplayVerdict {
    let Scenario::Solo(solo) = &bundle.scenario else {
        return ReplayVerdict::diverged("bundle scenario is not solo".into());
    };
    let run = run_solo(params, solo.fault.as_ref());
    if !run.outcome.is_killed() {
        return ReplayVerdict::diverged(format!("replay did not kill: outcome {:?}", run.outcome));
    }
    let Some(alert) = run.alerts.last() else {
        return ReplayVerdict::diverged("replay killed without an alert".into());
    };
    let kill = &bundle.kill;
    expect_eq!("alert", alert.to_string(), kill.alert);
    expect_eq!("reason", alert.reason().code(), kill.reason.as_str());
    expect_eq!("kill cycle", run.cycles, kill.kill_cycles);
    expect_eq!("trap count", run.stats.syscalls, kill.syscalls);
    expect_eq!("policy counter", run.policy_counter, kill.policy_counter);
    ReplayVerdict::matched(kill)
}

/// Replays a fleet bundle: rebuilds the fleet from seeds, re-runs the
/// seeded interleaving until the victim dies, and compares the kill,
/// the victim's machine clock, the shared scheduler clock, and the
/// interleaving prefix digest bit-identically.
pub(crate) fn replay_fleet(bundle: &Bundle, scenario: &FleetScenario) -> ReplayVerdict {
    let kill = &bundle.kill;
    let sched = scenario.run_to_kill(kill.pid);
    let proc = sched.process(kill.pid);
    if !matches!(proc.state(), asc_sched::ProcState::Killed(_)) {
        return ReplayVerdict::diverged(format!(
            "replay did not kill pid {}: state {:?}",
            kill.pid,
            proc.state()
        ));
    }
    let Some(alert) = proc.kernel().alerts().last() else {
        return ReplayVerdict::diverged("replay killed without an alert".into());
    };
    expect_eq!("alert", alert.to_string(), kill.alert);
    expect_eq!("reason", alert.reason().code(), kill.reason.as_str());
    expect_eq!("kill cycle", proc.machine().cycles(), kill.kill_cycles);
    expect_eq!("trap count", proc.stats().syscalls, kill.syscalls);
    expect_eq!(
        "policy counter",
        proc.kernel().policy_counter(),
        kill.policy_counter
    );
    if let Some(want) = kill.sched_clock {
        expect_eq!("scheduler clock", sched.clock(), want);
    }
    if let Some(want) = kill.slice_index {
        expect_eq!(
            "kill slice index",
            sched.interleaving().len() as u64 - 1,
            want
        );
    }
    if let Some(want) = kill.interleaving_fnv {
        expect_eq!(
            "interleaving digest",
            fnv64_pids(sched.interleaving()),
            want
        );
    }
    ReplayVerdict::matched(kill)
}
