//! Forensic audit bundles: on-kill capture and deterministic
//! replay-to-kill.
//!
//! The paper's fail-stop response (§3.4) kills a process the moment a
//! verification check fails. This crate turns that one-line alert into a
//! complete forensic artifact:
//!
//! * a [`Bundle`] serializes *everything* an operator needs about a kill —
//!   the victim's last spans with per-check AES-block partitions, the
//!   structured alert and reason code, policy-counter state, cache-shard
//!   stats, ring drop accounting, and (for fleets) the scheduler seed and
//!   the interleaving window around the kill — as `asc_core::json`, with
//!   an FNV-64 digest over the rendered bytes;
//! * [`replay`] re-runs the bundle's [`Scenario`] from its seeds and
//!   asserts the same pid dies with the same violation at the same cycle,
//!   bit-identically — every production alert becomes a reproducible test
//!   case.
//!
//! Replay soundness rests on the workspace's determinism discipline: a
//! scenario is a pure function of its seeds (build → install → key →
//! fault → schedule), so the only way a replay can diverge is if the
//! bundle lied or the system is nondeterministic. The fault campaign
//! (`asc-faults`) replays every kill it induces and classifies any
//! divergence as `IRREPRODUCIBLE` — asserted zero.

mod bundle;
mod scenario;

pub use bundle::{replay_solo_in, Bundle, KillRecord, ReplayVerdict, BUNDLE_SCHEMA};
pub use scenario::{
    run_solo, AuditFault, FleetScenario, PreparedSolo, Scenario, SoloParams, SoloRun, SoloScenario,
    BUNDLE_SPAN_CAPACITY,
};

use asc_core::json::Value;
use asc_sched::Pid;

/// FNV-1a over a byte string (the bundle digest primitive).
pub fn fnv64_bytes(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a over a pid sequence, byte-compatible with the scheduler
/// benchmarks' interleaving digest (`asc-bench`'s `fnv64`): each pid
/// contributes its four little-endian bytes.
pub fn fnv64_pids(pids: &[Pid]) -> u64 {
    let mut bytes = Vec::with_capacity(pids.len() * 4);
    for pid in pids {
        bytes.extend_from_slice(&pid.to_le_bytes());
    }
    fnv64_bytes(&bytes)
}

/// Renders a `u64` as the workspace's canonical zero-padded hex string
/// (JSON numbers only cover integers below 2^53 exactly).
pub(crate) fn hex64(x: u64) -> Value {
    Value::Str(format!("{x:#018x}"))
}

/// Parses a [`hex64`]-rendered value (also accepts plain JSON numbers).
pub(crate) fn parse_u64(value: &Value) -> Result<u64, String> {
    if let Some(n) = value.as_u64() {
        return Ok(n);
    }
    let text = value.as_str().ok_or("expected a number or hex string")?;
    let hex = text
        .strip_prefix("0x")
        .ok_or_else(|| format!("expected 0x-prefixed hex, got {text:?}"))?;
    u64::from_str_radix(hex, 16).map_err(|e| format!("bad hex {text:?}: {e}"))
}

pub(crate) fn num(x: u64) -> Value {
    Value::Num(x as f64)
}

pub(crate) fn field<'a>(value: &'a Value, key: &str) -> Result<&'a Value, String> {
    value
        .get(key)
        .ok_or_else(|| format!("missing field {key:?}"))
}

pub(crate) fn str_field(value: &Value, key: &str) -> Result<String, String> {
    Ok(field(value, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))?
        .to_string())
}

pub(crate) fn u64_field(value: &Value, key: &str) -> Result<u64, String> {
    parse_u64(field(value, key)?).map_err(|e| format!("field {key:?}: {e}"))
}

/// Serializes one trace event for a bundle's span log. `at` is the event's
/// stamp on the scheduler's shared clock (equal to the machine-local stamp
/// for solo runs); the machine-local stamp rides along as `local`.
pub fn event_to_value(at: u64, event: &asc_trace::Event) -> Value {
    use asc_trace::{CheckKind, EventKind, Severity};
    let severity = match event.severity {
        Severity::Info => "info",
        Severity::Warn => "warn",
        Severity::Alert => "alert",
    };
    let mut fields = vec![
        ("at".into(), num(at)),
        ("local".into(), num(event.at_cycles)),
        (
            "span".into(),
            Value::Object(vec![
                ("pid".into(), num(u64::from(event.span.pid()))),
                ("local".into(), num(event.span.local())),
            ]),
        ),
        ("severity".into(), Value::Str(severity.into())),
    ];
    match &event.kind {
        EventKind::TrapEnter { site, nr } => {
            fields.push(("kind".into(), Value::Str("trap-enter".into())));
            fields.push(("site".into(), num(u64::from(*site))));
            fields.push(("nr".into(), num(u64::from(*nr))));
        }
        EventKind::Check { record, cycles } => {
            fields.push(("kind".into(), Value::Str("check".into())));
            fields.push(("check".into(), Value::Str(record.kind.name().into())));
            let arg = match record.kind {
                CheckKind::AuthString { arg }
                | CheckKind::Pattern { arg }
                | CheckKind::Capability { arg } => Some(arg),
                _ => None,
            };
            if let Some(arg) = arg {
                fields.push(("arg".into(), num(arg as u64)));
            }
            fields.push(("passed".into(), Value::Bool(record.passed)));
            fields.push(("aes_blocks".into(), num(record.aes_blocks)));
            fields.push(("bytes".into(), num(record.bytes)));
            fields.push(("cache".into(), Value::Str(record.cache.name().into())));
            fields.push(("cycles".into(), num(*cycles)));
        }
        EventKind::TrapExit {
            verified: _,
            cache_hit,
            verify_cycles,
            fixed_cycles,
        } => {
            fields.push(("kind".into(), Value::Str("trap-exit".into())));
            fields.push(("cache_hit".into(), Value::Bool(*cache_hit)));
            fields.push(("verify_cycles".into(), num(*verify_cycles)));
            fields.push(("fixed_cycles".into(), num(*fixed_cycles)));
        }
        EventKind::Kill { site, nr, reason } => {
            fields.push(("kind".into(), Value::Str("kill".into())));
            fields.push(("site".into(), num(u64::from(*site))));
            fields.push(("nr".into(), num(u64::from(*nr))));
            fields.push(("reason".into(), Value::Str(reason.code().into())));
        }
        EventKind::InstallerPass { pass, .. } => {
            fields.push(("kind".into(), Value::Str("installer-pass".into())));
            fields.push(("pass".into(), Value::Str(pass.clone())));
        }
    }
    Value::Object(fields)
}

/// Replays a bundle from scratch: rebuilds the scenario from its seeds
/// (build → install → schedule) and re-runs it to the kill, comparing
/// pid, violation, and kill cycle bit-identically.
pub fn replay(bundle: &Bundle) -> ReplayVerdict {
    match &bundle.scenario {
        Scenario::Solo(solo) => {
            let prepared = solo.prepare();
            bundle::replay_solo_in(bundle, &prepared.params())
        }
        Scenario::Fleet(fleet) => bundle::replay_fleet(bundle, fleet),
    }
}
