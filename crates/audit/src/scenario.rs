//! Scenario descriptions and the canonical runners replay shares with the
//! harnesses that capture bundles.
//!
//! A [`Scenario`] is everything needed to reproduce a run from seeds: the
//! workload(s), the OS personality, the verification tier, the
//! installation-key seed, the armed fault, and — for fleets — the
//! scheduler's policy seed and slicing parameters. The runners here are
//! the *single* implementation both sides use: the fault campaign and the
//! audit benchmark capture bundles through them, and [`crate::replay`]
//! re-runs them, so capture and replay cannot drift apart.

use asc_core::{CacheStats, FlowGraph};
use asc_crypto::MacKey;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::FaultAction;
use asc_kernel::{
    Alert, FileSystem, Kernel, KernelOptions, KernelStats, Personality, TraceEntry, TrapFault,
    VerifyTier,
};
use asc_object::Binary;
use asc_sched::{Pid, RecorderConfig, SchedConfig, SchedPolicy, Scheduler};
use asc_trace::{Event, RingSink};
use asc_vm::{Machine, RunOutcome, StepOutcome};
use asc_workloads::{build, flow_graph_of, program, ProgramSpec, RUN_BUDGET};

use asc_core::json::Value;

use crate::{field, hex64, num, str_field, u64_field};

/// Ring capacity for bundle span capture: the victim's last events.
pub const BUNDLE_SPAN_CAPACITY: usize = 32;

/// A fault to arm on a run, exactly as the campaign plans them.
#[derive(Clone, Copy, Debug)]
pub enum AuditFault {
    /// XOR one byte of guest memory once `at_instret` instructions retire.
    Mem {
        /// Retired-instruction count at which the flip lands.
        at_instret: u64,
        /// Guest address of the flipped byte.
        addr: u32,
        /// XOR mask (nonzero).
        mask: u8,
    },
    /// A trap-time fault armed on the kernel (register corruption, counter
    /// skew, cache poisoning — see [`TrapFault`]).
    Trap(TrapFault),
}

impl AuditFault {
    /// Serializes the fault for a bundle.
    pub fn to_value(&self) -> Value {
        match self {
            AuditFault::Mem {
                at_instret,
                addr,
                mask,
            } => Value::Object(vec![
                ("type".into(), Value::Str("mem".into())),
                ("at_instret".into(), num(*at_instret)),
                ("addr".into(), num(u64::from(*addr))),
                ("mask".into(), num(u64::from(*mask))),
            ]),
            AuditFault::Trap(tf) => {
                let action = match tf.action {
                    FaultAction::XorReg { index, mask } => Value::Object(vec![
                        ("type".into(), Value::Str("xor-reg".into())),
                        ("index".into(), num(u64::from(index))),
                        ("mask".into(), num(u64::from(mask))),
                    ]),
                    FaultAction::SkewCounter { delta } => Value::Object(vec![
                        ("type".into(), Value::Str("skew-counter".into())),
                        ("delta".into(), Value::Num(delta as f64)),
                    ]),
                    FaultAction::CorruptCache { selector, mask } => Value::Object(vec![
                        ("type".into(), Value::Str("corrupt-cache".into())),
                        ("selector".into(), hex64(selector)),
                        ("mask".into(), num(u64::from(mask))),
                    ]),
                    FaultAction::SkewCacheEpoch { delta } => Value::Object(vec![
                        ("type".into(), Value::Str("skew-cache-epoch".into())),
                        ("delta".into(), num(delta)),
                    ]),
                };
                Value::Object(vec![
                    ("type".into(), Value::Str("trap".into())),
                    ("at_trap".into(), num(tf.at_trap)),
                    ("action".into(), action),
                ])
            }
        }
    }

    /// Parses a fault serialized by [`AuditFault::to_value`].
    pub fn from_value(value: &Value) -> Result<AuditFault, String> {
        match str_field(value, "type")?.as_str() {
            "mem" => Ok(AuditFault::Mem {
                at_instret: u64_field(value, "at_instret")?,
                addr: u64_field(value, "addr")? as u32,
                mask: u64_field(value, "mask")? as u8,
            }),
            "trap" => {
                let action_value = field(value, "action")?;
                let action = match str_field(action_value, "type")?.as_str() {
                    "xor-reg" => FaultAction::XorReg {
                        index: u64_field(action_value, "index")? as u8,
                        mask: u64_field(action_value, "mask")? as u32,
                    },
                    "skew-counter" => {
                        let delta = field(action_value, "delta")?;
                        let delta = match delta.as_u64() {
                            Some(n) => n as i64,
                            None => {
                                let text = delta.to_pretty();
                                text.trim()
                                    .parse::<i64>()
                                    .map_err(|e| format!("bad delta: {e}"))?
                            }
                        };
                        FaultAction::SkewCounter { delta }
                    }
                    "corrupt-cache" => FaultAction::CorruptCache {
                        selector: u64_field(action_value, "selector")?,
                        mask: u64_field(action_value, "mask")? as u8,
                    },
                    "skew-cache-epoch" => FaultAction::SkewCacheEpoch {
                        delta: u64_field(action_value, "delta")?,
                    },
                    other => return Err(format!("unknown fault action {other:?}")),
                };
                Ok(AuditFault::Trap(TrapFault {
                    at_trap: u64_field(value, "at_trap")?,
                    action,
                }))
            }
            other => Err(format!("unknown fault type {other:?}")),
        }
    }
}

fn personality_to_str(p: Personality) -> &'static str {
    p.name()
}

fn personality_from_str(name: &str) -> Result<Personality, String> {
    match name {
        "linux" => Ok(Personality::Linux),
        "openbsd" => Ok(Personality::OpenBsd),
        other => Err(format!("unknown personality {other:?}")),
    }
}

fn tier_from_str(name: &str) -> Result<VerifyTier, String> {
    match name {
        "flow-only" => Ok(VerifyTier::FlowOnly),
        "mac" => Ok(VerifyTier::Mac),
        "mac+flow" => Ok(VerifyTier::MacPlusFlow),
        other => Err(format!("unknown verify tier {other:?}")),
    }
}

/// The scenario a bundle reproduces.
#[derive(Clone, Debug)]
pub enum Scenario {
    /// One process, one kernel (the fault campaign's shape).
    Solo(SoloScenario),
    /// A scheduled fleet with a seeded interleaving.
    Fleet(FleetScenario),
}

impl Scenario {
    /// Serializes the scenario for a bundle.
    pub fn to_value(&self) -> Value {
        match self {
            Scenario::Solo(s) => s.to_value(),
            Scenario::Fleet(f) => f.to_value(),
        }
    }

    /// Parses a scenario serialized by [`Scenario::to_value`].
    pub fn from_value(value: &Value) -> Result<Scenario, String> {
        match str_field(value, "kind")?.as_str() {
            "solo" => Ok(Scenario::Solo(SoloScenario::from_value(value)?)),
            "fleet" => Ok(Scenario::Fleet(FleetScenario::from_value(value)?)),
            other => Err(format!("unknown scenario kind {other:?}")),
        }
    }
}

/// A single-process enforcing run: workload, install identity, tier, and
/// the armed fault.
#[derive(Clone, Debug)]
pub struct SoloScenario {
    /// Registered workload name.
    pub workload: String,
    /// OS personality for build and kernel.
    pub personality: Personality,
    /// Verification tier.
    pub tier: VerifyTier,
    /// Whether the (test-only) weakened string check was active.
    pub weakened: bool,
    /// Installer program id.
    pub program_id: u16,
    /// Seed of the installation MAC key ([`MacKey::from_seed`]).
    pub key_seed: u64,
    /// The armed fault, if any.
    pub fault: Option<AuditFault>,
}

impl SoloScenario {
    /// Serializes the scenario.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("kind".into(), Value::Str("solo".into())),
            ("workload".into(), Value::Str(self.workload.clone())),
            (
                "personality".into(),
                Value::Str(personality_to_str(self.personality).into()),
            ),
            ("tier".into(), Value::Str(self.tier.name().into())),
            ("weakened".into(), Value::Bool(self.weakened)),
            ("program_id".into(), num(u64::from(self.program_id))),
            ("key_seed".into(), hex64(self.key_seed)),
            (
                "fault".into(),
                self.fault
                    .as_ref()
                    .map(AuditFault::to_value)
                    .unwrap_or(Value::Null),
            ),
        ])
    }

    /// Parses a scenario serialized by [`SoloScenario::to_value`].
    pub fn from_value(value: &Value) -> Result<SoloScenario, String> {
        let fault = match field(value, "fault")? {
            Value::Null => None,
            v => Some(AuditFault::from_value(v)?),
        };
        Ok(SoloScenario {
            workload: str_field(value, "workload")?,
            personality: personality_from_str(&str_field(value, "personality")?)?,
            tier: tier_from_str(&str_field(value, "tier")?)?,
            weakened: field(value, "weakened")?
                .as_bool()
                .ok_or("weakened is not a bool")?,
            program_id: u64_field(value, "program_id")? as u16,
            key_seed: u64_field(value, "key_seed")?,
            fault,
        })
    }

    /// Builds and installs the workload, reproducing the artifacts the
    /// scenario originally ran (same key seed, program id, personality ⇒
    /// same authenticated binary, bit for bit).
    ///
    /// # Panics
    ///
    /// Panics on harness preconditions: unknown workload, build or
    /// install failure.
    pub fn prepare(&self) -> PreparedSolo {
        let spec =
            program(&self.workload).unwrap_or_else(|| panic!("unknown workload {}", self.workload));
        let plain =
            build(spec, self.personality).unwrap_or_else(|e| panic!("{}: {e}", self.workload));
        let key = MacKey::from_seed(self.key_seed);
        let installer = Installer::new(
            key.clone(),
            InstallerOptions::new(self.personality).with_program_id(self.program_id),
        );
        let (auth, _) = installer
            .install(&plain, spec.name)
            .unwrap_or_else(|e| panic!("{}: {e}", self.workload));
        let flow = self.tier.checks_flow().then(|| flow_graph_of(&auth, &key));
        PreparedSolo {
            scenario: self.clone(),
            spec,
            auth,
            key,
            flow,
        }
    }

    /// Prepares and runs the scenario once (replay path; harnesses that
    /// run many faults against one binary use [`SoloScenario::prepare`] +
    /// [`PreparedSolo::run`]).
    pub fn run(&self) -> SoloRun {
        self.prepare().run(self.fault.as_ref())
    }
}

/// A built-and-installed solo scenario, ready to run faults against.
pub struct PreparedSolo {
    scenario: SoloScenario,
    spec: &'static ProgramSpec,
    auth: Binary,
    key: MacKey,
    flow: Option<FlowGraph>,
}

impl PreparedSolo {
    /// Borrowed runner parameters for [`run_solo`].
    pub fn params(&self) -> SoloParams<'_> {
        SoloParams {
            spec: self.spec,
            auth: &self.auth,
            personality: self.scenario.personality,
            tier: self.scenario.tier,
            weakened: self.scenario.weakened,
            key: &self.key,
            flow: self.flow.as_ref(),
        }
    }

    /// Runs the prepared scenario with `fault` armed.
    pub fn run(&self, fault: Option<&AuditFault>) -> SoloRun {
        run_solo(&self.params(), fault)
    }
}

/// Borrowed inputs to [`run_solo`]: a built workload plus kernel options.
/// Harnesses that already hold the artifacts (the fault campaign builds
/// and installs once per workload) construct this directly; replay goes
/// through [`SoloScenario::prepare`].
pub struct SoloParams<'a> {
    /// The workload spec (filesystem setup, stdin).
    pub spec: &'a ProgramSpec,
    /// The installed (authenticated) binary.
    pub auth: &'a Binary,
    /// OS personality.
    pub personality: Personality,
    /// Verification tier.
    pub tier: VerifyTier,
    /// Weakened string check (test-only).
    pub weakened: bool,
    /// Installation key.
    pub key: &'a MacKey,
    /// The binary's flow digraph (required by flow tiers).
    pub flow: Option<&'a FlowGraph>,
}

/// Everything observable about one solo run, as captured for bundles and
/// the campaign oracle.
#[derive(Clone, Debug)]
pub struct SoloRun {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Machine cycles at the end (for kills: the kill cycle).
    pub cycles: u64,
    /// Instructions retired.
    pub instret: u64,
    /// Captured standard output.
    pub stdout: Vec<u8>,
    /// Captured standard error.
    pub stderr: Vec<u8>,
    /// The dispatched-syscall trace.
    pub trace: Vec<TraceEntry>,
    /// Structured administrator alerts.
    pub alerts: Vec<Alert>,
    /// Digest of the final filesystem tree.
    pub fs_digest: u64,
    /// The kernel's aggregate counters.
    pub stats: KernelStats,
    /// The verified-call cache's counters.
    pub cache: CacheStats,
    /// The in-kernel anti-replay counter's final value.
    pub policy_counter: u64,
    /// The last ring events (capacity [`BUNDLE_SPAN_CAPACITY`]), oldest
    /// first — the bundle's span log.
    pub spans: Vec<Event>,
    /// Events the span ring discarded (exact).
    pub ring_dropped: u64,
}

/// The canonical solo runner: an enforcing cache-enabled kernel with a
/// bounded span ring attached, an optional armed fault, and full
/// observable capture. Bundle capture (`asc-faults`) and [`crate::replay`]
/// both run through here, so they cannot diverge.
pub fn run_solo(params: &SoloParams<'_>, fault: Option<&AuditFault>) -> SoloRun {
    let mut fs = FileSystem::new();
    (params.spec.setup_fs)(&mut fs);
    let mut opts = KernelOptions::enforcing(params.personality)
        .with_verify_cache()
        .with_tier(params.tier);
    if params.weakened {
        opts = opts.with_weakened_string_check();
    }
    let mut kernel = Kernel::with_fs(opts, fs);
    if params.tier.checks_flow() {
        let flow = params.flow.expect("flow tiers need the binary's digraph");
        kernel.set_flow_graph(flow.clone());
    }
    if let Some(sites) = asc_workloads::site_registry_for(params.auth, params.key) {
        kernel.set_site_registry(sites);
    }
    kernel.set_stdin(params.spec.stdin.to_vec());
    kernel.set_key(params.key.clone());
    kernel.set_brk(params.auth.highest_addr());
    kernel.set_trace_sink(Box::new(RingSink::new(BUNDLE_SPAN_CAPACITY)));
    let mut machine = Machine::load(params.auth, kernel).expect("workload fits in memory");
    let mut mem_fault = None;
    match fault {
        Some(AuditFault::Trap(tf)) => machine.handler_mut().arm_fault(*tf),
        Some(AuditFault::Mem {
            at_instret,
            addr,
            mask,
        }) => mem_fault = Some((*at_instret, *addr, *mask)),
        None => {}
    }
    let outcome = match mem_fault {
        Some((at_instret, addr, mask)) => match machine.run_until_instret(at_instret, RUN_BUDGET) {
            StepOutcome::Done(outcome) => outcome, // finished before the flip
            StepOutcome::Running => {
                if let Ok(byte) = machine.mem().kread(addr, 1).map(|b| b[0]) {
                    let _ = machine.mem_mut().kwrite(addr, &[byte ^ mask]);
                }
                machine.run(RUN_BUDGET)
            }
        },
        None => machine.run(RUN_BUDGET),
    };
    let cycles = machine.cycles();
    let instret = machine.instret();
    let mut kernel = machine.into_handler();
    let ring = kernel
        .take_trace_sink()
        .expect("span ring attached above")
        .into_any()
        .downcast::<RingSink>()
        .expect("sink is the span ring");
    let stats = *kernel.stats();
    SoloRun {
        outcome,
        cycles,
        instret,
        stdout: kernel.stdout().to_vec(),
        stderr: kernel.stderr().to_vec(),
        trace: kernel.trace().to_vec(),
        alerts: kernel.alerts().to_vec(),
        fs_digest: kernel.fs().digest(),
        stats,
        cache: kernel.cache_stats(),
        policy_counter: kernel.policy_counter(),
        spans: ring.events().cloned().collect(),
        ring_dropped: ring.dropped_events(),
    }
}

/// A scheduled fleet scenario: per-pid workloads, a seeded interleaving,
/// and an optional trap fault armed on one pid.
#[derive(Clone, Debug)]
pub struct FleetScenario {
    /// Workload name per pid (pid `i + 1` runs `procs[i]`).
    pub procs: Vec<String>,
    /// OS personality.
    pub personality: Personality,
    /// Verification tier (all kernels).
    pub tier: VerifyTier,
    /// Seed of the shared installation key.
    pub key_seed: u64,
    /// Program id of the first distinct workload; the `i`-th distinct
    /// workload (in order of first appearance) installs as `base + i`.
    pub program_id_base: u16,
    /// Scheduler policy seed ([`SchedPolicy::SeededRandom`]).
    pub sched_seed: u64,
    /// Retired-instruction quantum per slice.
    pub slice_instrs: u64,
    /// Per-process cycle budget.
    pub budget_cycles: u64,
    /// Kernel batch-window depth, if batching.
    pub batch_depth: Option<usize>,
    /// A trap fault armed on one pid's kernel before the run.
    pub fault: Option<(Pid, TrapFault)>,
}

impl FleetScenario {
    /// Serializes the scenario.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("kind".into(), Value::Str("fleet".into())),
            (
                "procs".into(),
                Value::Array(self.procs.iter().map(|w| Value::Str(w.clone())).collect()),
            ),
            (
                "personality".into(),
                Value::Str(personality_to_str(self.personality).into()),
            ),
            ("tier".into(), Value::Str(self.tier.name().into())),
            ("key_seed".into(), hex64(self.key_seed)),
            (
                "program_id_base".into(),
                num(u64::from(self.program_id_base)),
            ),
            ("sched_seed".into(), hex64(self.sched_seed)),
            ("slice_instrs".into(), num(self.slice_instrs)),
            ("budget_cycles".into(), num(self.budget_cycles)),
            (
                "batch_depth".into(),
                self.batch_depth
                    .map(|d| num(d as u64))
                    .unwrap_or(Value::Null),
            ),
            (
                "fault".into(),
                self.fault
                    .as_ref()
                    .map(|(pid, tf)| {
                        Value::Object(vec![
                            ("pid".into(), num(u64::from(*pid))),
                            ("trap".into(), AuditFault::Trap(*tf).to_value()),
                        ])
                    })
                    .unwrap_or(Value::Null),
            ),
        ])
    }

    /// Parses a scenario serialized by [`FleetScenario::to_value`].
    pub fn from_value(value: &Value) -> Result<FleetScenario, String> {
        let procs = field(value, "procs")?
            .as_array()
            .ok_or("procs is not an array")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "proc entry is not a string".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let batch_depth = match field(value, "batch_depth")? {
            Value::Null => None,
            v => Some(parse_usize(v)?),
        };
        let fault = match field(value, "fault")? {
            Value::Null => None,
            v => {
                let pid = u64_field(v, "pid")? as Pid;
                match AuditFault::from_value(field(v, "trap")?)? {
                    AuditFault::Trap(tf) => Some((pid, tf)),
                    AuditFault::Mem { .. } => return Err("fleet faults must be trap faults".into()),
                }
            }
        };
        Ok(FleetScenario {
            procs,
            personality: personality_from_str(&str_field(value, "personality")?)?,
            tier: tier_from_str(&str_field(value, "tier")?)?,
            key_seed: u64_field(value, "key_seed")?,
            program_id_base: u64_field(value, "program_id_base")? as u16,
            sched_seed: u64_field(value, "sched_seed")?,
            slice_instrs: u64_field(value, "slice_instrs")?,
            budget_cycles: u64_field(value, "budget_cycles")?,
            batch_depth,
            fault,
        })
    }

    /// Builds, installs, and spawns the fleet (shared verify cache, one
    /// kernel per pid, the fault armed), without running any slice.
    ///
    /// # Panics
    ///
    /// Panics on harness preconditions: unknown workload, build/install
    /// failure, fault pid out of range.
    pub fn build(&self) -> Scheduler {
        let key = MacKey::from_seed(self.key_seed).shared_schedule();
        let mut built: Vec<(String, &'static ProgramSpec, Binary, Option<FlowGraph>)> = Vec::new();
        for name in &self.procs {
            if built.iter().any(|(n, ..)| n == name) {
                continue;
            }
            let spec = program(name).unwrap_or_else(|| panic!("unknown workload {name}"));
            let plain = build(spec, self.personality).unwrap_or_else(|e| panic!("{name}: {e}"));
            let program_id = self.program_id_base + built.len() as u16;
            let installer = Installer::new(
                key.clone(),
                InstallerOptions::new(self.personality).with_program_id(program_id),
            );
            let (auth, _) = installer
                .install(&plain, spec.name)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let flow = self.tier.checks_flow().then(|| flow_graph_of(&auth, &key));
            built.push((name.clone(), spec, auth, flow));
        }
        let mut sched = Scheduler::with_shared_cache(SchedConfig {
            policy: SchedPolicy::SeededRandom(self.sched_seed),
            slice_instrs: self.slice_instrs,
            budget_cycles: self.budget_cycles,
            batch_depth: self.batch_depth,
        });
        for name in &self.procs {
            let (_, spec, auth, flow) =
                built.iter().find(|(n, ..)| n == name).expect("built above");
            let mut fs = FileSystem::new();
            (spec.setup_fs)(&mut fs);
            let mut kernel = Kernel::with_fs(
                KernelOptions::enforcing(self.personality)
                    .with_verify_cache()
                    .with_tier(self.tier),
                fs,
            );
            if self.tier.checks_flow() {
                kernel.set_flow_graph(flow.clone().expect("flow built for flow tiers"));
            }
            if let Some(sites) = asc_workloads::site_registry_for(auth, &key) {
                kernel.set_site_registry(sites);
            }
            kernel.set_stdin(spec.stdin.to_vec());
            kernel.set_key(key.clone());
            kernel.set_brk(auth.highest_addr());
            let machine = Machine::load(auth, kernel).expect("workload fits in memory");
            sched.spawn(name, machine);
        }
        if let Some((pid, tf)) = &self.fault {
            sched.process_mut(*pid).kernel_mut().arm_fault(*tf);
        }
        sched
    }

    /// Builds the fleet and runs it to completion, optionally with the
    /// flight recorder attached (attachment is perturbation-free, so the
    /// run is bit-identical either way).
    pub fn run(&self, recorder: Option<RecorderConfig>) -> Scheduler {
        let mut sched = self.build();
        if let Some(cfg) = recorder {
            sched.attach_recorder(cfg);
        }
        sched.run();
        sched
    }

    /// Builds the fleet and steps the seeded interleaving only until
    /// `victim` stops being runnable (the replay-to-kill path). Returns
    /// the scheduler frozen at that point.
    pub fn run_to_kill(&self, victim: Pid) -> Scheduler {
        let mut sched = self.build();
        while sched.process(victim).state().is_runnable() {
            if sched.step().is_none() {
                break;
            }
        }
        sched
    }
}

fn parse_usize(value: &Value) -> Result<usize, String> {
    value
        .as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| "expected a number".to_string())
}
