//! SOF — the Simple Object Format, the repository's ELF analogue.
//!
//! The paper's installer requires *relocatable* binaries: PLTO moves code
//! and data, so every stored address must be marked so it can be fixed up.
//! SOF keeps that requirement front and centre: a [`Binary`] carries
//! [`Section`]s, [`Symbol`]s and [`Relocation`]s, where each relocation
//! marks a 4-byte little-endian field (an instruction immediate or a data
//! word) that holds an address into the binary.
//!
//! The installer consumes a relocatable SOF binary and emits a
//! non-relocatable *authenticated* binary (mirroring the paper: "our
//! installer outputs nonrelocatable statically linked binaries, since our
//! policies include the absolute locations of all system calls").
//!
//! # Example
//!
//! ```
//! use asc_object::{Binary, Section, SectionFlags};
//!
//! let mut b = Binary::new(0x1000);
//! b.push_section(Section::new(".text", 0x1000, vec![0u8; 16], SectionFlags::RX));
//! let bytes = b.to_bytes();
//! let parsed = asc_object::Binary::from_bytes(&bytes)?;
//! assert_eq!(parsed.entry(), 0x1000);
//! # Ok::<(), asc_object::SofError>(())
//! ```

mod binary;
mod format;

pub use binary::{Binary, Relocation, Section, SectionFlags, Symbol, SymbolKind};
pub use format::SofError;

/// Conventional load address of the first section.
pub const LOAD_BASE: u32 = 0x1000;

/// Conventional names of the standard sections.
pub mod sections {
    /// Executable code.
    pub const TEXT: &str = ".text";
    /// Read-only data (string literals).
    pub const RODATA: &str = ".rodata";
    /// Initialised writable data.
    pub const DATA: &str = ".data";
    /// Zero-initialised writable data.
    pub const BSS: &str = ".bss";
    /// Authenticated-call data added by the installer: call MACs,
    /// authenticated strings, predecessor sets, the policy-state cell.
    pub const ASC: &str = ".asc";
    /// The MAC-authenticated syscall-transition digraph added by the
    /// installer (the SFIP tier's policy), appended after `.asc`.
    pub const ASCFLOW: &str = ".ascflow";
    /// The MAC-authenticated rewritten-site registry added by the
    /// installer (the origin-privilege policy: the exact set of pcs whose
    /// `SYSCALL` the installer rewrote), appended after `.ascflow`.
    pub const ASCSITES: &str = ".ascsites";
}
