//! The in-memory model of a SOF binary.

/// Access permissions of a loaded section.
///
/// `Exec`-but-writable combinations are representable on purpose: the
/// simulated machine predates NX-style protections (the paper's attacks
/// execute shellcode from a stack buffer), and sections like `.asc` must be
/// writable so the kernel can update the policy state inside the
/// application's address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SectionFlags(u8);

impl SectionFlags {
    /// Readable.
    pub const READ: SectionFlags = SectionFlags(1);
    /// Writable.
    pub const WRITE: SectionFlags = SectionFlags(2);
    /// Executable.
    pub const EXEC: SectionFlags = SectionFlags(4);
    /// Read + execute (code).
    pub const RX: SectionFlags = SectionFlags(1 | 4);
    /// Read + write (data).
    pub const RW: SectionFlags = SectionFlags(1 | 2);
    /// Read only (constants).
    pub const RO: SectionFlags = SectionFlags(1);

    /// Raw bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs from raw bits (extra bits are masked off).
    pub fn from_bits(bits: u8) -> SectionFlags {
        SectionFlags(bits & 0x7)
    }

    /// Whether all flags in `other` are set.
    pub fn contains(self, other: SectionFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for SectionFlags {
    type Output = SectionFlags;
    fn bitor(self, rhs: SectionFlags) -> SectionFlags {
        SectionFlags(self.0 | rhs.0)
    }
}

/// A named, loadable region of the binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section name (".text", ".data", ...).
    pub name: String,
    /// Load address of the first byte.
    pub addr: u32,
    /// Initialised contents. For `.bss`-style sections this may be shorter
    /// than [`Section::mem_size`].
    pub data: Vec<u8>,
    /// Total size in memory; bytes beyond `data.len()` are zero-filled at
    /// load time. Always `>= data.len()`.
    pub mem_size: u32,
    /// Access permissions.
    pub flags: SectionFlags,
}

impl Section {
    /// A fully initialised section (`mem_size == data.len()`).
    pub fn new(name: impl Into<String>, addr: u32, data: Vec<u8>, flags: SectionFlags) -> Section {
        let mem_size = data.len() as u32;
        Section {
            name: name.into(),
            addr,
            data,
            mem_size,
            flags,
        }
    }

    /// A zero-filled section of `size` bytes with no initialised data.
    pub fn zeroed(name: impl Into<String>, addr: u32, size: u32, flags: SectionFlags) -> Section {
        Section {
            name: name.into(),
            addr,
            data: Vec::new(),
            mem_size: size,
            flags,
        }
    }

    /// Address one past the last byte.
    pub fn end(&self) -> u32 {
        self.addr + self.mem_size
    }

    /// Whether `addr` falls inside this section.
    pub fn contains_addr(&self, addr: u32) -> bool {
        addr >= self.addr && addr < self.end()
    }
}

/// Kind of a symbol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// A function entry point.
    Func,
    /// A data object.
    Object,
}

/// A named address in the binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Address the name refers to.
    pub addr: u32,
    /// Function or data.
    pub kind: SymbolKind,
}

/// Marks a 4-byte little-endian field that stores an address into the
/// binary and therefore must be fixed up whenever the installer moves code
/// or data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Relocation {
    /// Index of the section containing the field.
    pub section: u32,
    /// Byte offset of the field within that section's data.
    pub offset: u32,
}

/// A complete SOF binary.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Binary {
    entry: u32,
    sections: Vec<Section>,
    symbols: Vec<Symbol>,
    relocations: Vec<Relocation>,
    /// Installer-assigned program identifier (0 = unassigned). Used for the
    /// Frankenstein countermeasure: folded into basic block ids so
    /// predecessor sets never match blocks of another program.
    program_id: u16,
    /// Whether the installer has rewritten this binary with authenticated
    /// system calls.
    authenticated: bool,
    /// Whether the binary carries (possibly empty) relocation information.
    /// The assembler sets this; stripping clears it. Mirrors the paper's
    /// PLTO requirement that inputs be relocatable.
    relocatable: bool,
}

impl Binary {
    /// An empty binary with the given entry point.
    pub fn new(entry: u32) -> Binary {
        Binary {
            entry,
            ..Binary::default()
        }
    }

    /// Entry-point address.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Sets the entry-point address.
    pub fn set_entry(&mut self, entry: u32) {
        self.entry = entry;
    }

    /// The sections, in load order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Mutable access to the sections (used by the installer's rewriter).
    pub fn sections_mut(&mut self) -> &mut [Section] {
        &mut self.sections
    }

    /// Appends a section and returns its index.
    pub fn push_section(&mut self, section: Section) -> u32 {
        self.sections.push(section);
        (self.sections.len() - 1) as u32
    }

    /// Looks up a section by name.
    pub fn section_by_name(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Index of a section by name.
    pub fn section_index(&self, name: &str) -> Option<u32> {
        self.sections
            .iter()
            .position(|s| s.name == name)
            .map(|i| i as u32)
    }

    /// The section containing `addr`, if any.
    pub fn section_at(&self, addr: u32) -> Option<&Section> {
        self.sections.iter().find(|s| s.contains_addr(addr))
    }

    /// The symbols.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Adds a symbol.
    pub fn push_symbol(&mut self, symbol: Symbol) {
        self.symbols.push(symbol);
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// The name of the function symbol at or most closely preceding `addr`,
    /// for diagnostics.
    pub fn nearest_func_symbol(&self, addr: u32) -> Option<&Symbol> {
        self.symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Func && s.addr <= addr)
            .max_by_key(|s| s.addr)
    }

    /// The relocations.
    pub fn relocations(&self) -> &[Relocation] {
        &self.relocations
    }

    /// Adds a relocation.
    pub fn push_relocation(&mut self, relocation: Relocation) {
        self.relocations.push(relocation);
    }

    /// Drops all relocations (the installer's output is non-relocatable).
    pub fn strip_relocations(&mut self) {
        self.relocations.clear();
        self.relocatable = false;
    }

    /// Marks the binary as carrying relocation information (the assembler
    /// calls this even when no relocations were needed).
    pub fn set_relocatable(&mut self, value: bool) {
        self.relocatable = value;
    }

    /// Whether the binary carries relocation information.
    pub fn is_relocatable(&self) -> bool {
        self.relocatable || !self.relocations.is_empty()
    }

    /// Reads the 4-byte field a relocation points at.
    ///
    /// # Panics
    ///
    /// Panics if the relocation is out of bounds (malformed binary).
    pub fn reloc_value(&self, reloc: Relocation) -> u32 {
        let data = &self.sections[reloc.section as usize].data;
        let off = reloc.offset as usize;
        u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Writes the 4-byte field a relocation points at.
    ///
    /// # Panics
    ///
    /// Panics if the relocation is out of bounds (malformed binary).
    pub fn set_reloc_value(&mut self, reloc: Relocation, value: u32) {
        let data = &mut self.sections[reloc.section as usize].data;
        let off = reloc.offset as usize;
        data[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Installer-assigned program id (0 if not installed).
    pub fn program_id(&self) -> u16 {
        self.program_id
    }

    /// Sets the program id.
    pub fn set_program_id(&mut self, id: u16) {
        self.program_id = id;
    }

    /// Whether the installer has authenticated this binary.
    pub fn is_authenticated(&self) -> bool {
        self.authenticated
    }

    /// Marks the binary as authenticated.
    pub fn set_authenticated(&mut self, value: bool) {
        self.authenticated = value;
    }

    /// Address one past the highest section byte (conventional initial
    /// program break).
    pub fn highest_addr(&self) -> u32 {
        self.sections
            .iter()
            .map(Section::end)
            .max()
            .unwrap_or(super::LOAD_BASE)
    }

    /// Checks structural invariants: sections sorted by address and
    /// non-overlapping, relocations in bounds, `mem_size >= data.len()`.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.sections.windows(2) {
            if w[1].addr < w[0].end() {
                return Err(format!(
                    "sections `{}` and `{}` overlap or are unsorted",
                    w[0].name, w[1].name
                ));
            }
        }
        for s in &self.sections {
            if (s.mem_size as usize) < s.data.len() {
                return Err(format!("section `{}` mem_size smaller than data", s.name));
            }
        }
        for (i, r) in self.relocations.iter().enumerate() {
            let Some(sec) = self.sections.get(r.section as usize) else {
                return Err(format!(
                    "relocation {i} references missing section {}",
                    r.section
                ));
            };
            if r.offset as usize + 4 > sec.data.len() {
                return Err(format!("relocation {i} out of bounds in `{}`", sec.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Binary {
        let mut b = Binary::new(0x1000);
        b.push_section(Section::new(
            ".text",
            0x1000,
            vec![0u8; 32],
            SectionFlags::RX,
        ));
        b.push_section(Section::new(
            ".data",
            0x2000,
            vec![1, 2, 3, 4],
            SectionFlags::RW,
        ));
        b.push_section(Section::zeroed(".bss", 0x3000, 64, SectionFlags::RW));
        b.push_symbol(Symbol {
            name: "main".into(),
            addr: 0x1000,
            kind: SymbolKind::Func,
        });
        b.push_symbol(Symbol {
            name: "helper".into(),
            addr: 0x1010,
            kind: SymbolKind::Func,
        });
        b.push_relocation(Relocation {
            section: 0,
            offset: 4,
        });
        b
    }

    #[test]
    fn section_lookup() {
        let b = sample();
        assert_eq!(b.section_by_name(".data").unwrap().addr, 0x2000);
        assert!(b.section_by_name(".asc").is_none());
        assert_eq!(b.section_at(0x1010).unwrap().name, ".text");
        assert_eq!(b.section_at(0x3030).unwrap().name, ".bss");
        assert!(b.section_at(0x5000).is_none());
        assert_eq!(b.section_index(".bss"), Some(2));
    }

    #[test]
    fn reloc_read_write() {
        let mut b = sample();
        let r = b.relocations()[0];
        b.set_reloc_value(r, 0x2004);
        assert_eq!(b.reloc_value(r), 0x2004);
    }

    #[test]
    fn nearest_symbol() {
        let b = sample();
        assert_eq!(b.nearest_func_symbol(0x1018).unwrap().name, "helper");
        assert_eq!(b.nearest_func_symbol(0x1004).unwrap().name, "main");
        assert!(b.nearest_func_symbol(0x0fff).is_none());
    }

    #[test]
    fn validation_catches_overlap() {
        let mut b = sample();
        b.push_section(Section::new(".bad", 0x2002, vec![0; 8], SectionFlags::RW));
        assert!(b.validate().is_err());
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_reloc() {
        let mut b = sample();
        b.push_relocation(Relocation {
            section: 0,
            offset: 30,
        });
        assert!(b.validate().is_err());
        let mut b2 = sample();
        b2.push_relocation(Relocation {
            section: 9,
            offset: 0,
        });
        assert!(b2.validate().is_err());
    }

    #[test]
    fn highest_addr_and_flags() {
        let b = sample();
        assert_eq!(b.highest_addr(), 0x3000 + 64);
        assert!(SectionFlags::RX.contains(SectionFlags::EXEC));
        assert!(!SectionFlags::RO.contains(SectionFlags::WRITE));
        assert_eq!((SectionFlags::READ | SectionFlags::WRITE), SectionFlags::RW);
    }
}
