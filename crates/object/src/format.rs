//! On-disk serialisation of SOF binaries.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "SOF1"    4 bytes
//! entry           u32
//! program_id      u16
//! flags           u8      (bit 0: authenticated)
//! n_sections      u32
//!   per section: name (u16 len + bytes), addr u32, mem_size u32,
//!                flags u8, data (u32 len + bytes)
//! n_symbols       u32
//!   per symbol:  name (u16 len + bytes), addr u32, kind u8
//! n_relocations   u32
//!   per reloc:   section u32, offset u32
//! ```

use crate::binary::{Binary, Relocation, Section, SectionFlags, Symbol, SymbolKind};

const MAGIC: &[u8; 4] = b"SOF1";

/// Error reading a SOF image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SofError {
    /// Missing or wrong magic number.
    BadMagic,
    /// Input ended prematurely.
    Truncated,
    /// A length or enum field held an invalid value.
    Malformed(&'static str),
}

impl std::fmt::Display for SofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SofError::BadMagic => write!(f, "not a SOF binary (bad magic)"),
            SofError::Truncated => write!(f, "SOF image truncated"),
            SofError::Malformed(what) => write!(f, "malformed SOF image: {what}"),
        }
    }
}

impl std::error::Error for SofError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SofError> {
        if self.pos + n > self.bytes.len() {
            return Err(SofError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SofError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SofError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, SofError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn name(&mut self) -> Result<String, SofError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SofError::Malformed("non-UTF-8 name"))
    }
}

fn write_name(out: &mut Vec<u8>, name: &str) {
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
}

impl Binary {
    /// Serialises to the on-disk SOF format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.entry().to_le_bytes());
        out.extend_from_slice(&self.program_id().to_le_bytes());
        out.push(u8::from(self.is_authenticated()) | (u8::from(self.is_relocatable()) << 1));
        out.extend_from_slice(&(self.sections().len() as u32).to_le_bytes());
        for s in self.sections() {
            write_name(&mut out, &s.name);
            out.extend_from_slice(&s.addr.to_le_bytes());
            out.extend_from_slice(&s.mem_size.to_le_bytes());
            out.push(s.flags.bits());
            out.extend_from_slice(&(s.data.len() as u32).to_le_bytes());
            out.extend_from_slice(&s.data);
        }
        out.extend_from_slice(&(self.symbols().len() as u32).to_le_bytes());
        for sym in self.symbols() {
            write_name(&mut out, &sym.name);
            out.extend_from_slice(&sym.addr.to_le_bytes());
            out.push(match sym.kind {
                SymbolKind::Func => 0,
                SymbolKind::Object => 1,
            });
        }
        out.extend_from_slice(&(self.relocations().len() as u32).to_le_bytes());
        for r in self.relocations() {
            out.extend_from_slice(&r.section.to_le_bytes());
            out.extend_from_slice(&r.offset.to_le_bytes());
        }
        out
    }

    /// Parses the format produced by [`Binary::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`SofError`] on bad magic, truncation, or malformed fields.
    pub fn from_bytes(bytes: &[u8]) -> Result<Binary, SofError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(SofError::BadMagic);
        }
        let entry = r.u32()?;
        let program_id = r.u16()?;
        let flags = r.u8()?;
        let mut binary = Binary::new(entry);
        binary.set_program_id(program_id);
        binary.set_authenticated(flags & 1 != 0);
        binary.set_relocatable(flags & 2 != 0);

        let n_sections = r.u32()? as usize;
        for _ in 0..n_sections {
            let name = r.name()?;
            let addr = r.u32()?;
            let mem_size = r.u32()?;
            let flags = SectionFlags::from_bits(r.u8()?);
            let data_len = r.u32()? as usize;
            let data = r.take(data_len)?.to_vec();
            if (mem_size as usize) < data.len() {
                return Err(SofError::Malformed("mem_size < data length"));
            }
            binary.push_section(Section {
                name,
                addr,
                data,
                mem_size,
                flags,
            });
        }

        let n_symbols = r.u32()? as usize;
        for _ in 0..n_symbols {
            let name = r.name()?;
            let addr = r.u32()?;
            let kind = match r.u8()? {
                0 => SymbolKind::Func,
                1 => SymbolKind::Object,
                _ => return Err(SofError::Malformed("bad symbol kind")),
            };
            binary.push_symbol(Symbol { name, addr, kind });
        }

        let n_relocs = r.u32()? as usize;
        for _ in 0..n_relocs {
            let section = r.u32()?;
            let offset = r.u32()?;
            binary.push_relocation(Relocation { section, offset });
        }
        binary
            .validate()
            .map_err(|_| SofError::Malformed("validation failed"))?;
        Ok(binary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Binary {
        let mut b = Binary::new(0x1040);
        b.set_program_id(7);
        b.set_authenticated(true);
        b.set_relocatable(true);
        b.push_section(Section::new(
            ".text",
            0x1000,
            (0..64u8).collect(),
            SectionFlags::RX,
        ));
        b.push_section(Section::zeroed(".bss", 0x2000, 128, SectionFlags::RW));
        b.push_symbol(Symbol {
            name: "main".into(),
            addr: 0x1040,
            kind: SymbolKind::Func,
        });
        b.push_symbol(Symbol {
            name: "buf".into(),
            addr: 0x2000,
            kind: SymbolKind::Object,
        });
        b.push_relocation(Relocation {
            section: 0,
            offset: 12,
        });
        b
    }

    #[test]
    fn roundtrip() {
        let b = sample();
        let parsed = Binary::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn bad_magic() {
        assert_eq!(Binary::from_bytes(b"ELF!rest"), Err(SofError::BadMagic));
    }

    #[test]
    fn truncation_everywhere() {
        let bytes = sample().to_bytes();
        for cut in [3, 6, 12, 20, bytes.len() - 1] {
            assert!(
                Binary::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn malformed_symbol_kind() {
        let mut bytes = sample().to_bytes();
        // Corrupt the last symbol's kind byte (it precedes the reloc count
        // and two relocation words: 4 + 2*8... locate from the end:
        // relocs = 4 + 8; kind byte is 4 bytes before that minus addr... ).
        // Simpler: flip every byte one at a time and ensure no panic.
        for i in 0..bytes.len() {
            bytes[i] ^= 0xff;
            let _ = Binary::from_bytes(&bytes); // must not panic
            bytes[i] ^= 0xff;
        }
    }

    #[test]
    fn empty_binary_roundtrip() {
        let b = Binary::new(0);
        assert_eq!(Binary::from_bytes(&b.to_bytes()).unwrap(), b);
    }
}
