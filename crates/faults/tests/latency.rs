//! Detection-latency coverage matrix: every fault class is detected by
//! the sentinel, the monitoring lag stays within the hard bound, and the
//! campaign is reproducible.

use asc_faults::{run_latency_campaign, FaultClass, LatencyConfig};

const SEED: u64 = 0x1A7E_5EED;

#[test]
fn every_fault_class_is_detected_within_the_lag_bound() {
    let report = run_latency_campaign(&LatencyConfig::new(SEED));

    assert!(
        report.undetected.is_empty(),
        "undetected classes: {:?}",
        report.undetected
    );
    let problems = report.problems();
    assert!(problems.is_empty(), "latency problems: {problems:?}");

    // Full coverage: one row per fault class, in declaration order.
    assert_eq!(report.rows.len(), FaultClass::ALL.len());
    for (row, class) in report.rows.iter().zip(FaultClass::ALL) {
        assert_eq!(row.class, class);
        assert!(row.within_bound, "{} missed the bound", class.name());
        // The clocks are ordered: armed, then effect, then detection.
        assert!(row.effect_clock >= row.armed_clock, "{row:?}");
        assert!(row.detected_clock >= row.effect_clock, "{row:?}");
        assert_eq!(row.latency, row.detected_clock - row.armed_clock);
        assert_eq!(row.lag, row.detected_clock - row.effect_clock);
        assert!(row.lag <= report.bound_cycles);
        assert!(!row.detector.is_empty());
    }

    // Memory-flip classes really do exercise the consumption delay the
    // armed/effect split exists for: at least one row has a gap.
    assert!(
        report.rows.iter().any(|r| r.effect_clock > r.armed_clock),
        "no row shows an armed->effect consumption delay"
    );

    // The rendered table carries one line per class plus the header, and
    // the JSON form round-trips.
    let table = report.render();
    assert_eq!(table.lines().count(), 1 + FaultClass::ALL.len());
    for class in FaultClass::ALL {
        assert!(table.contains(class.name()), "{table}");
    }
    let value = report.to_value();
    let parsed =
        asc_core::json::Value::parse(&value.to_pretty()).expect("latency report JSON parses");
    assert_eq!(parsed, value);
}

/// The syscall-origin classes (gadget-jump, stub-smuggle) plant a raw
/// `syscall` at an unregistered pc; the kill they provoke must surface
/// through the monitored fleet like any other fault class, within the
/// same lag bound.
#[test]
fn origin_fault_classes_are_detected() {
    let classes = [FaultClass::GadgetJump, FaultClass::StubSmuggle];
    let report = run_latency_campaign(&LatencyConfig::new(SEED).with_classes(&classes));
    assert!(
        report.undetected.is_empty(),
        "undetected origin classes: {:?}",
        report.undetected
    );
    let problems = report.problems();
    assert!(problems.is_empty(), "origin latency problems: {problems:?}");
    assert_eq!(report.rows.len(), classes.len());
    for (row, class) in report.rows.iter().zip(classes) {
        assert_eq!(row.class, class);
        assert!(row.within_bound, "{} missed the bound", class.name());
        // A smuggled trap's first kernel-visible effect is the kill
        // itself, so the alert-burst detector is the one that fires.
        assert_eq!(row.detector, "alert-burst", "{row:?}");
    }
}

#[test]
fn the_campaign_is_deterministic() {
    let a = run_latency_campaign(&LatencyConfig::new(SEED));
    let b = run_latency_campaign(&LatencyConfig::new(SEED));
    assert_eq!(a.to_value(), b.to_value());
}
