//! Cross-process fault classes: perturb **one** process of a scheduled
//! multi-process run and demand that (a) the target degrades or dies
//! exactly as the single-process oracle requires and (b) every *peer*
//! process remains bit-identical to the clean run — stdout, stderr,
//! syscall trace, alerts, filesystem digest, counters, everything.
//!
//! Two classes extend the single-process campaign:
//!
//! * [`CrossFaultClass::CachePoisonAcrossPids`] — corrupt a verified-call
//!   cache entry inside one pid's namespace of the [`asc_core::SharedVerifyCache`]
//!   mid-schedule. The cache is an untrusted accelerator, so the target
//!   must degrade gracefully (cold fallback, never a kill) and no other
//!   pid may observe anything at all.
//! * [`CrossFaultClass::CounterSkewOnePid`] — skew the in-kernel
//!   anti-replay counter of one pid of many. The target must fail-stop
//!   with an alert attributed to *its own* pid; its peers must finish
//!   untouched.
//!
//! Classification reuses the single-process oracle ([`classify`]) per
//! pid: for peers, anything other than *benign* (bit-identical) is an
//! isolation leak and reported as a problem.

use std::collections::BTreeMap;

use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{
    Alert, FaultAction, FileSystem, Kernel, KernelOptions, Personality, ReasonCode, TrapFault,
};
use asc_object::Binary;
use asc_sched::{Pid, ProcState, SchedConfig, SchedPolicy, Scheduler};
use asc_testkit::Rng;
use asc_vm::{Machine, RunOutcome};
use asc_workloads::{build, program, ProgramSpec, RUN_BUDGET};

use crate::campaign::{classify, Outcome, RunRecord};
use crate::campaign_key;

/// A fault class that targets one process of a scheduled set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrossFaultClass {
    /// Corrupt a cache entry in one pid's namespace of the shared
    /// verified-call cache, mid-schedule.
    CachePoisonAcrossPids,
    /// Skew the anti-replay counter of one pid's kernel before one of
    /// its traps.
    CounterSkewOnePid,
}

impl CrossFaultClass {
    /// Every cross-process class, in reporting order.
    pub const ALL: [CrossFaultClass; 2] = [
        CrossFaultClass::CachePoisonAcrossPids,
        CrossFaultClass::CounterSkewOnePid,
    ];

    /// Short name used in the report table.
    pub fn name(self) -> &'static str {
        match self {
            CrossFaultClass::CachePoisonAcrossPids => "xpid-cache-poison",
            CrossFaultClass::CounterSkewOnePid => "xpid-counter-skew",
        }
    }
}

/// Cross-process campaign parameters. Identical configs reproduce
/// identical reports.
#[derive(Clone, Debug)]
pub struct CrossConfig {
    /// Master seed (drives interleavings and fault placement).
    pub seed: u64,
    /// Trials per class.
    pub trials: u32,
    /// Concurrent processes, cycling over `workloads`.
    pub procs: usize,
    /// Workload names (must be registered in `asc-workloads`).
    pub workloads: Vec<String>,
    /// OS personality for builds and kernels.
    pub personality: Personality,
}

impl CrossConfig {
    /// Default cross-process campaign over the paper's policy workloads.
    pub fn new(seed: u64, trials: u32) -> CrossConfig {
        CrossConfig {
            seed,
            trials,
            procs: 4,
            workloads: vec!["bison".into(), "calc".into(), "tar".into()],
            personality: Personality::Linux,
        }
    }
}

/// Aggregated trials for one cross-process class.
#[derive(Clone, Debug)]
pub struct CrossRow {
    /// Fault class.
    pub class: CrossFaultClass,
    /// Trials run.
    pub trials: u32,
    /// Trials where the fault demonstrably landed (a cache entry was
    /// actually corrupted, or the armed trap fired before exit).
    pub landed: u32,
    /// Target-pid outcomes classified killed-with-alert.
    pub target_killed: u32,
    /// Target-pid outcomes classified benign (bit-identical).
    pub target_benign: u32,
    /// Peer-pid comparisons that came back bit-identical.
    pub peers_clean: u32,
    /// Peer-pid comparisons that diverged — isolation leaks, asserted
    /// zero by [`CrossReport::problems`].
    pub peer_leaks: u32,
    /// Silent corruptions on the target pid (asserted zero).
    pub silent: u32,
    /// VM crashes on any pid (asserted zero).
    pub crashed: u32,
    /// Graceful cold fallbacks observed on the target pid.
    pub cache_fallbacks: u64,
    /// One representative alert from a killed target.
    pub sample_alert: Option<Alert>,
    /// Kill counts by structured reason code, in first-seen order.
    pub kill_reasons: Vec<(ReasonCode, u32)>,
    /// Details of every silent, crashed, or leaked trial.
    pub anomalies: Vec<String>,
}

impl CrossRow {
    fn new(class: CrossFaultClass) -> CrossRow {
        CrossRow {
            class,
            trials: 0,
            landed: 0,
            target_killed: 0,
            target_benign: 0,
            peers_clean: 0,
            peer_leaks: 0,
            silent: 0,
            crashed: 0,
            cache_fallbacks: 0,
            sample_alert: None,
            kill_reasons: Vec::new(),
            anomalies: Vec::new(),
        }
    }
}

/// The cross-process campaign's findings.
#[derive(Clone, Debug)]
pub struct CrossReport {
    /// Master seed the campaign ran under.
    pub seed: u64,
    /// Trials per class.
    pub trials: u32,
    /// Concurrent processes per trial.
    pub procs: usize,
    /// One row per class.
    pub rows: Vec<CrossRow>,
}

impl CrossReport {
    /// Everything wrong with the outcome; empty means the fail-stop
    /// contract held *and* no fault leaked across a pid boundary.
    pub fn problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for row in &self.rows {
            let tag = row.class.name();
            for detail in &row.anomalies {
                problems.push(format!("{tag}: {detail}"));
            }
            if row.landed == 0 {
                problems.push(format!("{tag}: no trial actually landed a fault"));
            }
            match row.class {
                CrossFaultClass::CachePoisonAcrossPids => {
                    if row.target_killed > 0 {
                        problems.push(format!(
                            "{tag}: {} false-positive kill(s) — shared-cache \
                             corruption must degrade gracefully",
                            row.target_killed
                        ));
                    }
                }
                CrossFaultClass::CounterSkewOnePid => {
                    if row.target_killed == 0 {
                        problems.push(format!("{tag}: counter skew was never detected"));
                    }
                }
            }
        }
        problems
    }

    /// Renders the cross-process report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Cross-process campaign  seed={:#x}  trials/class={}  procs={}\n\n",
            self.seed, self.trials, self.procs
        );
        out.push_str(&format!(
            "{:<18} {:>6} {:>6} {:>7} {:>7} {:>11} {:>6} {:>8} {:>8}\n",
            "class",
            "trials",
            "landed",
            "killed",
            "benign",
            "peers-clean",
            "LEAKS",
            "SILENT",
            "crashed"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<18} {:>6} {:>6} {:>7} {:>7} {:>11} {:>6} {:>8} {:>8}\n",
                row.class.name(),
                row.trials,
                row.landed,
                row.target_killed,
                row.target_benign,
                row.peers_clean,
                row.peer_leaks,
                row.silent,
                row.crashed,
            ));
            if !row.kill_reasons.is_empty() {
                let reasons: Vec<String> = row
                    .kill_reasons
                    .iter()
                    .map(|(r, n)| format!("{} x{n}", r.code()))
                    .collect();
                out.push_str(&format!("           kills: {}\n", reasons.join(", ")));
            }
        }
        out
    }

    /// Converts the report to a JSON value for `--json` mode.
    pub fn to_value(&self) -> asc_core::json::Value {
        use asc_core::json::Value;
        let rows = self
            .rows
            .iter()
            .map(|row| {
                Value::Object(vec![
                    ("class".into(), Value::Str(row.class.name().into())),
                    ("trials".into(), Value::Num(f64::from(row.trials))),
                    ("landed".into(), Value::Num(f64::from(row.landed))),
                    (
                        "target_killed".into(),
                        Value::Num(f64::from(row.target_killed)),
                    ),
                    (
                        "target_benign".into(),
                        Value::Num(f64::from(row.target_benign)),
                    ),
                    ("peers_clean".into(), Value::Num(f64::from(row.peers_clean))),
                    ("peer_leaks".into(), Value::Num(f64::from(row.peer_leaks))),
                    ("silent".into(), Value::Num(f64::from(row.silent))),
                    ("crashed".into(), Value::Num(f64::from(row.crashed))),
                ])
            })
            .collect();
        Value::Object(vec![
            ("seed".into(), Value::Num(self.seed as f64)),
            (
                "trials_per_class".into(),
                Value::Num(f64::from(self.trials)),
            ),
            ("procs".into(), Value::Num(self.procs as f64)),
            ("rows".into(), Value::Array(rows)),
        ])
    }
}

/// Built artifacts shared by every trial.
struct Fleet {
    specs: Vec<&'static ProgramSpec>,
    binaries: Vec<Binary>,
}

fn build_fleet(cfg: &CrossConfig) -> Fleet {
    let specs: Vec<&'static ProgramSpec> = cfg
        .workloads
        .iter()
        .map(|name| program(name).unwrap_or_else(|| panic!("unknown workload {name}")))
        .collect();
    let key = campaign_key();
    let binaries = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let plain =
                build(spec, cfg.personality).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let installer = Installer::new(
                key.clone(),
                InstallerOptions::new(cfg.personality).with_program_id(0x0FB0 + i as u16),
            );
            installer
                .install(&plain, spec.name)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name))
                .0
        })
        .collect();
    Fleet { specs, binaries }
}

/// Spawns the fleet under a fresh shared-cache scheduler.
fn spawn_fleet(cfg: &CrossConfig, fleet: &Fleet, interleave_seed: u64) -> Scheduler {
    let mut sched = Scheduler::with_shared_cache(SchedConfig {
        policy: SchedPolicy::SeededRandom(interleave_seed),
        slice_instrs: 10_000,
        budget_cycles: RUN_BUDGET,
        batch_depth: None,
    });
    for m in 0..cfg.procs {
        let i = m % fleet.specs.len();
        let spec = fleet.specs[i];
        let mut fs = FileSystem::new();
        (spec.setup_fs)(&mut fs);
        let opts = KernelOptions::enforcing(cfg.personality).with_verify_cache();
        let mut kernel = Kernel::with_fs(opts, fs);
        kernel.set_key(campaign_key());
        kernel.set_stdin(spec.stdin.to_vec());
        kernel.set_brk(fleet.binaries[i].highest_addr());
        let machine = Machine::load(&fleet.binaries[i], kernel)
            .expect("workload binary fits in guest memory");
        sched.spawn(spec.name, machine);
    }
    sched
}

/// Snapshots one scheduled process into the single-process oracle's
/// record shape. [`ProcState::Faulted`] collapses to
/// [`RunOutcome::CycleLimit`] — any VM-level death classifies as
/// *crashed*, which is all the oracle needs from that variant.
fn record(sched: &Scheduler, pid: Pid) -> RunRecord {
    let proc = sched.process(pid);
    let kernel = proc.kernel();
    let stats = proc.stats();
    RunRecord {
        outcome: match proc.state() {
            ProcState::Exited(code) => RunOutcome::Exited(*code),
            ProcState::Killed(msg) => RunOutcome::Killed(msg.clone()),
            ProcState::Faulted(_) | ProcState::Runnable => RunOutcome::CycleLimit,
        },
        stdout: kernel.stdout().to_vec(),
        stderr: kernel.stderr().to_vec(),
        trace: kernel.trace().to_vec(),
        alerts: kernel.alerts().to_vec(),
        fs_digest: kernel.fs().digest(),
        syscalls: stats.syscalls,
        instret: proc.machine().instret(),
        cache_fallbacks: stats.cache_fallbacks,
        cache_scrubs: stats.cache_scrubs,
    }
}

/// Per-pid records of a completed clean run, plus its slice count
/// (used to place mid-schedule injections).
struct CleanRun {
    records: BTreeMap<Pid, RunRecord>,
    slices: u64,
}

fn clean_run(cfg: &CrossConfig, fleet: &Fleet) -> CleanRun {
    let mut sched = spawn_fleet(cfg, fleet, cfg.seed ^ 0xC1EA_4C1E);
    sched.run();
    let mut records = BTreeMap::new();
    for proc in sched.processes() {
        assert!(
            matches!(proc.state(), ProcState::Exited(_)),
            "clean run: pid {} ({}) did not exit: {:?} (alerts: {:?})",
            proc.pid(),
            proc.name(),
            proc.state(),
            proc.kernel().alerts(),
        );
        records.insert(proc.pid(), record(&sched, proc.pid()));
    }
    CleanRun {
        records,
        slices: sched.interleaving().len() as u64,
    }
}

/// Runs the cross-process campaign: for each class and trial, perturb
/// exactly one pid of a scheduled fleet and classify every pid against
/// the clean multi-process baseline.
///
/// # Panics
///
/// Panics if a workload is unregistered, fails to build or install, or
/// if the clean scheduled run does not exit everywhere — harness
/// preconditions, not campaign findings.
pub fn run_cross_campaign(cfg: &CrossConfig) -> CrossReport {
    assert!(cfg.procs >= 2, "cross-process faults need at least 2 procs");
    let fleet = build_fleet(cfg);
    let clean = clean_run(cfg, &fleet);

    let mut rows = Vec::new();
    for (ci, class) in CrossFaultClass::ALL.iter().copied().enumerate() {
        let mut row = CrossRow::new(class);
        for trial in 0..cfg.trials {
            let mut rng = Rng::new(cfg.seed ^ ((ci as u64 + 1) << 40) ^ (u64::from(trial) + 1));
            let interleave_seed = rng.next_u64();
            let target = rng.range_u32(1, cfg.procs as u32 + 1);
            let mut sched = spawn_fleet(cfg, &fleet, interleave_seed);
            let mut landed = false;

            match class {
                CrossFaultClass::CachePoisonAcrossPids => {
                    // Inject once, mid-schedule: after a seeded number of
                    // slices, flip one byte of one entry in the target
                    // pid's namespace of the shared cache. Stepping the
                    // scheduler manually keeps the injection point inside
                    // the interleaving, where a namespace bug would show.
                    let lo = clean.slices / 4;
                    let inject_at = rng.range_u64(lo, (clean.slices * 3 / 4).max(lo + 1));
                    let selector = rng.next_u64();
                    let mask = rng.range_u32(1, 256) as u8;
                    let mut slices = 0u64;
                    loop {
                        if slices == inject_at {
                            let shared = sched
                                .shared_cache()
                                .expect("cross-pid scheduler owns the shared cache")
                                .clone();
                            landed = shared
                                .borrow_mut()
                                .corrupt_pid_entry_for_fault(target, selector, mask)
                                .is_some();
                        }
                        if sched.step().is_none() {
                            break;
                        }
                        slices += 1;
                    }
                }
                CrossFaultClass::CounterSkewOnePid => {
                    // Arm the single-process campaign's EpochCounter fault,
                    // but on exactly one kernel of the fleet.
                    let clean_target = &clean.records[&target];
                    let at_trap = rng.range_u64(1, clean_target.syscalls + 1);
                    let magnitude = rng.range_u64(1, 9) as i64;
                    let delta = if rng.chance(1, 2) {
                        -magnitude
                    } else {
                        magnitude
                    };
                    sched.process_mut(target).kernel_mut().arm_fault(TrapFault {
                        at_trap,
                        action: FaultAction::SkewCounter { delta },
                    });
                    landed = true;
                    sched.run();
                }
            }

            row.trials += 1;
            if landed {
                row.landed += 1;
            }
            for pid in 1..=cfg.procs as Pid {
                let run = record(&sched, pid);
                let (outcome, detail) = classify(&clean.records[&pid], &run);
                if pid == target {
                    row.cache_fallbacks += run.cache_fallbacks;
                    match outcome {
                        Outcome::Killed => {
                            row.target_killed += 1;
                            if let Some(alert) = run.alerts.last() {
                                if alert.pid != target {
                                    row.anomalies.push(format!(
                                        "trial {trial}: kill alert attributed to pid {} \
                                         but the fault targeted pid {target}",
                                        alert.pid
                                    ));
                                }
                                let reason = alert.reason();
                                match row.kill_reasons.iter_mut().find(|(r, _)| *r == reason) {
                                    Some((_, n)) => *n += 1,
                                    None => row.kill_reasons.push((reason, 1)),
                                }
                                if row.sample_alert.is_none() {
                                    row.sample_alert = Some(alert.clone());
                                }
                            }
                        }
                        Outcome::Benign => row.target_benign += 1,
                        Outcome::Crashed => {
                            row.crashed += 1;
                            row.anomalies
                                .push(format!("trial {trial}: target pid {pid} crashed: {detail}"));
                        }
                        Outcome::SilentCorruption => {
                            row.silent += 1;
                            row.anomalies.push(format!(
                                "trial {trial}: SILENT corruption on target pid {pid}: {detail}"
                            ));
                        }
                    }
                } else {
                    // A peer must be bit-identical to the clean run; any
                    // other classification is a cross-pid leak.
                    match outcome {
                        Outcome::Benign => row.peers_clean += 1,
                        Outcome::Crashed => {
                            row.crashed += 1;
                            row.peer_leaks += 1;
                            row.anomalies.push(format!(
                                "trial {trial}: peer pid {pid} crashed \
                                 (fault targeted pid {target}): {detail}"
                            ));
                        }
                        other => {
                            row.peer_leaks += 1;
                            row.anomalies.push(format!(
                                "trial {trial}: fault on pid {target} leaked to \
                                 peer pid {pid}: {other:?} {detail}"
                            ));
                        }
                    }
                }
            }
        }
        rows.push(row);
    }
    CrossReport {
        seed: cfg.seed,
        trials: cfg.trials,
        procs: cfg.procs,
        rows,
    }
}
