//! The seeded fault-injection campaign and its classification oracle.
//!
//! Every trial perturbs exactly one trusted artifact of one workload
//! run — a byte flip in memory at a seeded instruction index, or a
//! kernel-side fault armed for a specific trap — and compares the
//! perturbed run against the clean record. The oracle demands one of
//! two outcomes: *killed-with-alert* (fail-stop before the corrupted
//! call dispatched, no prior divergence) or *benign* (bit-identical
//! observable behaviour). Anything else is **silent corruption**, the
//! failure the paper's design promises cannot happen.

use asc_audit::{replay_solo_in, run_solo, AuditFault, Bundle, SoloParams, SoloRun, SoloScenario};
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{
    Alert, FaultAction, FlowGraph, Personality, ReasonCode, TraceEntry, TrapFault, VerifyTier,
};
use asc_object::Binary;
use asc_testkit::Rng;
use asc_vm::RunOutcome;
use asc_workloads::{build, program, ProgramSpec};

use crate::campaign_key;
use crate::inventory::{scan, Inventory};

/// Seed of [`campaign_key`], recorded in forensic bundles so replay can
/// rebuild the identical installation.
pub(crate) const CAMPAIGN_KEY_SEED: u64 = 0xFA17_1A7E;

/// A verifier-trusted artifact class the campaign corrupts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Flip a byte of a 16-byte call-MAC slot in `.asc`.
    CallMac,
    /// Flip a byte of an authenticated string's contents.
    AuthString,
    /// Flip a byte of a predecessor-set blob's contents.
    PredecessorSet,
    /// Flip a byte of the `lastBlock ‖ lbMAC` policy-state cell.
    PolicyState,
    /// Flip a byte of a rewritten `movi` immediate field in `.text`.
    RewrittenText,
    /// XOR one register of the kernel's trapped-register copy.
    TrapRegister,
    /// Skew the in-kernel memory-checker counter before a trap.
    EpochCounter,
    /// Flip a byte inside a verified-call cache entry.
    CachePoison,
    /// Stamp the cached policy-state entry with a future epoch.
    CacheEpochSkew,
    /// Plant a raw `syscall` at a non-prologue text instruction: the
    /// trap then originates from a pc the installer never rewrote, so
    /// only the `.ascsites` origin check can refuse it.
    GadgetJump,
    /// Plant a raw `syscall` *inside* a rewritten prologue (one of its
    /// `movi` loads): the trap fires adjacent to — but not at — the
    /// registered site pc, probing that the registry is exact.
    StubSmuggle,
}

impl FaultClass {
    /// The pre-origin artifact classes, in reporting order. Kept stable
    /// because the golden-pinned tier-matrix and detection-latency
    /// tables enumerate exactly this list; the origin classes ride in
    /// [`FaultClass::ALL_EXTENDED`].
    pub const ALL: [FaultClass; 9] = [
        FaultClass::CallMac,
        FaultClass::AuthString,
        FaultClass::PredecessorSet,
        FaultClass::PolicyState,
        FaultClass::RewrittenText,
        FaultClass::TrapRegister,
        FaultClass::EpochCounter,
        FaultClass::CachePoison,
        FaultClass::CacheEpochSkew,
    ];

    /// Every class including the syscall-origin ones ([`GadgetJump`],
    /// [`StubSmuggle`]), in reporting order. The main campaign runs
    /// this list.
    ///
    /// [`GadgetJump`]: FaultClass::GadgetJump
    /// [`StubSmuggle`]: FaultClass::StubSmuggle
    pub const ALL_EXTENDED: [FaultClass; 11] = [
        FaultClass::CallMac,
        FaultClass::AuthString,
        FaultClass::PredecessorSet,
        FaultClass::PolicyState,
        FaultClass::RewrittenText,
        FaultClass::TrapRegister,
        FaultClass::EpochCounter,
        FaultClass::CachePoison,
        FaultClass::CacheEpochSkew,
        FaultClass::GadgetJump,
        FaultClass::StubSmuggle,
    ];

    /// Kebab-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::CallMac => "call-mac",
            FaultClass::AuthString => "auth-string",
            FaultClass::PredecessorSet => "pred-set",
            FaultClass::PolicyState => "policy-state",
            FaultClass::RewrittenText => "rewritten-text",
            FaultClass::TrapRegister => "trap-register",
            FaultClass::EpochCounter => "epoch-counter",
            FaultClass::CachePoison => "cache-poison",
            FaultClass::CacheEpochSkew => "cache-epoch-skew",
            FaultClass::GadgetJump => "gadget-jump",
            FaultClass::StubSmuggle => "stub-smuggle",
        }
    }

    /// Classes whose fault *is* a syscall trap from an unregistered pc.
    /// Every kill they provoke must carry `unrewritten-site` — the
    /// origin check fires before the MAC path under every tier — and
    /// must land before the smuggled call has any side effect.
    pub fn origin_violation(self) -> bool {
        matches!(self, FaultClass::GadgetJump | FaultClass::StubSmuggle)
    }

    /// Classes that corrupt only the kernel's *cache* copies. The
    /// hardened kernel must degrade gracefully to cold re-verification
    /// on these, so a kill (a false positive against authentic memory)
    /// is itself a campaign failure.
    pub fn cache_degradation(self) -> bool {
        matches!(self, FaultClass::CachePoison | FaultClass::CacheEpochSkew)
    }
}

/// Classification of one perturbed run against the clean record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Fail-stop: an alert was logged, nothing diverged before the
    /// kill, and the killed call never dispatched.
    Killed,
    /// Identical observable behaviour — the corrupted artifact was
    /// never consumed after the flip, or the kernel degraded
    /// gracefully around a poisoned cache entry.
    Benign,
    /// The run diverged observably without an alert: a verifier
    /// bypass. Always a campaign failure.
    SilentCorruption,
    /// VM-level crash (memory fault, bad instruction, cycle limit).
    /// Tracked separately and asserted zero: the fault planner only
    /// mutates data the guest itself never executes or loads.
    Crashed,
}

impl Outcome {
    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Killed => "killed-with-alert",
            Outcome::Benign => "benign",
            Outcome::SilentCorruption => "SILENT-CORRUPTION",
            Outcome::Crashed => "crashed",
        }
    }
}

/// Everything observable about one run, as the oracle compares it.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Captured standard output.
    pub stdout: Vec<u8>,
    /// Captured standard error.
    pub stderr: Vec<u8>,
    /// The dispatched-syscall trace.
    pub trace: Vec<TraceEntry>,
    /// Structured administrator alerts (call site, syscall, violation).
    pub alerts: Vec<Alert>,
    /// Digest of the final filesystem tree.
    pub fs_digest: u64,
    /// Syscalls trapped (dispatched or killed).
    pub syscalls: u64,
    /// Instructions retired.
    pub instret: u64,
    /// Cache entries that no longer matched and fell back cold.
    pub cache_fallbacks: u64,
    /// Cache state entries scrubbed for claiming a future epoch.
    pub cache_scrubs: u64,
}

/// Runs one (possibly perturbed) enforcing execution of an installed
/// workload and captures the oracle's observables.
///
/// `mem_fault` is `(at_instret, addr, mask)`: once `at_instret` guest
/// instructions have retired, the byte at `addr` is XORed with `mask`
/// (via the kernel's physical access path, so page protections do not
/// interfere) and the run resumes. `trap_fault` is armed on the kernel
/// before the run starts.
fn run_instrumented(
    spec: &ProgramSpec,
    auth: &Binary,
    personality: Personality,
    weakened: bool,
    mem_fault: Option<(u64, u32, u8)>,
    trap_fault: Option<TrapFault>,
) -> RunRecord {
    run_instrumented_tier(
        spec,
        auth,
        personality,
        weakened,
        VerifyTier::Mac,
        None,
        mem_fault,
        trap_fault,
    )
}

/// [`run_instrumented`] under an explicit verification tier; the flow
/// tiers require the binary's `.ascflow` digraph.
///
/// Delegates to the forensic runner [`asc_audit::run_solo`] — the same
/// code path bundle replay re-executes — so the campaign's observables
/// and a replayed bundle's observables cannot drift apart.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_instrumented_tier(
    spec: &ProgramSpec,
    auth: &Binary,
    personality: Personality,
    weakened: bool,
    tier: VerifyTier,
    flow: Option<&FlowGraph>,
    mem_fault: Option<(u64, u32, u8)>,
    trap_fault: Option<TrapFault>,
) -> RunRecord {
    let key = campaign_key();
    let params = SoloParams {
        spec,
        auth,
        personality,
        tier,
        weakened,
        key: &key,
        flow,
    };
    let fault = match (mem_fault, trap_fault) {
        (Some((at_instret, addr, mask)), _) => Some(AuditFault::Mem {
            at_instret,
            addr,
            mask,
        }),
        (None, Some(tf)) => Some(AuditFault::Trap(tf)),
        (None, None) => None,
    };
    record_of(&run_solo(&params, fault.as_ref()))
}

/// Projects a forensic [`SoloRun`] onto the oracle's observables.
pub(crate) fn record_of(run: &SoloRun) -> RunRecord {
    RunRecord {
        outcome: run.outcome.clone(),
        stdout: run.stdout.clone(),
        stderr: run.stderr.clone(),
        trace: run.trace.clone(),
        alerts: run.alerts.clone(),
        fs_digest: run.fs_digest,
        syscalls: run.stats.syscalls,
        instret: run.instret,
        cache_fallbacks: run.stats.cache_fallbacks,
        cache_scrubs: run.stats.cache_scrubs,
    }
}

/// Classifies a perturbed run against the clean record.
///
/// The fail-stop contract is checked structurally, not just by the
/// outcome variant: a kill must carry an alert, must not have diverged
/// before the kill (stdout and trace are prefixes of the clean run's),
/// and the killed call must never have dispatched — the trap counter
/// exceeding the dispatched-trace length by exactly one proves the
/// kill happened before any side effect of the offending call.
pub fn classify(clean: &RunRecord, run: &RunRecord) -> (Outcome, String) {
    match &run.outcome {
        RunOutcome::Killed(msg) => {
            let Some(alert) = run.alerts.last() else {
                return (Outcome::SilentCorruption, "killed without an alert".into());
            };
            // The kill must be attributable: the outcome's message and the
            // structured alert record must describe the same event.
            if *msg != alert.to_string() {
                return (
                    Outcome::SilentCorruption,
                    format!(
                        "kill message does not match the recorded alert: \
                         {msg:?} vs {alert}"
                    ),
                );
            }
            if run.syscalls != run.trace.len() as u64 + 1 {
                return (
                    Outcome::SilentCorruption,
                    format!(
                        "killed call dispatched: {} trapped vs {} dispatched",
                        run.syscalls,
                        run.trace.len()
                    ),
                );
            }
            if !clean.stdout.starts_with(&run.stdout) {
                return (
                    Outcome::SilentCorruption,
                    "stdout diverged before the kill".into(),
                );
            }
            if run.trace.len() > clean.trace.len()
                || run.trace[..] != clean.trace[..run.trace.len()]
            {
                return (
                    Outcome::SilentCorruption,
                    "syscall trace diverged before the kill".into(),
                );
            }
            (Outcome::Killed, alert.reason().code().to_string())
        }
        RunOutcome::Fault(_) | RunOutcome::BadInstruction { .. } | RunOutcome::CycleLimit => {
            (Outcome::Crashed, format!("{:?}", run.outcome))
        }
        outcome => {
            if *outcome != clean.outcome {
                return (
                    Outcome::SilentCorruption,
                    format!("exit changed: {:?} vs clean {:?}", outcome, clean.outcome),
                );
            }
            if run.stdout != clean.stdout {
                return (Outcome::SilentCorruption, "stdout diverged".into());
            }
            if run.stderr != clean.stderr {
                return (Outcome::SilentCorruption, "stderr diverged".into());
            }
            if run.trace != clean.trace {
                return (Outcome::SilentCorruption, "syscall trace diverged".into());
            }
            if run.fs_digest != clean.fs_digest {
                return (
                    Outcome::SilentCorruption,
                    "filesystem state diverged".into(),
                );
            }
            (Outcome::Benign, String::new())
        }
    }
}

/// One planned perturbation.
#[derive(Clone, Copy, Debug)]
pub(crate) enum PlannedFault {
    /// XOR `mask` into the byte at `addr` after `at_instret` retires.
    Mem {
        at_instret: u64,
        addr: u32,
        mask: u8,
    },
    /// Kernel-side fault armed for a specific trap.
    Trap(TrapFault),
}

impl PlannedFault {
    /// The forensic-runner form of this fault (same seeds, same effect).
    pub(crate) fn audit(self) -> AuditFault {
        match self {
            PlannedFault::Mem {
                at_instret,
                addr,
                mask,
            } => AuditFault::Mem {
                at_instret,
                addr,
                mask,
            },
            PlannedFault::Trap(tf) => AuditFault::Trap(tf),
        }
    }
}

fn nonzero_byte(rng: &mut Rng) -> u8 {
    rng.range_u32(1, 256) as u8
}

fn nonzero_u32(rng: &mut Rng) -> u32 {
    loop {
        let mask = rng.next_u32();
        if mask != 0 {
            return mask;
        }
    }
}

/// Draws one fault of `class` from the inventory; `None` when the
/// binary has no artifact of that kind.
pub(crate) fn plan_fault(
    class: FaultClass,
    inv: &Inventory,
    clean: &RunRecord,
    rng: &mut Rng,
) -> Option<PlannedFault> {
    // Half the trials corrupt the artifact before the first instruction
    // retires (so its first consumption sees the flip); the rest pick a
    // uniform mid-run injection point.
    let mem = |rng: &mut Rng, addr: u32, mask: u8| PlannedFault::Mem {
        at_instret: if rng.chance(1, 2) {
            0
        } else {
            rng.range_u64(0, clean.instret + 1)
        },
        addr,
        mask,
    };
    match class {
        FaultClass::CallMac => {
            if inv.mac_slots.is_empty() {
                return None;
            }
            let slot = *rng.pick(&inv.mac_slots);
            let addr = slot + rng.range_u32(0, 16);
            let mask = nonzero_byte(rng);
            Some(mem(rng, addr, mask))
        }
        FaultClass::AuthString => {
            if inv.string_blobs.is_empty() {
                return None;
            }
            let blob = *rng.pick(&inv.string_blobs);
            let addr = blob.contents_addr + rng.range_u32(0, blob.len);
            let mask = nonzero_byte(rng);
            Some(mem(rng, addr, mask))
        }
        FaultClass::PredecessorSet => {
            if inv.pred_blobs.is_empty() {
                return None;
            }
            let blob = *rng.pick(&inv.pred_blobs);
            let addr = blob.contents_addr + rng.range_u32(0, blob.len);
            let mask = nonzero_byte(rng);
            Some(mem(rng, addr, mask))
        }
        FaultClass::PolicyState => {
            let cell = inv.state_cell?;
            let addr = cell + rng.range_u32(0, asc_crypto::POLICY_STATE_LEN as u32);
            let mask = nonzero_byte(rng);
            Some(mem(rng, addr, mask))
        }
        FaultClass::RewrittenText => {
            if inv.imm_fields.is_empty() {
                return None;
            }
            let field = *rng.pick(&inv.imm_fields);
            let addr = field + rng.range_u32(0, 4);
            let mask = nonzero_byte(rng);
            Some(mem(rng, addr, mask))
        }
        FaultClass::TrapRegister => {
            const TARGETS: [u8; 13] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
            let index = *rng.pick(&TARGETS);
            let mask = nonzero_u32(rng);
            Some(PlannedFault::Trap(TrapFault {
                at_trap: rng.range_u64(1, clean.syscalls + 1),
                action: FaultAction::XorReg { index, mask },
            }))
        }
        FaultClass::EpochCounter => {
            let magnitude = rng.range_u64(1, 9) as i64;
            let delta = if rng.chance(1, 2) {
                -magnitude
            } else {
                magnitude
            };
            Some(PlannedFault::Trap(TrapFault {
                at_trap: rng.range_u64(1, clean.syscalls + 1),
                action: FaultAction::SkewCounter { delta },
            }))
        }
        FaultClass::CachePoison => {
            let selector = rng.next_u64();
            let mask = nonzero_byte(rng);
            Some(PlannedFault::Trap(TrapFault {
                at_trap: rng.range_u64(1, clean.syscalls + 1),
                action: FaultAction::CorruptCache { selector, mask },
            }))
        }
        FaultClass::CacheEpochSkew => Some(PlannedFault::Trap(TrapFault {
            at_trap: rng.range_u64(1, clean.syscalls + 1),
            action: FaultAction::SkewCacheEpoch {
                delta: rng.range_u64(1, 9),
            },
        })),
        FaultClass::GadgetJump => {
            if inv.gadget_targets.is_empty() {
                return None;
            }
            let (addr, opcode) = *rng.pick(&inv.gadget_targets);
            // XOR the opcode byte into a raw `syscall`; if execution
            // reaches it the trap comes from an unregistered pc.
            let mask = opcode ^ asc_isa::Opcode::Syscall as u8;
            Some(mem(rng, addr, mask))
        }
        FaultClass::StubSmuggle => {
            if inv.prologue_movis.is_empty() {
                return None;
            }
            let addr = *rng.pick(&inv.prologue_movis);
            let mask = asc_isa::Opcode::Movi as u8 ^ asc_isa::Opcode::Syscall as u8;
            Some(mem(rng, addr, mask))
        }
    }
}

/// Campaign parameters. Identical configs reproduce identical reports.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed.
    pub seed: u64,
    /// Trials per (workload, class) pair.
    pub trials: u32,
    /// Workload names (must be registered in `asc-workloads`).
    pub workloads: Vec<String>,
    /// OS personality for builds and kernels.
    pub personality: Personality,
}

impl CampaignConfig {
    /// Default campaign over the paper's policy workloads.
    pub fn new(seed: u64, trials: u32) -> CampaignConfig {
        CampaignConfig {
            seed,
            trials,
            workloads: vec!["bison".into(), "calc".into(), "tar".into()],
            personality: Personality::Linux,
        }
    }
}

/// Aggregated trials for one (workload, class) pair.
#[derive(Clone, Debug)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Fault class.
    pub class: FaultClass,
    /// Trials classified killed-with-alert.
    pub killed: u32,
    /// Trials classified benign.
    pub benign: u32,
    /// Trials that crashed the VM (asserted zero by `problems`).
    pub crashed: u32,
    /// Trials classified silent corruption (asserted zero).
    pub silent: u32,
    /// Killed trials whose forensic bundle failed deterministic replay
    /// (same pid, violation, and kill cycle) — asserted zero: a kill the
    /// bundle cannot reproduce is a forensics failure even though the
    /// fail-stop contract held.
    pub irreproducible: u32,
    /// One representative alert from a killed trial.
    pub sample_alert: Option<Alert>,
    /// Kill counts by structured reason code, in first-seen order.
    pub kill_reasons: Vec<(ReasonCode, u32)>,
    /// Details of every silent or crashed trial.
    pub anomalies: Vec<String>,
    /// Graceful cold fallbacks observed across the row's trials.
    pub cache_fallbacks: u64,
    /// Future-epoch scrubs observed across the row's trials.
    pub cache_scrubs: u64,
    /// Set when the class was inapplicable to this binary.
    pub note: Option<String>,
}

impl Row {
    fn new(workload: String, class: FaultClass) -> Row {
        Row {
            workload,
            class,
            killed: 0,
            benign: 0,
            crashed: 0,
            silent: 0,
            irreproducible: 0,
            sample_alert: None,
            kill_reasons: Vec::new(),
            anomalies: Vec::new(),
            cache_fallbacks: 0,
            cache_scrubs: 0,
            note: None,
        }
    }

    fn trials(&self) -> u32 {
        self.killed + self.benign + self.crashed + self.silent
    }
}

/// The full campaign result.
#[derive(Clone, Debug)]
pub struct Report {
    /// Master seed the campaign ran under.
    pub seed: u64,
    /// Trials per row.
    pub trials: u32,
    /// One row per (workload, class) pair.
    pub rows: Vec<Row>,
}

impl Report {
    /// Total silent corruptions across all rows.
    pub fn total_silent(&self) -> u32 {
        self.rows.iter().map(|r| r.silent).sum()
    }

    /// Total kills across all rows.
    pub fn total_killed(&self) -> u32 {
        self.rows.iter().map(|r| r.killed).sum()
    }

    /// Total crashes across all rows.
    pub fn total_crashed(&self) -> u32 {
        self.rows.iter().map(|r| r.crashed).sum()
    }

    /// Total replay-divergent kill bundles across all rows.
    pub fn total_irreproducible(&self) -> u32 {
        self.rows.iter().map(|r| r.irreproducible).sum()
    }

    /// Everything wrong with the campaign outcome; empty means the
    /// fail-stop contract held everywhere. Checks: zero silent
    /// corruption, zero VM crashes, zero replay-divergent kill bundles
    /// (`IRREPRODUCIBLE`), no false-positive kills on cache-degradation
    /// classes, and at least one kill overall (the oracle was actually
    /// exercised).
    pub fn problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for row in &self.rows {
            let tag = format!("{}/{}", row.workload, row.class.name());
            for detail in &row.anomalies {
                problems.push(format!("{tag}: {detail}"));
            }
            if row.class.cache_degradation() && row.killed > 0 {
                problems.push(format!(
                    "{tag}: {} false-positive kill(s) — cache corruption must \
                     degrade gracefully, not reject authentic calls",
                    row.killed
                ));
            }
            if row.class.origin_violation() {
                for (reason, n) in &row.kill_reasons {
                    if *reason != ReasonCode::UnrewrittenSite {
                        problems.push(format!(
                            "{tag}: {n} kill(s) with {} — a trap from an \
                             unregistered pc must die on the origin check, \
                             before any other verification",
                            reason.code()
                        ));
                    }
                }
            }
        }
        if self.total_killed() == 0 {
            problems.push("campaign never observed a fail-stop kill".into());
        }
        problems
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fault-injection campaign  seed={:#x}  trials/row={}\n\n",
            self.seed, self.trials
        );
        out.push_str(&format!(
            "{:<10} {:<17} {:>7} {:>7} {:>8} {:>8} {:>8} {:>9}\n",
            "workload", "class", "killed", "benign", "crashed", "SILENT", "IRREPRO", "degraded"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<10} {:<17} {:>7} {:>7} {:>8} {:>8} {:>8} {:>9}\n",
                row.workload,
                row.class.name(),
                row.killed,
                row.benign,
                row.crashed,
                row.silent,
                row.irreproducible,
                row.cache_fallbacks + row.cache_scrubs,
            ));
            if !row.kill_reasons.is_empty() {
                let reasons: Vec<String> = row
                    .kill_reasons
                    .iter()
                    .map(|(r, n)| format!("{} x{n}", r.code()))
                    .collect();
                out.push_str(&format!("           kills: {}\n", reasons.join(", ")));
            }
            if let Some(note) = &row.note {
                out.push_str(&format!("           ({note})\n"));
            }
        }
        out
    }

    /// Converts the report to a JSON value for `--json` mode.
    pub fn to_value(&self) -> asc_core::json::Value {
        use asc_core::json::Value;
        let rows = self
            .rows
            .iter()
            .map(|row| {
                Value::Object(vec![
                    ("workload".into(), Value::Str(row.workload.clone())),
                    ("class".into(), Value::Str(row.class.name().into())),
                    ("trials".into(), Value::Num(f64::from(row.trials()))),
                    ("killed".into(), Value::Num(f64::from(row.killed))),
                    ("benign".into(), Value::Num(f64::from(row.benign))),
                    ("crashed".into(), Value::Num(f64::from(row.crashed))),
                    ("silent".into(), Value::Num(f64::from(row.silent))),
                    (
                        "irreproducible".into(),
                        Value::Num(f64::from(row.irreproducible)),
                    ),
                    (
                        "degraded".into(),
                        Value::Num((row.cache_fallbacks + row.cache_scrubs) as f64),
                    ),
                    (
                        "kill_reasons".into(),
                        Value::Object(
                            row.kill_reasons
                                .iter()
                                .map(|(r, n)| (r.code().to_string(), Value::Num(f64::from(*n))))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("seed".into(), Value::Num(self.seed as f64)),
            ("trials_per_row".into(), Value::Num(f64::from(self.trials))),
            ("rows".into(), Value::Array(rows)),
            (
                "total_silent".into(),
                Value::Num(f64::from(self.total_silent())),
            ),
            (
                "total_irreproducible".into(),
                Value::Num(f64::from(self.total_irreproducible())),
            ),
        ])
    }
}

/// Builds, installs, and fault-injects every configured workload.
///
/// # Panics
///
/// Panics if a workload is unregistered, fails to build or install,
/// or if its *clean* enforcing run does not succeed — those are
/// harness preconditions, not campaign findings.
pub fn run_campaign(cfg: &CampaignConfig) -> Report {
    let key = campaign_key();
    let mut rows = Vec::new();
    for (wi, name) in cfg.workloads.iter().enumerate() {
        let spec = program(name).unwrap_or_else(|| panic!("unknown workload {name}"));
        let plain = build(spec, cfg.personality).unwrap_or_else(|e| panic!("{name}: {e}"));
        let installer = Installer::new(
            key.clone(),
            InstallerOptions::new(cfg.personality).with_program_id(0x0FA0 + wi as u16),
        );
        let (auth, _) = installer
            .install(&plain, spec.name)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let inv = scan(&auth);
        assert!(inv.sites > 0, "{name}: no authenticated sites found");
        let params = SoloParams {
            spec,
            auth: &auth,
            personality: cfg.personality,
            tier: VerifyTier::Mac,
            weakened: false,
            key: &key,
            flow: None,
        };
        let clean = record_of(&run_solo(&params, None));
        assert!(
            clean.outcome.is_success(),
            "{name}: clean enforcing run failed: {:?} (alerts: {:?})",
            clean.outcome,
            clean.alerts
        );
        for (ci, class) in FaultClass::ALL_EXTENDED.iter().copied().enumerate() {
            let mut row = Row::new(name.clone(), class);
            for trial in 0..cfg.trials {
                let mut rng = Rng::new(
                    cfg.seed
                        ^ ((wi as u64 + 1) << 48)
                        ^ ((ci as u64 + 1) << 40)
                        ^ (u64::from(trial) + 1),
                );
                let Some(fault) = plan_fault(class, &inv, &clean, &mut rng) else {
                    row.note = Some("no artifacts of this class in the binary".into());
                    break;
                };
                let audit_fault = fault.audit();
                let solo = run_solo(&params, Some(&audit_fault));
                let run = record_of(&solo);
                row.cache_fallbacks += run.cache_fallbacks;
                row.cache_scrubs += run.cache_scrubs;
                let (outcome, detail) = classify(&clean, &run);
                match outcome {
                    Outcome::Killed => {
                        row.killed += 1;
                        if let Some(alert) = run.alerts.last() {
                            let reason = alert.reason();
                            match row.kill_reasons.iter_mut().find(|(r, _)| *r == reason) {
                                Some((_, n)) => *n += 1,
                                None => row.kill_reasons.push((reason, 1)),
                            }
                            if row.sample_alert.is_none() {
                                row.sample_alert = Some(alert.clone());
                            }
                        }
                        // Every kill must yield a forensic bundle whose
                        // in-process replay reproduces the identical
                        // kill. A divergence is a determinism bug, not a
                        // verifier bug — reported as its own row class.
                        let scenario = SoloScenario {
                            workload: name.clone(),
                            personality: cfg.personality,
                            tier: VerifyTier::Mac,
                            weakened: false,
                            program_id: 0x0FA0 + wi as u16,
                            key_seed: CAMPAIGN_KEY_SEED,
                            fault: Some(audit_fault),
                        };
                        match Bundle::from_solo(scenario, &solo) {
                            Some(bundle) => {
                                let verdict = replay_solo_in(&bundle, &params);
                                if !verdict.matched {
                                    row.irreproducible += 1;
                                    row.anomalies.push(format!(
                                        "trial {trial}: IRREPRODUCIBLE: {}",
                                        verdict.detail
                                    ));
                                }
                            }
                            None => {
                                row.irreproducible += 1;
                                row.anomalies.push(format!(
                                    "trial {trial}: IRREPRODUCIBLE: kill produced no bundle"
                                ));
                            }
                        }
                    }
                    Outcome::Benign => row.benign += 1,
                    Outcome::Crashed => {
                        row.crashed += 1;
                        row.anomalies
                            .push(format!("trial {trial}: crashed: {detail}"));
                    }
                    Outcome::SilentCorruption => {
                        row.silent += 1;
                        row.anomalies
                            .push(format!("trial {trial}: SILENT-CORRUPTION: {detail}"));
                    }
                }
            }
            rows.push(row);
        }
    }
    Report {
        seed: cfg.seed,
        trials: cfg.trials,
        rows,
    }
}

/// Result of the deliberately-weakened-verifier demonstration.
#[derive(Clone, Debug)]
pub struct DemoResult {
    /// Workload the demo ran against.
    pub workload: String,
    /// Fault combinations scanned.
    pub scanned: u32,
    /// First silent trial found: `(contents addr, offset, detail)`.
    pub silent: Option<(u32, u32, String)>,
    /// The same fault's verdict against the *hardened* verifier.
    pub hardened_outcome: Option<Outcome>,
}

/// Proves the oracle detects verifier bypasses: with string-contents
/// verification disabled (a test-only kernel hook), a corrupted
/// authenticated string passes the call-MAC check (which covers only
/// the `addr ‖ len ‖ mac` header tuple) and dispatches, so the run
/// diverges without an alert — a SILENT-CORRUPTION row. The same
/// fault against the hardened verifier is re-run for contrast.
///
/// Scans string blobs and byte offsets deterministically (corrupting
/// before the first instruction retires) until a silent trial appears
/// or `max_trials` combinations are exhausted.
///
/// # Panics
///
/// Panics on harness precondition failures (unknown workload, build
/// or install errors, failing clean run).
pub fn run_weakened_demo(workload: &str, personality: Personality, max_trials: u32) -> DemoResult {
    let key = campaign_key();
    let spec = program(workload).unwrap_or_else(|| panic!("unknown workload {workload}"));
    let plain = build(spec, personality).unwrap_or_else(|e| panic!("{workload}: {e}"));
    let installer = Installer::new(
        key,
        InstallerOptions::new(personality).with_program_id(0x0FDE),
    );
    let (auth, _) = installer
        .install(&plain, spec.name)
        .unwrap_or_else(|e| panic!("{workload}: {e}"));
    let inv = scan(&auth);
    let clean = run_instrumented(spec, &auth, personality, true, None, None);
    assert!(
        clean.outcome.is_success(),
        "{workload}: weakened clean run failed: {:?}",
        clean.outcome
    );
    let mut scanned = 0;
    for blob in &inv.string_blobs {
        for offset in 0..blob.len {
            if scanned >= max_trials {
                break;
            }
            scanned += 1;
            let fault = Some((0, blob.contents_addr + offset, 0x01));
            let run = run_instrumented(spec, &auth, personality, true, fault, None);
            let (outcome, detail) = classify(&clean, &run);
            if outcome == Outcome::SilentCorruption {
                let hardened = run_instrumented(spec, &auth, personality, false, fault, None);
                let (hardened_outcome, _) = classify(&clean, &hardened);
                return DemoResult {
                    workload: workload.into(),
                    scanned,
                    silent: Some((blob.contents_addr, offset, detail)),
                    hardened_outcome: Some(hardened_outcome),
                };
            }
        }
    }
    DemoResult {
        workload: workload.into(),
        scanned,
        silent: None,
        hardened_outcome: None,
    }
}
