//! Enumerates the verifier-trusted artifacts of an installed binary.
//!
//! The installer rewrites every system-call site into a prologue of
//! `movi` loads (string-argument pointers, then `R7` = policy
//! descriptor, `R8` = block id, `R9` = predecessor-set pointer, `R10` =
//! policy-state pointer, `R11` = call-MAC slot) followed by the
//! `syscall` trap. Scanning `.text` for those prologues recovers, from
//! the binary alone, the exact set of memory locations the kernel's
//! verifier will read — which is precisely the fault-injection surface.

use std::collections::{BTreeMap, BTreeSet};

use asc_crypto::AS_HEADER_LEN;
use asc_isa::{Instruction, Opcode, INSTR_LEN};
use asc_object::{sections, Binary};

/// An authenticated blob (string or predecessor set) in `.asc`.
///
/// The pointer aims at the contents; the `len ‖ mac` header occupies
/// the 20 bytes below `contents_addr`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blob {
    /// Address of the blob contents.
    pub contents_addr: u32,
    /// Contents length in bytes (including any trailing NUL).
    pub len: u32,
}

/// Every verifier-trusted artifact found in an installed binary.
#[derive(Clone, Debug, Default)]
pub struct Inventory {
    /// First address of the `.asc` section.
    pub asc_start: u32,
    /// One past the last initialised `.asc` byte.
    pub asc_end: u32,
    /// Address of the 20-byte `lastBlock ‖ lbMAC` policy-state cell.
    pub state_cell: Option<u32>,
    /// Addresses of the 16-byte call-MAC slots (one per site).
    pub mac_slots: Vec<u32>,
    /// Authenticated string-argument blobs (deduplicated).
    pub string_blobs: Vec<Blob>,
    /// Predecessor-set blobs with at least one entry.
    pub pred_blobs: Vec<Blob>,
    /// Addresses of the 4-byte immediate fields of rewritten `movi`
    /// instructions whose loaded value the verifier trusts.
    pub imm_fields: Vec<u32>,
    /// `(address, opcode byte)` of every decodable non-`syscall`
    /// instruction *outside* rewritten prologues — where a gadget-jump
    /// fault can plant a raw `syscall` the installer never registered.
    pub gadget_targets: Vec<(u32, u8)>,
    /// Addresses of the `movi` instructions *inside* rewritten
    /// prologues — where a stub-smuggle fault traps one instruction
    /// early, adjacent to (but distinct from) the registered site pc.
    pub prologue_movis: Vec<u32>,
    /// Number of authenticated call sites found.
    pub sites: usize,
}

impl Inventory {
    /// Total count of distinct artifacts (for reporting).
    pub fn total_targets(&self) -> usize {
        self.mac_slots.len()
            + self.string_blobs.len()
            + self.pred_blobs.len()
            + self.imm_fields.len()
            + usize::from(self.state_cell.is_some())
    }
}

/// Scans an installed binary's `.text` for authenticated call
/// prologues and returns the artifact inventory.
///
/// A site counts as authenticated when its contiguous pre-`syscall`
/// `movi` run loads both `R7` (descriptor) and `R11` (MAC slot inside
/// `.asc`); unrewritten sites are skipped. Blob lengths are read back
/// from the authenticated-string headers in the `.asc` section data.
pub fn scan(binary: &Binary) -> Inventory {
    let (Some(text), Some(asc)) = (
        binary.section_by_name(sections::TEXT),
        binary.section_by_name(sections::ASC),
    ) else {
        return Inventory::default();
    };
    let asc_start = asc.addr;
    let asc_end = asc.addr + asc.data.len() as u32;
    let in_asc = |addr: u32| addr >= asc_start && addr < asc_end;
    // Reads a blob's length out of the `len ‖ mac` header below the
    // contents pointer; rejects pointers whose header or contents fall
    // outside the initialised section data.
    let blob_len = |contents: u32| -> Option<u32> {
        let header = contents.checked_sub(AS_HEADER_LEN as u32)?;
        if !in_asc(contents) || header < asc_start {
            return None;
        }
        let off = (header - asc_start) as usize;
        let len = u32::from_le_bytes(asc.data[off..off + 4].try_into().ok()?);
        (len > 0 && contents.checked_add(len)? <= asc_end).then_some(len)
    };

    let mut inv = Inventory {
        asc_start,
        asc_end,
        ..Inventory::default()
    };
    let mut mac_slots = BTreeSet::new();
    let mut strings = BTreeMap::new();
    let mut preds = BTreeMap::new();
    let mut imms = BTreeSet::new();
    let mut prologue_offsets: BTreeSet<usize> = BTreeSet::new();

    let data = &text.data;
    let mut i = 0;
    while i + INSTR_LEN <= data.len() {
        let is_syscall = Instruction::decode(&data[i..i + INSTR_LEN])
            .map(|instr| instr.op == Opcode::Syscall)
            .unwrap_or(false);
        if is_syscall {
            // Walk back over the contiguous movi run. Scanning backwards,
            // the first movi seen per destination register is the latest
            // one executed, which is the value live at the trap.
            let mut loads: BTreeMap<usize, (u32, u32)> = BTreeMap::new();
            let mut run_offsets = Vec::new();
            let mut j = i;
            while j >= INSTR_LEN {
                j -= INSTR_LEN;
                match Instruction::decode(&data[j..j + INSTR_LEN]) {
                    Ok(instr) if instr.op == Opcode::Movi => {
                        let imm_field = text.addr + j as u32 + 4;
                        run_offsets.push(j);
                        loads
                            .entry(instr.rd.index())
                            .or_insert((instr.imm, imm_field));
                    }
                    _ => break,
                }
            }
            if let (Some(&(mac_addr, r11_field)), Some(&(_, r7_field))) =
                (loads.get(&11), loads.get(&7))
            {
                if in_asc(mac_addr) {
                    inv.sites += 1;
                    prologue_offsets.extend(run_offsets.iter().copied());
                    mac_slots.insert(mac_addr);
                    imms.insert(r7_field);
                    imms.insert(r11_field);
                    if let Some(&(_, field)) = loads.get(&8) {
                        imms.insert(field);
                    }
                    if let Some(&(pred_ptr, field)) = loads.get(&9) {
                        if pred_ptr != 0 {
                            imms.insert(field);
                            if let Some(len) = blob_len(pred_ptr) {
                                preds.insert(pred_ptr, len);
                            }
                        }
                    }
                    if let Some(&(lb_ptr, field)) = loads.get(&10) {
                        if lb_ptr != 0 {
                            inv.state_cell = Some(lb_ptr);
                            imms.insert(field);
                        }
                    }
                    for arg in 1..=6 {
                        if let Some(&(ptr, field)) = loads.get(&arg) {
                            if let Some(len) = blob_len(ptr) {
                                strings.insert(ptr, len);
                                imms.insert(field);
                            }
                        }
                    }
                }
            }
        }
        i += INSTR_LEN;
    }

    // Second sweep: every other decodable instruction is somewhere a
    // single opcode-byte flip can plant an unregistered `syscall`.
    let mut i = 0;
    while i + INSTR_LEN <= data.len() {
        if let Ok(instr) = Instruction::decode(&data[i..i + INSTR_LEN]) {
            if instr.op != Opcode::Syscall {
                let addr = text.addr + i as u32;
                if prologue_offsets.contains(&i) {
                    inv.prologue_movis.push(addr);
                } else {
                    inv.gadget_targets.push((addr, data[i]));
                }
            }
        }
        i += INSTR_LEN;
    }

    inv.mac_slots = mac_slots.into_iter().collect();
    inv.string_blobs = strings
        .into_iter()
        .map(|(contents_addr, len)| Blob { contents_addr, len })
        .collect();
    inv.pred_blobs = preds
        .into_iter()
        .map(|(contents_addr, len)| Blob { contents_addr, len })
        .collect();
    inv.imm_fields = imms.into_iter().collect();
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_installer::{Installer, InstallerOptions};
    use asc_kernel::Personality;

    #[test]
    fn scan_finds_every_artifact_kind() {
        let spec = asc_workloads::program("bison").expect("registered");
        let plain = asc_workloads::build(spec, Personality::Linux).expect("builds");
        let installer = Installer::new(
            crate::campaign_key(),
            InstallerOptions::new(Personality::Linux).with_program_id(0x0FA0),
        );
        let (auth, report) = installer.install(&plain, spec.name).expect("installs");

        let inv = scan(&auth);
        assert_eq!(
            inv.sites,
            report.policy.policies.len(),
            "one prologue per authenticated site"
        );
        assert_eq!(inv.mac_slots.len(), inv.sites, "one MAC slot per site");
        assert!(inv.state_cell.is_some(), "control flow is on by default");
        assert!(!inv.pred_blobs.is_empty(), "non-entry sites have preds");
        assert!(
            !inv.string_blobs.is_empty(),
            "bison opens fixture files by literal path"
        );
        assert!(inv.imm_fields.len() >= 2 * inv.sites);
        assert!(
            !inv.prologue_movis.is_empty(),
            "rewritten prologues yield stub-smuggle targets"
        );
        assert!(
            !inv.gadget_targets.is_empty(),
            "non-prologue text yields gadget-jump targets"
        );
        let prologue: std::collections::BTreeSet<u32> =
            inv.prologue_movis.iter().copied().collect();
        for (addr, opcode) in &inv.gadget_targets {
            assert!(
                !prologue.contains(addr),
                "gadget targets must exclude prologues"
            );
            assert_ne!(
                *opcode,
                asc_isa::Opcode::Syscall as u8,
                "gadget targets are non-syscall instructions"
            );
        }
        for blob in inv.string_blobs.iter().chain(&inv.pred_blobs) {
            assert!(blob.contents_addr >= inv.asc_start + AS_HEADER_LEN as u32);
            assert!(blob.contents_addr + blob.len <= inv.asc_end);
        }

        let unauth = scan(&plain);
        assert_eq!(unauth.sites, 0, "plain binary has no .asc prologues");
    }
}
