//! Deterministic, seeded fault injection against the ASC verifier.
//!
//! The trust argument of authenticated system calls is that every
//! artifact the kernel's verifier consumes — rewritten instruction
//! bytes, call-MAC slots, authenticated-string blobs, predecessor
//! sets, the `lastBlock ‖ lbMAC` policy-state cell, trapped register
//! values, the in-kernel counter, and (with the warm path enabled)
//! verified-call cache entries — is either authentic or provokes a
//! fail-stop kill *before* the corrupted call dispatches. This crate
//! turns that argument into an executable experiment:
//!
//! * [`inventory`] enumerates the trusted artifacts of an installed
//!   binary by disassembling its rewritten call prologues;
//! * [`campaign`] flips bytes in those artifacts at seeded-random
//!   points of a run and classifies every perturbed execution as
//!   *killed-with-alert*, *benign*, or **silent corruption** (always
//!   a failure), with VM-level crashes tracked separately.
//!
//! * [`crosspid`] scales the experiment to a scheduled multi-process
//!   fleet: perturb exactly one pid (shared-cache poisoning, counter
//!   skew) and demand that no effect crosses a pid boundary.
//!
//! * [`tiers`] replays the campaign under every [`asc_kernel::VerifyTier`]
//!   (plus the `asc-attacks` syscall-reorder attack) into a tier ×
//!   fault-class coverage matrix: the cheap flow tier catches
//!   transition-order attacks but misses in-edge forgeries, and the
//!   combined tier dominates both.
//!
//! * [`latency`] measures how long a monitored fleet takes to *notice*
//!   each fault class: one seeded fault per class against an
//!   `asc-sentinel`-observed fleet, recording armed / effect /
//!   detected clocks and bounding the monitoring lag.
//!
//! The same machinery, pointed at a deliberately weakened verifier
//! ([`campaign::run_weakened_demo`]), demonstrates that the oracle
//! actually detects bypasses: with string verification disabled, a
//! corrupted authenticated string dispatches and the run diverges
//! silently.

pub mod campaign;
pub mod crosspid;
pub mod inventory;
pub mod latency;
pub mod tiers;

pub use campaign::{
    classify, run_campaign, run_weakened_demo, CampaignConfig, DemoResult, FaultClass, Outcome,
    Report, Row, RunRecord,
};
pub use crosspid::{run_cross_campaign, CrossConfig, CrossFaultClass, CrossReport, CrossRow};
pub use inventory::{scan, Blob, Inventory};
pub use latency::{run_latency_campaign, LatencyConfig, LatencyReport, LatencyRow};
pub use tiers::{run_tier_matrix, TierMatrixConfig, TierReport, TierRow, FLOW_REORDER};

use asc_crypto::MacKey;

/// The fixed campaign key (the simulated security administrator's
/// secret; independent of the benchmark key so campaigns cannot be
/// confused with table regeneration).
pub fn campaign_key() -> MacKey {
    MacKey::from_seed(campaign::CAMPAIGN_KEY_SEED)
}
