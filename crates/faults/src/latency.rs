//! Detection-latency campaign: the classic intrusion-detection metric
//! the paper never measures — virtual-clock cycles from fault injection
//! to the first operator-visible health signal.
//!
//! For every [`FaultClass`] the campaign builds a small monitored fleet
//! (victim plus background processes on a shared verify cache), draws a
//! seeded fault from the victim's artifact [`Inventory`] exactly like
//! the main campaign, injects it mid-run at a recorded *arming clock*,
//! and keeps an [`asc_sentinel::Sentinel`] observing on slice
//! boundaries. Three clocks bracket each detection:
//!
//! * **armed** — the fault enters the system (byte flipped, armed trap
//!   reached);
//! * **effect** — the first kernel-visible consequence (an alert
//!   raised, a cache fallback or scrub counted). For memory flips the
//!   armed→effect gap is the *workload's* consumption delay — honest
//!   to record, impossible to bound (a string corrupted at startup may
//!   not be read until output time);
//! * **detected** — the firing cycle of the first
//!   [`asc_sentinel::HealthEvent`] at or after the effect.
//!
//! The report records the full cycles-to-detection (armed→detected)
//! per class and enforces the hard bound on the **monitoring lag**
//! (effect→detected) — the part the sentinel's window geometry
//! actually promises. Trials whose draw is benign (the flipped byte is
//! never consumed, the poisoned entry never probed) are redrawn with
//! fresh seeds; an effect that produces *no* event is a monitoring
//! hole and fails immediately. [`LatencyReport::problems`] turns every
//! gap into a CI failure.
//!
//! The monitored fleet is observed, never steered: the sentinel reads
//! the scheduler through shared references only, so the latencies are
//! measurements of the *monitoring* layer, not artifacts of it.

use asc_core::json::Value;
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{FileSystem, Kernel, KernelOptions, Personality, VerifyTier};
use asc_object::Binary;
use asc_sched::{Pid, SchedConfig, SchedPolicy, Scheduler};
use asc_sentinel::{Detector, Sentinel, SentinelConfig};
use asc_testkit::Rng;
use asc_vm::Machine;
use asc_workloads::{build, program, ProgramSpec, RUN_BUDGET};

use crate::campaign::{plan_fault, record_of, PlannedFault, RunRecord};
use crate::campaign_key;
use crate::inventory::{scan, Inventory};
use crate::FaultClass;

use asc_audit::{run_solo, SoloParams};

/// Workloads the monitored fleet cycles through (the victim is drawn
/// from this list too — the first workload whose inventory has
/// artifacts of the class under test).
const FLEET_WORKLOADS: [&str; 3] = ["bison", "calc", "tar"];

/// Latency-campaign parameters. Identical configs reproduce identical
/// reports.
#[derive(Clone, Debug)]
pub struct LatencyConfig {
    /// Master seed.
    pub seed: u64,
    /// Sentinel window length on the shared virtual clock.
    pub window_cycles: u64,
    /// Hard monitoring-lag bound, in windows: a detection later than
    /// `bound_windows × window_cycles` after the fault's first
    /// kernel-visible effect is a campaign failure.
    pub bound_windows: u64,
    /// Seeded draws per class before giving up (every undetectable
    /// class is a campaign failure).
    pub max_trials: u32,
    /// Guest personality.
    pub personality: Personality,
    /// Fault classes to measure. Defaults to the pre-origin
    /// [`FaultClass::ALL`] list the golden-pinned health table
    /// enumerates; [`LatencyConfig::with_classes`] narrows or extends
    /// it (e.g. to the origin classes).
    pub classes: Vec<FaultClass>,
}

impl LatencyConfig {
    /// Defaults used by the health bench: 50k-cycle windows, a
    /// 2-window hard lag bound, 16 draws per class.
    pub fn new(seed: u64) -> LatencyConfig {
        LatencyConfig {
            seed,
            window_cycles: 50_000,
            bound_windows: 2,
            max_trials: 16,
            personality: Personality::Linux,
            classes: FaultClass::ALL.to_vec(),
        }
    }

    /// Replaces the measured class list.
    pub fn with_classes(mut self, classes: &[FaultClass]) -> LatencyConfig {
        self.classes = classes.to_vec();
        self
    }

    /// The hard bound in cycles.
    pub fn bound_cycles(&self) -> u64 {
        self.bound_windows * self.window_cycles
    }
}

/// One fault class's measured detection.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// The corrupted artifact class.
    pub class: FaultClass,
    /// Workload the fault was drawn against (the victim).
    pub victim: String,
    /// Seeded draws consumed, including benign ones.
    pub trials: u32,
    /// Virtual clock when the fault entered the system (the byte
    /// flipped, the armed trap reached).
    pub armed_clock: u64,
    /// Virtual clock of the first kernel-visible effect (alert raised,
    /// degradation counter bumped).
    pub effect_clock: u64,
    /// Name of the detector that fired first.
    pub detector: String,
    /// Firing cycle of that first health event.
    pub detected_clock: u64,
    /// Full cycles-to-detection, `detected_clock − armed_clock`
    /// (includes the workload's artifact-consumption delay).
    pub latency: u64,
    /// Monitoring lag, `detected_clock − effect_clock` — what the hard
    /// bound is enforced against.
    pub lag: u64,
    /// Whether the lag met the hard bound.
    pub within_bound: bool,
}

/// The coverage matrix: one row per fault class, plus the geometry the
/// latencies were measured under.
#[derive(Clone, Debug)]
pub struct LatencyReport {
    /// Master seed the campaign ran under.
    pub seed: u64,
    /// Sentinel window length.
    pub window_cycles: u64,
    /// Hard monitoring-lag bound in cycles.
    pub bound_cycles: u64,
    /// Detected classes, in the config's class order.
    pub rows: Vec<LatencyRow>,
    /// Classes never detected within the trial budget (or whose effect
    /// produced no event — a monitoring hole).
    pub undetected: Vec<(FaultClass, String)>,
}

impl LatencyReport {
    /// Everything that fails the campaign: an undetected non-benign
    /// class, or a detection beyond the hard bound.
    pub fn problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (class, detail) in &self.undetected {
            problems.push(format!("{}: never detected ({detail})", class.name()));
        }
        for row in &self.rows {
            if !row.within_bound {
                problems.push(format!(
                    "{}: monitoring lag {} exceeds bound {}",
                    row.class.name(),
                    row.lag,
                    self.bound_cycles
                ));
            }
        }
        problems
    }

    /// Fixed-width coverage-matrix table (golden-pinned by the health
    /// bench).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:<6} {:>9} {:>9} {:<14} {:>9} {:>9} {:>7} {:>5}",
            "fault class",
            "trials",
            "victim",
            "armed",
            "effect",
            "detector",
            "detected",
            "latency",
            "lag",
            "bound"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:<6} {:>9} {:>9} {:<14} {:>9} {:>9} {:>7} {:>5}",
                row.class.name(),
                row.trials,
                row.victim,
                row.armed_clock,
                row.effect_clock,
                row.detector,
                row.detected_clock,
                row.latency,
                row.lag,
                if row.within_bound { "ok" } else { "MISS" },
            );
        }
        out
    }

    /// Renders as an [`asc_core::json`] object.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("seed".to_string(), Value::Num(self.seed as f64)),
            (
                "window_cycles".to_string(),
                Value::Num(self.window_cycles as f64),
            ),
            (
                "bound_cycles".to_string(),
                Value::Num(self.bound_cycles as f64),
            ),
            (
                "rows".to_string(),
                Value::Array(
                    self.rows
                        .iter()
                        .map(|r| {
                            Value::Object(vec![
                                ("class".to_string(), Value::Str(r.class.name().to_string())),
                                ("victim".to_string(), Value::Str(r.victim.clone())),
                                ("trials".to_string(), Value::Num(r.trials as f64)),
                                ("armed_clock".to_string(), Value::Num(r.armed_clock as f64)),
                                (
                                    "effect_clock".to_string(),
                                    Value::Num(r.effect_clock as f64),
                                ),
                                ("detector".to_string(), Value::Str(r.detector.clone())),
                                (
                                    "detected_clock".to_string(),
                                    Value::Num(r.detected_clock as f64),
                                ),
                                ("latency".to_string(), Value::Num(r.latency as f64)),
                                ("lag".to_string(), Value::Num(r.lag as f64)),
                                ("within_bound".to_string(), Value::Bool(r.within_bound)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "undetected".to_string(),
                Value::Array(
                    self.undetected
                        .iter()
                        .map(|(c, d)| {
                            Value::Object(vec![
                                ("class".to_string(), Value::Str(c.name().to_string())),
                                ("detail".to_string(), Value::Str(d.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One built workload, reusable across trials.
struct BuiltWorkload {
    spec: &'static ProgramSpec,
    auth: Binary,
    inv: Inventory,
    clean: RunRecord,
}

fn build_workloads(personality: Personality) -> Vec<BuiltWorkload> {
    let key = campaign_key();
    FLEET_WORKLOADS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let spec = program(name).unwrap_or_else(|| panic!("unknown workload {name}"));
            let plain = build(spec, personality).unwrap_or_else(|e| panic!("{name}: {e}"));
            let installer = Installer::new(
                key.clone(),
                InstallerOptions::new(personality).with_program_id(0x1A7E + i as u16),
            );
            let (auth, _) = installer
                .install(&plain, spec.name)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let inv = scan(&auth);
            let params = SoloParams {
                spec,
                auth: &auth,
                personality,
                tier: VerifyTier::Mac,
                weakened: false,
                key: &key,
                flow: None,
            };
            let clean = record_of(&run_solo(&params, None));
            assert!(
                clean.outcome.is_success(),
                "{name}: clean enforcing run failed"
            );
            BuiltWorkload {
                spec,
                auth,
                inv,
                clean,
            }
        })
        .collect()
}

fn fleet_machine(built: &BuiltWorkload, personality: Personality) -> Machine<Kernel> {
    let mut fs = FileSystem::new();
    (built.spec.setup_fs)(&mut fs);
    let opts = KernelOptions::enforcing(personality)
        .with_verify_cache()
        .with_tier(VerifyTier::Mac);
    let mut kernel = Kernel::with_fs(opts, fs);
    kernel.set_key(campaign_key());
    kernel.set_stdin(built.spec.stdin.to_vec());
    kernel.set_brk(built.auth.highest_addr());
    Machine::load(&built.auth, kernel).expect("workload fits in guest memory")
}

/// Spawns the monitored fleet: the victim workload first (pid 1), then
/// one of each other workload as background traffic.
fn spawn_fleet(
    workloads: &[BuiltWorkload],
    victim_index: usize,
    personality: Personality,
    seed: u64,
) -> Scheduler {
    let mut sched = Scheduler::with_shared_cache(SchedConfig {
        policy: SchedPolicy::SeededRandom(seed),
        slice_instrs: 2_000,
        budget_cycles: RUN_BUDGET,
        batch_depth: None,
    });
    sched.spawn(
        workloads[victim_index].spec.name,
        fleet_machine(&workloads[victim_index], personality),
    );
    for (i, built) in workloads.iter().enumerate() {
        if i != victim_index {
            sched.spawn(built.spec.name, fleet_machine(built, personality));
        }
    }
    sched
}

/// Outcome of one monitored trial.
enum Trial {
    /// Fault had a kernel-visible effect and a health event followed.
    Detected {
        armed_clock: u64,
        effect_clock: u64,
        detector: String,
        detected_clock: u64,
    },
    /// Fault never produced a kernel-visible effect (dead byte, missed
    /// cache entry): redraw.
    Benign,
    /// Fault had a kernel-visible effect but *no* health event followed
    /// — a monitoring hole; fails the campaign immediately.
    Missed { effect_clock: u64 },
}

fn run_trial(
    workloads: &[BuiltWorkload],
    victim_index: usize,
    fault: PlannedFault,
    cfg: &LatencyConfig,
    policy_seed: u64,
) -> Trial {
    const VICTIM: Pid = 1;
    let mut sched = spawn_fleet(workloads, victim_index, cfg.personality, policy_seed);
    let mut armed_clock: Option<u64> = None;
    let trap_at = match fault {
        PlannedFault::Trap(tf) => {
            sched.process_mut(VICTIM).kernel_mut().arm_fault(tf);
            Some(tf.at_trap)
        }
        PlannedFault::Mem { .. } => None,
    };
    let mut sentinel = Sentinel::attach(
        &sched,
        SentinelConfig::new(cfg.window_cycles).with_detectors(Detector::signal_suite()),
    );
    let mut effect_clock: Option<u64> = None;
    while sched.step().is_some() {
        match fault {
            PlannedFault::Mem {
                at_instret,
                addr,
                mask,
            } => {
                if armed_clock.is_none() {
                    let proc = sched.process(VICTIM);
                    if proc.machine().instret() >= at_instret {
                        let machine = sched.process_mut(VICTIM).machine_mut();
                        if let Ok(byte) = machine.mem().kread(addr, 1).map(|b| b[0]) {
                            let _ = machine.mem_mut().kwrite(addr, &[byte ^ mask]);
                            armed_clock = Some(sched.clock());
                        }
                    }
                }
            }
            PlannedFault::Trap(_) => {
                if armed_clock.is_none()
                    && sched.process(VICTIM).stats().syscalls >= trap_at.unwrap_or(u64::MAX)
                {
                    armed_clock = Some(sched.clock());
                }
            }
        }
        // A clean enforcing fleet raises no alerts and degrades nothing,
        // so the first alert / fallback / scrub anywhere is the fault's
        // first kernel-visible effect.
        if effect_clock.is_none() && armed_clock.is_some() {
            let agg = sched.aggregate_stats();
            let alerted = sched
                .processes()
                .iter()
                .any(|p| !p.kernel().alerts().is_empty());
            if alerted || agg.cache_fallbacks > 0 || agg.cache_scrubs > 0 {
                effect_clock = Some(sched.clock());
            }
        }
        sentinel.observe(&sched);
    }
    sentinel.finish(&sched);
    let (Some(armed), Some(effect)) = (armed_clock, effect_clock) else {
        return Trial::Benign;
    };
    match sentinel.first_event_at_or_after(effect) {
        Some(event) => Trial::Detected {
            armed_clock: armed,
            effect_clock: effect,
            detector: event.detector.clone(),
            detected_clock: event.fired_clock,
        },
        None => Trial::Missed {
            effect_clock: effect,
        },
    }
}

/// Runs the full detection-latency campaign: one detected row per fault
/// class (or an `undetected` entry after the trial budget).
pub fn run_latency_campaign(cfg: &LatencyConfig) -> LatencyReport {
    let workloads = build_workloads(cfg.personality);
    let bound_cycles = cfg.bound_cycles();
    let mut rows = Vec::new();
    let mut undetected = Vec::new();
    for (ci, class) in cfg.classes.iter().copied().enumerate() {
        // The victim is the first workload whose binary has artifacts of
        // this class (trap classes need no artifacts, so index 0 works).
        let victim_index = (0..workloads.len())
            .find(|&i| {
                let mut probe = Rng::new(cfg.seed ^ 0x9E37_79B9);
                plan_fault(class, &workloads[i].inv, &workloads[i].clean, &mut probe).is_some()
            })
            .unwrap_or(0);
        let victim = &workloads[victim_index];
        let mut detected = None;
        let mut trials = 0;
        for trial in 0..cfg.max_trials {
            trials = trial + 1;
            let mut rng = Rng::new(cfg.seed ^ ((ci as u64 + 1) << 40) ^ (u64::from(trial) + 1));
            let Some(fault) = plan_fault(class, &victim.inv, &victim.clean, &mut rng) else {
                break;
            };
            let policy_seed = cfg.seed ^ ((ci as u64 + 1) << 20) ^ u64::from(trial);
            match run_trial(&workloads, victim_index, fault, cfg, policy_seed) {
                Trial::Detected {
                    armed_clock,
                    effect_clock,
                    detector,
                    detected_clock,
                } => {
                    let lag = detected_clock - effect_clock;
                    detected = Some(LatencyRow {
                        class,
                        victim: victim.spec.name.to_string(),
                        trials,
                        armed_clock,
                        effect_clock,
                        detector,
                        detected_clock,
                        latency: detected_clock - armed_clock,
                        lag,
                        within_bound: lag <= bound_cycles,
                    });
                    break;
                }
                Trial::Benign => {}
                Trial::Missed { effect_clock } => {
                    undetected.push((
                        class,
                        format!(
                            "trial {trial}: kernel-visible effect at {effect_clock}                              produced no health event"
                        ),
                    ));
                    break;
                }
            }
        }
        if let Some(row) = detected {
            rows.push(row);
        } else if !undetected.iter().any(|(c, _)| *c == class) {
            undetected.push((
                class,
                format!("{trials} seeded draws, none produced a kernel-visible effect"),
            ));
        }
    }
    LatencyReport {
        seed: cfg.seed,
        window_cycles: cfg.window_cycles,
        bound_cycles,
        rows,
        undetected,
    }
}
