//! The tier × fault-class coverage matrix: what each verification tier
//! actually catches.
//!
//! The SFIP flow tier (`VerifyTier::FlowOnly`) checks only syscall
//! *transitions* against the installed digraph — a fraction of the MAC
//! tier's cost. This module quantifies the coverage side of that trade:
//! it replays the seeded fault campaign of [`crate::campaign`] under
//! every tier, plus one *reorder* trial per tier driven by the
//! [`asc_attacks`] syscall-reordering attack (two individually legal
//! calls executed in an order the digraph forbids).
//!
//! Expected shape, asserted by [`TierReport::problems`]:
//!
//! * `mac` and `mac+flow` keep the campaign's fail-stop contract on
//!   every artifact class (zero silent corruption, zero crashes, no
//!   false-positive kills on cache-degradation classes);
//! * `flow-only` catches the transition-order attack but *misses*
//!   in-edge forgeries (a corrupted authenticated string dispatches
//!   silently — it never kills, because nothing checks contents);
//! * `mac` alone *misses* the reorder attack (every per-call check
//!   passes at the jumped-to site);
//! * `mac+flow` dominates: at least as many kills as either tier on
//!   every class, and zero silent corruption everywhere.

use asc_attacks::{AttackLab, AttackOutcome};
use asc_installer::{Installer, InstallerOptions};
use asc_kernel::{FlowGraph, Personality, ReasonCode, VerifyTier};
use asc_object::Binary;
use asc_testkit::Rng;
use asc_workloads::{build, flow_graph_of, program, ProgramSpec};

use crate::campaign::{
    classify, plan_fault, run_instrumented_tier, FaultClass, Outcome, PlannedFault, RunRecord,
};
use crate::campaign_key;
use crate::inventory::{scan, Inventory};

/// Name of the synthetic reorder row (not a [`FaultClass`]: it is a
/// guest-level attack, not an artifact flip).
pub const FLOW_REORDER: &str = "flow-reorder";

/// Matrix parameters. Identical configs reproduce identical reports.
#[derive(Clone, Debug)]
pub struct TierMatrixConfig {
    /// Master seed (shared with the fault planner, so every tier sees
    /// the *same* planned faults).
    pub seed: u64,
    /// Trials per (workload, class) pair per tier.
    pub trials: u32,
    /// Workload names (must be registered in `asc-workloads`).
    pub workloads: Vec<String>,
    /// OS personality for builds and kernels.
    pub personality: Personality,
    /// Fault classes to replay. Defaults to the pre-origin
    /// [`FaultClass::ALL`] list the golden-pinned bench table
    /// enumerates; use [`TierMatrixConfig::with_all_classes`] to add
    /// the syscall-origin classes.
    pub classes: Vec<FaultClass>,
}

impl TierMatrixConfig {
    /// Default matrix over the paper's policy workloads.
    pub fn new(seed: u64, trials: u32) -> TierMatrixConfig {
        TierMatrixConfig {
            seed,
            trials,
            workloads: vec!["bison".into(), "calc".into(), "tar".into()],
            personality: Personality::Linux,
            classes: FaultClass::ALL.to_vec(),
        }
    }

    /// Extends the matrix to [`FaultClass::ALL_EXTENDED`], including
    /// the gadget-jump and stub-smuggle origin classes.
    pub fn with_all_classes(mut self) -> TierMatrixConfig {
        self.classes = FaultClass::ALL_EXTENDED.to_vec();
        self
    }
}

/// Aggregated trials for one (tier, class) pair across all workloads.
#[derive(Clone, Debug)]
pub struct TierRow {
    /// Verification tier the trials ran under.
    pub tier: VerifyTier,
    /// Fault-class name (a [`FaultClass::name`] or [`FLOW_REORDER`]).
    pub class: &'static str,
    /// Trials classified killed-with-alert.
    pub killed: u32,
    /// Trials classified benign.
    pub benign: u32,
    /// Trials that crashed the VM.
    pub crashed: u32,
    /// Trials classified silent corruption.
    pub silent: u32,
    /// Kill counts by structured reason code, in first-seen order.
    pub kill_reasons: Vec<(ReasonCode, u32)>,
    /// Details of unexpected trials (used by [`TierReport::problems`]).
    pub anomalies: Vec<String>,
}

impl TierRow {
    fn new(tier: VerifyTier, class: &'static str) -> TierRow {
        TierRow {
            tier,
            class,
            killed: 0,
            benign: 0,
            crashed: 0,
            silent: 0,
            kill_reasons: Vec::new(),
            anomalies: Vec::new(),
        }
    }

    fn tally(&mut self, outcome: Outcome, detail: &str, run: &RunRecord, trial_tag: &str) {
        match outcome {
            Outcome::Killed => {
                self.killed += 1;
                if let Some(alert) = run.alerts.last() {
                    let reason = alert.reason();
                    match self.kill_reasons.iter_mut().find(|(r, _)| *r == reason) {
                        Some((_, n)) => *n += 1,
                        None => self.kill_reasons.push((reason, 1)),
                    }
                }
            }
            Outcome::Benign => self.benign += 1,
            Outcome::Crashed => {
                self.crashed += 1;
                self.anomalies
                    .push(format!("{trial_tag}: crashed: {detail}"));
            }
            Outcome::SilentCorruption => {
                self.silent += 1;
                self.anomalies
                    .push(format!("{trial_tag}: silent: {detail}"));
            }
        }
    }
}

/// The full tier-coverage result.
#[derive(Clone, Debug)]
pub struct TierReport {
    /// Master seed the matrix ran under.
    pub seed: u64,
    /// Trials per (workload, class) pair.
    pub trials: u32,
    /// One row per (tier, class) pair, tiers outermost.
    pub rows: Vec<TierRow>,
}

/// One prepared workload: installed binary, artifact inventory, flow
/// digraph, and a per-tier clean record.
struct Prepared {
    spec: &'static ProgramSpec,
    auth: Binary,
    inv: Inventory,
    flow: FlowGraph,
    cleans: Vec<RunRecord>,
}

impl TierReport {
    fn row(&self, tier: VerifyTier, class: &str) -> Option<&TierRow> {
        self.rows
            .iter()
            .find(|r| r.tier == tier && r.class == class)
    }

    /// Everything wrong with the matrix outcome; empty means every tier
    /// behaved exactly as the coverage model predicts (see the module
    /// docs for the expected shape).
    pub fn problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for row in &self.rows {
            let tag = format!("{}/{}", row.tier.name(), row.class);
            let mac_grade = row.tier.checks_mac();
            // The MAC tiers keep the full fail-stop contract; crashes
            // are harness failures under every tier.
            if row.crashed > 0 || (mac_grade && row.silent > 0 && row.class != FLOW_REORDER) {
                for detail in &row.anomalies {
                    problems.push(format!("{tag}: {detail}"));
                }
            }
            if mac_grade
                && row.class != FLOW_REORDER
                && FaultClass::ALL
                    .iter()
                    .any(|c| c.name() == row.class && c.cache_degradation())
                && row.killed > 0
            {
                problems.push(format!(
                    "{tag}: {} false-positive kill(s) on a cache-degradation class",
                    row.killed
                ));
            }
            // The origin classes are tier-independent: the `.ascsites`
            // check fires before tier dispatch, so even flow-only must
            // catch every smuggled trap, always as unrewritten-site.
            if FaultClass::ALL_EXTENDED
                .iter()
                .any(|c| c.name() == row.class && c.origin_violation())
            {
                if row.silent > 0 {
                    problems.push(format!(
                        "{tag}: {} silent trial(s) — an unregistered-pc trap \
                         dispatched under {}",
                        row.silent,
                        row.tier.name()
                    ));
                }
                for (reason, n) in &row.kill_reasons {
                    if *reason != ReasonCode::UnrewrittenSite {
                        problems.push(format!(
                            "{tag}: {n} kill(s) with {} — origin faults must die \
                             on the origin check, before tier dispatch",
                            reason.code()
                        ));
                    }
                }
            }
        }
        // mac+flow dominates: zero silent anywhere (including the
        // reorder row) and at least as many kills as either other tier
        // on every class.
        for row in &self.rows {
            if row.tier != VerifyTier::MacPlusFlow {
                continue;
            }
            if row.silent > 0 {
                problems.push(format!(
                    "mac+flow/{}: {} silent trial(s) — the combined tier must dominate",
                    row.class, row.silent
                ));
            }
            for other in [VerifyTier::FlowOnly, VerifyTier::Mac] {
                if let Some(o) = self.row(other, row.class) {
                    if row.killed < o.killed {
                        problems.push(format!(
                            "mac+flow/{}: {} kills vs {} under {} — coverage regressed",
                            row.class,
                            row.killed,
                            o.killed,
                            other.name()
                        ));
                    }
                }
            }
        }
        // flow-only must miss in-edge forgeries: corrupted string
        // contents dispatch (silently) because nothing checks them.
        if let Some(row) = self.row(VerifyTier::FlowOnly, "auth-string") {
            if row.killed > 0 {
                problems.push(format!(
                    "flow-only/auth-string: {} kill(s) — the flow tier has no \
                     contents check, so these are false positives",
                    row.killed
                ));
            }
            if row.silent == 0 {
                problems.push(
                    "flow-only/auth-string: no silent trials — the coverage gap \
                     the ablation exists to show never appeared"
                        .into(),
                );
            }
        }
        // The reorder attack: missed by mac, killed by both flow tiers.
        match self.row(VerifyTier::Mac, FLOW_REORDER) {
            Some(row) if row.silent == 1 && row.killed == 0 => {}
            row => problems.push(format!(
                "mac/{FLOW_REORDER}: expected exactly one silent (missed) trial, got {row:?}"
            )),
        }
        for tier in [VerifyTier::FlowOnly, VerifyTier::MacPlusFlow] {
            match self.row(tier, FLOW_REORDER) {
                Some(row)
                    if row.killed == 1
                        && row.silent == 0
                        && row.kill_reasons == [(ReasonCode::BadFlowEdge, 1)] => {}
                row => problems.push(format!(
                    "{}/{FLOW_REORDER}: expected one bad-flow-edge kill, got {row:?}",
                    tier.name()
                )),
            }
        }
        problems
    }

    /// Renders the matrix as an aligned text table, tiers outermost.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Tier x fault-class coverage  seed={:#x}  trials/(workload,class)={}\n\n",
            self.seed, self.trials
        );
        out.push_str(&format!(
            "{:<10} {:<17} {:>7} {:>7} {:>8} {:>8}\n",
            "tier", "class", "killed", "benign", "crashed", "SILENT"
        ));
        let mut last_tier: Option<VerifyTier> = None;
        for row in &self.rows {
            let tier_label = if last_tier == Some(row.tier) {
                ""
            } else {
                last_tier = Some(row.tier);
                row.tier.name()
            };
            out.push_str(&format!(
                "{:<10} {:<17} {:>7} {:>7} {:>8} {:>8}\n",
                tier_label, row.class, row.killed, row.benign, row.crashed, row.silent
            ));
            if !row.kill_reasons.is_empty() {
                let reasons: Vec<String> = row
                    .kill_reasons
                    .iter()
                    .map(|(r, n)| format!("{} x{n}", r.code()))
                    .collect();
                out.push_str(&format!("           kills: {}\n", reasons.join(", ")));
            }
        }
        out.push('\n');
        for tier in VerifyTier::ALL {
            let (mut caught, mut missed) = (0u32, 0u32);
            for row in self.rows.iter().filter(|r| r.tier == tier) {
                if row.silent > 0 {
                    missed += 1;
                } else if row.killed > 0 {
                    caught += 1;
                }
            }
            out.push_str(&format!(
                "{:<10} classes caught={caught} missed={missed}\n",
                tier.name()
            ));
        }
        out
    }
}

/// Runs the fault campaign under every verification tier plus one
/// reorder-attack trial per tier.
///
/// Every tier replays the *same* planned faults: the planner is seeded
/// identically per (workload, class, trial), and the guest-visible
/// observables of the clean runs are asserted identical across tiers
/// (verification changes only kernel-side cycles, never execution), so
/// differences in a row are attributable to the tier alone.
///
/// # Panics
///
/// Panics on harness precondition failures: unknown workloads, build
/// or install errors, a failing clean run under any tier, or clean
/// runs that disagree across tiers.
pub fn run_tier_matrix(cfg: &TierMatrixConfig) -> TierReport {
    let key = campaign_key();
    let mut prepared = Vec::new();
    for (wi, name) in cfg.workloads.iter().enumerate() {
        let spec = program(name).unwrap_or_else(|| panic!("unknown workload {name}"));
        let plain = build(spec, cfg.personality).unwrap_or_else(|e| panic!("{name}: {e}"));
        let installer = Installer::new(
            key.clone(),
            InstallerOptions::new(cfg.personality).with_program_id(0x0F10 + wi as u16),
        );
        let (auth, _) = installer
            .install(&plain, spec.name)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let inv = scan(&auth);
        let flow = flow_graph_of(&auth, &key);
        let cleans: Vec<RunRecord> = VerifyTier::ALL
            .iter()
            .map(|&tier| {
                let clean = run_instrumented_tier(
                    spec,
                    &auth,
                    cfg.personality,
                    false,
                    tier,
                    Some(&flow),
                    None,
                    None,
                );
                assert!(
                    clean.outcome.is_success(),
                    "{name}: clean {} run failed: {:?} (alerts: {:?})",
                    tier.name(),
                    clean.outcome,
                    clean.alerts
                );
                clean
            })
            .collect();
        for clean in &cleans[1..] {
            assert_eq!(
                (clean.instret, clean.syscalls, &clean.stdout),
                (cleans[0].instret, cleans[0].syscalls, &cleans[0].stdout),
                "{name}: clean runs diverge across tiers"
            );
        }
        prepared.push(Prepared {
            spec,
            auth,
            inv,
            flow,
            cleans,
        });
    }
    let lab = AttackLab::new(key);
    let mut rows = Vec::new();
    for (ti, &tier) in VerifyTier::ALL.iter().enumerate() {
        for (ci, class) in cfg.classes.iter().copied().enumerate() {
            let mut row = TierRow::new(tier, class.name());
            for (wi, prep) in prepared.iter().enumerate() {
                let clean = &prep.cleans[ti];
                for trial in 0..cfg.trials {
                    // Seeded exactly like the single-tier campaign — and
                    // identically for every tier, so the planned faults
                    // match across tiers.
                    let mut rng = Rng::new(
                        cfg.seed
                            ^ ((wi as u64 + 1) << 48)
                            ^ ((ci as u64 + 1) << 40)
                            ^ (u64::from(trial) + 1),
                    );
                    let Some(fault) = plan_fault(class, &prep.inv, &prep.cleans[0], &mut rng)
                    else {
                        break;
                    };
                    let run = match fault {
                        PlannedFault::Mem {
                            at_instret,
                            addr,
                            mask,
                        } => run_instrumented_tier(
                            prep.spec,
                            &prep.auth,
                            cfg.personality,
                            false,
                            tier,
                            Some(&prep.flow),
                            Some((at_instret, addr, mask)),
                            None,
                        ),
                        PlannedFault::Trap(tf) => run_instrumented_tier(
                            prep.spec,
                            &prep.auth,
                            cfg.personality,
                            false,
                            tier,
                            Some(&prep.flow),
                            None,
                            Some(tf),
                        ),
                    };
                    let (outcome, detail) = classify(clean, &run);
                    let tag = format!("{}/{} trial {trial}", prep.spec.name, class.name());
                    row.tally(outcome, &detail, &run, &tag);
                }
            }
            rows.push(row);
        }
        // The reorder attack is deterministic: one trial per tier.
        let mut row = TierRow::new(tier, FLOW_REORDER);
        let (outcome, kernel) = lab.reorder_attack_traced(tier);
        match outcome {
            AttackOutcome::Succeeded(_) => row.silent += 1,
            AttackOutcome::Blocked(alert) => {
                row.killed += 1;
                row.kill_reasons.push((alert.reason(), 1));
                if !kernel.exec_requests().is_empty() {
                    row.anomalies
                        .push("reorder: killed but the forged execve dispatched".into());
                }
            }
            AttackOutcome::Failed(msg) => {
                row.crashed += 1;
                row.anomalies.push(format!("reorder: {msg}"));
            }
        }
        rows.push(row);
    }
    TierReport {
        seed: cfg.seed,
        trials: cfg.trials,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_matrix_matches_the_coverage_model() {
        let report = run_tier_matrix(&TierMatrixConfig::new(0x5F1F_CA5E, 2));
        assert_eq!(
            report.problems(),
            Vec::<String>::new(),
            "\n{}",
            report.render()
        );
        // The cheap tier is not free coverage: it must actually miss
        // *something* the MAC tier catches.
        let flow_silent: u32 = report
            .rows
            .iter()
            .filter(|r| r.tier == VerifyTier::FlowOnly)
            .map(|r| r.silent)
            .sum();
        assert!(flow_silent > 0, "\n{}", report.render());
        // And identical seeds reproduce the identical report.
        let again = run_tier_matrix(&TierMatrixConfig::new(0x5F1F_CA5E, 2));
        assert_eq!(report.render(), again.render());
    }

    /// The origin classes are tier-independent: a matrix over just
    /// gadget-jump and stub-smuggle must show every tier — including
    /// flow-only, which runs no MAC at all — killing every smuggled
    /// trap with `unrewritten-site` and nothing else.
    #[test]
    fn origin_classes_caught_under_every_tier() {
        let cfg = TierMatrixConfig {
            classes: vec![FaultClass::GadgetJump, FaultClass::StubSmuggle],
            ..TierMatrixConfig::new(0x0619_1234, 4)
        };
        let report = run_tier_matrix(&cfg);
        assert_eq!(
            report.problems(),
            Vec::<String>::new(),
            "\n{}",
            report.render()
        );
        for tier in VerifyTier::ALL {
            for class in [FaultClass::GadgetJump, FaultClass::StubSmuggle] {
                let row = report.row(tier, class.name()).expect("row present");
                assert!(
                    row.killed > 0,
                    "{}/{}: no kills\n{}",
                    tier.name(),
                    class.name(),
                    report.render()
                );
                assert_eq!(row.silent, 0, "{}/{}", tier.name(), class.name());
                assert_eq!(row.crashed, 0, "{}/{}", tier.name(), class.name());
                assert_eq!(
                    row.kill_reasons,
                    [(ReasonCode::UnrewrittenSite, row.killed)],
                    "{}/{}",
                    tier.name(),
                    class.name()
                );
            }
        }
        // The same planned fault kills at the same trap under every
        // tier (the check precedes tier dispatch), so the three tiers'
        // rows are identical.
        for class in [FaultClass::GadgetJump, FaultClass::StubSmuggle] {
            let rows: Vec<_> = VerifyTier::ALL
                .iter()
                .map(|&t| report.row(t, class.name()).expect("row"))
                .collect();
            for row in &rows[1..] {
                assert_eq!((row.killed, row.benign), (rows[0].killed, rows[0].benign));
            }
        }
    }

    /// The acceptance lattice the tier design promises, as a seeded
    /// property over arbitrary planned faults:
    ///
    /// 1. *Soundness*: any run `mac` accepts, `flow-only` accepts — the
    ///    digraph is the nr-coarsening of the pred-set relation, so a
    ///    run that passes every pred-set check walks only digraph edges.
    /// 2. *Exact intersection*: `mac+flow` accepts a run iff both
    ///    component tiers accept it, and when it kills, it kills at the
    ///    earliest trap either component would have killed at.
    /// 3. Tiers never perturb the guest: every accepting tier observes
    ///    the identical execution.
    #[test]
    fn tier_acceptance_forms_the_soundness_lattice() {
        use asc_vm::RunOutcome;

        const PERSONALITY: Personality = Personality::Linux;
        const SEED: u64 = 0xACC3_97ED;

        // Prepare each workload once; the seeded cases only re-run.
        let key = campaign_key();
        let mut prepared = Vec::new();
        for (wi, name) in ["bison", "calc", "tar"].iter().enumerate() {
            let spec = program(name).expect("registered workload");
            let plain = build(spec, PERSONALITY).expect("workload builds");
            let installer = Installer::new(
                key.clone(),
                InstallerOptions::new(PERSONALITY).with_program_id(0x0F20 + wi as u16),
            );
            let (auth, _) = installer.install(&plain, spec.name).expect("installs");
            let inv = scan(&auth);
            let flow = flow_graph_of(&auth, &key);
            let clean = run_instrumented_tier(
                spec,
                &auth,
                PERSONALITY,
                false,
                VerifyTier::Mac,
                Some(&flow),
                None,
                None,
            );
            assert!(clean.outcome.is_success(), "{name}: clean run failed");
            prepared.push((spec, auth, inv, flow, clean));
        }

        let accept = |r: &RunRecord| !matches!(r.outcome, RunOutcome::Killed(_));
        let kill_trap = |r: &RunRecord| match r.outcome {
            RunOutcome::Killed(_) => r.syscalls,
            _ => u64::MAX,
        };

        for (spec, auth, inv, flow, clean) in &prepared {
            asc_testkit::check(SEED, 32, |rng| {
                // An arbitrary planned fault — or, one case in eight, no
                // fault at all (the all-accept corner of the lattice).
                let mut fault = None;
                if !rng.chance(1, 8) {
                    for _ in 0..8 {
                        let class = *rng.pick(&FaultClass::ALL_EXTENDED);
                        if let Some(f) = plan_fault(class, inv, clean, rng) {
                            fault = Some(f);
                            break;
                        }
                    }
                }
                // The *same* fault replayed under every tier; tier order
                // follows `VerifyTier::ALL` = [FlowOnly, Mac, MacPlusFlow].
                let runs: Vec<RunRecord> = VerifyTier::ALL
                    .iter()
                    .map(|&tier| match fault {
                        None => run_instrumented_tier(
                            spec,
                            auth,
                            PERSONALITY,
                            false,
                            tier,
                            Some(flow),
                            None,
                            None,
                        ),
                        Some(PlannedFault::Mem {
                            at_instret,
                            addr,
                            mask,
                        }) => run_instrumented_tier(
                            spec,
                            auth,
                            PERSONALITY,
                            false,
                            tier,
                            Some(flow),
                            Some((at_instret, addr, mask)),
                            None,
                        ),
                        Some(PlannedFault::Trap(tf)) => run_instrumented_tier(
                            spec,
                            auth,
                            PERSONALITY,
                            false,
                            tier,
                            Some(flow),
                            None,
                            Some(tf),
                        ),
                    })
                    .collect();
                let (flow_run, mac_run, both_run) = (&runs[0], &runs[1], &runs[2]);
                let tag = format!("{} fault {fault:?}", spec.name);
                // 1. Mac-accepted ⊆ flow-accepted.
                if accept(mac_run) {
                    assert!(
                        accept(flow_run),
                        "{tag}: mac accepted but flow-only killed: {:?}",
                        flow_run.outcome
                    );
                }
                // 2a. mac+flow accepts exactly the intersection.
                assert_eq!(
                    accept(both_run),
                    accept(mac_run) && accept(flow_run),
                    "{tag}: mac+flow broke the intersection: {:?} vs mac {:?} / flow {:?}",
                    both_run.outcome,
                    mac_run.outcome,
                    flow_run.outcome
                );
                // 2b. ...and kills at the earliest component kill point.
                if !accept(both_run) {
                    assert_eq!(
                        both_run.syscalls,
                        kill_trap(mac_run).min(kill_trap(flow_run)),
                        "{tag}: mac+flow killed at the wrong trap"
                    );
                }
                // 3. Accepting tiers observed the identical execution.
                let accepted: Vec<&RunRecord> = runs.iter().filter(|r| accept(r)).collect();
                for run in accepted.iter().skip(1) {
                    assert_eq!(
                        (run.instret, run.syscalls, &run.stdout),
                        (
                            accepted[0].instret,
                            accepted[0].syscalls,
                            &accepted[0].stdout
                        ),
                        "{tag}: accepting tiers diverged"
                    );
                }
            });
        }
    }
}
