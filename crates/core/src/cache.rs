//! The verified-call cache: a per-process fast path for repeated
//! authenticated system calls.
//!
//! CMAC is deterministic, so once the kernel has fully verified a tag over a
//! message it may remember the *(message, tag)* pair and later accept the
//! same pair again by byte comparison alone, skipping the AES work. The
//! cache holds three kinds of remembered verifications:
//!
//! * **call entries** — per call site, the encoded-call bytes and the call
//!   MAC that verified (§3.4 step 1);
//! * **blob entries** — per address, the contents and MAC of an
//!   authenticated string / pattern / predecessor set that verified
//!   (§3.4 step 2);
//! * **the state entry** — the exact `lastBlock ‖ lbMAC` bytes the kernel
//!   itself wrote (or verified) most recently, bound to the memory-checker
//!   counter value at that moment (§3.4 step 3).
//!
//! # Soundness
//!
//! The fast path never skips *reading* untrusted memory — it replaces the
//! AES recomputation with a byte comparison against a copy that passed full
//! verification earlier. Any divergence (tampered contents, swapped header,
//! different descriptor, forged MAC) fails the comparison and falls back to
//! the full CMAC path, which then rejects the call exactly as the cold path
//! would. The state entry is additionally bound to the in-kernel counter
//! *epoch*: the counter advances on every control-flow update, so a
//! snapshot of old state bytes can never match a cached entry from a later
//! epoch — replay still dies with `BadPolicyState` in the fallback path.
//! A cached acceptance is therefore exactly the set of inputs the cold path
//! accepts; the cache changes cycle accounting, never the accept set.

use std::collections::{BTreeMap, HashMap};

use asc_crypto::{Mac, POLICY_STATE_LEN};

/// SplitMix64 finalizer: a bijective 64-bit mixer with full avalanche.
///
/// Both the pid → shard map and the fault-target draw need a *deterministic*
/// spread of structured inputs (sequential pids, campaign selectors built
/// from small factors) over a small range. Feeding the raw value into a
/// modulo would concentrate structured inputs on the low indices; mixing
/// first makes every output bit depend on every input bit.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Maps a 64-bit selector onto `[0, bound)` by a widening multiply-shift of
/// the mixed selector (Lemire's method).
///
/// Unlike `selector % bound` this has no low-index pile-up for structured
/// selectors, and the residual non-uniformity for a uniform selector is at
/// most `bound / 2^64` per index — with `bound` never exceeding a few
/// thousand cache entries, that is below `2^-52` and irrelevant for a
/// seeded fault campaign.
#[inline]
fn bounded_draw(selector: u64, bound: usize) -> usize {
    debug_assert!(bound > 0);
    ((u128::from(mix64(selector)) * bound as u128) >> 64) as usize
}

/// The shard a pid's cache namespace lives in, for a family of
/// `shard_count` shards. Pure function of `(pid, shard_count)` — every
/// component (kernel, metrics labels, fleet harness) that needs a pid's
/// shard derives it from here, so the assignment can never drift between
/// layers.
#[inline]
pub fn pid_shard(pid: u32, shard_count: usize) -> usize {
    debug_assert!(shard_count > 0);
    ((u128::from(mix64(u64::from(pid))) * shard_count as u128) >> 64) as usize
}

/// Counters describing how the verified-call cache behaved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Call-MAC checks served by byte comparison (no AES).
    pub hits: u64,
    /// Call-MAC checks that ran the full CMAC.
    pub misses: u64,
    /// Authenticated-string / pattern / predecessor-set checks served by
    /// byte comparison.
    pub blob_hits: u64,
    /// Policy-state verifications skipped because the kernel wrote the
    /// exact bytes itself in the current counter epoch.
    pub state_hits: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Checks that found an entry for the key but whose bytes, tag, or
    /// epoch no longer matched — the graceful degradation path: the entry
    /// is useless (stale or poisoned) and the full CMAC fallback ran.
    pub stale_misses: u64,
    /// State entries dropped because they claimed an *impossible* epoch
    /// (later than the in-kernel counter). The counter never runs behind a
    /// recording, so such an entry can only be corruption; it is scrubbed
    /// rather than trusted or panicked over.
    pub scrubs: u64,
}

#[derive(Clone, Debug)]
struct CallEntry {
    encoding: Vec<u8>,
    mac: Mac,
}

#[derive(Clone, Debug)]
struct BlobEntry {
    contents: Vec<u8>,
    mac: Mac,
}

#[derive(Clone, Debug)]
struct StateEntry {
    lb_ptr: u32,
    bytes: [u8; POLICY_STATE_LEN],
    epoch: u64,
}

/// Per-process cache of verifications the kernel has already performed.
///
/// One of these lives next to each process's `MemoryChecker`
/// (`asc_crypto::MemoryChecker`) inside the kernel; the untrusted
/// application can influence it only through the memory bytes it presents,
/// which are always re-read and re-compared. See the module docs for the
/// soundness argument.
#[derive(Clone, Debug)]
pub struct VerifyCache {
    calls: HashMap<u32, CallEntry>,
    blobs: HashMap<u32, BlobEntry>,
    state: Option<StateEntry>,
    capacity: usize,
    stats: CacheStats,
}

impl Default for VerifyCache {
    fn default() -> Self {
        VerifyCache::new()
    }
}

impl VerifyCache {
    /// Default bound on cached call + blob entries.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        VerifyCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to `capacity` call + blob entries (the state
    /// entry is not counted). When an insert would exceed the bound the
    /// whole cache is dropped — crude, but eviction can never be a
    /// soundness question, only a performance one.
    pub fn with_capacity(capacity: usize) -> Self {
        VerifyCache {
            calls: HashMap::new(),
            blobs: HashMap::new(),
            state: None,
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Checks whether the call MAC for `site` can be accepted from cache:
    /// both the reconstructed encoding and the tag read from user memory
    /// must be byte-identical to the pair that fully verified earlier.
    /// Updates hit/miss statistics.
    pub fn check_call(&mut self, site: u32, encoding: &[u8], mac: &Mac) -> bool {
        let entry = self.calls.get(&site);
        let present = entry.is_some();
        let hit = entry.is_some_and(|e| e.mac == *mac && e.encoding == encoding);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            if present {
                self.stats.stale_misses += 1;
            }
        }
        hit
    }

    /// Remembers a call-MAC pair that passed full verification.
    pub fn record_call(&mut self, site: u32, encoding: &[u8], mac: &Mac) {
        self.ensure_room();
        self.calls.insert(
            site,
            CallEntry {
                encoding: encoding.to_vec(),
                mac: *mac,
            },
        );
    }

    /// Checks whether an authenticated blob (string / pattern /
    /// predecessor set) at `addr` can be accepted from cache.
    pub fn check_blob(&mut self, addr: u32, mac: &Mac, contents: &[u8]) -> bool {
        let entry = self.blobs.get(&addr);
        let present = entry.is_some();
        let hit = entry.is_some_and(|e| e.mac == *mac && e.contents == contents);
        if hit {
            self.stats.blob_hits += 1;
        } else if present {
            self.stats.stale_misses += 1;
        }
        hit
    }

    /// Remembers a blob that passed full verification.
    pub fn record_blob(&mut self, addr: u32, mac: &Mac, contents: &[u8]) {
        self.ensure_room();
        self.blobs.insert(
            addr,
            BlobEntry {
                contents: contents.to_vec(),
                mac: *mac,
            },
        );
    }

    /// Checks whether the policy-state cell can be accepted without an AES
    /// verification: the bytes must match what the kernel last wrote or
    /// verified *and* the in-kernel counter must still be at the epoch the
    /// entry was recorded under. A counter advance (any control-flow
    /// update) silently invalidates the entry.
    ///
    /// An entry claiming an epoch *later* than the current counter is
    /// impossible (the counter never runs behind a recording) and can only
    /// mean the entry itself was corrupted; it is scrubbed — dropped and
    /// counted in [`CacheStats::scrubs`] — so verification falls back to
    /// the full cold path instead of consulting poisoned bytes.
    pub fn check_state(&mut self, lb_ptr: u32, bytes: &[u8], epoch: u64) -> bool {
        if self.state.as_ref().is_some_and(|s| s.epoch > epoch) {
            self.state = None;
            self.stats.scrubs += 1;
        }
        let entry = self.state.as_ref();
        let present = entry.is_some();
        let hit =
            entry.is_some_and(|s| s.lb_ptr == lb_ptr && s.epoch == epoch && s.bytes[..] == *bytes);
        if hit {
            self.stats.state_hits += 1;
        } else if present {
            self.stats.stale_misses += 1;
        }
        hit
    }

    /// Remembers the policy-state bytes the kernel just wrote (or fully
    /// verified) at counter value `epoch`.
    pub fn record_state(&mut self, lb_ptr: u32, bytes: [u8; POLICY_STATE_LEN], epoch: u64) {
        self.state = Some(StateEntry {
            lb_ptr,
            bytes,
            epoch,
        });
    }

    /// Drops every entry (key change, exec, policy reload).
    pub fn clear(&mut self) {
        let dropped = (self.calls.len() + self.blobs.len()) as u64;
        self.stats.evictions += dropped;
        self.calls.clear();
        self.blobs.clear();
        self.state = None;
    }

    /// Cache behaviour counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of call + blob entries currently cached.
    pub fn len(&self) -> usize {
        self.calls.len() + self.blobs.len()
    }

    /// The counter epoch the state entry was recorded under, if one is
    /// held. Isolation tests use this to assert that another process's
    /// kill or cache activity never moved this process's epoch.
    pub fn state_epoch(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.epoch)
    }

    /// Whether the cache holds no call or blob entries.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty() && self.blobs.is_empty()
    }

    fn ensure_room(&mut self) {
        if self.calls.len() + self.blobs.len() >= self.capacity {
            self.clear();
        }
    }

    /// Fault-injection hook: XORs `mask` into one byte of one stored entry,
    /// both chosen deterministically from `selector`. Models bit rot or a
    /// kernel bug corrupting the cache itself. Returns the kind of entry
    /// corrupted (`"call"`, `"blob"`, `"state"`), or `None` when the cache
    /// is empty. A corrupted entry must never be *accepted* — the byte
    /// comparison misses and verification falls back to the cold path.
    pub fn corrupt_entry_for_fault(&mut self, selector: u64, mask: u8) -> Option<&'static str> {
        let mask = if mask == 0 { 1 } else { mask };
        let mut call_sites: Vec<u32> = self.calls.keys().copied().collect();
        call_sites.sort_unstable();
        let mut blob_addrs: Vec<u32> = self.blobs.keys().copied().collect();
        blob_addrs.sort_unstable();
        let total = call_sites.len() + blob_addrs.len() + usize::from(self.state.is_some());
        if total == 0 {
            return None;
        }
        let pick = bounded_draw(selector, total);
        let byte_sel = (selector >> 8) as usize;
        if pick < call_sites.len() {
            let e = self.calls.get_mut(&call_sites[pick]).expect("listed key");
            let n = e.encoding.len() + e.mac.len();
            let i = byte_sel % n;
            if i < e.encoding.len() {
                e.encoding[i] ^= mask;
            } else {
                e.mac[i - e.encoding.len()] ^= mask;
            }
            return Some("call");
        }
        let pick = pick - call_sites.len();
        if pick < blob_addrs.len() {
            let e = self.blobs.get_mut(&blob_addrs[pick]).expect("listed key");
            let n = e.contents.len() + e.mac.len();
            let i = byte_sel % n;
            if i < e.contents.len() {
                e.contents[i] ^= mask;
            } else {
                e.mac[i - e.contents.len()] ^= mask;
            }
            return Some("blob");
        }
        let s = self.state.as_mut().expect("counted above");
        s.bytes[byte_sel % POLICY_STATE_LEN] ^= mask;
        Some("state")
    }

    /// Fault-injection hook: shifts the state entry's recorded epoch
    /// forward by `delta`, making it claim a *future* counter value. The
    /// next [`VerifyCache::check_state`] must scrub it (see
    /// [`CacheStats::scrubs`]) and fall back to cold verification. Returns
    /// `false` when no state entry exists.
    pub fn skew_state_epoch_for_fault(&mut self, delta: u64) -> bool {
        match self.state.as_mut() {
            Some(s) => {
                s.epoch = s.epoch.saturating_add(delta.max(1));
                true
            }
            None => false,
        }
    }
}

/// A pid-keyed family of [`VerifyCache`]s for multi-process kernels.
///
/// The paper's verifier is per-process: the policy-state MAC is keyed by a
/// per-process counter and the kernel maps pid → installed policy. The
/// cache must honour the same boundary — an entry verified under pid A's
/// counter epoch means nothing under pid B's, and a kill or exec of pid A
/// must never invalidate (or worse, *serve*) pid B's entries. Rather than
/// tagging every key with a pid inside one map, each pid gets its own
/// [`VerifyCache`] namespace: cross-pid sharing is then impossible by
/// construction, and dropping a dead pid's entries is O(1) on everyone
/// else.
///
/// A scheduler owns one of these behind `Rc<RefCell<…>>` and hands the
/// handle to every kernel it spawns (`asc_kernel::Kernel::share_cache`);
/// each trap then operates on the calling pid's namespace only.
///
/// # Sharding
///
/// The family is split into [`SharedVerifyCache::DEFAULT_SHARDS`] shards
/// keyed by [`pid_shard`], so a pid-keyed lookup walks a map holding only
/// `live_pids / shards` namespaces: per-call work stays O(1) as the fleet
/// grows instead of O(log N) over every live pid. Sharding is pure routing
/// — a pid's namespace is the same [`VerifyCache`] state machine wherever
/// it lives, so hits, epochs, scrubs, and the accept set are bit-identical
/// to the unsharded family, and isolation proofs reduce to "two distinct
/// pids never alias a namespace", which holds per shard map exactly as it
/// held for the single map.
///
/// Each shard also counts its hot-path *probes* (pid-keyed traversals:
/// [`SharedVerifyCache::pid_cache`], [`SharedVerifyCache::detach_pid`],
/// [`SharedVerifyCache::attach_pid`]). The batched trap path uses
/// detach/attach to touch the shared structure twice per batch window
/// instead of once per call; the probe counters make that amortization
/// measurable without perturbing any per-pid statistic.
#[derive(Clone, Debug)]
pub struct SharedVerifyCache {
    shards: Vec<Shard>,
}

#[derive(Clone, Debug, Default)]
struct Shard {
    caches: BTreeMap<u32, VerifyCache>,
    probes: u64,
}

impl Default for SharedVerifyCache {
    fn default() -> Self {
        SharedVerifyCache::new()
    }
}

impl SharedVerifyCache {
    /// Default shard count. 64 keeps shard maps near-singleton up to a few
    /// hundred pids while bounding per-shard metric cardinality in fleet
    /// runs.
    pub const DEFAULT_SHARDS: usize = 64;

    /// An empty cache family with the default shard count.
    pub fn new() -> SharedVerifyCache {
        SharedVerifyCache::with_shards(Self::DEFAULT_SHARDS)
    }

    /// An empty cache family split into `shards` shards (minimum 1).
    pub fn with_shards(shards: usize) -> SharedVerifyCache {
        SharedVerifyCache {
            shards: vec![Shard::default(); shards.max(1)],
        }
    }

    /// Number of shards in this family.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `pid`'s namespace routes to (see [`pid_shard`]).
    pub fn shard_of(&self, pid: u32) -> usize {
        pid_shard(pid, self.shards.len())
    }

    /// The cache namespace for `pid`, created empty on first use.
    pub fn pid_cache(&mut self, pid: u32) -> &mut VerifyCache {
        let idx = pid_shard(pid, self.shards.len());
        let shard = &mut self.shards[idx];
        shard.probes += 1;
        shard.caches.entry(pid).or_default()
    }

    /// Read-only view of `pid`'s namespace, if it has one.
    pub fn get(&self, pid: u32) -> Option<&VerifyCache> {
        self.shards[self.shard_of(pid)].caches.get(&pid)
    }

    /// Removes `pid`'s namespace from the family and hands it to the
    /// caller, creating it empty on first use exactly like
    /// [`SharedVerifyCache::pid_cache`]. The batched trap path detaches a
    /// pid's namespace once per batch window, drains every queued call
    /// against the local copy, and reattaches on window close — the same
    /// state machine, probed twice per window instead of once per call.
    pub fn detach_pid(&mut self, pid: u32) -> VerifyCache {
        let idx = pid_shard(pid, self.shards.len());
        let shard = &mut self.shards[idx];
        shard.probes += 1;
        shard.caches.remove(&pid).unwrap_or_default()
    }

    /// Returns a namespace taken by [`SharedVerifyCache::detach_pid`].
    pub fn attach_pid(&mut self, pid: u32, cache: VerifyCache) {
        let idx = pid_shard(pid, self.shards.len());
        let shard = &mut self.shards[idx];
        shard.probes += 1;
        shard.caches.insert(pid, cache);
    }

    /// Drops `pid`'s namespace wholesale (kill or exec). Every other pid's
    /// entries — and their epochs and statistics — are untouched.
    pub fn drop_pid(&mut self, pid: u32) {
        let shard = self.shard_of(pid);
        self.shards[shard].caches.remove(&pid);
    }

    /// Behaviour counters for `pid`'s namespace (zero if it has none).
    pub fn pid_stats(&self, pid: u32) -> CacheStats {
        self.get(pid).map(|c| c.stats()).unwrap_or_default()
    }

    /// Behaviour counters summed over every live namespace. Namespaces
    /// dropped by [`SharedVerifyCache::drop_pid`] no longer contribute.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            for cache in shard.caches.values() {
                let s = cache.stats();
                total.hits += s.hits;
                total.misses += s.misses;
                total.blob_hits += s.blob_hits;
                total.state_hits += s.state_hits;
                total.evictions += s.evictions;
                total.stale_misses += s.stale_misses;
                total.scrubs += s.scrubs;
            }
        }
        total
    }

    /// Behaviour counters summed over the namespaces living in one shard.
    pub fn shard_stats(&self, shard: usize) -> CacheStats {
        let mut total = CacheStats::default();
        for cache in self.shards[shard].caches.values() {
            let s = cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.blob_hits += s.blob_hits;
            total.state_hits += s.state_hits;
            total.evictions += s.evictions;
            total.stale_misses += s.stale_misses;
            total.scrubs += s.scrubs;
        }
        total
    }

    /// Hot-path probe count for one shard (pid-keyed traversals of that
    /// shard's map; observability only, never part of per-pid outputs).
    pub fn shard_probes(&self, shard: usize) -> u64 {
        self.shards[shard].probes
    }

    /// Hot-path probes summed over all shards.
    pub fn probes(&self) -> u64 {
        self.shards.iter().map(|s| s.probes).sum()
    }

    /// Number of live namespaces in one shard.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].caches.len()
    }

    /// The pids that currently hold a namespace, in ascending order.
    pub fn pids(&self) -> Vec<u32> {
        let mut pids: Vec<u32> = self
            .shards
            .iter()
            .flat_map(|s| s.caches.keys().copied())
            .collect();
        pids.sort_unstable();
        pids
    }

    /// Fault-injection hook: corrupts one entry inside *`pid`'s* namespace
    /// (see [`VerifyCache::corrupt_entry_for_fault`]). Cross-process
    /// campaigns use this to poison a victim pid's entries and then assert
    /// every other pid is bit-identical to its clean run.
    pub fn corrupt_pid_entry_for_fault(
        &mut self,
        pid: u32,
        selector: u64,
        mask: u8,
    ) -> Option<&'static str> {
        let shard = self.shard_of(pid);
        self.shards[shard]
            .caches
            .get_mut(&pid)
            .and_then(|c| c.corrupt_entry_for_fault(selector, mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn call_entry_roundtrip() {
        let mut c = VerifyCache::new();
        let mac = [7u8; 16];
        assert!(!c.check_call(0x1000, b"enc", &mac), "empty cache misses");
        c.record_call(0x1000, b"enc", &mac);
        assert!(c.check_call(0x1000, b"enc", &mac));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn call_entry_rejects_any_divergence() {
        let mut c = VerifyCache::new();
        let mac = [7u8; 16];
        c.record_call(0x1000, b"enc", &mac);
        assert!(!c.check_call(0x1004, b"enc", &mac), "different site");
        assert!(!c.check_call(0x1000, b"end", &mac), "different encoding");
        let mut other = mac;
        other[15] ^= 1;
        assert!(!c.check_call(0x1000, b"enc", &other), "different tag");
    }

    #[test]
    fn blob_entry_rejects_tampered_contents() {
        let mut c = VerifyCache::new();
        let mac = [9u8; 16];
        c.record_blob(0x2000, &mac, b"/etc/motd");
        assert!(c.check_blob(0x2000, &mac, b"/etc/motd"));
        assert!(
            !c.check_blob(0x2000, &mac, b"/etc/pass"),
            "rewritten contents"
        );
        assert!(
            !c.check_blob(0x2004, &mac, b"/etc/motd"),
            "different address"
        );
        assert_eq!(c.stats().blob_hits, 1);
    }

    #[test]
    fn state_entry_bound_to_epoch() {
        let mut c = VerifyCache::new();
        let bytes = [3u8; POLICY_STATE_LEN];
        c.record_state(0x3000, bytes, 5);
        assert!(c.check_state(0x3000, &bytes, 5));
        assert!(!c.check_state(0x3000, &bytes, 6), "counter advanced: stale");
        assert!(!c.check_state(0x3004, &bytes, 5), "different cell");
        let mut forged = bytes;
        forged[0] ^= 1;
        assert!(!c.check_state(0x3000, &forged, 5), "different bytes");
        assert_eq!(c.stats().state_hits, 1);
    }

    #[test]
    fn capacity_overflow_clears() {
        let mut c = VerifyCache::with_capacity(2);
        c.record_call(1, b"a", &[0u8; 16]);
        c.record_blob(2, &[0u8; 16], b"b");
        assert_eq!(c.len(), 2);
        c.record_call(3, b"c", &[0u8; 16]);
        assert_eq!(c.len(), 1, "hit capacity: dropped and restarted");
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn clear_drops_everything() {
        let mut c = VerifyCache::new();
        c.record_call(1, b"a", &[0u8; 16]);
        c.record_state(2, [0u8; POLICY_STATE_LEN], 1);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.check_state(2, &[0u8; POLICY_STATE_LEN], 1));
    }

    #[test]
    fn stale_entries_are_counted_as_fallbacks() {
        let mut c = VerifyCache::new();
        c.record_call(0x1000, b"enc", &[7u8; 16]);
        c.record_blob(0x2000, &[9u8; 16], b"/etc/motd");
        c.record_state(0x3000, [3u8; POLICY_STATE_LEN], 5);
        assert!(!c.check_call(0x1000, b"end", &[7u8; 16]));
        assert!(!c.check_blob(0x2000, &[9u8; 16], b"/etc/pass"));
        assert!(!c.check_state(0x3000, &[3u8; POLICY_STATE_LEN], 6));
        assert_eq!(c.stats().stale_misses, 3);
        // A miss with no entry at all is not "stale".
        assert!(!c.check_call(0x9999, b"enc", &[7u8; 16]));
        assert_eq!(c.stats().stale_misses, 3);
    }

    #[test]
    fn future_epoch_state_entry_is_scrubbed() {
        let mut c = VerifyCache::new();
        let bytes = [3u8; POLICY_STATE_LEN];
        c.record_state(0x3000, bytes, 5);
        assert!(c.skew_state_epoch_for_fault(3));
        // Entry now claims epoch 8 while the counter is still 5:
        // impossible — scrubbed, never accepted, cold fallback.
        assert!(!c.check_state(0x3000, &bytes, 5));
        assert_eq!(c.stats().scrubs, 1);
        // The poisoned entry is gone; a fresh recording works again.
        c.record_state(0x3000, bytes, 5);
        assert!(c.check_state(0x3000, &bytes, 5));
    }

    #[test]
    fn corrupted_entries_never_accept() {
        let mut c = VerifyCache::new();
        let mac = [7u8; 16];
        c.record_call(0x1000, b"enc", &mac);
        c.record_blob(0x2000, &mac, b"/etc/motd");
        c.record_state(0x3000, [3u8; POLICY_STATE_LEN], 5);
        let mut kinds = std::collections::BTreeSet::new();
        for sel in 0..64u64 {
            let mut cc = c.clone();
            let kind = cc.corrupt_entry_for_fault(sel * 0x0101, 0x40).unwrap();
            kinds.insert(kind);
            assert!(!cc.check_call(0x1000, b"enc", &mac) || kind != "call");
            assert!(!cc.check_blob(0x2000, &mac, b"/etc/motd") || kind != "blob");
            assert!(
                !cc.check_state(0x3000, &[3u8; POLICY_STATE_LEN], 5) || kind != "state",
                "corrupted state accepted (sel {sel})"
            );
        }
        assert_eq!(kinds.len(), 3, "selector reaches all entry kinds");
        assert_eq!(
            VerifyCache::new().corrupt_entry_for_fault(0, 1),
            None,
            "empty cache has nothing to corrupt"
        );
    }

    #[test]
    fn shared_cache_keeps_pids_apart() {
        let mut shared = SharedVerifyCache::new();
        let mac = [7u8; 16];
        shared.pid_cache(1).record_call(0x1000, b"enc", &mac);
        shared
            .pid_cache(1)
            .record_state(0x3000, [3u8; POLICY_STATE_LEN], 5);
        // pid 2 never sees pid 1's entries, even for identical keys.
        assert!(!shared.pid_cache(2).check_call(0x1000, b"enc", &mac));
        assert!(!shared
            .pid_cache(2)
            .check_state(0x3000, &[3u8; POLICY_STATE_LEN], 5));
        // pid 1's own entries still hit.
        assert!(shared.pid_cache(1).check_call(0x1000, b"enc", &mac));
        assert_eq!(shared.pid_cache(1).state_epoch(), Some(5));
        assert_eq!(shared.pid_cache(2).state_epoch(), None);
    }

    #[test]
    fn shared_cache_drop_pid_is_isolated() {
        let mut shared = SharedVerifyCache::new();
        let mac = [7u8; 16];
        shared.pid_cache(1).record_call(0x1000, b"enc", &mac);
        shared.pid_cache(2).record_call(0x1000, b"enc", &mac);
        shared
            .pid_cache(2)
            .record_state(0x3000, [3u8; POLICY_STATE_LEN], 9);
        shared.drop_pid(1);
        assert!(shared.get(1).is_none(), "pid 1's namespace is gone");
        // pid 2's namespace (entries, epoch, stats) is untouched.
        assert!(shared.pid_cache(2).check_call(0x1000, b"enc", &mac));
        assert_eq!(shared.pid_cache(2).state_epoch(), Some(9));
        assert_eq!(shared.pids(), vec![2]);
    }

    #[test]
    fn shared_cache_corruption_targets_one_pid() {
        let mut shared = SharedVerifyCache::new();
        let mac = [7u8; 16];
        shared.pid_cache(1).record_call(0x1000, b"enc", &mac);
        shared.pid_cache(2).record_call(0x1000, b"enc", &mac);
        assert_eq!(shared.corrupt_pid_entry_for_fault(1, 0, 0x40), Some("call"));
        assert!(
            !shared.pid_cache(1).check_call(0x1000, b"enc", &mac),
            "victim falls back"
        );
        assert!(
            shared.pid_cache(2).check_call(0x1000, b"enc", &mac),
            "bystander still warm"
        );
        assert_eq!(shared.corrupt_pid_entry_for_fault(3, 0, 1), None);
        let agg = shared.stats();
        assert_eq!(agg.hits, 1);
        assert_eq!(agg.stale_misses, 1);
    }

    /// Two pids that map to the same shard, found by scanning upward from
    /// pid 1 under the default shard count.
    fn same_shard_pair() -> (u32, u32) {
        let first = 1u32;
        let shard = pid_shard(first, SharedVerifyCache::DEFAULT_SHARDS);
        let second = (2..)
            .find(|&p| pid_shard(p, SharedVerifyCache::DEFAULT_SHARDS) == shard)
            .expect("some pid shares shard 0's slot");
        (first, second)
    }

    /// Two pids that map to different shards.
    fn cross_shard_pair() -> (u32, u32) {
        let first = 1u32;
        let shard = pid_shard(first, SharedVerifyCache::DEFAULT_SHARDS);
        let second = (2..)
            .find(|&p| pid_shard(p, SharedVerifyCache::DEFAULT_SHARDS) != shard)
            .expect("pids spread over more than one shard");
        (first, second)
    }

    #[test]
    fn pid_shard_is_deterministic_total_and_spread() {
        for shards in [1usize, 3, 64, 1024] {
            for pid in 1..=2048u32 {
                let s = pid_shard(pid, shards);
                assert!(s < shards);
                assert_eq!(s, pid_shard(pid, shards), "pure function of (pid, count)");
            }
        }
        // Sequential pids do not pile onto one shard: 256 pids over 64
        // shards must populate a healthy majority of them.
        let used: std::collections::BTreeSet<usize> =
            (1..=256u32).map(|p| pid_shard(p, 64)).collect();
        assert!(used.len() >= 48, "only {} shards used", used.len());
    }

    #[test]
    fn bounded_draw_spreads_structured_selectors() {
        // The old `selector % total` sent the campaign's structured
        // selectors (small multiples) disproportionately to low indices.
        // The mixed draw must stay in range and reach every index from a
        // modest structured sweep.
        let bound = 7usize;
        let mut seen = std::collections::BTreeSet::new();
        for sel in 0..64u64 {
            let pick = bounded_draw(sel * 0x0101, bound);
            assert!(pick < bound);
            assert_eq!(pick, bounded_draw(sel * 0x0101, bound));
            seen.insert(pick);
        }
        assert_eq!(seen.len(), bound, "structured selectors reach all indices");
    }

    #[test]
    fn shared_cache_routes_pids_by_shard_and_lists_all() {
        let mut shared = SharedVerifyCache::new();
        assert_eq!(shared.shard_count(), SharedVerifyCache::DEFAULT_SHARDS);
        for pid in 1..=200u32 {
            shared
                .pid_cache(pid)
                .record_call(0x1000 + pid, b"enc", &[7u8; 16]);
        }
        assert_eq!(shared.pids(), (1..=200).collect::<Vec<u32>>());
        let per_shard: usize = (0..shared.shard_count()).map(|s| shared.shard_len(s)).sum();
        assert_eq!(per_shard, 200, "every namespace lives in exactly one shard");
        for pid in 1..=200u32 {
            assert_eq!(
                shared.shard_of(pid),
                pid_shard(pid, SharedVerifyCache::DEFAULT_SHARDS)
            );
            assert!(shared.get(pid).is_some());
        }
    }

    #[test]
    fn same_shard_neighbours_stay_isolated() {
        let (a, b) = same_shard_pair();
        assert_eq!(
            pid_shard(a, SharedVerifyCache::DEFAULT_SHARDS),
            pid_shard(b, SharedVerifyCache::DEFAULT_SHARDS)
        );
        let mac = [7u8; 16];
        let mut shared = SharedVerifyCache::new();
        // Capacity eviction in a's namespace never touches b's entries.
        *shared.pid_cache(a) = VerifyCache::with_capacity(2);
        shared.pid_cache(b).record_call(0x1000, b"keep", &mac);
        shared
            .pid_cache(b)
            .record_state(0x3000, [3u8; POLICY_STATE_LEN], 9);
        for site in 0..3u32 {
            shared.pid_cache(a).record_call(site, b"spam", &mac);
        }
        assert!(shared.pid_stats(a).evictions > 0, "a overflowed");
        assert!(shared.pid_cache(b).check_call(0x1000, b"keep", &mac));
        assert_eq!(shared.pid_cache(b).state_epoch(), Some(9));
        // Epoch scrub in a's namespace is scoped to a.
        shared
            .pid_cache(a)
            .record_state(0x3000, [1u8; POLICY_STATE_LEN], 4);
        assert!(shared.pid_cache(a).skew_state_epoch_for_fault(5));
        assert!(!shared
            .pid_cache(a)
            .check_state(0x3000, &[1u8; POLICY_STATE_LEN], 4));
        assert_eq!(shared.pid_stats(a).scrubs, 1);
        assert_eq!(shared.pid_stats(b).scrubs, 0);
        assert_eq!(shared.pid_cache(b).state_epoch(), Some(9));
        // Dropping a (kill / set_key) leaves its shard neighbour whole.
        shared.drop_pid(a);
        assert!(shared.get(a).is_none());
        assert!(shared.pid_cache(b).check_call(0x1000, b"keep", &mac));
        assert_eq!(shared.pids(), vec![b]);
    }

    #[test]
    fn cross_shard_pids_stay_isolated() {
        let (a, b) = cross_shard_pair();
        let mac = [7u8; 16];
        let mut shared = SharedVerifyCache::new();
        shared.pid_cache(a).record_call(0x1000, b"enc", &mac);
        shared.pid_cache(b).record_call(0x1000, b"enc", &mac);
        shared.drop_pid(a);
        assert!(shared.get(a).is_none());
        assert!(shared.pid_cache(b).check_call(0x1000, b"enc", &mac));
        let agg = shared.stats();
        assert_eq!(agg.hits, 1);
        assert_eq!(
            shared.shard_stats(shared.shard_of(b)).hits,
            1,
            "hit attributed to b's shard"
        );
        assert_eq!(shared.shard_stats(shared.shard_of(a)).hits, 0);
    }

    #[test]
    fn detach_attach_roundtrip_preserves_namespace() {
        let mut shared = SharedVerifyCache::new();
        let mac = [7u8; 16];
        shared.pid_cache(3).record_call(0x1000, b"enc", &mac);
        shared
            .pid_cache(3)
            .record_state(0x3000, [3u8; POLICY_STATE_LEN], 5);
        let probes_before = shared.probes();
        let mut local = shared.detach_pid(3);
        assert!(shared.get(3).is_none(), "namespace left the family");
        assert!(local.check_call(0x1000, b"enc", &mac));
        local.record_blob(0x2000, &mac, b"/etc/motd");
        shared.attach_pid(3, local);
        assert_eq!(
            shared.probes() - probes_before,
            2,
            "one detach + one attach"
        );
        assert!(shared.pid_cache(3).check_blob(0x2000, &mac, b"/etc/motd"));
        assert_eq!(shared.pid_cache(3).state_epoch(), Some(5));
        // Detaching a pid with no namespace yields a fresh one, exactly
        // like pid_cache's create-on-first-use.
        let fresh = shared.detach_pid(99);
        assert!(fresh.is_empty());
        shared.attach_pid(99, fresh);
        assert_eq!(shared.pids(), vec![3, 99]);
    }

    #[test]
    fn prop_counter_bump_invalidates_state_entry() {
        asc_testkit::check(0x5EED_0CAC, 200, |rng| {
            let mut c = VerifyCache::new();
            let epoch = rng.range_u64(0, 1 << 40);
            let ptr = rng.next_u32();
            let mut bytes = [0u8; POLICY_STATE_LEN];
            for b in bytes.iter_mut() {
                *b = rng.byte();
            }
            c.record_state(ptr, bytes, epoch);
            assert!(c.check_state(ptr, &bytes, epoch), "same epoch: hit");
            let bumped = epoch + rng.range_u64(1, 64);
            assert!(
                !c.check_state(ptr, &bytes, bumped),
                "any counter bump invalidates the entry"
            );
        });
    }

    #[test]
    fn prop_warm_accepts_exactly_the_recorded_pairs() {
        // Model check: under random interleavings of record / check /
        // epoch-bump / clear, a cache hit occurs exactly when the same
        // (key, bytes, tag) tuple was recorded and (for state) the epoch
        // is unchanged. Since only cold-verified pairs are ever recorded,
        // this makes the warm accept set equal to the cold one.
        asc_testkit::check(0x5EED_ACCE, 300, |rng| {
            let sites = [0x1000u32, 0x1008, 0x1010];
            let encs: [&[u8]; 3] = [b"alpha", b"bravo", b"charlie"];
            let macs = [[1u8; 16], [2u8; 16], [3u8; 16]];
            let ptrs = [0x3000u32, 0x3004];
            let mut shadow_calls: HashMap<u32, (Vec<u8>, Mac)> = HashMap::new();
            let mut shadow_blobs: HashMap<u32, (Vec<u8>, Mac)> = HashMap::new();
            let mut shadow_state: Option<(u32, [u8; POLICY_STATE_LEN], u64)> = None;
            let mut epoch = 0u64;
            let mut c = VerifyCache::new();
            for _ in 0..rng.range_usize(1, 40) {
                match rng.range_u32(0, 8) {
                    0 | 1 => {
                        let (s, e, m) = (*rng.pick(&sites), *rng.pick(&encs), *rng.pick(&macs));
                        c.record_call(s, e, &m);
                        shadow_calls.insert(s, (e.to_vec(), m));
                    }
                    2 => {
                        let (s, e, m) = (*rng.pick(&sites), *rng.pick(&encs), *rng.pick(&macs));
                        let expect = shadow_calls.get(&s) == Some(&(e.to_vec(), m));
                        assert_eq!(c.check_call(s, e, &m), expect, "call accept set diverged");
                    }
                    3 => {
                        let (a, e, m) = (*rng.pick(&ptrs), *rng.pick(&encs), *rng.pick(&macs));
                        c.record_blob(a, &m, e);
                        shadow_blobs.insert(a, (e.to_vec(), m));
                    }
                    4 => {
                        let (a, e, m) = (*rng.pick(&ptrs), *rng.pick(&encs), *rng.pick(&macs));
                        let expect = shadow_blobs.get(&a) == Some(&(e.to_vec(), m));
                        assert_eq!(c.check_blob(a, &m, e), expect, "blob accept set diverged");
                    }
                    5 => {
                        let ptr = *rng.pick(&ptrs);
                        let bytes = [rng.byte(); POLICY_STATE_LEN];
                        c.record_state(ptr, bytes, epoch);
                        shadow_state = Some((ptr, bytes, epoch));
                    }
                    6 => {
                        // The in-kernel counter advances (control-flow
                        // update): every older state recording is stale.
                        epoch += rng.range_u64(1, 4);
                    }
                    _ => {
                        let ptr = *rng.pick(&ptrs);
                        let bytes = shadow_state.map_or([0u8; POLICY_STATE_LEN], |(_, b, _)| b);
                        let expect = shadow_state == Some((ptr, bytes, epoch));
                        assert_eq!(
                            c.check_state(ptr, &bytes, epoch),
                            expect,
                            "state accept set diverged"
                        );
                    }
                }
            }
        });
    }
}
