//! The verified-call cache: a per-process fast path for repeated
//! authenticated system calls.
//!
//! CMAC is deterministic, so once the kernel has fully verified a tag over a
//! message it may remember the *(message, tag)* pair and later accept the
//! same pair again by byte comparison alone, skipping the AES work. The
//! cache holds three kinds of remembered verifications:
//!
//! * **call entries** — per call site, the encoded-call bytes and the call
//!   MAC that verified (§3.4 step 1);
//! * **blob entries** — per address, the contents and MAC of an
//!   authenticated string / pattern / predecessor set that verified
//!   (§3.4 step 2);
//! * **the state entry** — the exact `lastBlock ‖ lbMAC` bytes the kernel
//!   itself wrote (or verified) most recently, bound to the memory-checker
//!   counter value at that moment (§3.4 step 3).
//!
//! # Soundness
//!
//! The fast path never skips *reading* untrusted memory — it replaces the
//! AES recomputation with a byte comparison against a copy that passed full
//! verification earlier. Any divergence (tampered contents, swapped header,
//! different descriptor, forged MAC) fails the comparison and falls back to
//! the full CMAC path, which then rejects the call exactly as the cold path
//! would. The state entry is additionally bound to the in-kernel counter
//! *epoch*: the counter advances on every control-flow update, so a
//! snapshot of old state bytes can never match a cached entry from a later
//! epoch — replay still dies with `BadPolicyState` in the fallback path.
//! A cached acceptance is therefore exactly the set of inputs the cold path
//! accepts; the cache changes cycle accounting, never the accept set.

use std::collections::HashMap;

use asc_crypto::{Mac, POLICY_STATE_LEN};

/// Counters describing how the verified-call cache behaved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Call-MAC checks served by byte comparison (no AES).
    pub hits: u64,
    /// Call-MAC checks that ran the full CMAC.
    pub misses: u64,
    /// Authenticated-string / pattern / predecessor-set checks served by
    /// byte comparison.
    pub blob_hits: u64,
    /// Policy-state verifications skipped because the kernel wrote the
    /// exact bytes itself in the current counter epoch.
    pub state_hits: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
}

#[derive(Clone, Debug)]
struct CallEntry {
    encoding: Vec<u8>,
    mac: Mac,
}

#[derive(Clone, Debug)]
struct BlobEntry {
    contents: Vec<u8>,
    mac: Mac,
}

#[derive(Clone, Debug)]
struct StateEntry {
    lb_ptr: u32,
    bytes: [u8; POLICY_STATE_LEN],
    epoch: u64,
}

/// Per-process cache of verifications the kernel has already performed.
///
/// One of these lives next to each process's [`MemoryChecker`]
/// (`asc_crypto::MemoryChecker`) inside the kernel; the untrusted
/// application can influence it only through the memory bytes it presents,
/// which are always re-read and re-compared. See the module docs for the
/// soundness argument.
#[derive(Clone, Debug)]
pub struct VerifyCache {
    calls: HashMap<u32, CallEntry>,
    blobs: HashMap<u32, BlobEntry>,
    state: Option<StateEntry>,
    capacity: usize,
    stats: CacheStats,
}

impl Default for VerifyCache {
    fn default() -> Self {
        VerifyCache::new()
    }
}

impl VerifyCache {
    /// Default bound on cached call + blob entries.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        VerifyCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to `capacity` call + blob entries (the state
    /// entry is not counted). When an insert would exceed the bound the
    /// whole cache is dropped — crude, but eviction can never be a
    /// soundness question, only a performance one.
    pub fn with_capacity(capacity: usize) -> Self {
        VerifyCache {
            calls: HashMap::new(),
            blobs: HashMap::new(),
            state: None,
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Checks whether the call MAC for `site` can be accepted from cache:
    /// both the reconstructed encoding and the tag read from user memory
    /// must be byte-identical to the pair that fully verified earlier.
    /// Updates hit/miss statistics.
    pub fn check_call(&mut self, site: u32, encoding: &[u8], mac: &Mac) -> bool {
        let hit = self
            .calls
            .get(&site)
            .is_some_and(|e| e.mac == *mac && e.encoding == encoding);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Remembers a call-MAC pair that passed full verification.
    pub fn record_call(&mut self, site: u32, encoding: &[u8], mac: &Mac) {
        self.ensure_room();
        self.calls.insert(
            site,
            CallEntry {
                encoding: encoding.to_vec(),
                mac: *mac,
            },
        );
    }

    /// Checks whether an authenticated blob (string / pattern /
    /// predecessor set) at `addr` can be accepted from cache.
    pub fn check_blob(&mut self, addr: u32, mac: &Mac, contents: &[u8]) -> bool {
        let hit = self
            .blobs
            .get(&addr)
            .is_some_and(|e| e.mac == *mac && e.contents == contents);
        if hit {
            self.stats.blob_hits += 1;
        }
        hit
    }

    /// Remembers a blob that passed full verification.
    pub fn record_blob(&mut self, addr: u32, mac: &Mac, contents: &[u8]) {
        self.ensure_room();
        self.blobs.insert(
            addr,
            BlobEntry {
                contents: contents.to_vec(),
                mac: *mac,
            },
        );
    }

    /// Checks whether the policy-state cell can be accepted without an AES
    /// verification: the bytes must match what the kernel last wrote or
    /// verified *and* the in-kernel counter must still be at the epoch the
    /// entry was recorded under. A counter advance (any control-flow
    /// update) silently invalidates the entry.
    pub fn check_state(&mut self, lb_ptr: u32, bytes: &[u8], epoch: u64) -> bool {
        let hit = self
            .state
            .as_ref()
            .is_some_and(|s| s.lb_ptr == lb_ptr && s.epoch == epoch && s.bytes[..] == *bytes);
        if hit {
            self.stats.state_hits += 1;
        }
        hit
    }

    /// Remembers the policy-state bytes the kernel just wrote (or fully
    /// verified) at counter value `epoch`.
    pub fn record_state(&mut self, lb_ptr: u32, bytes: [u8; POLICY_STATE_LEN], epoch: u64) {
        self.state = Some(StateEntry {
            lb_ptr,
            bytes,
            epoch,
        });
    }

    /// Drops every entry (key change, exec, policy reload).
    pub fn clear(&mut self) {
        let dropped = (self.calls.len() + self.blobs.len()) as u64;
        self.stats.evictions += dropped;
        self.calls.clear();
        self.blobs.clear();
        self.state = None;
    }

    /// Cache behaviour counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of call + blob entries currently cached.
    pub fn len(&self) -> usize {
        self.calls.len() + self.blobs.len()
    }

    /// Whether the cache holds no call or blob entries.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty() && self.blobs.is_empty()
    }

    fn ensure_room(&mut self) {
        if self.calls.len() + self.blobs.len() >= self.capacity {
            self.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_entry_roundtrip() {
        let mut c = VerifyCache::new();
        let mac = [7u8; 16];
        assert!(!c.check_call(0x1000, b"enc", &mac), "empty cache misses");
        c.record_call(0x1000, b"enc", &mac);
        assert!(c.check_call(0x1000, b"enc", &mac));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn call_entry_rejects_any_divergence() {
        let mut c = VerifyCache::new();
        let mac = [7u8; 16];
        c.record_call(0x1000, b"enc", &mac);
        assert!(!c.check_call(0x1004, b"enc", &mac), "different site");
        assert!(!c.check_call(0x1000, b"end", &mac), "different encoding");
        let mut other = mac;
        other[15] ^= 1;
        assert!(!c.check_call(0x1000, b"enc", &other), "different tag");
    }

    #[test]
    fn blob_entry_rejects_tampered_contents() {
        let mut c = VerifyCache::new();
        let mac = [9u8; 16];
        c.record_blob(0x2000, &mac, b"/etc/motd");
        assert!(c.check_blob(0x2000, &mac, b"/etc/motd"));
        assert!(
            !c.check_blob(0x2000, &mac, b"/etc/pass"),
            "rewritten contents"
        );
        assert!(
            !c.check_blob(0x2004, &mac, b"/etc/motd"),
            "different address"
        );
        assert_eq!(c.stats().blob_hits, 1);
    }

    #[test]
    fn state_entry_bound_to_epoch() {
        let mut c = VerifyCache::new();
        let bytes = [3u8; POLICY_STATE_LEN];
        c.record_state(0x3000, bytes, 5);
        assert!(c.check_state(0x3000, &bytes, 5));
        assert!(!c.check_state(0x3000, &bytes, 6), "counter advanced: stale");
        assert!(!c.check_state(0x3004, &bytes, 5), "different cell");
        let mut forged = bytes;
        forged[0] ^= 1;
        assert!(!c.check_state(0x3000, &forged, 5), "different bytes");
        assert_eq!(c.stats().state_hits, 1);
    }

    #[test]
    fn capacity_overflow_clears() {
        let mut c = VerifyCache::with_capacity(2);
        c.record_call(1, b"a", &[0u8; 16]);
        c.record_blob(2, &[0u8; 16], b"b");
        assert_eq!(c.len(), 2);
        c.record_call(3, b"c", &[0u8; 16]);
        assert_eq!(c.len(), 1, "hit capacity: dropped and restarted");
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn clear_drops_everything() {
        let mut c = VerifyCache::new();
        c.record_call(1, b"a", &[0u8; 16]);
        c.record_state(2, [0u8; POLICY_STATE_LEN], 1);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.check_state(2, &[0u8; POLICY_STATE_LEN], 1));
    }
}
