//! Minimal JSON support for policy import/export.
//!
//! The workspace builds hermetically (no crates-io registry), so instead
//! of `serde`/`serde_json` the policy types serialise through this small
//! hand-rolled JSON value type. The layout mirrors what the serde derives
//! used to produce (externally tagged enums, maps keyed by call site), so
//! existing dumps remain readable.

use std::collections::BTreeMap;

use crate::policy::{ArgPolicy, ProgramPolicy, SyscallPolicy, MAX_ARGS};

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. `f64` represents every `u32` (and every integer below
    /// 2^53) exactly, which covers all values the policy types store.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved when printing.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Serialises with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, &mut out);
        out
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_pretty())
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into());
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(*esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        let ch = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unknown escape `\\{}`", *other as char)),
                }
            }
            Some(b) => {
                out.push(*b);
                *pos += 1;
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) if !n.is_finite() => out.push_str("null"),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner);
                write_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if fields.is_empty() => out.push_str("{}"),
        Value::Object(fields) => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                out.push_str(&inner);
                write_string(k, out);
                out.push_str(": ");
                write_value(v, indent + 1, out);
                out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn num(n: impl Into<f64>) -> Value {
    Value::Num(n.into())
}

impl ArgPolicy {
    /// Converts to the JSON representation (externally tagged, matching
    /// the former serde derive).
    pub fn to_value(&self) -> Value {
        match self {
            ArgPolicy::Any => Value::Str("Any".into()),
            ArgPolicy::Capability => Value::Str("Capability".into()),
            ArgPolicy::Immediate(v) => Value::Object(vec![("Immediate".into(), num(*v))]),
            ArgPolicy::ImmediateAddr(v) => Value::Object(vec![("ImmediateAddr".into(), num(*v))]),
            ArgPolicy::StringLit(bytes) => Value::Object(vec![(
                "StringLit".into(),
                Value::Array(bytes.iter().map(|b| num(*b)).collect()),
            )]),
            ArgPolicy::Pattern(p) => Value::Object(vec![("Pattern".into(), Value::Str(p.clone()))]),
        }
    }

    /// Parses the representation produced by [`ArgPolicy::to_value`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn from_value(value: &Value) -> Result<ArgPolicy, String> {
        match value {
            Value::Str(s) if s == "Any" => Ok(ArgPolicy::Any),
            Value::Str(s) if s == "Capability" => Ok(ArgPolicy::Capability),
            Value::Object(fields) if fields.len() == 1 => {
                let (tag, inner) = &fields[0];
                match tag.as_str() {
                    "Immediate" => Ok(ArgPolicy::Immediate(expect_u32(inner, "Immediate")?)),
                    "ImmediateAddr" => Ok(ArgPolicy::ImmediateAddr(expect_u32(
                        inner,
                        "ImmediateAddr",
                    )?)),
                    "StringLit" => {
                        let items = inner.as_array().ok_or("StringLit expects an array")?;
                        let bytes = items
                            .iter()
                            .map(|i| expect_u32(i, "StringLit byte").map(|v| v as u8))
                            .collect::<Result<Vec<u8>, String>>()?;
                        Ok(ArgPolicy::StringLit(bytes))
                    }
                    "Pattern" => Ok(ArgPolicy::Pattern(
                        inner
                            .as_str()
                            .ok_or("Pattern expects a string")?
                            .to_string(),
                    )),
                    other => Err(format!("unknown ArgPolicy variant `{other}`")),
                }
            }
            _ => Err("malformed ArgPolicy".into()),
        }
    }
}

fn expect_u32(value: &Value, what: &str) -> Result<u32, String> {
    value
        .as_u64()
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| format!("{what} expects a u32"))
}

impl SyscallPolicy {
    /// Converts to the JSON representation.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("syscall_nr".into(), num(self.syscall_nr)),
            ("call_site".into(), num(self.call_site)),
            ("block_id".into(), num(self.block_id)),
            (
                "args".into(),
                Value::Array(self.args.iter().map(ArgPolicy::to_value).collect()),
            ),
            (
                "predecessors".into(),
                match &self.predecessors {
                    None => Value::Null,
                    Some(preds) => Value::Array(preds.iter().map(|p| num(*p)).collect()),
                },
            ),
            (
                "returns_capability".into(),
                Value::Bool(self.returns_capability),
            ),
            (
                "revokes_capability".into(),
                Value::Bool(self.revokes_capability),
            ),
        ])
    }

    /// Parses the representation produced by [`SyscallPolicy::to_value`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn from_value(value: &Value) -> Result<SyscallPolicy, String> {
        let field = |k: &str| value.get(k).ok_or_else(|| format!("missing field `{k}`"));
        let args_val = field("args")?.as_array().ok_or("`args` must be an array")?;
        if args_val.len() != MAX_ARGS {
            return Err(format!("expected {MAX_ARGS} args, got {}", args_val.len()));
        }
        let args = args_val
            .iter()
            .map(ArgPolicy::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let predecessors = match field("predecessors")? {
            Value::Null => None,
            Value::Array(items) => Some(
                items
                    .iter()
                    .map(|i| expect_u32(i, "predecessor"))
                    .collect::<Result<std::collections::BTreeSet<u32>, _>>()?,
            ),
            _ => return Err("`predecessors` must be null or an array".into()),
        };
        Ok(SyscallPolicy {
            syscall_nr: expect_u32(field("syscall_nr")?, "syscall_nr")? as u16,
            call_site: expect_u32(field("call_site")?, "call_site")?,
            block_id: expect_u32(field("block_id")?, "block_id")?,
            args,
            predecessors,
            returns_capability: field("returns_capability")?
                .as_bool()
                .ok_or("`returns_capability` must be a bool")?,
            revokes_capability: field("revokes_capability")?
                .as_bool()
                .ok_or("`revokes_capability` must be a bool")?,
        })
    }

    /// Serialises to a JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// Parses a JSON document produced by [`SyscallPolicy::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax or schema error.
    pub fn from_json(text: &str) -> Result<SyscallPolicy, String> {
        SyscallPolicy::from_value(&Value::parse(text)?)
    }
}

impl ProgramPolicy {
    /// Converts to the JSON representation (policies keyed by decimal call
    /// site, as the former serde derive produced for the `BTreeMap`).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("program".into(), Value::Str(self.program.clone())),
            ("personality".into(), Value::Str(self.personality.clone())),
            (
                "policies".into(),
                Value::Object(
                    self.policies
                        .iter()
                        .map(|(site, p)| (site.to_string(), p.to_value()))
                        .collect(),
                ),
            ),
            (
                "undisassembled_regions".into(),
                num(self.undisassembled_regions as u32),
            ),
            (
                "warnings".into(),
                Value::Array(
                    self.warnings
                        .iter()
                        .map(|w| Value::Str(w.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the representation produced by [`ProgramPolicy::to_value`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn from_value(value: &Value) -> Result<ProgramPolicy, String> {
        let field = |k: &str| value.get(k).ok_or_else(|| format!("missing field `{k}`"));
        let policies_val = match field("policies")? {
            Value::Object(fields) => fields,
            _ => return Err("`policies` must be an object".into()),
        };
        let mut policies = BTreeMap::new();
        for (site, p) in policies_val {
            let site: u32 = site
                .parse()
                .map_err(|_| format!("bad call-site key `{site}`"))?;
            policies.insert(site, SyscallPolicy::from_value(p)?);
        }
        let warnings = field("warnings")?
            .as_array()
            .ok_or("`warnings` must be an array")?
            .iter()
            .map(|w| {
                w.as_str()
                    .map(str::to_string)
                    .ok_or("warning must be a string".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ProgramPolicy {
            program: field("program")?
                .as_str()
                .ok_or("`program` must be a string")?
                .into(),
            personality: field("personality")?
                .as_str()
                .ok_or("`personality` must be a string")?
                .into(),
            policies,
            undisassembled_regions: expect_u32(field("undisassembled_regions")?, "regions")?
                as usize,
            warnings,
        })
    }

    /// Serialises to a JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// Parses a JSON document produced by [`ProgramPolicy::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax or schema error.
    pub fn from_json(text: &str) -> Result<ProgramPolicy, String> {
        ProgramPolicy::from_value(&Value::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-3.5").unwrap(), Value::Num(-3.5));
        assert_eq!(
            Value::parse(r#""a\nbA""#).unwrap(),
            Value::Str("a\nbA".into())
        );
    }

    #[test]
    fn parse_nested() {
        let v = Value::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn reject_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("tru").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse(r#""\x""#).is_err());
    }

    #[test]
    fn pretty_roundtrip() {
        let v = Value::parse(r#"{"k": [1, "two", false], "empty": {}, "n": null}"#).unwrap();
        let pretty = v.to_pretty();
        assert_eq!(Value::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\"two\""));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("quote\" slash\\ nl\n tab\t ctrl\u{1}".into());
        assert_eq!(Value::parse(&v.to_pretty()).unwrap(), v);
    }
}
