//! Argument patterns with proof hints (§5.1).
//!
//! Patterns constrain dynamically computed string arguments (e.g. temp file
//! names) to shapes like `/tmp/*` or `/tmp/{foo,bar}*baz`. To keep the
//! kernel addition minimal, the *untrusted application* performs the match
//! and hands the kernel a **hint** — one number per `{...}` choice (the
//! alternative taken) and per `*` (the number of bytes matched). The kernel
//! then verifies the match with a single linear scan: program checking /
//! proof-carrying-code style, exactly the paper's worked example where
//! pattern `/tmp/{foo,bar}*baz` with argument `/tmp/foofoobaz` yields the
//! hint `(0, 3)`.

/// A parsed pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    elements: Vec<Elem>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Elem {
    /// Literal bytes that must match exactly.
    Lit(Vec<u8>),
    /// `*`: any sequence of bytes (length supplied by the hint).
    Star,
    /// `{a,b,c}`: one of several literal alternatives (index supplied by
    /// the hint).
    Choice(Vec<Vec<u8>>),
}

/// Error parsing a pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternError {
    /// `{` without matching `}`.
    UnclosedBrace,
    /// Nested `{` or a `*` inside braces.
    BadBraceContents,
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::UnclosedBrace => write!(f, "unclosed '{{' in pattern"),
            PatternError::BadBraceContents => write!(f, "invalid contents inside '{{}}'"),
        }
    }
}

impl std::error::Error for PatternError {}

impl Pattern {
    /// Parses pattern text.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError`] for malformed brace groups.
    pub fn parse(text: &str) -> Result<Pattern, PatternError> {
        let bytes = text.as_bytes();
        let mut elements = Vec::new();
        let mut lit = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'*' => {
                    if !lit.is_empty() {
                        elements.push(Elem::Lit(std::mem::take(&mut lit)));
                    }
                    elements.push(Elem::Star);
                    i += 1;
                }
                b'{' => {
                    if !lit.is_empty() {
                        elements.push(Elem::Lit(std::mem::take(&mut lit)));
                    }
                    let close = bytes[i + 1..]
                        .iter()
                        .position(|&b| b == b'}')
                        .ok_or(PatternError::UnclosedBrace)?
                        + i
                        + 1;
                    let body = &bytes[i + 1..close];
                    if body.iter().any(|&b| b == b'{' || b == b'*') {
                        return Err(PatternError::BadBraceContents);
                    }
                    let choices: Vec<Vec<u8>> =
                        body.split(|&b| b == b',').map(|s| s.to_vec()).collect();
                    if choices.is_empty() {
                        return Err(PatternError::BadBraceContents);
                    }
                    elements.push(Elem::Choice(choices));
                    i = close + 1;
                }
                b => {
                    lit.push(b);
                    i += 1;
                }
            }
        }
        if !lit.is_empty() {
            elements.push(Elem::Lit(lit));
        }
        Ok(Pattern { elements })
    }

    /// The pattern's canonical source text (stored in the authenticated
    /// string that protects it).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.elements {
            match e {
                Elem::Lit(l) => out.push_str(&String::from_utf8_lossy(l)),
                Elem::Star => out.push('*'),
                Elem::Choice(cs) => {
                    out.push('{');
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&String::from_utf8_lossy(c));
                    }
                    out.push('}');
                }
            }
        }
        out
    }

    /// Kernel-side verification: checks that `input` matches the pattern
    /// under `hint` in a single linear scan, consuming one hint entry per
    /// `{...}` or `*` in order. Both input and hint must be fully consumed.
    pub fn match_with_hint(&self, input: &[u8], hint: &[u32]) -> bool {
        let mut pos = 0usize;
        let mut h = 0usize;
        for e in &self.elements {
            match e {
                Elem::Lit(l) => {
                    if input.len() < pos + l.len() || input[pos..pos + l.len()] != l[..] {
                        return false;
                    }
                    pos += l.len();
                }
                Elem::Choice(cs) => {
                    let Some(&choice) = hint.get(h) else {
                        return false;
                    };
                    h += 1;
                    let Some(c) = cs.get(choice as usize) else {
                        return false;
                    };
                    if input.len() < pos + c.len() || input[pos..pos + c.len()] != c[..] {
                        return false;
                    }
                    pos += c.len();
                }
                Elem::Star => {
                    let Some(&n) = hint.get(h) else { return false };
                    h += 1;
                    if input.len() < pos + n as usize {
                        return false;
                    }
                    pos += n as usize;
                }
            }
        }
        pos == input.len() && h == hint.len()
    }

    /// Application-side hint production: finds a hint such that
    /// [`Pattern::match_with_hint`] accepts, or `None` if the input does not
    /// match. Backtracking search — this is the work the paper moves *out*
    /// of the kernel.
    pub fn produce_hint(&self, input: &[u8]) -> Option<Vec<u32>> {
        fn rec(elems: &[Elem], input: &[u8], pos: usize, hint: &mut Vec<u32>) -> bool {
            let Some((e, rest)) = elems.split_first() else {
                return pos == input.len();
            };
            match e {
                Elem::Lit(l) => {
                    input.len() >= pos + l.len()
                        && input[pos..pos + l.len()] == l[..]
                        && rec(rest, input, pos + l.len(), hint)
                }
                Elem::Choice(cs) => {
                    for (i, c) in cs.iter().enumerate() {
                        if input.len() >= pos + c.len() && input[pos..pos + c.len()] == c[..] {
                            hint.push(i as u32);
                            if rec(rest, input, pos + c.len(), hint) {
                                return true;
                            }
                            hint.pop();
                        }
                    }
                    false
                }
                Elem::Star => {
                    for n in 0..=(input.len() - pos) {
                        hint.push(n as u32);
                        if rec(rest, input, pos + n, hint) {
                            return true;
                        }
                        hint.pop();
                    }
                    false
                }
            }
        }
        let mut hint = Vec::new();
        rec(&self.elements, input, 0, &mut hint).then_some(hint)
    }
}

/// Convenience: whether `input` matches `pattern` at all (produce + verify).
pub fn match_pattern(pattern: &Pattern, input: &[u8]) -> bool {
    pattern.produce_hint(input).is_some()
}

/// Convenience: produce the hint for an input (application side).
pub fn produce_hint(pattern: &Pattern, input: &[u8]) -> Option<Vec<u32>> {
    pattern.produce_hint(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // Pattern "/tmp/{foo,bar}*baz", argument "/tmp/foofoobaz",
        // hint (0, 3).
        let p = Pattern::parse("/tmp/{foo,bar}*baz").unwrap();
        let hint = p.produce_hint(b"/tmp/foofoobaz").unwrap();
        assert_eq!(hint, vec![0, 3]);
        assert!(p.match_with_hint(b"/tmp/foofoobaz", &hint));
        // The bar alternative:
        let hint2 = p.produce_hint(b"/tmp/barXbaz").unwrap();
        assert_eq!(hint2, vec![1, 1]);
    }

    #[test]
    fn wrong_hint_rejected() {
        let p = Pattern::parse("/tmp/{foo,bar}*baz").unwrap();
        assert!(!p.match_with_hint(b"/tmp/foofoobaz", &[1, 3]));
        assert!(!p.match_with_hint(b"/tmp/foofoobaz", &[0, 2]));
        assert!(!p.match_with_hint(b"/tmp/foofoobaz", &[0]));
        assert!(!p.match_with_hint(b"/tmp/foofoobaz", &[0, 3, 0]));
        assert!(!p.match_with_hint(b"/etc/passwd", &[0, 3]));
    }

    #[test]
    fn simple_star_patterns() {
        let p = Pattern::parse("/tmp/*").unwrap();
        assert!(match_pattern(&p, b"/tmp/scratch123"));
        assert!(match_pattern(&p, b"/tmp/"));
        assert!(!match_pattern(&p, b"/etc/passwd"));
        let hint = produce_hint(&p, b"/tmp/x").unwrap();
        assert_eq!(hint, vec![1]);
    }

    #[test]
    fn literal_only() {
        let p = Pattern::parse("/dev/console").unwrap();
        assert!(p.match_with_hint(b"/dev/console", &[]));
        assert!(!p.match_with_hint(b"/dev/consol", &[]));
        assert!(!p.match_with_hint(b"/dev/console2", &[]));
    }

    #[test]
    fn hint_cannot_overrun_input() {
        let p = Pattern::parse("*x").unwrap();
        // Hint claims 100 bytes for * but input has 2.
        assert!(!p.match_with_hint(b"ax", &[100]));
        assert!(p.match_with_hint(b"ax", &[1]));
    }

    #[test]
    fn multiple_stars_backtrack() {
        let p = Pattern::parse("a*b*c").unwrap();
        let input = b"aXbXbYc";
        let hint = p.produce_hint(input).unwrap();
        assert!(p.match_with_hint(input, &hint));
    }

    #[test]
    fn parse_errors_and_roundtrip() {
        assert_eq!(
            Pattern::parse("/tmp/{foo"),
            Err(PatternError::UnclosedBrace)
        );
        assert_eq!(
            Pattern::parse("{a{b}}"),
            Err(PatternError::BadBraceContents)
        );
        assert_eq!(Pattern::parse("{a*b}"), Err(PatternError::BadBraceContents));
        let p = Pattern::parse("/tmp/{foo,bar}*baz").unwrap();
        assert_eq!(p.to_text(), "/tmp/{foo,bar}*baz");
        assert_eq!(Pattern::parse(&p.to_text()).unwrap(), p);
    }

    #[test]
    fn empty_choice_alternative_allowed() {
        // "{,x}" means optional "x".
        let p = Pattern::parse("a{,x}b").unwrap();
        assert!(match_pattern(&p, b"ab"));
        assert!(match_pattern(&p, b"axb"));
        assert!(!match_pattern(&p, b"ayb"));
    }
}
