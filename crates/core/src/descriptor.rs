//! The 32-bit policy descriptor (§3.2).
//!
//! The descriptor tells the kernel *which* properties of a system call its
//! policy constrains, so that one verification routine can handle every
//! policy variation. Bit layout (documented deviation: the paper does not
//! publish its exact layout, only that the descriptor is a 32-bit integer
//! with per-property bits):
//!
//! | bits | meaning |
//! |---|---|
//! | 0–5   | argument *i* constrained to an immediate value |
//! | 6–11  | argument *i* constrained to a string literal (authenticated string) |
//! | 12–17 | argument *i* constrained to match a pattern (§5.1) |
//! | 18–23 | argument *i* is a tracked capability (file descriptor, §5.3) |
//! | 24    | call site constrained |
//! | 25    | control-flow (predecessor set) constrained |
//! | 26    | return value is a new capability (e.g. `open`) |
//! | 27    | argument 0 revokes a capability (e.g. `close`) |

use crate::policy::MAX_ARGS;

/// The policy descriptor: a compact encoding of which properties the policy
/// constrains. Included in the authenticated call (register `R7`) and bound
/// by the call MAC, so an attacker cannot relax a policy by flipping bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PolicyDescriptor(pub u32);

const IMM_SHIFT: u32 = 0;
const STR_SHIFT: u32 = 6;
const PAT_SHIFT: u32 = 12;
const CAP_SHIFT: u32 = 18;
const CALL_SITE_BIT: u32 = 1 << 24;
const CONTROL_FLOW_BIT: u32 = 1 << 25;
const RETURNS_CAP_BIT: u32 = 1 << 26;
const REVOKES_CAP_BIT: u32 = 1 << 27;

fn arg_bit(shift: u32, i: usize) -> u32 {
    assert!(i < MAX_ARGS, "argument index {i} out of range");
    1 << (shift + i as u32)
}

impl PolicyDescriptor {
    /// The empty descriptor: nothing constrained beyond authentication
    /// itself.
    pub fn new() -> PolicyDescriptor {
        PolicyDescriptor(0)
    }

    /// Raw 32-bit value (what travels in register `R7`).
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Reconstructs from the raw register value.
    pub fn from_bits(bits: u32) -> PolicyDescriptor {
        PolicyDescriptor(bits)
    }

    /// Whether argument `i` is constrained to an immediate.
    pub fn arg_is_immediate(self, i: usize) -> bool {
        self.0 & arg_bit(IMM_SHIFT, i) != 0
    }

    /// Whether argument `i` is constrained to a string literal.
    pub fn arg_is_string(self, i: usize) -> bool {
        self.0 & arg_bit(STR_SHIFT, i) != 0
    }

    /// Whether argument `i` must match a pattern.
    pub fn arg_is_pattern(self, i: usize) -> bool {
        self.0 & arg_bit(PAT_SHIFT, i) != 0
    }

    /// Whether argument `i` is a tracked capability.
    pub fn arg_is_capability(self, i: usize) -> bool {
        self.0 & arg_bit(CAP_SHIFT, i) != 0
    }

    /// Whether argument `i` is constrained in any way.
    pub fn arg_constrained(self, i: usize) -> bool {
        self.arg_is_immediate(i)
            || self.arg_is_string(i)
            || self.arg_is_pattern(i)
            || self.arg_is_capability(i)
    }

    /// Whether the call site is constrained.
    pub fn call_site_constrained(self) -> bool {
        self.0 & CALL_SITE_BIT != 0
    }

    /// Whether the predecessor-set control-flow policy applies.
    pub fn control_flow_constrained(self) -> bool {
        self.0 & CONTROL_FLOW_BIT != 0
    }

    /// Whether the return value becomes a new capability.
    pub fn returns_capability(self) -> bool {
        self.0 & RETURNS_CAP_BIT != 0
    }

    /// Whether argument 0 revokes a capability.
    pub fn revokes_capability(self) -> bool {
        self.0 & REVOKES_CAP_BIT != 0
    }

    /// Sets the immediate bit for argument `i`.
    #[must_use]
    pub fn with_immediate_arg(self, i: usize) -> PolicyDescriptor {
        PolicyDescriptor(self.0 | arg_bit(IMM_SHIFT, i))
    }

    /// Sets the string bit for argument `i`.
    #[must_use]
    pub fn with_string_arg(self, i: usize) -> PolicyDescriptor {
        PolicyDescriptor(self.0 | arg_bit(STR_SHIFT, i))
    }

    /// Sets the pattern bit for argument `i`.
    #[must_use]
    pub fn with_pattern_arg(self, i: usize) -> PolicyDescriptor {
        PolicyDescriptor(self.0 | arg_bit(PAT_SHIFT, i))
    }

    /// Sets the capability bit for argument `i`.
    #[must_use]
    pub fn with_capability_arg(self, i: usize) -> PolicyDescriptor {
        PolicyDescriptor(self.0 | arg_bit(CAP_SHIFT, i))
    }

    /// Sets the call-site bit.
    #[must_use]
    pub fn with_call_site(self) -> PolicyDescriptor {
        PolicyDescriptor(self.0 | CALL_SITE_BIT)
    }

    /// Sets the control-flow bit.
    #[must_use]
    pub fn with_control_flow(self) -> PolicyDescriptor {
        PolicyDescriptor(self.0 | CONTROL_FLOW_BIT)
    }

    /// Sets the returns-capability bit.
    #[must_use]
    pub fn with_returns_capability(self) -> PolicyDescriptor {
        PolicyDescriptor(self.0 | RETURNS_CAP_BIT)
    }

    /// Sets the revokes-capability bit.
    #[must_use]
    pub fn with_revokes_capability(self) -> PolicyDescriptor {
        PolicyDescriptor(self.0 | REVOKES_CAP_BIT)
    }

    /// Checks internal consistency: each argument may carry at most one
    /// constraint kind.
    pub fn validate(self) -> Result<(), String> {
        for i in 0..MAX_ARGS {
            let kinds = [
                self.arg_is_immediate(i),
                self.arg_is_string(i),
                self.arg_is_pattern(i),
                self.arg_is_capability(i),
            ]
            .iter()
            .filter(|&&b| b)
            .count();
            if kinds > 1 {
                return Err(format!(
                    "argument {i} has {kinds} conflicting constraint kinds"
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for PolicyDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_bits() {
        let d = PolicyDescriptor::new()
            .with_call_site()
            .with_control_flow()
            .with_immediate_arg(1)
            .with_string_arg(0)
            .with_pattern_arg(2)
            .with_capability_arg(3)
            .with_returns_capability();
        let d2 = PolicyDescriptor::from_bits(d.bits());
        assert!(d2.call_site_constrained());
        assert!(d2.control_flow_constrained());
        assert!(d2.arg_is_immediate(1));
        assert!(!d2.arg_is_immediate(0));
        assert!(d2.arg_is_string(0));
        assert!(d2.arg_is_pattern(2));
        assert!(d2.arg_is_capability(3));
        assert!(d2.returns_capability());
        assert!(!d2.revokes_capability());
        assert!(d2.arg_constrained(0));
        assert!(!d2.arg_constrained(4));
        assert!(d2.validate().is_ok());
    }

    #[test]
    fn conflicting_kinds_rejected() {
        let d = PolicyDescriptor::new()
            .with_immediate_arg(0)
            .with_string_arg(0);
        assert!(d.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arg_index_bounds() {
        let _ = PolicyDescriptor::new().with_immediate_arg(6);
    }

    #[test]
    fn empty_descriptor() {
        let d = PolicyDescriptor::new();
        assert_eq!(d.bits(), 0);
        assert!(!d.call_site_constrained());
        assert!(d.validate().is_ok());
        assert_eq!(d.to_string(), "0x00000000");
    }
}
