//! The encoded policy / encoded call byte string (§3.3, §3.4).
//!
//! The installer builds this encoding from the *policy* (the "encoded
//! policy") and MACs it; the kernel rebuilds it from the *runtime state of
//! the call* (the "encoded call") and compares MACs. The two agree exactly
//! when the call complies with its policy, so a single construction serves
//! both sides — which is the property that lets the kernel stay tiny.
//!
//! Layout (concatenation, little-endian):
//!
//! ```text
//! syscall_nr     u16
//! descriptor     u32
//! call_site      u32
//! block_id       u32
//! per constrained argument, ascending index:
//!   Immediate    -> value   u32
//!   AuthString   -> addr u32 ‖ len u32 ‖ stringMAC 16 bytes
//!   Pattern      -> addr u32 ‖ len u32 ‖ patternMAC 16 bytes
//!   Capability   -> (nothing: the value is dynamic; the descriptor bit,
//!                    which *is* covered, forces the kernel-side check)
//! pred_set tuple (if control flow constrained):
//!                   addr u32 ‖ len u32 ‖ psMAC 16 bytes
//! lb_ptr         u32 (if control flow constrained)
//! ```
//!
//! Note the paper's subtlety, preserved here: for an authenticated string
//! the tuple `{address, length, stringMAC}` is covered by the call MAC, so
//! the attacker can neither retarget the pointer at a different AS nor
//! tamper with the length/MAC fields that precede the contents in memory.

use asc_crypto::{Mac, MacKey};

use crate::descriptor::PolicyDescriptor;

/// How one constrained argument appears in the encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodedArg {
    /// A constant value.
    Immediate(u32),
    /// The `{addr, len, mac}` tuple of an authenticated string literal.
    AuthString {
        /// Address of the string contents.
        addr: u32,
        /// Length of the contents.
        len: u32,
        /// MAC over the contents.
        mac: Mac,
    },
    /// The `{addr, len, mac}` tuple of an authenticated *pattern* (§5.1).
    Pattern {
        /// Address of the pattern text.
        addr: u32,
        /// Length of the pattern text.
        len: u32,
        /// MAC over the pattern text.
        mac: Mac,
    },
    /// A tracked capability: contributes no bytes.
    Capability,
}

/// Everything that goes into the encoded policy / encoded call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodedCall {
    /// System call number.
    pub syscall_nr: u16,
    /// The policy descriptor.
    pub descriptor: PolicyDescriptor,
    /// Call-site address.
    pub call_site: u32,
    /// Basic block id of the call.
    pub block_id: u32,
    /// Constrained arguments, as `(index, encoding)`, ascending by index.
    pub args: Vec<(usize, EncodedArg)>,
    /// Predecessor-set AS tuple, present iff control flow is constrained.
    pub pred_set: Option<(u32, u32, Mac)>,
    /// Address of the policy-state cell, present iff control flow is
    /// constrained.
    pub lb_ptr: Option<u32>,
}

/// Serialises an [`EncodedCall`] to the canonical byte string.
pub fn encode_call(call: &EncodedCall) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&call.syscall_nr.to_le_bytes());
    out.extend_from_slice(&call.descriptor.bits().to_le_bytes());
    out.extend_from_slice(&call.call_site.to_le_bytes());
    out.extend_from_slice(&call.block_id.to_le_bytes());
    for (_, arg) in &call.args {
        match arg {
            EncodedArg::Immediate(v) => out.extend_from_slice(&v.to_le_bytes()),
            EncodedArg::AuthString { addr, len, mac } | EncodedArg::Pattern { addr, len, mac } => {
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(mac);
            }
            EncodedArg::Capability => {}
        }
    }
    if let Some((addr, len, mac)) = &call.pred_set {
        out.extend_from_slice(&addr.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(mac);
    }
    if let Some(lb_ptr) = call.lb_ptr {
        out.extend_from_slice(&lb_ptr.to_le_bytes());
    }
    out
}

impl EncodedCall {
    /// Computes the call MAC over the canonical encoding.
    pub fn mac(&self, key: &MacKey) -> Mac {
        key.mac(&encode_call(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EncodedCall {
        EncodedCall {
            syscall_nr: 0x5c,
            descriptor: PolicyDescriptor::from_bits(0x0300_0002),
            call_site: 0x806c57b,
            block_id: 1234,
            args: vec![
                (1, EncodedArg::Immediate(2)),
                (
                    2,
                    EncodedArg::AuthString {
                        addr: 0x81adcde,
                        len: 0x12,
                        mac: [0xAB; 16],
                    },
                ),
            ],
            pred_set: Some((0x81ae000, 12, [0xCD; 16])),
            lb_ptr: Some(0x810c4ab),
        }
    }

    #[test]
    fn deterministic_and_structured() {
        let c = sample();
        let bytes = encode_call(&c);
        assert_eq!(encode_call(&c), bytes);
        // nr(2) + des(4) + site(4) + block(4) + imm(4) + as(24) + ps(24) + lb(4)
        assert_eq!(bytes.len(), 2 + 4 + 4 + 4 + 4 + 24 + 24 + 4);
        assert_eq!(&bytes[..2], &0x5cu16.to_le_bytes());
    }

    #[test]
    fn every_field_affects_the_mac() {
        let key = MacKey::from_seed(3);
        let base = sample().mac(&key);
        let variants: Vec<EncodedCall> = vec![
            {
                let mut c = sample();
                c.syscall_nr = 0x5d;
                c
            },
            {
                let mut c = sample();
                c.call_site += 8;
                c
            },
            {
                let mut c = sample();
                c.block_id += 1;
                c
            },
            {
                let mut c = sample();
                c.descriptor = PolicyDescriptor::from_bits(0);
                c
            },
            {
                let mut c = sample();
                c.args[0].1 = EncodedArg::Immediate(3);
                c
            },
            {
                let mut c = sample();
                c.args[1].1 = EncodedArg::AuthString {
                    addr: 0x9000000,
                    len: 0x12,
                    mac: [0xAB; 16],
                };
                c
            },
            {
                let mut c = sample();
                c.pred_set = Some((0x81ae000, 12, [0xCE; 16]));
                c
            },
            {
                let mut c = sample();
                c.lb_ptr = Some(0x810c4ac);
                c
            },
            {
                let mut c = sample();
                c.pred_set = None;
                c.lb_ptr = None;
                c
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(v.mac(&key), base, "variant {i} should change the MAC");
        }
    }

    #[test]
    fn capability_args_add_no_bytes() {
        let mut c = sample();
        let before = encode_call(&c).len();
        c.args.push((3, EncodedArg::Capability));
        assert_eq!(encode_call(&c).len(), before);
        // ... but the descriptor bit for them WOULD change the MAC.
    }

    #[test]
    fn mac_depends_on_key() {
        let c = sample();
        assert_ne!(c.mac(&MacKey::from_seed(1)), c.mac(&MacKey::from_seed(2)));
    }
}
