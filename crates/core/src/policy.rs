//! Logical system call policies (§2.1, §3.1).

use std::collections::{BTreeMap, BTreeSet};

use crate::descriptor::PolicyDescriptor;

/// Maximum number of system call arguments a policy can constrain
/// (registers `R1..=R6`).
pub const MAX_ARGS: usize = 6;

/// The constraint a policy places on one argument.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgPolicy {
    /// Unconstrained: any value is allowed.
    Any,
    /// Must equal this constant (a number, flag, or known file descriptor).
    Immediate(u32),
    /// Must equal this constant, which is an *address* into the binary
    /// (e.g. a pointer to a non-string object). The installer remaps it
    /// when rewriting moves sections; the kernel treats it exactly like
    /// [`ArgPolicy::Immediate`].
    ImmediateAddr(u32),
    /// Must be a pointer to exactly this string literal, protected at
    /// runtime by an authenticated string.
    StringLit(Vec<u8>),
    /// Must be a string matching this pattern (§5.1), e.g. `/tmp/*`.
    /// The pattern itself is protected by an authenticated string; the
    /// application supplies a proof hint that the kernel verifies linearly.
    Pattern(String),
    /// Must be a file descriptor previously returned by a syscall and not
    /// yet closed (§5.3 capability tracking).
    Capability,
}

impl ArgPolicy {
    /// Whether this argument contributes to the policy descriptor.
    pub fn is_constrained(&self) -> bool {
        !matches!(self, ArgPolicy::Any)
    }
}

/// The policy of one system call site — the unit the installer derives and
/// the kernel enforces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallPolicy {
    /// System call number (the value of `R0` at the trap).
    pub syscall_nr: u16,
    /// Address of the `syscall` instruction.
    pub call_site: u32,
    /// Basic block id containing the call. With the Frankenstein
    /// countermeasure enabled this includes the program id in the high bits.
    pub block_id: u32,
    /// Per-argument constraints.
    pub args: Vec<ArgPolicy>,
    /// Basic blocks whose system calls may immediately precede this one
    /// (`None` = control flow unconstrained). Block id 0 denotes program
    /// start.
    pub predecessors: Option<BTreeSet<u32>>,
    /// Whether the return value is a new capability (`open`, `socket`...).
    pub returns_capability: bool,
    /// Whether argument 0 revokes a capability (`close`).
    pub revokes_capability: bool,
}

impl SyscallPolicy {
    /// A policy constraining only number, call site and block id.
    pub fn new(syscall_nr: u16, call_site: u32, block_id: u32) -> SyscallPolicy {
        SyscallPolicy {
            syscall_nr,
            call_site,
            block_id,
            args: vec![ArgPolicy::Any; MAX_ARGS],
            predecessors: None,
            returns_capability: false,
            revokes_capability: false,
        }
    }

    /// Sets the constraint for argument `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= MAX_ARGS`.
    #[must_use]
    pub fn with_arg(mut self, i: usize, policy: ArgPolicy) -> SyscallPolicy {
        assert!(i < MAX_ARGS, "argument index {i} out of range");
        self.args[i] = policy;
        self
    }

    /// Sets the predecessor set.
    #[must_use]
    pub fn with_predecessors(mut self, preds: impl IntoIterator<Item = u32>) -> SyscallPolicy {
        self.predecessors = Some(preds.into_iter().collect());
        self
    }

    /// Marks the return value as a new capability.
    #[must_use]
    pub fn with_returns_capability(mut self) -> SyscallPolicy {
        self.returns_capability = true;
        self
    }

    /// Marks argument 0 as revoking a capability.
    #[must_use]
    pub fn with_revokes_capability(mut self) -> SyscallPolicy {
        self.revokes_capability = true;
        self
    }

    /// Derives the policy descriptor for this policy. The call site is
    /// always constrained in this prototype (mirroring §4.2: "the system
    /// call site and call number are always protected by the MAC").
    pub fn descriptor(&self) -> PolicyDescriptor {
        let mut d = PolicyDescriptor::new().with_call_site();
        for (i, arg) in self.args.iter().enumerate() {
            d = match arg {
                ArgPolicy::Any => d,
                ArgPolicy::Immediate(_) | ArgPolicy::ImmediateAddr(_) => d.with_immediate_arg(i),
                ArgPolicy::StringLit(_) => d.with_string_arg(i),
                ArgPolicy::Pattern(_) => d.with_pattern_arg(i),
                ArgPolicy::Capability => d.with_capability_arg(i),
            };
        }
        if self.predecessors.is_some() {
            d = d.with_control_flow();
        }
        if self.returns_capability {
            d = d.with_returns_capability();
        }
        if self.revokes_capability {
            d = d.with_revokes_capability();
        }
        d
    }

    /// Number of constrained arguments.
    pub fn constrained_args(&self) -> usize {
        self.args.iter().filter(|a| a.is_constrained()).count()
    }

    /// Serialises the predecessor set to the byte layout stored in its
    /// authenticated string: each block id as 4 bytes LE, ascending.
    pub fn predecessor_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(preds) = &self.predecessors {
            for p in preds {
                out.extend_from_slice(&p.to_le_bytes());
            }
        }
        out
    }

    /// Parses a predecessor set from its authenticated-string byte layout.
    pub fn parse_predecessor_bytes(bytes: &[u8]) -> Option<BTreeSet<u32>> {
        if !bytes.len().is_multiple_of(4) {
            return None;
        }
        Some(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect(),
        )
    }
}

/// The overall policy of a program: one [`SyscallPolicy`] per call site,
/// plus program-level metadata. This is what the installer's *policy
/// generation* phase produces and what the Table 1–3 experiments inspect.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramPolicy {
    /// Program name (for reports).
    pub program: String,
    /// OS personality the policy was generated for ("linux" / "openbsd").
    pub personality: String,
    /// Policies keyed by call site address.
    pub policies: BTreeMap<u32, SyscallPolicy>,
    /// Call sites the analysis could not disassemble (reported to the
    /// administrator, like PLTO's warning for OpenBSD `close`).
    pub undisassembled_regions: usize,
    /// Names of syscalls the analysis knows exist in unreachable/
    /// undisassembled code, for diagnostics.
    pub warnings: Vec<String>,
}

impl ProgramPolicy {
    /// A fresh, empty program policy.
    pub fn new(program: impl Into<String>, personality: impl Into<String>) -> ProgramPolicy {
        ProgramPolicy {
            program: program.into(),
            personality: personality.into(),
            ..ProgramPolicy::default()
        }
    }

    /// Adds a per-site policy.
    pub fn insert(&mut self, policy: SyscallPolicy) {
        self.policies.insert(policy.call_site, policy);
    }

    /// The set of distinct syscall numbers the policy permits — the number
    /// Table 1 counts.
    pub fn distinct_syscalls(&self) -> BTreeSet<u16> {
        self.policies.values().map(|p| p.syscall_nr).collect()
    }

    /// Number of call sites (Table 3's `sites` column).
    pub fn sites(&self) -> usize {
        self.policies.len()
    }

    /// Iterates over policies in call-site order.
    pub fn iter(&self) -> impl Iterator<Item = &SyscallPolicy> {
        self.policies.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_derivation() {
        let p = SyscallPolicy::new(5, 0x1000, 3)
            .with_arg(0, ArgPolicy::StringLit(b"/etc/motd".to_vec()))
            .with_arg(1, ArgPolicy::Immediate(0))
            .with_arg(2, ArgPolicy::Pattern("/tmp/*".into()))
            .with_predecessors([1u32, 2])
            .with_returns_capability();
        let d = p.descriptor();
        assert!(d.call_site_constrained());
        assert!(d.arg_is_string(0));
        assert!(d.arg_is_immediate(1));
        assert!(d.arg_is_pattern(2));
        assert!(!d.arg_constrained(3));
        assert!(d.control_flow_constrained());
        assert!(d.returns_capability());
        assert_eq!(p.constrained_args(), 3);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn predecessor_bytes_roundtrip() {
        let p = SyscallPolicy::new(1, 0, 9).with_predecessors([3u32, 1, 2, 3]);
        let bytes = p.predecessor_bytes();
        assert_eq!(bytes.len(), 12); // deduplicated
        let parsed = SyscallPolicy::parse_predecessor_bytes(&bytes).unwrap();
        assert_eq!(parsed, [1u32, 2, 3].into_iter().collect());
        assert!(SyscallPolicy::parse_predecessor_bytes(&bytes[..5]).is_none());
    }

    #[test]
    fn empty_predecessors_vs_none() {
        let none = SyscallPolicy::new(1, 0, 9);
        assert!(none.predecessors.is_none());
        assert!(!none.descriptor().control_flow_constrained());
        let empty = SyscallPolicy::new(1, 0, 9).with_predecessors(std::iter::empty::<u32>());
        assert!(empty.descriptor().control_flow_constrained());
        assert!(empty.predecessor_bytes().is_empty());
    }

    #[test]
    fn program_policy_counts() {
        let mut pp = ProgramPolicy::new("bison", "linux");
        pp.insert(SyscallPolicy::new(4, 0x1000, 1));
        pp.insert(SyscallPolicy::new(4, 0x1100, 2));
        pp.insert(SyscallPolicy::new(5, 0x1200, 3));
        assert_eq!(pp.sites(), 3);
        assert_eq!(pp.distinct_syscalls().len(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let p = SyscallPolicy::new(5, 0x1000, 3)
            .with_arg(0, ArgPolicy::StringLit(b"/x".to_vec()))
            .with_predecessors([1u32]);
        let json = p.to_json();
        let back = SyscallPolicy::from_json(&json).unwrap();
        assert_eq!(back, p);
    }
}
