//! The authenticated rewritten-site set behind syscall-origin privilege.
//!
//! The per-call MAC authenticates every call the installer *rewrote* —
//! but it says nothing about a trap the installer never saw. An attacker
//! who jumps to a raw `SYSCALL` gadget (a stray opcode in data, an
//! un-disassemblable stub, injected code on a pre-NX stack) traps from a
//! pc with no policy at all, and the verifier's only leverage is that
//! the attacker cannot *forge* one. Origin privilege closes the gap from
//! the other side: the installer records the exact set of pcs it
//! rewrote, and the kernel fail-stops any trap whose pc is outside the
//! set — *before* attempting MAC verification, under every tier.
//! `SYSCALL` becomes a privilege of rewritten sites, not a right of
//! arbitrary code.
//!
//! The serialized set is embedded in the installed artifact's
//! `.ascsites` section as a sorted pc list with a trailing CMAC keyed by
//! the administrator key — exactly the `.ascflow` scheme — so a tampered
//! or widened registry is rejected at load time. The attacker cannot
//! register a gadget: doing so requires producing a fresh MAC over the
//! extended list, which requires the key.

use std::collections::BTreeSet;

use asc_crypto::{MacKey, MAC_LEN};

/// Why serialized site-registry bytes were rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SitesParseError {
    /// The byte string was shorter than its header + pcs + MAC claim.
    Truncated,
    /// The trailing MAC did not verify against the pc bytes.
    BadMac,
}

impl std::fmt::Display for SitesParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SitesParseError::Truncated => write!(f, "site registry bytes truncated"),
            SitesParseError::BadMac => write!(f, "site registry MAC mismatch"),
        }
    }
}

impl std::error::Error for SitesParseError {}

/// The rewritten-site registry: the set of pcs of `SYSCALL` instructions
/// the installer authenticated. A trap from any other pc is a kill.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteRegistry {
    pcs: BTreeSet<u32>,
}

impl SiteRegistry {
    /// An empty registry (every trap is a violation).
    pub fn new() -> SiteRegistry {
        SiteRegistry::default()
    }

    /// Registers the `SYSCALL` instruction at `pc`.
    pub fn insert(&mut self, pc: u32) {
        self.pcs.insert(pc);
    }

    /// Whether a trap from `pc` is privileged.
    pub fn contains(&self, pc: u32) -> bool {
        self.pcs.contains(&pc)
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the registry has no sites.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// The registered pcs in sorted order.
    pub fn pcs(&self) -> impl Iterator<Item = u32> + '_ {
        self.pcs.iter().copied()
    }

    /// The canonical pc bytes: `count: u32 LE` then each pc as `u32 LE`
    /// in sorted order.
    fn pc_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(4 + 4 * self.pcs.len());
        bytes.extend_from_slice(&(self.pcs.len() as u32).to_le_bytes());
        for pc in &self.pcs {
            bytes.extend_from_slice(&pc.to_le_bytes());
        }
        bytes
    }

    /// Serializes the registry: canonical pc bytes followed by a 16-byte
    /// MAC over them under `key`.
    pub fn to_bytes(&self, key: &MacKey) -> Vec<u8> {
        let mut bytes = self.pc_bytes();
        let mac = key.mac(&bytes);
        bytes.extend_from_slice(&mac);
        bytes
    }

    /// Parses and authenticates serialized bytes produced by
    /// [`SiteRegistry::to_bytes`]. Trailing padding after the MAC is
    /// ignored, so the bytes may come straight from a loaded section.
    pub fn parse(bytes: &[u8], key: &MacKey) -> Result<SiteRegistry, SitesParseError> {
        if bytes.len() < 4 {
            return Err(SitesParseError::Truncated);
        }
        let count = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        let pcs_end = 4 + 4 * count;
        let mac_end = pcs_end + MAC_LEN;
        if bytes.len() < mac_end {
            return Err(SitesParseError::Truncated);
        }
        let mut mac = [0u8; MAC_LEN];
        mac.copy_from_slice(&bytes[pcs_end..mac_end]);
        if !key.verify(&bytes[..pcs_end], &mac) {
            return Err(SitesParseError::BadMac);
        }
        let mut registry = SiteRegistry::new();
        for i in 0..count {
            let off = 4 + 4 * i;
            registry.insert(u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()));
        }
        Ok(registry)
    }
}

impl FromIterator<u32> for SiteRegistry {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> SiteRegistry {
        SiteRegistry {
            pcs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SiteRegistry {
        let mut r = SiteRegistry::new();
        r.insert(0x1000);
        r.insert(0x1048);
        r.insert(0x2f30);
        r
    }

    #[test]
    fn membership() {
        let r = sample();
        assert!(r.contains(0x1000));
        assert!(r.contains(0x2f30));
        assert!(!r.contains(0x1004), "unregistered pc rejected");
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn round_trips_under_the_right_key() {
        let key = MacKey::from_seed(0x517E);
        let r = sample();
        let bytes = r.to_bytes(&key);
        assert_eq!(bytes.len(), 4 + 4 * r.len() + MAC_LEN);
        let parsed = SiteRegistry::parse(&bytes, &key).expect("authentic bytes parse");
        assert_eq!(parsed, r);
        // Trailing padding (section alignment) is tolerated.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0u8; 32]);
        assert_eq!(SiteRegistry::parse(&padded, &key).expect("padded"), r);
    }

    #[test]
    fn tampered_or_miskeyed_bytes_rejected() {
        let key = MacKey::from_seed(0x517E);
        let r = sample();
        let bytes = r.to_bytes(&key);
        let wrong = MacKey::from_seed(0x517F);
        assert_eq!(
            SiteRegistry::parse(&bytes, &wrong),
            Err(SitesParseError::BadMac)
        );
        // Flip one pc byte: the widened registry must not authenticate —
        // an attacker cannot smuggle a gadget pc into the set.
        let mut forged = bytes.clone();
        forged[5] ^= 1;
        assert_eq!(
            SiteRegistry::parse(&forged, &key),
            Err(SitesParseError::BadMac)
        );
        assert_eq!(
            SiteRegistry::parse(&bytes[..7], &key),
            Err(SitesParseError::Truncated)
        );
    }

    #[test]
    fn empty_registry_serializes() {
        let key = MacKey::from_seed(1);
        let r = SiteRegistry::new();
        let parsed = SiteRegistry::parse(&r.to_bytes(&key), &key).expect("empty parses");
        assert!(parsed.is_empty());
        assert!(!parsed.contains(0));
    }

    #[test]
    fn collects_from_iterator() {
        let r: SiteRegistry = [0x30u32, 0x10, 0x20, 0x10].into_iter().collect();
        assert_eq!(r.len(), 3, "duplicates collapse");
        assert_eq!(r.pcs().collect::<Vec<_>>(), vec![0x10, 0x20, 0x30]);
    }
}
