//! The paper's core contribution as a library: authenticated system call
//! policies, the policy descriptor, encoded policies/calls, the call MAC,
//! and the kernel-side verification algorithm.
//!
//! The division of labour mirrors the paper exactly:
//!
//! * the **trusted installer** (`asc-installer`) builds a
//!   [`SyscallPolicy`] per call site, encodes it with [`encoding`], MACs it
//!   with the installation key, and embeds descriptor + MAC + authenticated
//!   strings in the binary;
//! * the **kernel** (`asc-kernel`) reconstructs the encoding from the
//!   *runtime* values at trap time and runs [`verify::verify_call`], which
//!   implements the three checks of §3.4 (call MAC, string integrity,
//!   control flow) plus the §5 extensions (argument patterns with proof
//!   hints, capability tracking bits);
//! * the **application** holds all of this data but, lacking the key,
//!   cannot forge any of it.
//!
//! # Example: the policy from §3.1
//!
//! ```
//! use asc_core::{ArgPolicy, SyscallPolicy};
//!
//! // open("/dev/console", 5) from one call site.
//! let policy = SyscallPolicy::new(5 /* SYS_open */, 0x806c462, 17 /* block */)
//!     .with_arg(0, ArgPolicy::StringLit(b"/dev/console".to_vec()))
//!     .with_arg(1, ArgPolicy::Immediate(5))
//!     .with_predecessors([12u32]);
//! let des = policy.descriptor();
//! assert!(des.call_site_constrained());
//! assert!(des.control_flow_constrained());
//! assert!(des.arg_is_string(0));
//! assert!(des.arg_is_immediate(1));
//! ```

pub mod cache;
pub mod descriptor;
pub mod encoding;
pub mod flow;
pub mod json;
pub mod pattern;
pub mod policy;
pub mod sites;
pub mod verify;

pub use cache::{mix64, pid_shard, CacheStats, SharedVerifyCache, VerifyCache};
pub use descriptor::PolicyDescriptor;
pub use encoding::{encode_call, EncodedArg, EncodedCall};
pub use flow::{FlowGraph, FlowParseError, FLOW_START};
pub use pattern::{match_pattern, produce_hint, Pattern, PatternError};
pub use policy::{ArgPolicy, ProgramPolicy, SyscallPolicy, MAX_ARGS};
pub use sites::{SiteRegistry, SitesParseError};
pub use verify::{
    verify_call, verify_call_cached, verify_call_hooked, verify_call_traced, AuthCallRegs,
    UserMemory, VerifyHooks, VerifyOutcome, Violation,
};
