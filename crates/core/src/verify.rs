//! Kernel-side system call checking (§3.4).
//!
//! [`verify_call`] implements the three checks the paper adds to the trap
//! handler — call MAC, authenticated-string integrity, control flow — plus
//! the §5 extensions (patterns with proof hints, capability bits). It is
//! written against the small [`UserMemory`] abstraction so it can be tested
//! exhaustively here and reused verbatim by the simulated kernel.
//!
//! The function also *meters* the cryptographic work it performs
//! ([`VerifyOutcome::aes_blocks`]): the kernel's cycle model charges
//! verification cost from these counts, which is how the simulator
//! reproduces the paper's ≈4,000-cycle per-call overhead from first
//! principles instead of hard-coding it. The counts are *measured* — the
//! key's AES block counter is snapshotted around the verification — so a
//! cached fast path ([`verify_call_cached`]) that skips recomputation is
//! charged only for the blocks it actually ran.

use asc_crypto::{MacKey, MemoryChecker, PolicyState, MAC_LEN, POLICY_STATE_LEN};
use asc_trace::{CacheDecision, CallMeter, CheckKind, CheckRecord, ReasonCode};

use crate::cache::{CacheStats, VerifyCache};
use crate::descriptor::PolicyDescriptor;
use crate::encoding::{encode_call, EncodedArg, EncodedCall};
use crate::pattern::Pattern;
use crate::policy::{SyscallPolicy, MAX_ARGS};

/// Longest string / predecessor set / pattern the kernel will read from
/// user space (defence against the attacker-chosen-length DoS of §3.2).
pub const MAX_AS_LEN: u32 = 4096;

/// Header bytes preceding the contents of an authenticated string in
/// memory: `len (4)` + `mac (16)`.
const AS_HEADER: u32 = 20;

/// The register file of an authenticated call, as seen by the trap handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuthCallRegs {
    /// `R0`: system call number.
    pub nr: u32,
    /// The PC of the `syscall` instruction (the kernel derives this from
    /// the trap, not from a register — it cannot be forged).
    pub call_site: u32,
    /// `R1..=R6`: the ordinary arguments.
    pub args: [u32; MAX_ARGS],
    /// `R7`: the policy descriptor.
    pub pol_des: u32,
    /// `R8`: the basic block id of this call.
    pub block_id: u32,
    /// `R9`: pointer to the predecessor-set AS contents.
    pub pred_set_ptr: u32,
    /// `R10`: pointer to the policy-state cell (`lastBlock ‖ lbMAC`).
    pub lb_ptr: u32,
    /// `R11`: pointer to the 16-byte call MAC.
    pub call_mac_ptr: u32,
    /// `R12`: pointer to the pattern extras block (pattern AS pointers and
    /// proof hints), 0 when no pattern arguments exist.
    pub hint_ptr: u32,
}

/// Read/write access to the trapping process's memory.
pub trait UserMemory {
    /// Reads a 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`Violation::MemoryFault`] if the address is not mapped.
    fn read_u32(&self, addr: u32) -> Result<u32, Violation>;

    /// Reads `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Violation::MemoryFault`] if the range is not mapped.
    fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, Violation>;

    /// Writes bytes (used for the policy-state update).
    ///
    /// # Errors
    ///
    /// Returns [`Violation::MemoryFault`] if the range is not mapped.
    fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Violation>;

    /// Reads a NUL-terminated string of at most `max` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Violation::MemoryFault`] on unmapped memory or a missing
    /// terminator.
    fn read_cstr(&self, addr: u32, max: u32) -> Result<Vec<u8>, Violation> {
        let mut out = Vec::new();
        for i in 0..max {
            let word = self.read_bytes(addr + i, 1)?;
            if word[0] == 0 {
                return Ok(out);
            }
            out.push(word[0]);
        }
        Err(Violation::MemoryFault { addr: addr + max })
    }
}

/// Why the kernel rejected a system call. Any of these terminates the
/// process (the paper's fail-stop behaviour) and is logged for the
/// administrator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The call MAC did not match the encoded call: the call was forged or
    /// some MAC-covered property (number, site, descriptor, constrained
    /// argument, AS tuple, block id, state pointer) was tampered with.
    BadCallMac,
    /// The policy descriptor carries conflicting constraint kinds.
    BadDescriptor,
    /// An authenticated string argument's contents did not match its MAC
    /// (e.g. the non-control-data attack that rewrites `/bin/ls` into
    /// `/bin/sh`).
    BadStringMac {
        /// Index of the offending argument.
        arg: usize,
    },
    /// A string/pattern/predecessor-set length field exceeded
    /// [`MAX_AS_LEN`].
    StringTooLong {
        /// Index of the offending argument (`usize::MAX` for the
        /// predecessor set).
        arg: usize,
    },
    /// The pattern AS failed verification or did not parse.
    BadPattern {
        /// Index of the offending argument.
        arg: usize,
    },
    /// The argument did not match its pattern under the supplied hint.
    PatternMismatch {
        /// Index of the offending argument.
        arg: usize,
    },
    /// The predecessor-set bytes were not a whole number of block ids.
    MalformedPredecessorSet,
    /// The policy-state MAC (`lbMAC`) did not verify against the in-kernel
    /// counter: the state was tampered with or replayed.
    BadPolicyState,
    /// `lastBlock` was not in the predecessor set: the program executed
    /// system calls in an order its call graph does not allow (mimicry /
    /// Frankenstein attacks land here).
    NotInPredecessorSet {
        /// The (authentic) last block observed.
        last_block: u32,
    },
    /// A capability-tracked argument was not an active capability.
    CapabilityViolation {
        /// Index of the offending argument.
        arg: usize,
        /// The file descriptor presented.
        fd: u32,
    },
    /// User memory could not be read/written where the call claimed data
    /// lived.
    MemoryFault {
        /// The faulting address.
        addr: u32,
    },
    /// The `(last syscall, this syscall)` transition is not an edge of the
    /// installed syscall-flow digraph (the SFIP tier's check): system
    /// calls executed in an order the program's call graph never produces.
    BadFlowEdge {
        /// Syscall number of the previously verified call
        /// ([`crate::flow::FLOW_START`] at program start).
        from: u16,
        /// Raw trapped syscall number of this call.
        to: u16,
    },
    /// The trap originated from a pc the installer never rewrote: the
    /// `SYSCALL` instruction is a raw gadget outside the authenticated
    /// site set (`.ascsites`), so no per-call policy even exists for it.
    /// Killed before the MAC path — `SYSCALL` is a privilege of rewritten
    /// sites, not a right of arbitrary code.
    UnrewrittenSite {
        /// The pc of the trapping `SYSCALL` instruction.
        pc: u32,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::BadCallMac => write!(f, "call MAC mismatch"),
            Violation::BadDescriptor => write!(f, "malformed policy descriptor"),
            Violation::BadStringMac { arg } => write!(f, "string MAC mismatch on argument {arg}"),
            Violation::StringTooLong { arg } if *arg == usize::MAX => {
                write!(f, "oversized predecessor set")
            }
            Violation::StringTooLong { arg } => write!(f, "oversized string on argument {arg}"),
            Violation::BadPattern { arg } => write!(f, "bad pattern on argument {arg}"),
            Violation::PatternMismatch { arg } => write!(f, "pattern mismatch on argument {arg}"),
            Violation::MalformedPredecessorSet => write!(f, "malformed predecessor set"),
            Violation::BadPolicyState => write!(f, "policy state MAC mismatch"),
            Violation::NotInPredecessorSet { last_block } => {
                write!(
                    f,
                    "control-flow violation: last block {last_block} not a predecessor"
                )
            }
            Violation::CapabilityViolation { arg, fd } => {
                write!(f, "capability violation: argument {arg} fd {fd} not active")
            }
            Violation::MemoryFault { addr } => write!(f, "memory fault at {addr:#x}"),
            Violation::BadFlowEdge { from, to } => {
                write!(
                    f,
                    "flow violation: syscall transition {from} -> {to} not in digraph"
                )
            }
            Violation::UnrewrittenSite { pc } => {
                write!(f, "origin violation: trap from unrewritten site {pc:#x}")
            }
        }
    }
}

impl std::error::Error for Violation {}

impl Violation {
    /// The machine-readable [`ReasonCode`] for this violation (argument
    /// details folded away) — what campaigns and tests classify on instead
    /// of substring-matching the [`Display`](std::fmt::Display) rendering.
    pub fn reason_code(&self) -> ReasonCode {
        match self {
            Violation::BadCallMac => ReasonCode::BadCallMac,
            Violation::BadDescriptor => ReasonCode::BadDescriptor,
            Violation::BadStringMac { .. } => ReasonCode::BadStringMac,
            Violation::StringTooLong { arg } if *arg == usize::MAX => {
                ReasonCode::OversizedPredecessorSet
            }
            Violation::StringTooLong { .. } => ReasonCode::StringTooLong,
            Violation::BadPattern { .. } => ReasonCode::BadPattern,
            Violation::PatternMismatch { .. } => ReasonCode::PatternMismatch,
            Violation::MalformedPredecessorSet => ReasonCode::MalformedPredecessorSet,
            Violation::BadPolicyState => ReasonCode::BadPolicyState,
            Violation::NotInPredecessorSet { .. } => ReasonCode::NotInPredecessorSet,
            Violation::CapabilityViolation { .. } => ReasonCode::CapabilityViolation,
            Violation::MemoryFault { .. } => ReasonCode::MemoryFault,
            Violation::BadFlowEdge { .. } => ReasonCode::BadFlowEdge,
            Violation::UnrewrittenSite { .. } => ReasonCode::UnrewrittenSite,
        }
    }
}

/// Metering data from a successful verification, consumed by the kernel's
/// cycle model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// AES block-cipher invocations actually performed across all MAC
    /// computations (measured, not estimated — cache hits skip blocks and
    /// are charged accordingly).
    pub aes_blocks: u64,
    /// Total bytes read from user space for string/pattern/set checks.
    pub bytes_checked: u64,
    /// Whether the policy state was updated (control-flow policies only).
    pub state_updated: bool,
    /// Whether the call MAC was accepted from the verified-call cache
    /// (the warm path) rather than recomputed.
    pub cache_hit: bool,
    /// Capability-tracked `(argument index, fd)` pairs that passed.
    pub capability_args: Vec<(usize, u32)>,
}

/// Reads the `{len, mac}` header preceding AS contents at `addr`.
fn read_as_header(
    mem: &dyn UserMemory,
    addr: u32,
    arg: usize,
) -> Result<(u32, [u8; MAC_LEN]), Violation> {
    let header_addr = addr.wrapping_sub(AS_HEADER);
    let len = mem.read_u32(header_addr)?;
    let mac_bytes = mem.read_bytes(header_addr + 4, MAC_LEN as u32)?;
    let mut mac = [0u8; MAC_LEN];
    mac.copy_from_slice(&mac_bytes);
    if len > MAX_AS_LEN {
        return Err(Violation::StringTooLong { arg });
    }
    Ok((len, mac))
}

/// Verifies one authenticated system call against its embedded policy.
///
/// Implements §3.4's three steps in order: (1) reconstruct the encoded call
/// from runtime values and check the call MAC; (2) check the integrity of
/// every authenticated string argument (and pattern, and the predecessor
/// set); (3) check and update the control-flow policy state. `cap_check`
/// is consulted for capability-tracked arguments (§5.3); pass `None` when
/// the kernel has capability tracking disabled.
///
/// On success the policy state in user memory has been advanced and the
/// returned [`VerifyOutcome`] reports the cryptographic work done. On
/// failure the state is untouched and the process must be terminated.
///
/// # Errors
///
/// Returns the first [`Violation`] encountered; the caller logs it and
/// kills the process.
pub fn verify_call(
    key: &MacKey,
    checker: &mut MemoryChecker,
    mem: &mut dyn UserMemory,
    regs: &AuthCallRegs,
    cap_check: Option<&mut dyn FnMut(u32) -> bool>,
) -> Result<VerifyOutcome, Violation> {
    verify_call_cached(key, checker, None, mem, regs, cap_check)
}

/// [`verify_call`] with an optional verified-call cache (the warm path).
///
/// With `cache: None` this is exactly the cold path. With a cache, MAC
/// checks whose `(message, tag)` pair byte-matches an earlier fully
/// verified pair are accepted without AES work; every mismatch falls back
/// to the full CMAC computation, so the accept set is identical to the
/// cold path (see the [`crate::cache`] module docs for the soundness
/// argument). The returned [`VerifyOutcome`] meters the AES blocks
/// actually executed.
///
/// # Errors
///
/// Returns the first [`Violation`] encountered; the caller logs it and
/// kills the process.
pub fn verify_call_cached(
    key: &MacKey,
    checker: &mut MemoryChecker,
    cache: Option<&mut VerifyCache>,
    mem: &mut dyn UserMemory,
    regs: &AuthCallRegs,
    cap_check: Option<&mut dyn FnMut(u32) -> bool>,
) -> Result<VerifyOutcome, Violation> {
    verify_call_hooked(
        key,
        checker,
        cache,
        mem,
        regs,
        cap_check,
        VerifyHooks::default(),
    )
}

/// Deliberate weakenings of the verifier, used **only** to validate the
/// fault-injection oracle: a campaign run against a weakened verifier must
/// report silent corruption, proving the classifier can detect a verifier
/// that fails open. Production callers always pass
/// [`VerifyHooks::default()`] (everything off).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyHooks {
    /// Skip the authenticated-string contents check (§3.4 step 2): any
    /// bytes pass as long as the `(addr, len, mac)` tuple still matches
    /// the call MAC. This is precisely the hole the non-control-data
    /// attack needs.
    pub accept_any_string: bool,
}

/// [`verify_call_cached`] with explicit [`VerifyHooks`] (test-only
/// weakenings; see there).
///
/// # Errors
///
/// Returns the first [`Violation`] encountered; the caller logs it and
/// kills the process.
#[allow(clippy::too_many_arguments)]
pub fn verify_call_hooked(
    key: &MacKey,
    checker: &mut MemoryChecker,
    cache: Option<&mut VerifyCache>,
    mem: &mut dyn UserMemory,
    regs: &AuthCallRegs,
    cap_check: Option<&mut dyn FnMut(u32) -> bool>,
    hooks: VerifyHooks,
) -> Result<VerifyOutcome, Violation> {
    let mut meter = CallMeter::disabled();
    verify_call_traced(key, checker, cache, mem, regs, cap_check, hooks, &mut meter)
}

/// Derives the per-check cache decision from the cache's counter deltas
/// around the check (`None` stats means no cache was attached).
fn cache_decision(
    hit: bool,
    before: Option<CacheStats>,
    after: Option<CacheStats>,
) -> CacheDecision {
    match (before, after) {
        (Some(b), Some(a)) => {
            if hit {
                CacheDecision::Hit
            } else if a.scrubs > b.scrubs {
                CacheDecision::Scrub
            } else if a.stale_misses > b.stale_misses {
                CacheDecision::Fallback
            } else {
                CacheDecision::Cold
            }
        }
        _ => CacheDecision::Disabled,
    }
}

/// [`verify_call_hooked`] with a [`CallMeter`]: when the meter is
/// recording, every verification check pushes one [`CheckRecord`] — kind,
/// pass/fail, *measured* AES blocks (snapshotted around the check, so the
/// records of one call partition `VerifyOutcome::aes_blocks` exactly),
/// bytes compared, and the cache decision. Metering never changes what is
/// verified or what the outcome meters charge; with a disabled meter this
/// is byte-for-byte the un-traced path.
///
/// # Errors
///
/// Returns the first [`Violation`] encountered; the caller logs it and
/// kills the process. The failed check's record is pushed before the
/// early return, so a recording meter always ends with the check that
/// killed the call.
#[allow(clippy::too_many_arguments)]
pub fn verify_call_traced(
    key: &MacKey,
    checker: &mut MemoryChecker,
    mut cache: Option<&mut VerifyCache>,
    mem: &mut dyn UserMemory,
    regs: &AuthCallRegs,
    mut cap_check: Option<&mut dyn FnMut(u32) -> bool>,
    hooks: VerifyHooks,
    meter: &mut CallMeter,
) -> Result<VerifyOutcome, Violation> {
    let metering = meter.is_recording();
    // Records one check: AES blocks are the key's block-counter delta
    // since `$blocks0`, the cache decision comes from the stats delta
    // since `$stats0` (pass `None` for checks the cache never serves).
    macro_rules! meter_check {
        ($kind:expr, $passed:expr, $blocks0:expr, $stats0:expr, $hit:expr, $bytes:expr) => {
            if metering {
                meter.record(CheckRecord {
                    kind: $kind,
                    passed: $passed,
                    aes_blocks: key.block_ops().wrapping_sub($blocks0),
                    bytes: $bytes,
                    cache: cache_decision($hit, $stats0, cache.as_deref().map(|c| c.stats())),
                });
            }
        };
    }
    let blocks_at_entry = key.block_ops();
    let mut outcome = VerifyOutcome::default();
    let descriptor = PolicyDescriptor::from_bits(regs.pol_des);
    if descriptor.validate().is_err() {
        return Err(Violation::BadDescriptor);
    }

    // --- Step 1: reconstruct the encoded call and check the call MAC. ---
    let mac_bytes = mem.read_bytes(regs.call_mac_ptr, MAC_LEN as u32)?;
    let mut call_mac = [0u8; MAC_LEN];
    call_mac.copy_from_slice(&mac_bytes);

    // Pattern extras block: for each pattern argument in ascending order,
    // {pattern_as_ptr u32, hint_len u32, hint[hint_len] u32}.
    let mut extras_cursor = regs.hint_ptr;
    let mut pattern_info: Vec<(usize, u32, Vec<u32>)> = Vec::new();

    let mut args = Vec::new();
    for i in 0..MAX_ARGS {
        if descriptor.arg_is_immediate(i) {
            args.push((i, EncodedArg::Immediate(regs.args[i])));
        } else if descriptor.arg_is_string(i) {
            let addr = regs.args[i];
            let (len, mac) = read_as_header(mem, addr, i)?;
            args.push((i, EncodedArg::AuthString { addr, len, mac }));
        } else if descriptor.arg_is_pattern(i) {
            let pat_ptr = mem.read_u32(extras_cursor)?;
            let hint_len = mem.read_u32(extras_cursor + 4)?;
            if hint_len > 64 {
                return Err(Violation::BadPattern { arg: i });
            }
            let mut hint = Vec::with_capacity(hint_len as usize);
            for h in 0..hint_len {
                hint.push(mem.read_u32(extras_cursor + 8 + 4 * h)?);
            }
            extras_cursor += 8 + 4 * hint_len;
            let (len, mac) = read_as_header(mem, pat_ptr, i)?;
            args.push((
                i,
                EncodedArg::Pattern {
                    addr: pat_ptr,
                    len,
                    mac,
                },
            ));
            pattern_info.push((i, pat_ptr, hint));
        } else if descriptor.arg_is_capability(i) {
            args.push((i, EncodedArg::Capability));
        }
    }

    let control_flow = descriptor.control_flow_constrained();
    let pred_set = if control_flow {
        let (len, mac) = read_as_header(mem, regs.pred_set_ptr, usize::MAX)?;
        Some((regs.pred_set_ptr, len, mac))
    } else {
        None
    };

    let encoded = EncodedCall {
        syscall_nr: regs.nr as u16,
        descriptor,
        call_site: regs.call_site,
        block_id: regs.block_id,
        args,
        pred_set,
        lb_ptr: control_flow.then_some(regs.lb_ptr),
    };
    let encoding = encode_call(&encoded);
    let call_blocks0 = key.block_ops();
    let call_stats0 = cache.as_deref().map(|c| c.stats());
    let call_cached = match cache.as_deref_mut() {
        Some(c) => c.check_call(regs.call_site, &encoding, &call_mac),
        None => false,
    };
    if call_cached {
        outcome.cache_hit = true;
    } else {
        if !key.verify(&encoding, &call_mac) {
            meter_check!(
                CheckKind::CallMac,
                false,
                call_blocks0,
                call_stats0,
                false,
                0
            );
            return Err(Violation::BadCallMac);
        }
        if let Some(c) = cache.as_deref_mut() {
            c.record_call(regs.call_site, &encoding, &call_mac);
        }
    }
    meter_check!(
        CheckKind::CallMac,
        true,
        call_blocks0,
        call_stats0,
        call_cached,
        0
    );

    // --- Step 2: check the integrity of authenticated strings. ---
    for (i, arg) in &encoded.args {
        match arg {
            EncodedArg::AuthString { addr, len, mac } => {
                let contents = mem.read_bytes(*addr, *len)?;
                outcome.bytes_checked += contents.len() as u64;
                let blocks0 = key.block_ops();
                let stats0 = cache.as_deref().map(|c| c.stats());
                let cached = cache
                    .as_deref_mut()
                    .is_some_and(|c| c.check_blob(*addr, mac, &contents));
                if !cached && !hooks.accept_any_string {
                    if !key.verify(&contents, mac) {
                        meter_check!(
                            CheckKind::AuthString { arg: *i },
                            false,
                            blocks0,
                            stats0,
                            false,
                            contents.len() as u64
                        );
                        return Err(Violation::BadStringMac { arg: *i });
                    }
                    if let Some(c) = cache.as_deref_mut() {
                        c.record_blob(*addr, mac, &contents);
                    }
                }
                meter_check!(
                    CheckKind::AuthString { arg: *i },
                    true,
                    blocks0,
                    stats0,
                    cached,
                    contents.len() as u64
                );
            }
            EncodedArg::Pattern { addr, len, mac } => {
                let pattern_text = mem.read_bytes(*addr, *len)?;
                outcome.bytes_checked += pattern_text.len() as u64;
                // One record covers the whole pattern check: AS integrity,
                // parse, and the hinted match against the live argument.
                let blocks0 = key.block_ops();
                let stats0 = cache.as_deref().map(|c| c.stats());
                let mut pat_bytes = pattern_text.len() as u64;
                let cached = cache
                    .as_deref_mut()
                    .is_some_and(|c| c.check_blob(*addr, mac, &pattern_text));
                if !cached {
                    if !key.verify(&pattern_text, mac) {
                        meter_check!(
                            CheckKind::Pattern { arg: *i },
                            false,
                            blocks0,
                            stats0,
                            false,
                            pat_bytes
                        );
                        return Err(Violation::BadPattern { arg: *i });
                    }
                    if let Some(c) = cache.as_deref_mut() {
                        c.record_blob(*addr, mac, &pattern_text);
                    }
                }
                let parsed = std::str::from_utf8(&pattern_text)
                    .ok()
                    .and_then(|text| Pattern::parse(text).ok());
                let Some(pattern) = parsed else {
                    meter_check!(
                        CheckKind::Pattern { arg: *i },
                        false,
                        blocks0,
                        stats0,
                        cached,
                        pat_bytes
                    );
                    return Err(Violation::BadPattern { arg: *i });
                };
                let (_, _, hint) = pattern_info
                    .iter()
                    .find(|(pi, _, _)| pi == i)
                    .expect("pattern info collected above");
                // The actual argument is a C string in user memory.
                let value = mem.read_cstr(regs.args[*i], MAX_AS_LEN)?;
                outcome.bytes_checked += value.len() as u64;
                pat_bytes += value.len() as u64;
                if !pattern.match_with_hint(&value, hint) {
                    meter_check!(
                        CheckKind::Pattern { arg: *i },
                        false,
                        blocks0,
                        stats0,
                        cached,
                        pat_bytes
                    );
                    return Err(Violation::PatternMismatch { arg: *i });
                }
                meter_check!(
                    CheckKind::Pattern { arg: *i },
                    true,
                    blocks0,
                    stats0,
                    cached,
                    pat_bytes
                );
            }
            EncodedArg::Immediate(_) | EncodedArg::Capability => {}
        }
    }

    // --- Capability checks (§5.3). ---
    for i in 0..MAX_ARGS {
        if descriptor.arg_is_capability(i) {
            let fd = regs.args[i];
            let ok = cap_check.as_mut().is_none_or(|f| f(fd));
            // Capability checks are table lookups: no AES, no bytes, and the
            // verify cache never applies, so the record is always `Disabled`.
            meter_check!(
                CheckKind::Capability { arg: i },
                ok,
                key.block_ops(),
                None::<CacheStats>,
                false,
                0
            );
            if !ok {
                return Err(Violation::CapabilityViolation { arg: i, fd });
            }
            outcome.capability_args.push((i, fd));
        }
    }

    // --- Step 3: control-flow policy. ---
    if control_flow {
        let (addr, len, mac) = pred_set.expect("set when control_flow");
        let contents = mem.read_bytes(addr, len)?;
        outcome.bytes_checked += contents.len() as u64;
        let set_blocks0 = key.block_ops();
        let set_stats0 = cache.as_deref().map(|c| c.stats());
        let set_bytes = contents.len() as u64;
        let set_cached = cache
            .as_deref_mut()
            .is_some_and(|c| c.check_blob(addr, &mac, &contents));
        if !set_cached {
            if !key.verify(&contents, &mac) {
                meter_check!(
                    CheckKind::PredecessorSet,
                    false,
                    set_blocks0,
                    set_stats0,
                    false,
                    set_bytes
                );
                return Err(Violation::MalformedPredecessorSet);
            }
            if let Some(c) = cache.as_deref_mut() {
                c.record_blob(addr, &mac, &contents);
            }
        }
        let Some(preds) = SyscallPolicy::parse_predecessor_bytes(&contents) else {
            meter_check!(
                CheckKind::PredecessorSet,
                false,
                set_blocks0,
                set_stats0,
                set_cached,
                set_bytes
            );
            return Err(Violation::MalformedPredecessorSet);
        };
        meter_check!(
            CheckKind::PredecessorSet,
            true,
            set_blocks0,
            set_stats0,
            set_cached,
            set_bytes
        );

        let state_bytes = mem.read_bytes(regs.lb_ptr, POLICY_STATE_LEN as u32)?;
        let state = PolicyState::parse(&state_bytes).expect("exact length read");
        let state_blocks0 = key.block_ops();
        let state_stats0 = cache.as_deref().map(|c| c.stats());
        // The state entry is only valid for the current counter epoch: the
        // kernel wrote these exact bytes itself after the last update, so
        // re-verifying them would be redundant AES work. Any divergence —
        // tampered bytes, a different cell, or an advanced counter — takes
        // the full verification below, where forgery and replay die.
        let state_cached = cache
            .as_deref_mut()
            .is_some_and(|c| c.check_state(regs.lb_ptr, &state_bytes, checker.counter()));
        if !state_cached && !checker.verify(key, &state) {
            meter_check!(
                CheckKind::PolicyState,
                false,
                state_blocks0,
                state_stats0,
                false,
                0
            );
            return Err(Violation::BadPolicyState);
        }
        if !preds.contains(&state.last_block) {
            meter_check!(
                CheckKind::PolicyState,
                false,
                state_blocks0,
                state_stats0,
                state_cached,
                0
            );
            return Err(Violation::NotInPredecessorSet {
                last_block: state.last_block,
            });
        }
        // The counter must advance on every successful control-flow check
        // (it is the anti-replay nonce), so the update always runs.
        let new_state = checker.update(key, regs.block_id);
        mem.write_bytes(regs.lb_ptr, &new_state.to_bytes())?;
        if let Some(c) = cache.as_deref_mut() {
            c.record_state(regs.lb_ptr, new_state.to_bytes(), checker.counter());
        }
        outcome.state_updated = true;
        meter_check!(
            CheckKind::PolicyState,
            true,
            state_blocks0,
            state_stats0,
            state_cached,
            0
        );
    }

    outcome.aes_blocks = key.block_ops().wrapping_sub(blocks_at_entry);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_crypto::AuthenticatedString;
    use std::collections::HashMap;

    /// A sparse mock memory for testing the verifier in isolation.
    #[derive(Default)]
    struct MockMem {
        bytes: HashMap<u32, u8>,
    }

    impl MockMem {
        fn put(&mut self, addr: u32, data: &[u8]) {
            for (i, b) in data.iter().enumerate() {
                self.bytes.insert(addr + i as u32, *b);
            }
        }
    }

    impl UserMemory for MockMem {
        fn read_u32(&self, addr: u32) -> Result<u32, Violation> {
            let b = self.read_bytes(addr, 4)?;
            Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
        }
        fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, Violation> {
            (0..len)
                .map(|i| {
                    self.bytes
                        .get(&(addr + i))
                        .copied()
                        .ok_or(Violation::MemoryFault { addr: addr + i })
                })
                .collect()
        }
        fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Violation> {
            self.put(addr, bytes);
            Ok(())
        }
    }

    fn key() -> MacKey {
        MacKey::from_seed(1234)
    }

    const MAC_ADDR: u32 = 0x9000;
    const AS_ADDR: u32 = 0x9100; // contents address (header 20 bytes before)
    const PS_ADDR: u32 = 0x9200; // predecessor-set contents address
    const LB_ADDR: u32 = 0x9300;
    const EXTRA_ADDR: u32 = 0x9400;
    const PAT_ADDR: u32 = 0x9500;

    /// Install an AS blob so that its *contents* start at `contents_addr`.
    fn put_as(mem: &mut MockMem, contents_addr: u32, s: &AuthenticatedString) {
        mem.put(contents_addr - AS_HEADER, &s.to_bytes());
    }

    /// Builds a fully authenticated open("/etc/motd", 0) call with control
    /// flow {0, 7}, block 9, site 0x1040, installing everything into the
    /// mock memory the way the installer would into the binary.
    fn setup_call(mem: &mut MockMem) -> AuthCallRegs {
        let k = key();
        let path = AuthenticatedString::build(&k, b"/etc/motd".to_vec());
        put_as(mem, AS_ADDR, &path);
        let preds: Vec<u8> = [0u32, 7].iter().flat_map(|p| p.to_le_bytes()).collect();
        let ps = AuthenticatedString::build(&k, preds);
        put_as(mem, PS_ADDR, &ps);
        let state = MemoryChecker::initial_state(&k);
        mem.put(LB_ADDR, &state.to_bytes());

        let descriptor = PolicyDescriptor::new()
            .with_call_site()
            .with_control_flow()
            .with_string_arg(0)
            .with_immediate_arg(1);
        let encoded = EncodedCall {
            syscall_nr: 5,
            descriptor,
            call_site: 0x1040,
            block_id: 9,
            args: vec![
                (
                    0,
                    EncodedArg::AuthString {
                        addr: AS_ADDR,
                        len: 9,
                        mac: *path.mac(),
                    },
                ),
                (1, EncodedArg::Immediate(0)),
            ],
            pred_set: Some((PS_ADDR, 8, *ps.mac())),
            lb_ptr: Some(LB_ADDR),
        };
        mem.put(MAC_ADDR, &encoded.mac(&k));

        AuthCallRegs {
            nr: 5,
            call_site: 0x1040,
            args: [AS_ADDR, 0, 0, 0, 0, 0],
            pol_des: descriptor.bits(),
            block_id: 9,
            pred_set_ptr: PS_ADDR,
            lb_ptr: LB_ADDR,
            call_mac_ptr: MAC_ADDR,
            hint_ptr: 0,
        }
    }

    #[test]
    fn compliant_call_passes_and_updates_state() {
        let mut mem = MockMem::default();
        let regs = setup_call(&mut mem);
        let mut checker = MemoryChecker::new();
        let outcome = verify_call(&key(), &mut checker, &mut mem, &regs, None).unwrap();
        assert!(outcome.state_updated);
        assert!(outcome.aes_blocks >= 5);
        assert_eq!(checker.counter(), 1);
        // State now holds block 9.
        let state = PolicyState::parse(&mem.read_bytes(LB_ADDR, 20).unwrap()).unwrap();
        assert_eq!(state.last_block, 9);
        assert!(checker.verify(&key(), &state));
    }

    #[test]
    fn second_call_respects_new_state() {
        let mut mem = MockMem::default();
        let regs = setup_call(&mut mem);
        let mut checker = MemoryChecker::new();
        verify_call(&key(), &mut checker, &mut mem, &regs, None).unwrap();
        // Re-running the same call: its predecessor set {0, 7} does not
        // contain 9 (the block we just recorded) -> control-flow violation.
        let err = verify_call(&key(), &mut checker, &mut mem, &regs, None).unwrap_err();
        assert_eq!(err, Violation::NotInPredecessorSet { last_block: 9 });
    }

    #[test]
    fn tampered_syscall_number_fails() {
        let mut mem = MockMem::default();
        let mut regs = setup_call(&mut mem);
        regs.nr = 11; // try to turn open into execve
        let err =
            verify_call(&key(), &mut MemoryChecker::new(), &mut mem, &regs, None).unwrap_err();
        assert_eq!(err, Violation::BadCallMac);
    }

    #[test]
    fn tampered_call_site_fails() {
        let mut mem = MockMem::default();
        let mut regs = setup_call(&mut mem);
        regs.call_site += 8; // call from a different (injected) location
        assert_eq!(
            verify_call(&key(), &mut MemoryChecker::new(), &mut mem, &regs, None),
            Err(Violation::BadCallMac)
        );
    }

    #[test]
    fn tampered_immediate_arg_fails() {
        let mut mem = MockMem::default();
        let mut regs = setup_call(&mut mem);
        regs.args[1] = 2; // open flags O_RDWR instead of O_RDONLY
        assert_eq!(
            verify_call(&key(), &mut MemoryChecker::new(), &mut mem, &regs, None),
            Err(Violation::BadCallMac)
        );
    }

    #[test]
    fn relaxed_descriptor_fails() {
        let mut mem = MockMem::default();
        let mut regs = setup_call(&mut mem);
        // Attacker clears all constraint bits hoping for a free pass.
        regs.pol_des = PolicyDescriptor::new().with_call_site().bits();
        assert_eq!(
            verify_call(&key(), &mut MemoryChecker::new(), &mut mem, &regs, None),
            Err(Violation::BadCallMac)
        );
    }

    #[test]
    fn non_control_data_attack_fails() {
        // Overwrite the string contents in memory (the AS header stays).
        let mut mem = MockMem::default();
        let regs = setup_call(&mut mem);
        mem.put(AS_ADDR, b"/etc/pass"); // same length, different contents
        assert_eq!(
            verify_call(&key(), &mut MemoryChecker::new(), &mut mem, &regs, None),
            Err(Violation::BadStringMac { arg: 0 })
        );
    }

    #[test]
    fn retargeted_string_pointer_fails() {
        // Point the argument at a *different* valid AS (here: the pred
        // set, which is also a valid AS): the call MAC covers the address,
        // so this fails at step 1.
        let mut mem = MockMem::default();
        let mut regs = setup_call(&mut mem);
        regs.args[0] = PS_ADDR;
        assert_eq!(
            verify_call(&key(), &mut MemoryChecker::new(), &mut mem, &regs, None),
            Err(Violation::BadCallMac)
        );
    }

    #[test]
    fn oversized_length_field_rejected_before_reading() {
        let mut mem = MockMem::default();
        let regs = setup_call(&mut mem);
        // Attacker rewrites the AS length field to a huge value (DoS try).
        mem.put(AS_ADDR - AS_HEADER, &(MAX_AS_LEN + 1).to_le_bytes());
        assert_eq!(
            verify_call(&key(), &mut MemoryChecker::new(), &mut mem, &regs, None),
            Err(Violation::StringTooLong { arg: 0 })
        );
    }

    #[test]
    fn replayed_policy_state_fails() {
        let mut mem = MockMem::default();
        let regs = setup_call(&mut mem);
        let mut checker = MemoryChecker::new();
        let snapshot = mem.read_bytes(LB_ADDR, 20).unwrap();
        verify_call(&key(), &mut checker, &mut mem, &regs, None).unwrap();
        // Attacker restores the pre-call state and replays the call.
        mem.put(LB_ADDR, &snapshot);
        assert_eq!(
            verify_call(&key(), &mut checker, &mut mem, &regs, None),
            Err(Violation::BadPolicyState)
        );
    }

    #[test]
    fn forged_last_block_fails() {
        let mut mem = MockMem::default();
        let regs = setup_call(&mut mem);
        let mut checker = MemoryChecker::new();
        // Attacker writes lastBlock = 7 (which IS in the pred set) without
        // being able to recompute lbMAC.
        let mut state_bytes = mem.read_bytes(LB_ADDR, 20).unwrap();
        state_bytes[0] = 7;
        mem.put(LB_ADDR, &state_bytes);
        assert_eq!(
            verify_call(&key(), &mut checker, &mut mem, &regs, None),
            Err(Violation::BadPolicyState)
        );
    }

    #[test]
    fn capability_check_consulted() {
        let mut mem = MockMem::default();
        let k = key();
        // read(fd=4, buf, n) with fd capability-tracked.
        let descriptor = PolicyDescriptor::new()
            .with_call_site()
            .with_capability_arg(0);
        let encoded = EncodedCall {
            syscall_nr: 3,
            descriptor,
            call_site: 0x2000,
            block_id: 1,
            args: vec![(0, EncodedArg::Capability)],
            pred_set: None,
            lb_ptr: None,
        };
        mem.put(MAC_ADDR, &encoded.mac(&k));
        let regs = AuthCallRegs {
            nr: 3,
            call_site: 0x2000,
            args: [4, 0, 0, 0, 0, 0],
            pol_des: descriptor.bits(),
            block_id: 1,
            pred_set_ptr: 0,
            lb_ptr: 0,
            call_mac_ptr: MAC_ADDR,
            hint_ptr: 0,
        };
        let mut allowed = |fd: u32| fd == 4;
        let out = verify_call(
            &k,
            &mut MemoryChecker::new(),
            &mut mem,
            &regs,
            Some(&mut allowed),
        )
        .unwrap();
        assert_eq!(out.capability_args, vec![(0, 4)]);

        let mut regs2 = regs;
        regs2.args[0] = 5;
        let mut allowed = |fd: u32| fd == 4;
        assert_eq!(
            verify_call(
                &k,
                &mut MemoryChecker::new(),
                &mut mem,
                &regs2,
                Some(&mut allowed)
            ),
            Err(Violation::CapabilityViolation { arg: 0, fd: 5 })
        );
    }

    #[test]
    fn pattern_argument_verifies_with_hint() {
        let mut mem = MockMem::default();
        let k = key();
        let pattern = AuthenticatedString::build(&k, b"/tmp/{foo,bar}*baz".to_vec());
        put_as(&mut mem, PAT_ADDR, &pattern);
        // The runtime argument string (dynamic, not MAC'd):
        const ARG_ADDR: u32 = 0x9600;
        mem.put(ARG_ADDR, b"/tmp/foofoobaz\0");
        // Extras block: pattern ptr, hint_len=2, hint {0, 3}.
        let mut extras = Vec::new();
        extras.extend_from_slice(&PAT_ADDR.to_le_bytes());
        extras.extend_from_slice(&2u32.to_le_bytes());
        extras.extend_from_slice(&0u32.to_le_bytes());
        extras.extend_from_slice(&3u32.to_le_bytes());
        mem.put(EXTRA_ADDR, &extras);

        let descriptor = PolicyDescriptor::new().with_call_site().with_pattern_arg(0);
        let encoded = EncodedCall {
            syscall_nr: 5,
            descriptor,
            call_site: 0x3000,
            block_id: 2,
            args: vec![(
                0,
                EncodedArg::Pattern {
                    addr: PAT_ADDR,
                    len: 18,
                    mac: *pattern.mac(),
                },
            )],
            pred_set: None,
            lb_ptr: None,
        };
        mem.put(MAC_ADDR, &encoded.mac(&k));
        let regs = AuthCallRegs {
            nr: 5,
            call_site: 0x3000,
            args: [ARG_ADDR, 0, 0, 0, 0, 0],
            pol_des: descriptor.bits(),
            block_id: 2,
            pred_set_ptr: 0,
            lb_ptr: 0,
            call_mac_ptr: MAC_ADDR,
            hint_ptr: EXTRA_ADDR,
        };
        verify_call(&k, &mut MemoryChecker::new(), &mut mem, &regs, None).unwrap();

        // A non-matching argument fails even with a "creative" hint.
        mem.put(ARG_ADDR, b"/etc/passwd\0\0\0\0");
        let err = verify_call(&k, &mut MemoryChecker::new(), &mut mem, &regs, None).unwrap_err();
        assert_eq!(err, Violation::PatternMismatch { arg: 0 });
    }

    #[test]
    fn conflicting_descriptor_rejected() {
        let mut mem = MockMem::default();
        let regs = AuthCallRegs {
            nr: 1,
            call_site: 0,
            args: [0; 6],
            pol_des: PolicyDescriptor::new()
                .with_immediate_arg(0)
                .with_string_arg(0)
                .bits(),
            block_id: 0,
            pred_set_ptr: 0,
            lb_ptr: 0,
            call_mac_ptr: 0,
            hint_ptr: 0,
        };
        assert_eq!(
            verify_call(&key(), &mut MemoryChecker::new(), &mut mem, &regs, None),
            Err(Violation::BadDescriptor)
        );
    }

    #[test]
    fn oversized_hint_length_rejected() {
        // An attacker-controlled extras block claiming a gigantic hint
        // must be rejected before the kernel loops over it.
        let mut mem = MockMem::default();
        let k = key();
        let pattern = AuthenticatedString::build(&k, b"/tmp/*".to_vec());
        put_as(&mut mem, PAT_ADDR, &pattern);
        let mut extras = Vec::new();
        extras.extend_from_slice(&PAT_ADDR.to_le_bytes());
        extras.extend_from_slice(&1000u32.to_le_bytes()); // absurd hint_len
        mem.put(EXTRA_ADDR, &extras);
        let descriptor = PolicyDescriptor::new().with_call_site().with_pattern_arg(0);
        let regs = AuthCallRegs {
            nr: 5,
            call_site: 0x3000,
            args: [0x9600, 0, 0, 0, 0, 0],
            pol_des: descriptor.bits(),
            block_id: 2,
            pred_set_ptr: 0,
            lb_ptr: 0,
            call_mac_ptr: MAC_ADDR,
            hint_ptr: EXTRA_ADDR,
        };
        mem.put(MAC_ADDR, &[0u8; 16]);
        assert_eq!(
            verify_call(&k, &mut MemoryChecker::new(), &mut mem, &regs, None),
            Err(Violation::BadPattern { arg: 0 })
        );
    }

    #[test]
    fn high_bits_of_syscall_number_are_harmless() {
        // R0 = 0x7_0005: both the encoding and the dispatcher truncate to
        // u16, so the MAC still matches and the *same* call executes — no
        // confusion is possible between verification and dispatch.
        let mut mem = MockMem::default();
        let mut regs = setup_call(&mut mem);
        regs.nr = 0x0007_0005;
        let out = verify_call(&key(), &mut MemoryChecker::new(), &mut mem, &regs, None);
        assert!(out.is_ok(), "{out:?}");
    }

    #[test]
    fn swapped_as_headers_detected() {
        // Attacker swaps the {len,mac} header of the path AS with the one
        // from the predecessor set (both authentic, wrong pairing).
        let mut mem = MockMem::default();
        let regs = setup_call(&mut mem);
        let ps_header = mem.read_bytes(PS_ADDR - AS_HEADER, 20).unwrap();
        mem.put(AS_ADDR - AS_HEADER, &ps_header);
        let err =
            verify_call(&key(), &mut MemoryChecker::new(), &mut mem, &regs, None).unwrap_err();
        // The call MAC covers the (addr, len, mac) tuple, so the forgery
        // dies at step 1.
        assert_eq!(err, Violation::BadCallMac);
    }

    /// A repeatable (no control flow) call: getpid-style with one
    /// authenticated string argument, so both the call MAC and a blob are
    /// exercised on every verification.
    fn setup_repeatable_call(mem: &mut MockMem) -> AuthCallRegs {
        let k = key();
        let path = AuthenticatedString::build(&k, b"/etc/motd".to_vec());
        put_as(mem, AS_ADDR, &path);
        let descriptor = PolicyDescriptor::new().with_call_site().with_string_arg(0);
        let encoded = EncodedCall {
            syscall_nr: 5,
            descriptor,
            call_site: 0x1040,
            block_id: 9,
            args: vec![(
                0,
                EncodedArg::AuthString {
                    addr: AS_ADDR,
                    len: 9,
                    mac: *path.mac(),
                },
            )],
            pred_set: None,
            lb_ptr: None,
        };
        mem.put(MAC_ADDR, &encoded.mac(&k));
        AuthCallRegs {
            nr: 5,
            call_site: 0x1040,
            args: [AS_ADDR, 0, 0, 0, 0, 0],
            pol_des: descriptor.bits(),
            block_id: 9,
            pred_set_ptr: 0,
            lb_ptr: 0,
            call_mac_ptr: MAC_ADDR,
            hint_ptr: 0,
        }
    }

    #[test]
    fn warm_path_skips_all_aes_for_repeated_call() {
        let mut mem = MockMem::default();
        let regs = setup_repeatable_call(&mut mem);
        let mut checker = MemoryChecker::new();
        let mut cache = crate::cache::VerifyCache::new();
        let k = key();
        let cold =
            verify_call_cached(&k, &mut checker, Some(&mut cache), &mut mem, &regs, None).unwrap();
        assert!(!cold.cache_hit);
        assert!(cold.aes_blocks >= 2, "call MAC + string MAC");
        let warm =
            verify_call_cached(&k, &mut checker, Some(&mut cache), &mut mem, &regs, None).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.aes_blocks, 0, "identical call: no AES at all");
        assert_eq!(
            warm.bytes_checked, cold.bytes_checked,
            "memory is still re-read"
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().blob_hits, 1);
    }

    #[test]
    fn warm_path_still_catches_rewritten_string() {
        // The non-control-data attack performed *after* the cache is warm:
        // the blob comparison misses, the full CMAC runs, and the call
        // dies exactly like the cold path.
        let mut mem = MockMem::default();
        let regs = setup_repeatable_call(&mut mem);
        let mut checker = MemoryChecker::new();
        let mut cache = crate::cache::VerifyCache::new();
        let k = key();
        verify_call_cached(&k, &mut checker, Some(&mut cache), &mut mem, &regs, None).unwrap();
        mem.put(AS_ADDR, b"/etc/pass");
        assert_eq!(
            verify_call_cached(&k, &mut checker, Some(&mut cache), &mut mem, &regs, None),
            Err(Violation::BadStringMac { arg: 0 })
        );
    }

    #[test]
    fn warm_path_still_catches_tampered_registers() {
        let mut mem = MockMem::default();
        let regs = setup_repeatable_call(&mut mem);
        let mut checker = MemoryChecker::new();
        let mut cache = crate::cache::VerifyCache::new();
        let k = key();
        verify_call_cached(&k, &mut checker, Some(&mut cache), &mut mem, &regs, None).unwrap();
        let mut forged = regs;
        forged.nr = 11; // execve from the cached open site
        assert_eq!(
            verify_call_cached(&k, &mut checker, Some(&mut cache), &mut mem, &forged, None),
            Err(Violation::BadCallMac)
        );
    }

    #[test]
    fn control_flow_warm_path_charges_only_the_update() {
        // A self-loop so the same call is control-flow-legal twice.
        let mut mem = MockMem::default();
        let k = key();
        let preds: Vec<u8> = [0u32, 9].iter().flat_map(|p| p.to_le_bytes()).collect();
        let ps = AuthenticatedString::build(&k, preds);
        put_as(&mut mem, PS_ADDR, &ps);
        mem.put(LB_ADDR, &MemoryChecker::initial_state(&k).to_bytes());
        let descriptor = PolicyDescriptor::new().with_call_site().with_control_flow();
        let encoded = EncodedCall {
            syscall_nr: 20,
            descriptor,
            call_site: 0x1040,
            block_id: 9,
            args: vec![],
            pred_set: Some((PS_ADDR, 8, *ps.mac())),
            lb_ptr: Some(LB_ADDR),
        };
        mem.put(MAC_ADDR, &encoded.mac(&k));
        let regs = AuthCallRegs {
            nr: 20,
            call_site: 0x1040,
            args: [0; 6],
            pol_des: descriptor.bits(),
            block_id: 9,
            pred_set_ptr: PS_ADDR,
            lb_ptr: LB_ADDR,
            call_mac_ptr: MAC_ADDR,
            hint_ptr: 0,
        };
        let mut checker = MemoryChecker::new();
        let mut cache = crate::cache::VerifyCache::new();
        let cold =
            verify_call_cached(&k, &mut checker, Some(&mut cache), &mut mem, &regs, None).unwrap();
        assert!(
            cold.aes_blocks >= 4,
            "call MAC, pred set, state verify, state update"
        );
        let warm =
            verify_call_cached(&k, &mut checker, Some(&mut cache), &mut mem, &regs, None).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(
            warm.aes_blocks, 1,
            "only the counter-advancing state update runs AES"
        );
        assert!(
            warm.aes_blocks * 2 <= cold.aes_blocks,
            "warm is at least 50% cheaper"
        );
        assert_eq!(cache.stats().state_hits, 1);
    }

    #[test]
    fn stale_cache_replay_of_old_state_still_dies() {
        // The stale-cache exploit: warm the cache, snapshot the policy
        // state, let the counter advance, restore the snapshot, replay.
        // The cached state entry is epoch-bound, so the comparison misses
        // and the full check rejects the replayed bytes.
        let mut mem = MockMem::default();
        let regs = setup_call(&mut mem);
        let mut checker = MemoryChecker::new();
        let mut cache = crate::cache::VerifyCache::new();
        let k = key();
        let snapshot = mem.read_bytes(LB_ADDR, 20).unwrap();
        verify_call_cached(&k, &mut checker, Some(&mut cache), &mut mem, &regs, None).unwrap();
        mem.put(LB_ADDR, &snapshot);
        assert_eq!(
            verify_call_cached(&k, &mut checker, Some(&mut cache), &mut mem, &regs, None),
            Err(Violation::BadPolicyState)
        );
    }

    #[test]
    fn cached_and_cold_paths_agree_on_acceptance() {
        // Differential check: for the standard call and a pile of forgeries,
        // a warm cache and no cache must return the same verdict.
        let tamper: &[fn(&mut MockMem, &mut AuthCallRegs)] = &[
            |_, r| r.nr = 11,
            |_, r| r.call_site ^= 4,
            |_, r| r.block_id ^= 1,
            |m, _| m.put(AS_ADDR, b"/etc/pass"),
            |m, _| {
                let bad = [0xffu8; 16];
                m.put(MAC_ADDR, &bad);
            },
            |_, _| {}, // the untampered call
        ];
        for f in tamper {
            let mut cold_mem = MockMem::default();
            let mut cold_regs = setup_call(&mut cold_mem);
            let mut warm_mem = MockMem::default();
            let mut warm_regs = setup_call(&mut warm_mem);
            let k = key();
            let mut warm_checker = MemoryChecker::new();
            let mut cache = crate::cache::VerifyCache::new();
            // Warm the cache with one legitimate call, then reset state so
            // both runs see the same control-flow position.
            verify_call_cached(
                &k,
                &mut warm_checker,
                Some(&mut cache),
                &mut warm_mem,
                &warm_regs,
                None,
            )
            .unwrap();
            let mut warm_mem = MockMem::default();
            let mut warm_regs2 = setup_call(&mut warm_mem);
            f(&mut cold_mem, &mut cold_regs);
            f(&mut warm_mem, &mut warm_regs2);
            warm_regs = warm_regs2;
            let cold = verify_call(
                &k,
                &mut MemoryChecker::new(),
                &mut cold_mem,
                &cold_regs,
                None,
            );
            let warm = verify_call_cached(
                &k,
                &mut MemoryChecker::new(),
                Some(&mut cache),
                &mut warm_mem,
                &warm_regs,
                None,
            );
            assert_eq!(cold.is_ok(), warm.is_ok(), "verdicts diverged");
            if let (Err(c), Err(w)) = (&cold, &warm) {
                assert_eq!(c, w, "violations diverged");
            }
        }
    }

    #[test]
    fn unmapped_mac_pointer_is_memory_fault() {
        let mut mem = MockMem::default();
        let regs = AuthCallRegs {
            nr: 1,
            call_site: 0,
            args: [0; 6],
            pol_des: PolicyDescriptor::new().with_call_site().bits(),
            block_id: 0,
            pred_set_ptr: 0,
            lb_ptr: 0,
            call_mac_ptr: 0xdead_0000,
            hint_ptr: 0,
        };
        assert!(matches!(
            verify_call(&key(), &mut MemoryChecker::new(), &mut mem, &regs, None),
            Err(Violation::MemoryFault { .. })
        ));
    }
}
