//! The global syscall-transition digraph behind the SFIP verification
//! tier.
//!
//! The installer projects its per-site predecessor sets (basic-block
//! granularity) down to syscall-number granularity: for every site `s`
//! with number `nr_s` and predecessor blocks `P_s`, the digraph gains an
//! edge `(nr_t, nr_s)` for every site `t` whose block is in `P_s`, plus
//! `(FLOW_START, nr_s)` when block 0 (program start) is in `P_s`. The
//! projection is a *conservative coarsening* of the same control-flow
//! analysis that produces the MAC tier's predecessor sets, so any
//! transition the full policy-state check accepts is an edge of the
//! digraph — `FlowOnly` never kills a run that `Mac` accepts.
//!
//! The serialized graph is embedded in the installed artifact's
//! `.ascflow` section as an edge list with a trailing MAC keyed by the
//! administrator key, so a tampered digraph is rejected at load time
//! rather than silently widening (or narrowing) the policy.

use std::collections::BTreeSet;

use asc_crypto::{MacKey, MAC_LEN};

/// Sentinel syscall number for "program start" (no call verified yet).
/// `0xFFFF` is far outside both personalities' syscall tables, so it can
/// never collide with a real trapped number.
pub const FLOW_START: u16 = 0xFFFF;

/// Why serialized flow-graph bytes were rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowParseError {
    /// The byte string was shorter than its header + edges + MAC claim.
    Truncated,
    /// The trailing MAC did not verify against the edge bytes.
    BadMac,
}

impl std::fmt::Display for FlowParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowParseError::Truncated => write!(f, "flow graph bytes truncated"),
            FlowParseError::BadMac => write!(f, "flow graph MAC mismatch"),
        }
    }
}

impl std::error::Error for FlowParseError {}

/// The syscall-transition digraph: a set of `(from, to)` edges over raw
/// syscall numbers, with [`FLOW_START`] as the start-of-program node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowGraph {
    edges: BTreeSet<(u16, u16)>,
}

impl FlowGraph {
    /// An empty digraph (accepts nothing).
    pub fn new() -> FlowGraph {
        FlowGraph::default()
    }

    /// Adds the edge `from -> to`.
    pub fn insert(&mut self, from: u16, to: u16) {
        self.edges.insert((from, to));
    }

    /// Whether `from -> to` is a legal transition.
    pub fn contains(&self, from: u16, to: u16) -> bool {
        self.edges.contains(&(from, to))
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the digraph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        self.edges.iter().copied()
    }

    /// The canonical edge bytes: `count: u32 LE` then, per edge in sorted
    /// order, `from: u16 LE ‖ to: u16 LE`.
    fn edge_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(4 + 4 * self.edges.len());
        bytes.extend_from_slice(&(self.edges.len() as u32).to_le_bytes());
        for (from, to) in &self.edges {
            bytes.extend_from_slice(&from.to_le_bytes());
            bytes.extend_from_slice(&to.to_le_bytes());
        }
        bytes
    }

    /// Serializes the digraph: canonical edge bytes followed by a 16-byte
    /// MAC over them under `key`.
    pub fn to_bytes(&self, key: &MacKey) -> Vec<u8> {
        let mut bytes = self.edge_bytes();
        let mac = key.mac(&bytes);
        bytes.extend_from_slice(&mac);
        bytes
    }

    /// Parses and authenticates serialized bytes produced by
    /// [`FlowGraph::to_bytes`]. Trailing padding after the MAC is
    /// ignored, so the bytes may come straight from a loaded section.
    pub fn parse(bytes: &[u8], key: &MacKey) -> Result<FlowGraph, FlowParseError> {
        if bytes.len() < 4 {
            return Err(FlowParseError::Truncated);
        }
        let count = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        let edges_end = 4 + 4 * count;
        let mac_end = edges_end + MAC_LEN;
        if bytes.len() < mac_end {
            return Err(FlowParseError::Truncated);
        }
        let mut mac = [0u8; MAC_LEN];
        mac.copy_from_slice(&bytes[edges_end..mac_end]);
        if !key.verify(&bytes[..edges_end], &mac) {
            return Err(FlowParseError::BadMac);
        }
        let mut graph = FlowGraph::new();
        for i in 0..count {
            let off = 4 + 4 * i;
            let from = u16::from_le_bytes(bytes[off..off + 2].try_into().unwrap());
            let to = u16::from_le_bytes(bytes[off + 2..off + 4].try_into().unwrap());
            graph.insert(from, to);
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlowGraph {
        let mut g = FlowGraph::new();
        g.insert(FLOW_START, 3);
        g.insert(3, 4);
        g.insert(4, 4);
        g.insert(4, 1);
        g
    }

    #[test]
    fn membership() {
        let g = sample();
        assert!(g.contains(FLOW_START, 3));
        assert!(g.contains(4, 4));
        assert!(!g.contains(3, 1), "absent edge rejected");
        assert!(!g.contains(FLOW_START, 4));
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn round_trips_under_the_right_key() {
        let key = MacKey::from_seed(0xF10);
        let g = sample();
        let bytes = g.to_bytes(&key);
        assert_eq!(bytes.len(), 4 + 4 * g.len() + MAC_LEN);
        let parsed = FlowGraph::parse(&bytes, &key).expect("authentic bytes parse");
        assert_eq!(parsed, g);
        // Trailing padding (section alignment) is tolerated.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0u8; 32]);
        assert_eq!(FlowGraph::parse(&padded, &key).expect("padded"), g);
    }

    #[test]
    fn tampered_or_miskeyed_bytes_rejected() {
        let key = MacKey::from_seed(0xF10);
        let g = sample();
        let bytes = g.to_bytes(&key);
        let wrong = MacKey::from_seed(0xF11);
        assert_eq!(
            FlowGraph::parse(&bytes, &wrong),
            Err(FlowParseError::BadMac)
        );
        // Flip one edge byte: the widened graph must not authenticate.
        let mut forged = bytes.clone();
        forged[5] ^= 1;
        assert_eq!(FlowGraph::parse(&forged, &key), Err(FlowParseError::BadMac));
        assert_eq!(
            FlowGraph::parse(&bytes[..7], &key),
            Err(FlowParseError::Truncated)
        );
    }

    #[test]
    fn empty_graph_serializes() {
        let key = MacKey::from_seed(1);
        let g = FlowGraph::new();
        let parsed = FlowGraph::parse(&g.to_bytes(&key), &key).expect("empty parses");
        assert!(parsed.is_empty());
        assert!(!parsed.contains(FLOW_START, 0));
    }
}
