//! The installation key shared by the trusted installer and the kernel.

use crate::cmac::{Cmac, Mac};

/// The 128-bit key used for every MAC in the system.
///
/// The paper's threat model assumes this key is provided to the installer by
/// the security administrator and is otherwise accessible only to the kernel;
/// applications never see it. In the simulator, holding a `MacKey` *is* the
/// privilege: code paths modelling the untrusted application are written so
/// they never receive one.
#[derive(Clone)]
pub struct MacKey {
    cmac: Cmac,
}

impl std::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MacKey(<redacted>)")
    }
}

impl MacKey {
    /// Creates a key from raw bytes.
    pub fn new(key: [u8; 16]) -> Self {
        MacKey {
            cmac: Cmac::new(&key),
        }
    }

    /// Derives a key deterministically from a seed, for tests and examples.
    pub fn from_seed(seed: u64) -> Self {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        key[8..].copy_from_slice(&seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
        MacKey::new(key)
    }

    /// Computes the CMAC of `msg` under this key.
    pub fn mac(&self, msg: &[u8]) -> Mac {
        self.cmac.mac(msg)
    }

    /// Verifies `tag` over `msg`.
    pub fn verify(&self, msg: &[u8], tag: &Mac) -> bool {
        self.cmac.verify(msg, tag)
    }

    /// AES block operations performed through this key so far. The kernel
    /// snapshots this around a verification to charge cycles for the
    /// cryptographic work actually done. See [`crate::Aes128::block_ops`].
    pub fn block_ops(&self) -> u64 {
        self.cmac.block_ops()
    }

    /// A second handle to the same installation key, reusing the expanded
    /// AES schedule and CMAC subkeys and metering into the shared
    /// `block_ops` counter.
    ///
    /// A fleet installs one key into every kernel; handing each kernel a
    /// shared-schedule handle instead of re-deriving from seed saves one
    /// subkey-derivation block operation (plus a key expansion) per spawn
    /// — measurable by comparing [`MacKey::block_ops`] of a fresh key
    /// (1 at rest) against a handle (0 new operations) — and gives the
    /// harness one fleet-wide AES meter.
    pub fn shared_schedule(&self) -> MacKey {
        MacKey {
            cmac: self.cmac.shared_schedule(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_deterministic() {
        let a = MacKey::from_seed(42).mac(b"x");
        let b = MacKey::from_seed(42).mac(b"x");
        let c = MacKey::from_seed(43).mac(b"x");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn debug_redacts() {
        assert_eq!(format!("{:?}", MacKey::from_seed(1)), "MacKey(<redacted>)");
    }

    #[test]
    fn shared_schedule_skips_derivation_and_shares_meter() {
        let master = MacKey::from_seed(42);
        assert_eq!(master.block_ops(), 1, "fresh key burns one derivation op");
        let handle = master.shared_schedule();
        assert_eq!(
            master.block_ops(),
            1,
            "handle construction performs no AES work"
        );
        let tag = handle.mac(b"fleet");
        assert_eq!(
            tag,
            MacKey::from_seed(42).mac(b"fleet"),
            "same key material"
        );
        assert_eq!(
            master.block_ops(),
            handle.block_ops(),
            "handles meter into one fleet-wide counter"
        );
        assert!(master.block_ops() > 1);
    }
}
