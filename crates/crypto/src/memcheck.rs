//! The online memory checker used to keep *policy state* in untrusted
//! application memory (§3.2).
//!
//! The control-flow policy needs the basic block of the most recently
//! executed system call. Rather than keep per-process policy state in the
//! kernel, the paper stores a `lastBlock` variable and a MAC (`lbMAC`) in
//! application memory and keeps only a small counter in the kernel. The
//! counter acts as a nonce: an attacker who snapshots an old
//! `{lastBlock, lbMAC}` pair cannot replay it after the counter advances.

use crate::cmac::{Mac, MAC_LEN};
use crate::key::MacKey;

/// Size in bytes of the policy-state cell in application memory:
/// `lastBlock` (4 bytes LE) followed by `lbMAC` (16 bytes).
pub const POLICY_STATE_LEN: usize = 4 + MAC_LEN;

/// The policy-state cell stored in (untrusted) application memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyState {
    /// Basic block id of the most recently executed system call
    /// (0 before the first call).
    pub last_block: u32,
    /// MAC over `last_block ‖ counter`.
    pub mac: Mac,
}

/// The trusted side of the memory checker: the per-process counter held in
/// kernel space plus the key.
///
/// `verify` and `update` mirror steps 1 and 3–5 of the control-flow check in
/// §3.4.
#[derive(Debug)]
pub struct MemoryChecker {
    counter: u64,
}

fn state_message(last_block: u32, counter: u64) -> [u8; 12] {
    let mut msg = [0u8; 12];
    msg[..4].copy_from_slice(&last_block.to_le_bytes());
    msg[4..].copy_from_slice(&counter.to_le_bytes());
    msg
}

impl MemoryChecker {
    /// A fresh checker with counter 0, as installed at `exec` time.
    pub fn new() -> Self {
        MemoryChecker { counter: 0 }
    }

    /// The current counter value (exposed for tests and cycle accounting).
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Fault-injection hook: shifts the counter by `delta` (saturating at
    /// zero), simulating kernel-side nonce corruption. After a skew the
    /// policy state in application memory no longer authenticates, so
    /// every subsequent control-flow check must fail — the fault campaign
    /// asserts exactly that.
    pub fn skew_counter_for_fault(&mut self, delta: i64) {
        self.counter = if delta >= 0 {
            self.counter.saturating_add(delta as u64)
        } else {
            self.counter.saturating_sub(delta.unsigned_abs())
        };
    }

    /// The initial application-side state the installer embeds in the
    /// binary: `lastBlock = 0` authenticated against counter 0.
    pub fn initial_state(key: &MacKey) -> PolicyState {
        PolicyState {
            last_block: 0,
            mac: key.mac(&state_message(0, 0)),
        }
    }

    /// Checks that `state` read from application memory is authentic with
    /// respect to the in-kernel counter.
    pub fn verify(&self, key: &MacKey, state: &PolicyState) -> bool {
        key.verify(&state_message(state.last_block, self.counter), &state.mac)
    }

    /// Advances the counter and produces the new authenticated state for
    /// `new_block`, to be written back into application memory.
    pub fn update(&mut self, key: &MacKey, new_block: u32) -> PolicyState {
        self.counter += 1;
        PolicyState {
            last_block: new_block,
            mac: key.mac(&state_message(new_block, self.counter)),
        }
    }
}

impl Default for MemoryChecker {
    fn default() -> Self {
        MemoryChecker::new()
    }
}

impl PolicyState {
    /// Serialises to the in-memory layout `lastBlock ‖ lbMAC`.
    pub fn to_bytes(&self) -> [u8; POLICY_STATE_LEN] {
        let mut out = [0u8; POLICY_STATE_LEN];
        out[..4].copy_from_slice(&self.last_block.to_le_bytes());
        out[4..].copy_from_slice(&self.mac);
        out
    }

    /// Parses the layout produced by [`PolicyState::to_bytes`].
    ///
    /// Returns `None` if fewer than [`POLICY_STATE_LEN`] bytes are available.
    pub fn parse(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < POLICY_STATE_LEN {
            return None;
        }
        let last_block = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
        let mut mac = [0u8; MAC_LEN];
        mac.copy_from_slice(&bytes[4..POLICY_STATE_LEN]);
        Some(PolicyState { last_block, mac })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MacKey {
        MacKey::from_seed(99)
    }

    #[test]
    fn initial_state_verifies() {
        let checker = MemoryChecker::new();
        let state = MemoryChecker::initial_state(&key());
        assert!(checker.verify(&key(), &state));
        assert_eq!(state.last_block, 0);
    }

    #[test]
    fn update_then_verify() {
        let k = key();
        let mut checker = MemoryChecker::new();
        let s1 = checker.update(&k, 1234);
        assert_eq!(s1.last_block, 1234);
        assert!(checker.verify(&k, &s1));
        let s2 = checker.update(&k, 2010);
        assert!(checker.verify(&k, &s2));
        assert_eq!(checker.counter(), 2);
    }

    #[test]
    fn replay_of_old_state_is_rejected() {
        let k = key();
        let mut checker = MemoryChecker::new();
        let old = checker.update(&k, 1);
        let _new = checker.update(&k, 2);
        // The attacker restores the snapshot taken after the first call.
        assert!(!checker.verify(&k, &old));
    }

    #[test]
    fn forged_last_block_is_rejected() {
        let k = key();
        let mut checker = MemoryChecker::new();
        let mut state = checker.update(&k, 7);
        state.last_block = 8;
        assert!(!checker.verify(&k, &state));
    }

    #[test]
    fn state_roundtrip() {
        let k = key();
        let mut checker = MemoryChecker::new();
        let state = checker.update(&k, 0xdead_beef);
        let parsed = PolicyState::parse(&state.to_bytes()).unwrap();
        assert_eq!(parsed, state);
        assert!(PolicyState::parse(&[0u8; 19]).is_none());
    }
}
