//! AES-128 block cipher (encryption only — all MAC constructions in this
//! crate only ever encrypt).
//!
//! This is a straightforward table-free implementation of FIPS-197 suitable
//! for a simulator: `SubBytes` uses the S-box table, `MixColumns` uses
//! `xtime` arithmetic. It is validated against the FIPS-197 appendix vectors
//! in the unit tests below.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the AES-128 key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
fn xtime(b: u8) -> u8 {
    let hi = b & 0x80;
    let mut r = b << 1;
    if hi != 0 {
        r ^= 0x1b;
    }
    r
}

/// An expanded AES-128 key (11 round keys).
///
/// Construct once with [`Aes128::new`] and reuse; key expansion is the
/// expensive part of short-message MACs, so the schedule is precomputed here
/// and every MAC construction in the crate shares it.
///
/// The cipher also counts its own block invocations (see
/// [`Aes128::block_ops`]): the simulated kernel charges verification cycles
/// from *measured* block operations rather than from per-call-site estimates,
/// which keeps the cycle model honest when a cached fast path skips work.
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    blocks: std::rc::Rc<std::cell::Cell<u64>>,
}

impl Clone for Aes128 {
    fn clone(&self) -> Self {
        // A clone copies the expanded schedule and *meters independently*:
        // the count carries over but lives in a fresh counter cell. Use
        // [`Aes128::shared_schedule`] to keep metering through the original
        // counter instead.
        Aes128 {
            round_keys: self.round_keys,
            blocks: std::rc::Rc::new(std::cell::Cell::new(self.blocks.get())),
        }
    }
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug output.
        f.debug_struct("Aes128")
            .field("round_keys", &"<redacted>")
            .finish()
    }
}

impl Aes128 {
    /// Expands `key` into the 11 round keys of AES-128.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 {
            round_keys,
            blocks: std::rc::Rc::new(std::cell::Cell::new(0)),
        }
    }

    /// A second handle to the *same* expanded key: the round keys are
    /// copied (they are immutable after expansion) and block operations
    /// keep metering into the shared counter.
    ///
    /// This is the measured form of key-schedule reuse: constructing a
    /// handle performs zero AES block operations and zero key expansions,
    /// whereas a fresh [`Aes128::new`] re-runs the schedule (and a fresh
    /// CMAC instance additionally burns one block operation deriving
    /// subkeys). A fleet of kernels sharing one installer key holds one
    /// schedule and one fleet-wide `block_ops` meter.
    pub fn shared_schedule(&self) -> Aes128 {
        Aes128 {
            round_keys: self.round_keys,
            blocks: std::rc::Rc::clone(&self.blocks),
        }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        self.blocks.set(self.blocks.get().wrapping_add(1));
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Encrypts one block, returning the ciphertext.
    pub fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }

    /// Total block-cipher invocations performed by this instance since
    /// construction (clones restart from the count at clone time).
    ///
    /// Callers meter a computation by snapshotting before and after; the
    /// counter wraps rather than panicking, so deltas stay correct.
    pub fn block_ops(&self) -> u64 {
        self.blocks.get()
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State is column-major: byte `state[c*4 + r]` is row `r`, column `c`.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[c * 4 + r] = s[((c + r) % 4) * 4 + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[c * 4],
            state[c * 4 + 1],
            state[c * 4 + 2],
            state[c * 4 + 3],
        ];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        for r in 0..4 {
            state[c * 4 + r] = col[r] ^ t ^ xtime(col[r] ^ col[(r + 1) % 4]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let pt: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        let aes = Aes128::new(&key);
        assert_eq!(
            aes.encrypt(&pt).to_vec(),
            hex("3925841d02dc09fbdc118597196a0b32")
        );
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes128::new(&key);
        assert_eq!(
            aes.encrypt(&pt).to_vec(),
            hex("69c4e0d86a7b0430d8cdb78070b4c55a")
        );
    }

    #[test]
    fn encrypt_block_matches_encrypt() {
        let aes = Aes128::new(&[7u8; 16]);
        let block = [42u8; 16];
        let mut in_place = block;
        aes.encrypt_block(&mut in_place);
        assert_eq!(in_place, aes.encrypt(&block));
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes128::new(&[1u8; 16]).encrypt(&[0u8; 16]);
        let b = Aes128::new(&[2u8; 16]).encrypt(&[0u8; 16]);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_redacts_key() {
        let aes = Aes128::new(&[9u8; 16]);
        assert!(format!("{aes:?}").contains("redacted"));
    }

    #[test]
    fn block_ops_counts_each_invocation() {
        let aes = Aes128::new(&[3u8; 16]);
        assert_eq!(aes.block_ops(), 0);
        aes.encrypt(&[0u8; 16]);
        assert_eq!(aes.block_ops(), 1);
        let mut b = [1u8; 16];
        aes.encrypt_block(&mut b);
        aes.encrypt_block(&mut b);
        assert_eq!(aes.block_ops(), 3);
    }

    #[test]
    fn clone_carries_count_then_diverges() {
        let aes = Aes128::new(&[5u8; 16]);
        aes.encrypt(&[0u8; 16]);
        let copy = aes.clone();
        assert_eq!(copy.block_ops(), 1);
        copy.encrypt(&[0u8; 16]);
        assert_eq!(copy.block_ops(), 2);
        assert_eq!(aes.block_ops(), 1, "clones meter independently");
    }

    #[test]
    fn shared_schedule_shares_key_and_meter() {
        let aes = Aes128::new(&[5u8; 16]);
        aes.encrypt(&[0u8; 16]);
        let handle = aes.shared_schedule();
        assert_eq!(
            aes.block_ops(),
            1,
            "constructing a handle performs no block operations"
        );
        assert_eq!(handle.encrypt(&[1u8; 16]), aes.encrypt(&[1u8; 16]));
        assert_eq!(aes.block_ops(), 3, "handles meter into one counter");
        assert_eq!(handle.block_ops(), 3);
    }
}
