//! An authenticated dictionary for capability-tracking policies (§5.3).
//!
//! Capability tracking needs, per process, the set of currently active file
//! descriptors returned by `open`/`socket`-like calls. As with the
//! control-flow policy state, the set itself lives in untrusted memory while
//! the kernel holds only a counter nonce; a MAC over `contents ‖ counter`
//! makes tampering and replay detectable. This is the "more efficient
//! implementation based on authenticated dictionaries" the paper sketches,
//! realised as a MAC-authenticated sorted set.

use crate::cmac::Mac;
use crate::key::MacKey;

/// A set of `u32` capabilities (file descriptors) stored in untrusted memory.
///
/// The serialised form is `count (4 bytes LE) ‖ sorted values (4 bytes LE
/// each)`; the accompanying [`Mac`] covers that serialisation concatenated
/// with the kernel-held counter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CapabilitySet {
    values: Vec<u32>,
}

impl CapabilitySet {
    /// An empty capability set.
    pub fn new() -> Self {
        CapabilitySet::default()
    }

    /// Whether `value` is present.
    pub fn contains(&self, value: u32) -> bool {
        self.values.binary_search(&value).is_ok()
    }

    /// Number of capabilities held.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Inserts `value`; returns `false` if it was already present.
    pub fn insert(&mut self, value: u32) -> bool {
        match self.values.binary_search(&value) {
            Ok(_) => false,
            Err(pos) => {
                self.values.insert(pos, value);
                true
            }
        }
    }

    /// Removes `value`; returns `false` if it was absent.
    pub fn remove(&mut self, value: u32) -> bool {
        match self.values.binary_search(&value) {
            Ok(pos) => {
                self.values.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Serialises to the untrusted-memory layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 4 * self.values.len());
        out.extend_from_slice(&(self.values.len() as u32).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses the layout produced by [`CapabilitySet::to_bytes`]. Returns
    /// `None` on truncation or if the values are not strictly sorted (a
    /// malformed blob can never have a valid MAC anyway, but rejecting early
    /// keeps `contains` correct).
    pub fn parse(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let count = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        if bytes.len() < 4 + 4 * count {
            return None;
        }
        let mut values = Vec::with_capacity(count);
        for i in 0..count {
            let off = 4 + 4 * i;
            let v = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
            if let Some(&last) = values.last() {
                if v <= last {
                    return None;
                }
            }
            values.push(v);
        }
        Some(CapabilitySet { values })
    }
}

impl FromIterator<u32> for CapabilitySet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut set = CapabilitySet::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

/// The trusted side of the authenticated dictionary: counter plus MAC
/// computation, analogous to [`crate::memcheck::MemoryChecker`].
#[derive(Debug, Default)]
pub struct AuthDict {
    counter: u64,
}

fn dict_message(contents: &[u8], counter: u64) -> Vec<u8> {
    let mut msg = Vec::with_capacity(contents.len() + 8);
    msg.extend_from_slice(contents);
    msg.extend_from_slice(&counter.to_le_bytes());
    msg
}

impl AuthDict {
    /// A fresh dictionary with counter 0.
    pub fn new() -> Self {
        AuthDict::default()
    }

    /// Current counter value.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// MAC for the initial (empty) set at counter 0.
    pub fn initial_mac(key: &MacKey) -> Mac {
        key.mac(&dict_message(&CapabilitySet::new().to_bytes(), 0))
    }

    /// Verifies a set read from untrusted memory against the counter.
    pub fn verify(&self, key: &MacKey, set: &CapabilitySet, mac: &Mac) -> bool {
        key.verify(&dict_message(&set.to_bytes(), self.counter), mac)
    }

    /// Advances the counter and produces the MAC for the updated set.
    pub fn update(&mut self, key: &MacKey, set: &CapabilitySet) -> Mac {
        self.counter += 1;
        key.mac(&dict_message(&set.to_bytes(), self.counter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MacKey {
        MacKey::from_seed(5)
    }

    #[test]
    fn set_operations() {
        let mut s = CapabilitySet::new();
        assert!(s.is_empty());
        assert!(s.insert(4));
        assert!(s.insert(3));
        assert!(!s.insert(4));
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert!(!s.contains(5));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn roundtrip() {
        let s: CapabilitySet = [9, 1, 5].into_iter().collect();
        let parsed = CapabilitySet::parse(&s.to_bytes()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn parse_rejects_unsorted_and_truncated() {
        // count=2, values 5 then 3 (unsorted).
        let mut bytes = 2u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        assert!(CapabilitySet::parse(&bytes).is_none());
        assert!(CapabilitySet::parse(&bytes[..7]).is_none());
        assert!(CapabilitySet::parse(&[]).is_none());
    }

    #[test]
    fn open_close_lifecycle() {
        let k = key();
        let mut dict = AuthDict::new();
        let mut set = CapabilitySet::new();
        let mut mac = AuthDict::initial_mac(&k);
        assert!(dict.verify(&k, &set, &mac));

        // open() returns fd 4: kernel verifies, inserts, re-MACs.
        set.insert(4);
        mac = dict.update(&k, &set);
        assert!(dict.verify(&k, &set, &mac));
        assert!(set.contains(4));

        // read(4) passes the capability check; read(5) would not.
        assert!(!set.contains(5));

        // close(4), then replaying the pre-close state must fail.
        let old_mac = mac;
        let old_set = set.clone();
        set.remove(4);
        mac = dict.update(&k, &set);
        assert!(dict.verify(&k, &set, &mac));
        assert!(!dict.verify(&k, &old_set, &old_mac));
    }

    #[test]
    fn forged_membership_fails() {
        let k = key();
        let mut dict = AuthDict::new();
        let mut set = CapabilitySet::new();
        set.insert(4);
        let mac = dict.update(&k, &set);
        set.insert(7); // attacker sneaks in fd 7 without the kernel
        assert!(!dict.verify(&k, &set, &mac));
    }
}
