//! Cryptographic substrate for the authenticated-system-calls reproduction.
//!
//! The paper's prototype links Gladman's AES library into the kernel and uses
//! AES-CBC-OMAC (OMAC1, a.k.a. CMAC) for every message authentication code.
//! This crate reimplements that stack from scratch:
//!
//! * [`aes::Aes128`] — the block cipher (FIPS-197 vectors in tests);
//! * [`cmac::Cmac`] — OMAC1 (RFC 4493 vectors in tests);
//! * [`key::MacKey`] — the installation key shared by installer and kernel;
//! * [`authstring::AuthenticatedString`] — the `{length, MAC, string}`
//!   representation of string constants (§3.2);
//! * [`memcheck::MemoryChecker`] — the online memory checker keeping the
//!   control-flow policy state (`lastBlock`/`lbMAC`) in untrusted memory;
//! * [`authdict`] — the authenticated dictionary used for capability
//!   (file-descriptor) tracking policies (§5.3).
//!
//! # Example
//!
//! ```
//! use asc_crypto::{AuthenticatedString, MacKey};
//!
//! let key = MacKey::from_seed(1);
//! let s = AuthenticatedString::build(&key, b"/dev/console".to_vec());
//! assert!(s.verify(&key));
//! ```

pub mod aes;
pub mod authdict;
pub mod authstring;
pub mod cmac;
pub mod key;
pub mod memcheck;

pub use aes::Aes128;
pub use authdict::{AuthDict, CapabilitySet};
pub use authstring::{AuthenticatedString, ParseAsError, AS_HEADER_LEN};
pub use cmac::{Cmac, Mac, MAC_LEN};
pub use key::MacKey;
pub use memcheck::{MemoryChecker, PolicyState, POLICY_STATE_LEN};
