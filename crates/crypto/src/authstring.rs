//! The authenticated string (AS) abstraction of §3.2.
//!
//! An AS is the tuple `{length, MAC, string}` laid out in application memory
//! as `length` (4 bytes LE) followed by a 16-byte CMAC over the string
//! contents followed by the contents themselves. System call arguments that
//! the policy constrains to a string constant point at the *contents*; the 20
//! bytes preceding that address hold `length` and `MAC`, which is how the
//! kernel finds them at check time.

use crate::cmac::{Mac, MAC_LEN};
use crate::key::MacKey;

/// Byte offset from the start of an AS blob to the string contents.
pub const AS_HEADER_LEN: usize = 4 + MAC_LEN;

/// An authenticated string: contents plus the MAC guaranteeing their
/// integrity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthenticatedString {
    contents: Vec<u8>,
    mac: Mac,
}

/// Errors produced when parsing an AS blob out of raw memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseAsError {
    /// The blob is shorter than the 20-byte header.
    TruncatedHeader,
    /// The header's length field extends past the available bytes.
    TruncatedContents {
        /// Length claimed by the header.
        declared: usize,
        /// Bytes actually present after the header.
        available: usize,
    },
}

impl std::fmt::Display for ParseAsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseAsError::TruncatedHeader => write!(f, "authenticated string header truncated"),
            ParseAsError::TruncatedContents { declared, available } => write!(
                f,
                "authenticated string contents truncated: declared {declared} bytes, {available} available"
            ),
        }
    }
}

impl std::error::Error for ParseAsError {}

impl AuthenticatedString {
    /// Builds an AS for `contents`, computing its MAC under `key`.
    ///
    /// Only the trusted installer does this; the kernel only verifies.
    pub fn build(key: &MacKey, contents: impl Into<Vec<u8>>) -> Self {
        let contents = contents.into();
        let mac = key.mac(&contents);
        AuthenticatedString { contents, mac }
    }

    /// The string contents.
    pub fn contents(&self) -> &[u8] {
        &self.contents
    }

    /// The MAC over the contents.
    pub fn mac(&self) -> &Mac {
        &self.mac
    }

    /// The declared length of the contents.
    pub fn len(&self) -> usize {
        self.contents.len()
    }

    /// Whether the contents are empty.
    pub fn is_empty(&self) -> bool {
        self.contents.is_empty()
    }

    /// Serialises to the in-memory layout `len ‖ mac ‖ contents`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(AS_HEADER_LEN + self.contents.len());
        out.extend_from_slice(&(self.contents.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.mac);
        out.extend_from_slice(&self.contents);
        out
    }

    /// Parses the layout produced by [`AuthenticatedString::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseAsError`] if the blob is truncated. Parsing does *not*
    /// verify the MAC — an attacker controls application memory, so the
    /// parsed value must still pass [`AuthenticatedString::verify`].
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseAsError> {
        if bytes.len() < AS_HEADER_LEN {
            return Err(ParseAsError::TruncatedHeader);
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
        let mut mac = [0u8; MAC_LEN];
        mac.copy_from_slice(&bytes[4..AS_HEADER_LEN]);
        let available = bytes.len() - AS_HEADER_LEN;
        if len > available {
            return Err(ParseAsError::TruncatedContents {
                declared: len,
                available,
            });
        }
        let contents = bytes[AS_HEADER_LEN..AS_HEADER_LEN + len].to_vec();
        Ok(AuthenticatedString { contents, mac })
    }

    /// Verifies that the MAC matches the contents under `key`.
    pub fn verify(&self, key: &MacKey) -> bool {
        key.verify(&self.contents, &self.mac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MacKey {
        MacKey::from_seed(7)
    }

    #[test]
    fn roundtrip() {
        let s = AuthenticatedString::build(&key(), b"/dev/console".to_vec());
        let bytes = s.to_bytes();
        let parsed = AuthenticatedString::parse(&bytes).unwrap();
        assert_eq!(parsed, s);
        assert!(parsed.verify(&key()));
        assert_eq!(parsed.contents(), b"/dev/console");
        assert_eq!(parsed.len(), 12);
        assert!(!parsed.is_empty());
    }

    #[test]
    fn empty_string() {
        let s = AuthenticatedString::build(&key(), Vec::new());
        assert!(s.is_empty());
        let parsed = AuthenticatedString::parse(&s.to_bytes()).unwrap();
        assert!(parsed.verify(&key()));
    }

    #[test]
    fn tampered_contents_fail_verification() {
        let s = AuthenticatedString::build(&key(), b"/bin/ls".to_vec());
        let mut bytes = s.to_bytes();
        // Simulate the non-control-data attack: overwrite "ls" with "sh".
        let n = bytes.len();
        bytes[n - 2] = b's';
        bytes[n - 1] = b'h';
        let parsed = AuthenticatedString::parse(&bytes).unwrap();
        assert_eq!(parsed.contents(), b"/bin/sh");
        assert!(!parsed.verify(&key()));
    }

    #[test]
    fn wrong_key_fails() {
        let s = AuthenticatedString::build(&key(), b"x".to_vec());
        assert!(!s.verify(&MacKey::from_seed(8)));
    }

    #[test]
    fn truncated_header() {
        assert_eq!(
            AuthenticatedString::parse(&[0u8; 19]),
            Err(ParseAsError::TruncatedHeader)
        );
    }

    #[test]
    fn truncated_contents() {
        let s = AuthenticatedString::build(&key(), b"abcdef".to_vec());
        let bytes = s.to_bytes();
        let err = AuthenticatedString::parse(&bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(
            err,
            ParseAsError::TruncatedContents {
                declared: 6,
                available: 5
            }
        );
    }

    #[test]
    fn attacker_cannot_extend_length_undetected() {
        // The attacker may rewrite the length field to make the kernel read
        // past the real string (the DoS the paper warns about); parsing
        // honours the declared length but verification then fails.
        let s = AuthenticatedString::build(&key(), b"abc".to_vec());
        let mut bytes = s.to_bytes();
        bytes.extend_from_slice(b"XYZ");
        bytes[0] = 6; // claim 6 bytes
        let parsed = AuthenticatedString::parse(&bytes).unwrap();
        assert_eq!(parsed.contents(), b"abcXYZ");
        assert!(!parsed.verify(&key()));
    }
}
