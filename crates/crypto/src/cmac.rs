//! AES-CMAC (OMAC1), the one-key CBC MAC of Iwata–Kurosawa used by the
//! paper's prototype ("AES-CBC-OMAC", producing a 128-bit code).
//!
//! Validated against the RFC 4493 test vectors.

use crate::aes::Aes128;

/// Length in bytes of every MAC produced by this crate.
pub const MAC_LEN: usize = 16;

/// A 128-bit message authentication code.
pub type Mac = [u8; MAC_LEN];

/// A CMAC (OMAC1) instance with precomputed subkeys.
///
/// In the simulated system exactly one of these exists inside the trusted
/// installer and one inside the kernel; the untrusted application never holds
/// one.
#[derive(Clone, Debug)]
pub struct Cmac {
    aes: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

fn dbl(block: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let carry = block[0] >> 7;
    for i in 0..15 {
        out[i] = (block[i] << 1) | (block[i + 1] >> 7);
    }
    out[15] = block[15] << 1;
    if carry == 1 {
        out[15] ^= 0x87;
    }
    out
}

impl Cmac {
    /// Creates a CMAC instance for `key`, deriving the two subkeys.
    pub fn new(key: &[u8; 16]) -> Self {
        let aes = Aes128::new(key);
        let l = aes.encrypt(&[0u8; 16]);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        Cmac { aes, k1, k2 }
    }

    /// Computes the CMAC of `msg`.
    pub fn mac(&self, msg: &[u8]) -> Mac {
        let mut x = [0u8; 16];
        let n = msg.len();
        let full_blocks = if n == 0 { 0 } else { (n - 1) / 16 };
        for i in 0..full_blocks {
            for j in 0..16 {
                x[j] ^= msg[i * 16 + j];
            }
            self.aes.encrypt_block(&mut x);
        }
        let tail = &msg[full_blocks * 16..];
        let mut last = [0u8; 16];
        if tail.len() == 16 {
            for j in 0..16 {
                last[j] = tail[j] ^ self.k1[j];
            }
        } else {
            last[..tail.len()].copy_from_slice(tail);
            last[tail.len()] = 0x80;
            for j in 0..16 {
                last[j] ^= self.k2[j];
            }
        }
        for j in 0..16 {
            x[j] ^= last[j];
        }
        self.aes.encrypt_block(&mut x);
        x
    }

    /// Verifies `tag` against `msg` in constant shape (full comparison).
    pub fn verify(&self, msg: &[u8], tag: &Mac) -> bool {
        let computed = self.mac(msg);
        // Avoid early exit: fold all byte differences.
        let mut diff = 0u8;
        for i in 0..MAC_LEN {
            diff |= computed[i] ^ tag[i];
        }
        diff == 0
    }

    /// Number of AES block-cipher invocations `mac` performs for a message of
    /// `len` bytes. Used by the kernel's cycle-accounting model so that
    /// simulated verification cost reflects the cryptographic work actually
    /// done.
    pub fn blocks_for_len(len: usize) -> u64 {
        if len == 0 {
            1
        } else {
            len.div_ceil(16) as u64
        }
    }

    /// AES block operations performed through this instance so far (the
    /// subkey derivation in [`Cmac::new`] counts as one). See
    /// [`Aes128::block_ops`].
    pub fn block_ops(&self) -> u64 {
        self.aes.block_ops()
    }

    /// A second handle to the same key material: the expanded AES schedule
    /// and the K1/K2 subkeys are reused (no key expansion, no derivation
    /// block operation) and all handles meter into one shared `block_ops`
    /// counter. See [`Aes128::shared_schedule`].
    pub fn shared_schedule(&self) -> Cmac {
        Cmac {
            aes: self.aes.shared_schedule(),
            k1: self.k1,
            k2: self.k2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn rfc4493_cmac() -> Cmac {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        Cmac::new(&key)
    }

    #[test]
    fn rfc4493_subkeys() {
        let c = rfc4493_cmac();
        assert_eq!(c.k1.to_vec(), hex("fbeed618357133667c85e08f7236a8de"));
        assert_eq!(c.k2.to_vec(), hex("f7ddac306ae266ccf90bc11ee46d513b"));
    }

    #[test]
    fn rfc4493_example1_empty() {
        let c = rfc4493_cmac();
        assert_eq!(c.mac(b"").to_vec(), hex("bb1d6929e95937287fa37d129b756746"));
    }

    #[test]
    fn rfc4493_example2_16_bytes() {
        let c = rfc4493_cmac();
        let msg = hex("6bc1bee22e409f96e93d7e117393172a");
        assert_eq!(
            c.mac(&msg).to_vec(),
            hex("070a16b46b4d4144f79bdd9dd04a287c")
        );
    }

    #[test]
    fn rfc4493_example3_40_bytes() {
        let c = rfc4493_cmac();
        let msg = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411"
        ));
        assert_eq!(
            c.mac(&msg).to_vec(),
            hex("dfa66747de9ae63030ca32611497c827")
        );
    }

    #[test]
    fn rfc4493_example4_64_bytes() {
        let c = rfc4493_cmac();
        let msg = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        assert_eq!(
            c.mac(&msg).to_vec(),
            hex("51f0bebf7e3b9d92fc49741779363cfe")
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let c = rfc4493_cmac();
        let tag = c.mac(b"hello world");
        assert!(c.verify(b"hello world", &tag));
        assert!(!c.verify(b"hello worle", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!c.verify(b"hello world", &bad));
    }

    #[test]
    fn block_ops_matches_blocks_for_len() {
        let c = rfc4493_cmac();
        for len in [0usize, 1, 15, 16, 17, 32, 40, 64, 100] {
            let msg = vec![0xabu8; len];
            let before = c.block_ops();
            c.mac(&msg);
            assert_eq!(
                c.block_ops() - before,
                Cmac::blocks_for_len(len),
                "measured blocks disagree with the model for len {len}"
            );
        }
    }

    #[test]
    fn blocks_for_len_boundaries() {
        assert_eq!(Cmac::blocks_for_len(0), 1);
        assert_eq!(Cmac::blocks_for_len(1), 1);
        assert_eq!(Cmac::blocks_for_len(16), 1);
        assert_eq!(Cmac::blocks_for_len(17), 2);
        assert_eq!(Cmac::blocks_for_len(32), 2);
        assert_eq!(Cmac::blocks_for_len(33), 3);
        assert_eq!(Cmac::blocks_for_len(4096), 256);
    }
}
