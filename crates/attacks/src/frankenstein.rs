//! The Frankenstein attack (§5.5): a new program stitched together from
//! the authenticated system calls of *other* applications on the machine.
//!
//! Because policies are compiled into applications, an attacker who can
//! run arbitrary binaries can try to assemble one from authenticated
//! gadgets: each stolen call keeps its original call site, MAC, and `.asc`
//! data, so every per-call check passes. What connects the calls is the
//! control-flow policy — and *that* only stops cross-program stitching if
//! basic-block identifiers are unique across programs, which is exactly
//! the countermeasure the paper proposes (fold a program id into every
//! block id).
//!
//! [`run_frankenstein`] constructs such a program from two donors. With
//! `unique_block_ids = false` the stitched program runs to completion;
//! with the countermeasure on, the second gadget's predecessor check fails
//! and the process is killed.

use asc_crypto::MacKey;
use asc_installer::{Installer, InstallerOptions};
use asc_isa::{Instruction, Opcode, Reg, INSTR_LEN};
use asc_kernel::{Kernel, KernelOptions, Personality};
use asc_object::{Binary, Section, SectionFlags};
use asc_vm::{Machine, RunOutcome};

use crate::AttackOutcome;

const PERSONALITY: Personality = Personality::Linux;

/// Donor A: its first (and only) syscall gadget is a `getpid` that may
/// legally follow program start.
const DONOR_A: &str = r#"
fn main() {
    getpid();
    return 0;
}
"#;

/// Donor B: same prefix as A (so the first syscall's block id matches
/// A's numerically), then a `write` whose predecessor set contains that
/// block. The padding keeps a gap between the two gadgets for the
/// attacker's glue, and the large global pushes B's `.asc` section to a
/// different address than A's so both can be replicated side by side.
const DONOR_B: &str = r#"
global spacer[16384];

fn main() {
    getpid();
    var pad = 1;
    pad = pad + 2;
    pad = pad * 3;
    pad = pad ^ 5;
    pad = pad + 7;
    pad = pad * 11;
    pad = pad + 13;
    pad = pad ^ 17;
    spacer[0] = pad;
    write(1, "ghoul", 5);
    return 0;
}
"#;

/// A stolen gadget: its original address and decoded instructions.
#[derive(Clone, Debug)]
struct Gadget {
    addr: u32,
    instrs: Vec<Instruction>,
}

fn decode_text(binary: &Binary) -> (u32, Vec<Instruction>) {
    let text = binary.section_by_name(".text").expect("text");
    let instrs = text
        .data
        .chunks_exact(INSTR_LEN)
        .map(|c| Instruction::decode(c).expect("installed binaries decode"))
        .collect();
    (text.addr, instrs)
}

/// Extracts the gadget for the `index`-th syscall whose number register is
/// loaded with `nr`: the maximal run of `movi`s before the `syscall`.
fn gadget_for(binary: &Binary, nr: u32, index: usize) -> Gadget {
    let (base, instrs) = decode_text(binary);
    let mut seen = 0;
    for (i, ins) in instrs.iter().enumerate() {
        if ins.op != Opcode::Syscall {
            continue;
        }
        // Find the r0 load in the preceding movi run.
        let mut start = i;
        while start > 0 && instrs[start - 1].op == Opcode::Movi {
            start -= 1;
        }
        let loads_nr = instrs[start..i]
            .iter()
            .any(|m| m.rd == Reg::R0 && m.imm == nr);
        if loads_nr {
            if seen == index {
                return Gadget {
                    addr: base + (start * INSTR_LEN) as u32,
                    instrs: instrs[start..=i].to_vec(),
                };
            }
            seen += 1;
        }
    }
    panic!("gadget for syscall {nr} (#{index}) not found");
}

fn asc_section(binary: &Binary) -> (u32, Vec<u8>) {
    let s = binary
        .section_by_name(".asc")
        .expect("installed binary has .asc");
    (s.addr, s.data.clone())
}

/// Builds the stitched program from two installed donors and runs it under
/// an enforcing kernel. Returns the attack outcome: `Succeeded` when the
/// stolen `write` executes, `Blocked` when the kernel kills the process.
pub fn run_frankenstein(key: &MacKey, unique_block_ids: bool) -> AttackOutcome {
    // Install the donors with distinct program ids.
    let mk_installer = |pid: u16| {
        let mut opts = InstallerOptions::new(PERSONALITY).with_program_id(pid);
        opts.unique_block_ids = unique_block_ids;
        Installer::new(key.clone(), opts)
    };
    let a_plain = asc_workloads::build_source(DONOR_A, PERSONALITY).expect("donor A builds");
    let (a_auth, _) = mk_installer(21)
        .install(&a_plain, "donorA")
        .expect("A installs");
    let b_plain = asc_workloads::build_source(DONOR_B, PERSONALITY).expect("donor B builds");
    let (b_auth, _) = mk_installer(22)
        .install(&b_plain, "donorB")
        .expect("B installs");

    let getpid_nr = PERSONALITY
        .nr(asc_kernel::SyscallId::Getpid)
        .expect("getpid") as u32;
    let write_nr = PERSONALITY.nr(asc_kernel::SyscallId::Write).expect("write") as u32;
    let g_a = gadget_for(&a_auth, getpid_nr, 0); // A's authenticated getpid
    let g_b = gadget_for(&b_auth, write_nr, 0); // B's authenticated write
    let (asc_a_addr, asc_a) = asc_section(&a_auth);
    let (asc_b_addr, asc_b) = asc_section(&b_auth);
    assert!(
        asc_a_addr + asc_a.len() as u32 <= asc_b_addr,
        "donor .asc sections must not overlap ({asc_a_addr:#x}+{} vs {asc_b_addr:#x})",
        asc_a.len()
    );

    // Frankenstein text: both gadgets at their original addresses, glue in
    // the gaps. Layout: [gadget A][jmp glue][...gap...][gadget B][halt]
    // ... [glue: copy A's policy state over B's, set write args, jmp B].
    let a_end = g_a.addr + (g_a.instrs.len() * INSTR_LEN) as u32;
    let b_end = g_b.addr + (g_b.instrs.len() * INSTR_LEN) as u32;
    assert!(
        a_end + INSTR_LEN as u32 <= g_b.addr,
        "need a gap for the trampoline"
    );
    let glue_addr = b_end + INSTR_LEN as u32;

    let text_base = 0x1000u32;
    // The policy-state cell is the first thing the installer lays out in
    // `.asc`, so its address is the section base.
    let state_a = asc_a_addr;
    let state_b = asc_b_addr;
    let mut glue = vec![
        // Replay of B's argument setup (the parts outside the gadget).
        Instruction::movi(Reg::R1, 1),
        Instruction::movi(Reg::R3, 5),
        // Copy the 20-byte policy state A -> B.
        Instruction::movi(Reg::LR, state_a),
        Instruction::movi(Reg::R4, state_b),
    ];
    for off in (0..20).step_by(4) {
        glue.push(Instruction::ldw(Reg::R12, Reg::LR, off));
        glue.push(Instruction::stw(Reg::R4, off, Reg::R12));
    }
    glue.push(Instruction::jmp(g_b.addr));

    let text_end = glue_addr + (glue.len() * INSTR_LEN) as u32;
    let mut text = vec![0u8; (text_end - text_base) as usize];
    let mut put = |addr: u32, instrs: &[Instruction]| {
        let mut off = (addr - text_base) as usize;
        for i in instrs {
            text[off..off + INSTR_LEN].copy_from_slice(&i.encode());
            off += INSTR_LEN;
        }
    };
    put(g_a.addr, &g_a.instrs);
    put(a_end, &[Instruction::jmp(glue_addr)]);
    put(g_b.addr, &g_b.instrs);
    put(b_end, &[Instruction::halt()]);
    put(glue_addr, &glue);

    let mut monster = Binary::new(g_a.addr);
    monster.push_section(Section::new(".text", text_base, text, SectionFlags::RX));
    monster.push_section(Section::new(".asc", asc_a_addr, asc_a, SectionFlags::RW));
    monster.push_section(Section::new(".asc2", asc_b_addr, asc_b, SectionFlags::RW));
    monster.set_authenticated(true);
    monster.validate().expect("monster layout");

    // Run it under the enforcing kernel.
    let mut kernel = Kernel::new(KernelOptions::enforcing(PERSONALITY));
    kernel.set_key(key.clone());
    kernel.set_brk(monster.highest_addr());
    let mut machine = Machine::load(&monster, kernel).expect("monster loads");
    let outcome = machine.run(10_000_000);
    let kernel = machine.into_handler();
    if kernel.stdout() == b"ghoul" {
        return AttackOutcome::Succeeded(
            "stitched program executed donor B's authenticated write".into(),
        );
    }
    match outcome {
        RunOutcome::Killed(msg) => match kernel.alerts().last() {
            Some(alert) => AttackOutcome::Blocked(alert.clone()),
            None => AttackOutcome::Failed(format!("killed without an alert: {msg}")),
        },
        other => AttackOutcome::Failed(format!("{other:?} (stdout {:?})", kernel.stdout())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frankenstein_succeeds_without_unique_block_ids() {
        let outcome = run_frankenstein(&MacKey::from_seed(0xF2A2), false);
        assert!(outcome.is_success(), "{outcome:?}");
    }

    #[test]
    fn frankenstein_blocked_by_unique_block_ids() {
        let outcome = run_frankenstein(&MacKey::from_seed(0xF2A2), true);
        assert!(outcome.is_blocked(), "{outcome:?}");
        let AttackOutcome::Blocked(alert) = outcome else {
            unreachable!()
        };
        assert_eq!(
            alert.reason(),
            asc_kernel::ReasonCode::NotInPredecessorSet,
            "{alert}"
        );
    }
}
