//! The attack harness: the code-injection experiments of §4.1 plus the
//! Frankenstein attack and countermeasure of §5.5.
//!
//! Three attacks against the vulnerable `victim` workload (which reads a
//! file name into a 64-byte stack buffer and runs `/bin/ls` on it):
//!
//! 1. **Shellcode injection** ([`AttackLab::shellcode_attack`]): overflow
//!    the buffer, overwrite the return address, execute injected code that
//!    issues `execve("/bin/sh")`. Succeeds against the unprotected binary;
//!    against the installed binary the injected call carries no valid
//!    policy/MAC and the process is killed.
//! 2. **Mimicry via cross-application gadget reuse**
//!    ([`AttackLab::mimicry_attack`]): inject an *authenticated* syscall
//!    gadget lifted from a different installed application (with its
//!    `.asc` data replicated). Fails because the call MAC covers the call
//!    site, which now differs.
//! 3. **Non-control-data attack**
//!    ([`AttackLab::non_control_data_attack`]): corrupt the string
//!    argument `"/bin/ls"` into `"/bin/sh"` in memory and let the program
//!    reach its legitimate `execve`. Fails the authenticated-string check.
//!
//! The [`frankenstein`] module builds a program stitched from the
//! authenticated calls of two other applications and shows that unique
//! basic-block identifiers (the §5.5 countermeasure) stop it.

pub mod frankenstein;

use asc_crypto::{MacKey, POLICY_STATE_LEN};
use asc_installer::{Installer, InstallerOptions};
use asc_isa::{Instruction, Opcode, Reg, INSTR_LEN};
use asc_kernel::{Alert, Kernel, KernelOptions, Personality, VerifyTier};
use asc_object::Binary;
use asc_vm::{Machine, PageFlags, RunOutcome, StepOutcome};

/// How an attack attempt ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The attack achieved its goal (e.g. `/bin/sh` executed).
    Succeeded(String),
    /// The kernel killed the process; the structured alert names the call
    /// site, syscall, and violated check.
    Blocked(Alert),
    /// The attack failed for an unexpected reason (harness bug).
    Failed(String),
}

impl AttackOutcome {
    /// Whether the attack was stopped by the monitor.
    pub fn is_blocked(&self) -> bool {
        matches!(self, AttackOutcome::Blocked(_))
    }

    /// Whether the attack achieved its goal.
    pub fn is_success(&self) -> bool {
        matches!(self, AttackOutcome::Succeeded(_))
    }
}

/// The attack laboratory: the victim in unprotected and installed forms,
/// plus a donor application for gadget theft.
pub struct AttackLab {
    key: MacKey,
    victim_plain: Binary,
    victim_auth: Binary,
    donor_auth: Binary,
    use_cache: bool,
}

impl std::fmt::Debug for AttackLab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackLab").finish()
    }
}

const PERSONALITY: Personality = Personality::Linux;

/// Donor application for the mimicry experiment: an installed program
/// whose authenticated `write` gadget the attacker lifts.
const DONOR_SOURCE: &str = r#"
fn main() {
    write(1, "donor says hi\n", 14);
    return 0;
}
"#;

/// Victim for the stale-cache attacks: issues the *same* authenticated
/// call repeatedly so the kernel's verified-call cache goes warm, giving
/// the attacker a window to tamper between iterations.
const LOOPER_SOURCE: &str = r#"
fn main() {
    var i = 0;
    while (i < 6) {
        access("/etc/motd", 0);
        i = i + 1;
    }
    return 0;
}
"#;

/// Victim for the syscall-reorder attack: the same overflowable
/// `read_name` as the classic victim, but the `execve` lives in its own
/// function behind a mandatory audit `write` — the only legal syscall
/// order is read, write, execve. An attacker who overwrites `read_name`'s
/// return address with `launch`'s entry executes a *perfectly legitimate*
/// call site (its own MAC, its own authenticated string) while skipping
/// the audit gate, creating the transition read -> execve that never
/// appears in the program's flow digraph.
const REORDER_SOURCE: &str = r#"
global scratch[512];

str LS = "/bin/ls";

fn read_name(dst) {
    var tmp[64];                 // adjacent to saved fp / return address
    var n = read(0, tmp, 256);   // BUG: no bounds check (reads up to 256)
    if (n == 0) { return 0; }
    if (tmp[n - 1] == 10) { tmp[n - 1] = 0; } else { tmp[n - 1] = 0; }
    bcopy(tmp, dst, 64);
    return n;                    // smashed return address triggers here
}

fn launch(name) {
    var argv[16];
    poke(argv, LS);
    poke(argv + 4, name);
    poke(argv + 8, 0);
    return execve(LS, argv, 0);
}

fn main() {
    var name[64];
    if (read_name(name) == 0) {
        write(2, "usage: launcher <file>\n", 23);
        return 1;
    }
    write(1, "audit: launch\n", 14);
    launch(name);
    return 0;
}
"#;

impl AttackLab {
    /// Builds the victim (plain + installed) and the donor.
    pub fn new(key: MacKey) -> AttackLab {
        let spec = asc_workloads::program("victim").expect("victim registered");
        let victim_plain = asc_workloads::build(spec, PERSONALITY).expect("victim builds");
        let installer = Installer::new(
            key.clone(),
            InstallerOptions::new(PERSONALITY).with_program_id(7),
        );
        let (victim_auth, _) = installer
            .install(&victim_plain, "victim")
            .expect("installs");
        let donor_plain =
            asc_workloads::build_source(DONOR_SOURCE, PERSONALITY).expect("donor builds");
        let donor_installer = Installer::new(
            key.clone(),
            InstallerOptions::new(PERSONALITY).with_program_id(9),
        );
        let (donor_auth, _) = donor_installer
            .install(&donor_plain, "donor")
            .expect("installs");
        AttackLab {
            key,
            victim_plain,
            victim_auth,
            donor_auth,
            use_cache: false,
        }
    }

    /// Enables the kernel's verified-call cache for every machine this lab
    /// builds, so the attacks also exercise the warm fast path.
    pub fn with_verify_cache(mut self) -> AttackLab {
        self.use_cache = true;
        self
    }

    /// The unprotected victim binary.
    pub fn victim_plain(&self) -> &Binary {
        &self.victim_plain
    }

    /// The installed victim binary.
    pub fn victim_auth(&self) -> &Binary {
        &self.victim_auth
    }

    fn machine(&self, binary: &Binary, stdin: &[u8]) -> Machine<Kernel> {
        let opts = if binary.is_authenticated() {
            let opts = KernelOptions::enforcing(PERSONALITY);
            if self.use_cache {
                opts.with_verify_cache()
            } else {
                opts
            }
        } else {
            KernelOptions::plain(PERSONALITY)
        };
        let mut kernel = Kernel::new(opts);
        if binary.is_authenticated() {
            kernel.set_key(self.key.clone());
        }
        kernel.set_stdin(stdin.to_vec());
        kernel.set_brk(binary.highest_addr());
        Machine::load(binary, kernel).expect("victim fits")
    }

    /// Determines the stack address of the vulnerable buffer by
    /// single-stepping a probe run up to the oversized `read` — the
    /// deterministic layout an attacker would compute offline.
    fn buffer_address(&self, binary: &Binary) -> u32 {
        let mut m = self.machine(binary, b"probe\n");
        for _ in 0..1_000_000 {
            let fetched = m.mem().fetch(m.pc()).map(Instruction::decode);
            if let Ok(Ok(instr)) = fetched {
                if instr.op == Opcode::Syscall && m.reg(Reg::R0) == 3 && m.reg(Reg::R3) == 256 {
                    return m.reg(Reg::R2); // buf argument of read(0, buf, 256)
                }
            }
            if let StepOutcome::Done(outcome) = m.step() {
                panic!("probe ended early: {outcome:?}");
            }
        }
        panic!("oversized read not reached");
    }

    /// Builds the classic overflow payload: shellcode + `/bin/sh` string in
    /// the buffer, then the overwritten `dst` pointer, saved frame pointer,
    /// and return address pointing back into the buffer.
    fn shellcode_payload(&self, binary: &Binary, shellcode: &[Instruction]) -> Vec<u8> {
        let buf = self.buffer_address(binary);
        // Where the corrupted `dst` pointer sends the victim's own copy:
        // spare stack far below the payload (writable, harmless).
        let scratch = buf - 0x800;
        let needs_string = shellcode
            .iter()
            .any(|i| i.op == Opcode::Movi && i.imm == SH_PLACEHOLDER);
        let code_len = shellcode.len() * asc_isa::INSTR_LEN;
        let string_len = if needs_string { 8 } else { 0 };
        assert!(code_len + string_len <= 64, "shellcode must fit the buffer");
        let sh_addr = buf + code_len as u32;
        // Patch the placeholder argument (R1) now that we know sh_addr.
        let mut payload = Vec::with_capacity(80);
        for instr in shellcode {
            let mut i = *instr;
            if i.op == Opcode::Movi && i.imm == SH_PLACEHOLDER {
                i.imm = sh_addr;
            }
            payload.extend_from_slice(&i.encode());
        }
        if needs_string {
            payload.extend_from_slice(b"/bin/sh\0");
        }
        payload.resize(64, 0x90);
        payload.extend_from_slice(&scratch.to_le_bytes()); // dst
        payload.extend_from_slice(&(scratch + 64).to_le_bytes()); // saved fp
        payload.extend_from_slice(&buf.to_le_bytes()); // return address
        payload.push(b'\n'); // consumed by the NUL-termination
        payload
    }

    fn run_to_outcome(&self, binary: &Binary, stdin: &[u8]) -> (RunOutcome, Kernel) {
        let mut m = self.machine(binary, stdin);
        let outcome = m.run(100_000_000);
        (outcome, m.into_handler())
    }

    fn classify(outcome: RunOutcome, kernel: &Kernel) -> AttackOutcome {
        if kernel.exec_requests().iter().any(|p| p == "/bin/sh") {
            return AttackOutcome::Succeeded("/bin/sh executed".into());
        }
        match outcome {
            RunOutcome::Killed(msg) => match kernel.alerts().last() {
                Some(alert) => AttackOutcome::Blocked(alert.clone()),
                None => AttackOutcome::Failed(format!("killed without an alert: {msg}")),
            },
            other => AttackOutcome::Failed(format!("{other:?}")),
        }
    }

    /// Attack 1: classic shellcode injection (`execve("/bin/sh")` from the
    /// stack). `protected` selects the installed or unprotected victim.
    pub fn shellcode_attack(&self, protected: bool) -> AttackOutcome {
        let binary = if protected {
            &self.victim_auth
        } else {
            &self.victim_plain
        };
        let execve_nr = PERSONALITY
            .nr(asc_kernel::SyscallId::Execve)
            .expect("execve") as u32;
        let shellcode = [
            Instruction::movi(Reg::R1, SH_PLACEHOLDER),
            Instruction::movi(Reg::R2, 0),
            Instruction::movi(Reg::R3, 0),
            Instruction::movi(Reg::R0, execve_nr),
            Instruction::syscall(),
            Instruction::halt(),
        ];
        let payload = self.shellcode_payload(binary, &shellcode);
        let (outcome, kernel) = self.run_to_outcome(binary, &payload);
        Self::classify(outcome, &kernel)
    }

    /// Attack 2: mimicry by reusing an *authenticated* gadget lifted from
    /// the donor application, with the donor's `.asc` data replicated at
    /// its original addresses (heap-spray style).
    pub fn mimicry_attack(&self) -> AttackOutcome {
        let binary = &self.victim_auth;
        // Lift the donor's authenticated write gadget: the argument +
        // policy loads followed by the syscall.
        let (gadget, donor_asc) = extract_gadget(&self.donor_auth);
        let mut shellcode = gadget;
        shellcode.push(Instruction::halt());
        let payload = self.shellcode_payload(binary, &shellcode);

        let mut m = self.machine(binary, &payload);
        // Replicate the donor's .asc section into the victim's address
        // space at the donor's addresses (the attacker's arbitrary-write /
        // heap-spray step).
        m.mem_mut()
            .protect(donor_asc.0, donor_asc.1.len() as u32, PageFlags::RW);
        m.mem_mut()
            .kwrite(donor_asc.0, &donor_asc.1)
            .expect("replicate .asc");
        let outcome = m.run(100_000_000);
        let kernel = m.into_handler();
        if kernel
            .trace()
            .iter()
            .any(|t| t.id == asc_kernel::SyscallId::Write && t.site != 0)
            && kernel.stats().verified > 3
        {
            return AttackOutcome::Succeeded("stolen gadget executed".into());
        }
        Self::classify(outcome, &kernel)
    }

    /// Attack 3: non-control-data — overwrite the authenticated string
    /// `"/bin/ls"` with `"/bin/sh"` and let the victim reach its
    /// legitimate `execve`. `protected` selects the binary.
    pub fn non_control_data_attack(&self, protected: bool) -> AttackOutcome {
        let binary = if protected {
            &self.victim_auth
        } else {
            &self.victim_plain
        };
        let mut m = self.machine(binary, b"/etc/motd\n");
        // Find "/bin/ls" in the loaded image and overwrite it — for the
        // authenticated binary that is the AS contents in .asc; for the
        // plain binary it is the .rodata literal (which the attacker's
        // write primitive can reach because the simulator models pre-NX
        // hardware; we flip the page writable to model a WWW primitive).
        let target = find_bytes(binary, b"/bin/ls\0").expect("literal present");
        m.mem_mut().protect(target, 8, PageFlags::RW);
        m.mem_mut().kwrite(target, b"/bin/sh\0").expect("overwrite");
        let outcome = m.run(100_000_000);
        let kernel = m.into_handler();
        Self::classify(outcome, &kernel)
    }

    /// Builds and installs the looping guest used by the stale-cache
    /// attacks.
    fn build_looper(&self) -> Binary {
        let plain = asc_workloads::build_source(LOOPER_SOURCE, PERSONALITY).expect("looper builds");
        let installer = Installer::new(
            self.key.clone(),
            InstallerOptions::new(PERSONALITY).with_program_id(11),
        );
        installer
            .install(&plain, "looper")
            .expect("looper installs")
            .0
    }

    /// Steps `m` until the kernel has fully verified `n` calls, failing the
    /// attack if the program ends first.
    fn warm_up(m: &mut Machine<Kernel>, n: u64) -> Result<(), AttackOutcome> {
        while m.handler().stats().verified < n {
            if let StepOutcome::Done(outcome) = m.step() {
                return Err(AttackOutcome::Failed(format!(
                    "ended during warm-up: {outcome:?}"
                )));
            }
        }
        Ok(())
    }

    /// Attack 4: stale-cache string rewrite. Let the looping victim's
    /// repeated `access("/etc/motd")` warm the verified-call cache, then
    /// overwrite the authenticated string's contents in `.asc` and resume.
    /// A kernel that trusted its cache without re-reading memory would keep
    /// accepting the call; a sound one must re-compare the bytes, miss, and
    /// kill on the string MAC.
    pub fn stale_cache_string_attack(&self) -> AttackOutcome {
        let binary = self.build_looper();
        let mut m = self.machine(&binary, b"");
        if let Err(fail) = Self::warm_up(&mut m, 2) {
            return fail;
        }
        let target = find_bytes(&binary, b"/etc/motd\0").expect("AS contents present");
        m.mem_mut().protect(target, 10, PageFlags::RW);
        m.mem_mut()
            .kwrite(target, b"/etc/pass\0")
            .expect("overwrite");
        let outcome = m.run(100_000_000);
        let kernel = m.into_handler();
        match outcome {
            // Reaching exit means iterations ran with the forged string.
            RunOutcome::Exited(_) => {
                AttackOutcome::Succeeded("forged string accepted from warm cache".into())
            }
            other => Self::classify(other, &kernel),
        }
    }

    /// Attack 5: stale-cache policy-state replay. Snapshot the in-memory
    /// policy-state cell (the first [`POLICY_STATE_LEN`] bytes of `.asc`)
    /// after one verified call, let another call advance it, then restore
    /// the old snapshot — a classic replay that a cache keyed without the
    /// memory-checker epoch would accept. The kernel must reject the stale
    /// cell against its per-process counter and kill.
    pub fn stale_cache_state_replay_attack(&self) -> AttackOutcome {
        let binary = self.build_looper();
        let asc_addr = binary
            .section_by_name(".asc")
            .expect("installed looper has .asc")
            .addr;
        let mut m = self.machine(&binary, b"");
        if let Err(fail) = Self::warm_up(&mut m, 1) {
            return fail;
        }
        let snapshot = m
            .mem()
            .kread(asc_addr, POLICY_STATE_LEN as u32)
            .expect("read state cell")
            .to_vec();
        if let Err(fail) = Self::warm_up(&mut m, 2) {
            return fail;
        }
        let advanced = m
            .mem()
            .kread(asc_addr, POLICY_STATE_LEN as u32)
            .expect("read state cell")
            .to_vec();
        assert_ne!(
            snapshot, advanced,
            "state cell must advance between verified calls"
        );
        m.mem_mut()
            .protect(asc_addr, POLICY_STATE_LEN as u32, PageFlags::RW);
        m.mem_mut()
            .kwrite(asc_addr, &snapshot)
            .expect("replay state");
        let outcome = m.run(100_000_000);
        let kernel = m.into_handler();
        match outcome {
            RunOutcome::Exited(_) => {
                AttackOutcome::Succeeded("replayed policy state accepted".into())
            }
            other => Self::classify(other, &kernel),
        }
    }

    /// Builds and installs the staged launcher used by the reorder attack.
    /// Installed *without* control-flow policies (the paper's Table 4
    /// cheap variant): per-call MACs then authenticate each site in
    /// isolation and are order-blind, so only the flow tiers see the
    /// transition. The `.ascflow` digraph is emitted regardless.
    pub fn reorder_victim(&self) -> Binary {
        let plain =
            asc_workloads::build_source(REORDER_SOURCE, PERSONALITY).expect("launcher builds");
        let installer = Installer::new(
            self.key.clone(),
            InstallerOptions::new(PERSONALITY)
                .with_program_id(13)
                .without_control_flow(),
        );
        installer
            .install(&plain, "launcher")
            .expect("launcher installs")
            .0
    }

    /// Builds a tier-selected enforcing machine; the flow tiers load the
    /// binary's `.ascflow` digraph into the kernel first.
    fn tier_machine(&self, binary: &Binary, stdin: &[u8], tier: VerifyTier) -> Machine<Kernel> {
        let opts = KernelOptions::enforcing(PERSONALITY).with_tier(tier);
        let opts = if self.use_cache {
            opts.with_verify_cache()
        } else {
            opts
        };
        let mut kernel = Kernel::new(opts);
        kernel.set_key(self.key.clone());
        if tier.checks_flow() {
            kernel.set_flow_graph(asc_workloads::flow_graph_of(binary, &self.key));
        }
        kernel.set_stdin(stdin.to_vec());
        kernel.set_brk(binary.highest_addr());
        Machine::load(binary, kernel).expect("victim fits")
    }

    /// Attack 6: syscall reordering. Overwrite `read_name`'s return
    /// address with the entry of `launch` — a legitimate function whose
    /// `execve` call site carries a valid MAC and authenticated string —
    /// skipping the audit `write` that the program's control flow puts in
    /// between. Every per-call check passes (the site authenticates
    /// itself), but the read -> execve *transition* is absent from the
    /// flow digraph. Returns the outcome plus the kernel so callers can
    /// check for side effects.
    pub fn reorder_attack_traced(&self, tier: VerifyTier) -> (AttackOutcome, Kernel) {
        let binary = self.reorder_victim();
        let launch = binary
            .symbol("launch")
            .expect("launch symbol survives installation")
            .addr;
        let buf = self.buffer_address(&binary);
        let scratch = buf - 0x800;
        let mut payload = vec![0x90u8; 64];
        payload.extend_from_slice(&scratch.to_le_bytes()); // dst
        payload.extend_from_slice(&(scratch + 64).to_le_bytes()); // saved fp
        payload.extend_from_slice(&launch.to_le_bytes()); // return address
        payload.push(b'\n'); // consumed by the NUL-termination
        let mut m = self.tier_machine(&binary, &payload, tier);
        let outcome = m.run(100_000_000);
        let kernel = m.into_handler();
        let audited = kernel.stdout().starts_with(b"audit:");
        if kernel.exec_requests().iter().any(|p| p == "/bin/ls") && !audited {
            let result = AttackOutcome::Succeeded("execve reached without the audit write".into());
            return (result, kernel);
        }
        let result = Self::classify(outcome, &kernel);
        (result, kernel)
    }

    /// [`AttackLab::reorder_attack_traced`] without the kernel.
    pub fn reorder_attack(&self, tier: VerifyTier) -> AttackOutcome {
        self.reorder_attack_traced(tier).0
    }

    /// Builds and installs the raw-`SYSCALL`-gadget guest from the hostile
    /// corpus: a binary whose text hides a misaligned `syscall` inside an
    /// undisassemblable island, reached through a register jump. The
    /// installer cannot see the gadget, so it is neither rewritten nor
    /// registered in `.ascsites`.
    pub fn gadget_victim(&self) -> Binary {
        let spec = asc_workloads::hostile::hostile("gadget").expect("gadget in hostile corpus");
        let plain = asc_workloads::hostile::build_hostile(spec).expect("gadget assembles");
        let installer = Installer::new(
            self.key.clone(),
            InstallerOptions::new(PERSONALITY).with_program_id(15),
        );
        installer
            .install(&plain, "gadget")
            .expect("gadget installs")
            .0
    }

    /// Attack 7: raw-`SYSCALL` gadget. The guest jumps into a hidden,
    /// misaligned `write(1, "pwned\n", 6)` whose trap therefore originates
    /// from a program counter the installer never rewrote. Per-call MACs
    /// and the flow digraph are blind to *where* a trap comes from — only
    /// the `.ascsites` origin check can refuse it, and it must do so under
    /// every tier, before the write produces output. Returns the outcome
    /// plus the kernel so callers can check for side effects.
    pub fn gadget_attack_traced(&self, tier: VerifyTier) -> (AttackOutcome, Kernel) {
        let binary = self.gadget_victim();
        let opts = KernelOptions::enforcing(PERSONALITY).with_tier(tier);
        let opts = if self.use_cache {
            opts.with_verify_cache()
        } else {
            opts
        };
        let mut kernel = Kernel::new(opts);
        kernel.set_key(self.key.clone());
        if tier.checks_flow() {
            kernel.set_flow_graph(asc_workloads::flow_graph_of(&binary, &self.key));
        }
        kernel.set_site_registry(asc_workloads::sites_of(&binary, &self.key));
        kernel.set_brk(binary.highest_addr());
        let mut m = Machine::load(&binary, kernel).expect("gadget fits");
        let outcome = m.run(100_000_000);
        let kernel = m.into_handler();
        if kernel.stdout().windows(5).any(|w| w == b"pwned") {
            let result = AttackOutcome::Succeeded("hidden gadget's write dispatched".into());
            return (result, kernel);
        }
        let result = Self::classify(outcome, &kernel);
        (result, kernel)
    }

    /// [`AttackLab::gadget_attack_traced`] without the kernel.
    pub fn gadget_attack(&self, tier: VerifyTier) -> AttackOutcome {
        self.gadget_attack_traced(tier).0
    }
}

/// Placeholder immediate patched to the address of `/bin/sh` once the
/// buffer address is known.
const SH_PLACEHOLDER: u32 = 0xBBBB_BBBB;

/// Finds `needle` in any section of the binary, returning its address.
/// Prefers the `.asc` section (where the installer placed authenticated
/// copies) over `.rodata`.
pub fn find_bytes(binary: &Binary, needle: &[u8]) -> Option<u32> {
    let search = |name: &str| -> Option<u32> {
        let s = binary.section_by_name(name)?;
        s.data
            .windows(needle.len())
            .position(|w| w == needle)
            .map(|off| s.addr + off as u32)
    };
    search(".asc").or_else(|| search(".rodata"))
}

/// Extracts the first authenticated syscall gadget from an installed
/// binary: the maximal run of `movi` instructions feeding a `syscall`,
/// plus the binary's `.asc` section `(addr, bytes)` for replication.
pub fn extract_gadget(binary: &Binary) -> (Vec<Instruction>, (u32, Vec<u8>)) {
    let text = binary.section_by_name(".text").expect("text");
    let instrs: Vec<Instruction> = text
        .data
        .chunks_exact(INSTR_LEN)
        .map(|c| Instruction::decode(c).expect("installed binaries decode"))
        .collect();
    let sys_idx = instrs
        .iter()
        .position(|i| i.op == Opcode::Syscall)
        .expect("installed binary has syscalls");
    let mut start = sys_idx;
    while start > 0 && instrs[start - 1].op == Opcode::Movi {
        start -= 1;
    }
    let gadget = instrs[start..=sys_idx].to_vec();
    let asc = binary
        .section_by_name(".asc")
        .expect("installed binary has .asc");
    (gadget, (asc.addr, asc.data.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const AT_TACK: u64 = 0xA77A;

    #[test]
    fn shellcode_succeeds_unprotected() {
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        let outcome = lab.shellcode_attack(false);
        assert!(outcome.is_success(), "{outcome:?}");
    }

    #[test]
    fn shellcode_blocked_when_protected() {
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        let outcome = lab.shellcode_attack(true);
        assert!(outcome.is_blocked(), "{outcome:?}");
    }

    #[test]
    fn mimicry_blocked() {
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        let outcome = lab.mimicry_attack();
        assert!(outcome.is_blocked(), "{outcome:?}");
        // Specifically: the stolen gadget's MAC does not match the new
        // call site.
        let AttackOutcome::Blocked(alert) = outcome else {
            unreachable!()
        };
        assert_eq!(
            alert.reason(),
            asc_kernel::ReasonCode::BadCallMac,
            "{alert}"
        );
    }

    #[test]
    fn non_control_data_succeeds_unprotected() {
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        let outcome = lab.non_control_data_attack(false);
        assert!(outcome.is_success(), "{outcome:?}");
    }

    #[test]
    fn non_control_data_blocked_when_protected() {
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        let outcome = lab.non_control_data_attack(true);
        assert!(outcome.is_blocked(), "{outcome:?}");
        let AttackOutcome::Blocked(alert) = outcome else {
            unreachable!()
        };
        assert_eq!(
            alert.reason(),
            asc_kernel::ReasonCode::BadStringMac,
            "{alert}"
        );
    }

    #[test]
    fn classic_attacks_blocked_with_warm_cache() {
        // The verified-call cache must not open any of the original holes.
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK)).with_verify_cache();
        assert!(lab.shellcode_attack(true).is_blocked());
        assert!(lab.mimicry_attack().is_blocked());
        assert!(lab.non_control_data_attack(true).is_blocked());
    }

    #[test]
    fn stale_cache_string_attack_blocked() {
        // Cold kernel first: the attack is just a mid-run string rewrite.
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        let outcome = lab.stale_cache_string_attack();
        assert!(outcome.is_blocked(), "{outcome:?}");
        // Warm cache: the cached acceptance must not survive the rewrite.
        let lab = lab.with_verify_cache();
        let outcome = lab.stale_cache_string_attack();
        assert!(outcome.is_blocked(), "{outcome:?}");
        let AttackOutcome::Blocked(alert) = outcome else {
            unreachable!()
        };
        assert_eq!(
            alert.reason(),
            asc_kernel::ReasonCode::BadStringMac,
            "{alert}"
        );
    }

    #[test]
    fn stale_cache_state_replay_blocked() {
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        let outcome = lab.stale_cache_state_replay_attack();
        assert!(outcome.is_blocked(), "{outcome:?}");
        let lab = lab.with_verify_cache();
        let outcome = lab.stale_cache_state_replay_attack();
        assert!(outcome.is_blocked(), "{outcome:?}");
        let AttackOutcome::Blocked(alert) = outcome else {
            unreachable!()
        };
        assert_eq!(
            alert.reason(),
            asc_kernel::ReasonCode::BadPolicyState,
            "{alert}"
        );
    }

    #[test]
    fn looper_runs_clean_and_warms_cache() {
        // Untampered, the looper exits 0 and the cache takes hits — the
        // stale-cache attacks above really do race a *warm* cache.
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK)).with_verify_cache();
        let binary = lab.build_looper();
        let (outcome, kernel) = lab.run_to_outcome(&binary, b"");
        assert_eq!(
            outcome,
            RunOutcome::Exited(0),
            "alerts: {:?}",
            kernel.alerts()
        );
        assert!(kernel.stats().cache_hits > 0, "stats: {:?}", kernel.stats());
        assert!(
            kernel.stats().warm_aes_blocks < kernel.stats().verify_aes_blocks,
            "warm path must run fewer blocks: {:?}",
            kernel.stats()
        );
    }

    #[test]
    fn reorder_victim_digraph_lacks_the_attack_edge() {
        // The legal order is read -> write -> execve; the digraph must
        // carry those edges and *not* read -> execve, or the attack below
        // would be testing nothing.
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        let binary = lab.reorder_victim();
        let flow = asc_workloads::flow_graph_of(&binary, &MacKey::from_seed(AT_TACK));
        let read = PERSONALITY.nr(asc_kernel::SyscallId::Read).unwrap();
        let write = PERSONALITY.nr(asc_kernel::SyscallId::Write).unwrap();
        let execve = PERSONALITY.nr(asc_kernel::SyscallId::Execve).unwrap();
        assert!(flow.contains(read, write), "legal edge missing");
        assert!(flow.contains(write, execve), "legal edge missing");
        assert!(!flow.contains(read, execve), "digraph too coarse");
    }

    #[test]
    fn reorder_victim_benign_under_every_tier() {
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        let binary = lab.reorder_victim();
        for tier in VerifyTier::ALL {
            let mut m = lab.tier_machine(&binary, b"/etc/motd\n", tier);
            let outcome = m.run(100_000_000);
            let kernel = m.into_handler();
            assert_eq!(
                outcome,
                RunOutcome::Exited(0),
                "{tier:?} alerts: {:?}",
                kernel.alerts()
            );
            assert!(kernel.stdout().starts_with(b"audit:"), "{tier:?}");
            assert_eq!(kernel.exec_requests(), &["/bin/ls".to_string()], "{tier:?}");
        }
    }

    #[test]
    fn reorder_attack_succeeds_under_plain_mac() {
        // Without control-flow policies every per-call check still passes
        // — the jump lands on a legitimate, self-authenticating call site
        // — so the MAC-only tier dispatches the out-of-order execve.
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        let (outcome, kernel) = lab.reorder_attack_traced(VerifyTier::Mac);
        assert!(outcome.is_success(), "{outcome:?}");
        assert_eq!(kernel.exec_requests(), &["/bin/ls".to_string()]);
        assert!(
            !kernel.stdout().starts_with(b"audit:"),
            "gate must be skipped"
        );
    }

    #[test]
    fn reorder_attack_blocked_by_flow_tiers_before_side_effects() {
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        for tier in [VerifyTier::FlowOnly, VerifyTier::MacPlusFlow] {
            let (outcome, kernel) = lab.reorder_attack_traced(tier);
            assert!(outcome.is_blocked(), "{tier:?}: {outcome:?}");
            let AttackOutcome::Blocked(alert) = outcome else {
                unreachable!()
            };
            assert_eq!(
                alert.reason(),
                asc_kernel::ReasonCode::BadFlowEdge,
                "{alert}"
            );
            // Kill fires before dispatch: the forged execve left no trace.
            assert!(kernel.exec_requests().is_empty(), "{tier:?}");
        }
    }

    #[test]
    fn gadget_succeeds_unprotected() {
        // The unprotected guest reaches its hidden misaligned write and
        // prints; this is the baseline the origin check must close.
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        let spec = asc_workloads::hostile::hostile("gadget").expect("corpus entry");
        let plain = asc_workloads::hostile::build_hostile(spec).expect("assembles");
        let (outcome, kernel) = lab.run_to_outcome(&plain, b"");
        assert_eq!(
            outcome,
            RunOutcome::Exited(0),
            "alerts: {:?}",
            kernel.alerts()
        );
        assert_eq!(kernel.stdout(), b"pwned\n");
    }

    #[test]
    fn gadget_blocked_under_every_tier_before_side_effects() {
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        for tier in VerifyTier::ALL {
            let (outcome, kernel) = lab.gadget_attack_traced(tier);
            assert!(outcome.is_blocked(), "{tier:?}: {outcome:?}");
            let AttackOutcome::Blocked(alert) = outcome else {
                unreachable!()
            };
            assert_eq!(
                alert.reason(),
                asc_kernel::ReasonCode::UnrewrittenSite,
                "{alert}"
            );
            // The kill fires before the MAC path and before dispatch: no
            // output, no trace entry, nothing for the attacker.
            assert_eq!(kernel.stdout(), b"", "{tier:?}");
            assert!(kernel.trace().is_empty(), "{tier:?}");
        }
    }

    #[test]
    fn gadget_blocked_with_warm_cache() {
        // The verified-call cache must not let a forged origin through.
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK)).with_verify_cache();
        for tier in VerifyTier::ALL {
            let outcome = lab.gadget_attack(tier);
            assert!(outcome.is_blocked(), "{tier:?}: {outcome:?}");
        }
    }

    #[test]
    fn benign_input_works_on_both() {
        let lab = AttackLab::new(MacKey::from_seed(AT_TACK));
        for binary in [lab.victim_plain(), lab.victim_auth()] {
            let (outcome, kernel) = lab.run_to_outcome(binary, b"/etc/motd\n");
            assert_eq!(
                outcome,
                RunOutcome::Exited(0),
                "alerts: {:?}",
                kernel.alerts()
            );
            assert_eq!(kernel.exec_requests(), &["/bin/ls".to_string()]);
        }
    }
}
