//! Argument classification (§4.1) and the Table 3 coverage statistics.

use asc_analysis::dataflow::Value;
use asc_analysis::SyscallSite;
use asc_core::ArgPolicy;
use asc_kernel::{Personality, SyscallSpec};
use asc_object::{sections, Binary};

/// Table 3's row for one program: argument coverage of the generated
/// policies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoverageStats {
    /// Distinct system call *sites* (post-inlining).
    pub sites: usize,
    /// Distinct system *calls* (numbers).
    pub calls: usize,
    /// Total arguments across all sites (by signature arity).
    pub args: usize,
    /// Output-only arguments (kernel writes results there).
    pub out_params: usize,
    /// Arguments statically determined and authenticated by the basic
    /// approach (immediates + string literals).
    pub auth: usize,
    /// Arguments with a small set of possible constant values (the `mv`
    /// extension statistic).
    pub multi_value: usize,
    /// fd-typed arguments whose value flows from an earlier syscall
    /// return (the `fds` extension statistic).
    pub fds: usize,
}

/// B-Side-style precision accounting for one installation: how much of
/// the binary's syscall surface the installer *proved* versus how much it
/// over-approximated or gave up on. Where [`CoverageStats`] reproduces
/// Table 3 (what was authenticated), this measures the complement — the
/// numbers an adversarial binary degrades.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrecisionStats {
    /// Syscall sites the analysis discovered (pre-classification,
    /// post-inlining — includes sites whose number is not static).
    pub discovered: usize,
    /// Sites actually rewritten into authenticated calls.
    pub rewritten: usize,
    /// Discovered sites skipped because the syscall number is not
    /// statically determined (left to be blocked at runtime).
    pub unknown_nr: usize,
    /// Text regions the lifter could not disassemble; any `SYSCALL`
    /// hidden inside is invisible to rewriting (the OpenBSD-`close`
    /// problem) and reachable only as a raw gadget.
    pub undisassembled_regions: usize,
    /// Input arguments (by signature arity, out-params excluded) across
    /// rewritten sites.
    pub input_args: usize,
    /// Input arguments left unconstrained (`Any`) in the final policy —
    /// the unknown-argument count.
    pub unknown_args: usize,
    /// Predecessor-set entries summed over rewritten sites.
    pub pred_entries: usize,
    /// Rewritten sites carrying a predecessor set.
    pub pred_sites: usize,
}

impl PrecisionStats {
    /// Fraction of discovered sites that were rewritten, in [0, 1].
    pub fn rewrite_rate(&self) -> f64 {
        ratio(self.rewritten, self.discovered)
    }

    /// Fraction of input arguments left unconstrained, in [0, 1].
    pub fn unknown_arg_rate(&self) -> f64 {
        ratio(self.unknown_args, self.input_args)
    }

    /// Mean predecessor-set entries per flow-constrained site — the
    /// pred-set over-approximation measure (a sound set can only err by
    /// being too large, so bigger means coarser).
    pub fn pred_over_approx(&self) -> f64 {
        ratio(self.pred_entries, self.pred_sites)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// How one argument was classified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgClass {
    /// Address of a known string constant.
    String(Vec<u8>),
    /// Some other known constant.
    Immediate(u32),
    /// A known constant that is an address (of a non-string object, or of
    /// a string whose contents are dynamic); must be remapped if the
    /// rewriter moves sections.
    ImmediateAddr(u32),
    /// One of a few known constants.
    MultiValue(Vec<u32>),
    /// Flows from a previous syscall's return value (fd candidate).
    SyscallReturn,
    /// Output-only pointer per the signature.
    OutParam,
    /// Statically unknown.
    Unknown,
}

/// Reads a NUL-terminated printable string at `addr` from the binary's
/// read-only data, if one is there. This is the "address of a known
/// string" test: the constant must point into `.rodata` (string constants
/// live there) and the bytes must be printable ASCII up to a NUL within a
/// sane length.
pub fn string_at(binary: &Binary, addr: u32) -> Option<Vec<u8>> {
    let section = binary.section_by_name(sections::RODATA)?;
    if !section.contains_addr(addr) {
        return None;
    }
    let start = (addr - section.addr) as usize;
    let mut out = Vec::new();
    for i in start..section.data.len().min(start + 1024) {
        let b = section.data[i];
        if b == 0 {
            return Some(out);
        }
        if !(0x09..=0x7e).contains(&b) {
            return None;
        }
        out.push(b);
    }
    None
}

/// Classifies one argument of one site.
pub fn classify_arg(
    binary: &Binary,
    spec: &SyscallSpec,
    site: &SyscallSite,
    index: usize,
) -> ArgClass {
    if index >= spec.nargs as usize {
        return ArgClass::Unknown;
    }
    if spec.out_mask & (1 << index) != 0 {
        return ArgClass::OutParam;
    }
    match &site.args[index] {
        Value::Const(c) => ArgClass::Immediate(*c),
        Value::Addr(c) => match string_at(binary, *c) {
            Some(s) if spec.path_mask & (1 << index) != 0 || !s.is_empty() => ArgClass::String(s),
            _ => ArgClass::ImmediateAddr(*c),
        },
        Value::Consts(cs) => ArgClass::MultiValue(cs.clone()),
        Value::SyscallRet => ArgClass::SyscallReturn,
        Value::Undefined | Value::Unknown => ArgClass::Unknown,
    }
}

/// Classifies all arguments of a site and derives the basic-approach
/// [`ArgPolicy`] for each, updating `stats`.
pub fn classify_site(
    binary: &Binary,
    personality: Personality,
    site: &SyscallSite,
    capability_tracking: bool,
    stats: &mut CoverageStats,
) -> Option<(u16, Vec<ArgPolicy>, &'static SyscallSpec)> {
    let nr = site.nr.as_const()? as u16;
    let id = personality.id(nr)?;
    let spec = asc_kernel::spec(id);
    stats.sites += 1;
    stats.args += spec.nargs as usize;
    let mut policies = vec![ArgPolicy::Any; asc_core::MAX_ARGS];
    for i in 0..spec.nargs as usize {
        match classify_arg(binary, spec, site, i) {
            ArgClass::String(s) => {
                stats.auth += 1;
                policies[i] = ArgPolicy::StringLit(s);
            }
            ArgClass::Immediate(c) => {
                stats.auth += 1;
                policies[i] = ArgPolicy::Immediate(c);
            }
            ArgClass::ImmediateAddr(c) => {
                stats.auth += 1;
                policies[i] = ArgPolicy::ImmediateAddr(c);
            }
            ArgClass::MultiValue(_) => stats.multi_value += 1,
            ArgClass::SyscallReturn => {
                if spec.fd_mask & (1 << i) != 0 {
                    stats.fds += 1;
                    if capability_tracking {
                        policies[i] = ArgPolicy::Capability;
                    }
                }
            }
            ArgClass::OutParam => stats.out_params += 1,
            ArgClass::Unknown => {}
        }
    }
    Some((nr, policies, spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_analysis::{ir::Unit, ProgramAnalysis};
    use asc_asm::assemble;

    fn analyze(src: &str) -> (Binary, ProgramAnalysis) {
        let binary = assemble(src).unwrap();
        let analysis = ProgramAnalysis::run(Unit::lift(&binary).unwrap());
        (binary, analysis)
    }

    #[test]
    fn string_detection() {
        let (binary, _) = analyze(
            "
            .text
        main: halt
            .rodata
        s1: .asciz \"/etc/motd\"
        s2: .byte 1
            .byte 2
        ",
        );
        let s1 = binary.symbol("s1").unwrap().addr;
        assert_eq!(string_at(&binary, s1), Some(b"/etc/motd".to_vec()));
        // Mid-string pointer also yields a (suffix) string.
        assert_eq!(string_at(&binary, s1 + 1), Some(b"etc/motd".to_vec()));
        // Non-printable region is not a string.
        let s2 = binary.symbol("s2").unwrap().addr;
        assert_eq!(string_at(&binary, s2), None);
        // Addresses outside .rodata are not strings.
        assert_eq!(string_at(&binary, 0x1000), None);
        assert_eq!(string_at(&binary, 0xdead_0000), None);
    }

    #[test]
    fn open_call_classification() {
        let (binary, analysis) = analyze(
            "
            .text
        main:
            movi r0, 5          ; SYS_open
            movi r1, path
            movi r2, 0
            movi r3, 0x1b6
            syscall
            halt
            .rodata
        path: .asciz \"/etc/motd\"
        ",
        );
        let site = &analysis.syscall_sites()[0];
        let mut stats = CoverageStats::default();
        let (nr, policies, spec) =
            classify_site(&binary, Personality::Linux, site, false, &mut stats).unwrap();
        assert_eq!(nr, 5);
        assert_eq!(spec.name, "open");
        assert_eq!(policies[0], ArgPolicy::StringLit(b"/etc/motd".to_vec()));
        assert_eq!(policies[1], ArgPolicy::Immediate(0));
        assert_eq!(policies[2], ArgPolicy::Immediate(0x1b6));
        assert_eq!(stats.auth, 3);
        assert_eq!(stats.args, 3);
    }

    #[test]
    fn read_call_out_param_and_fd_flow() {
        let (binary, analysis) = analyze(
            "
            .text
        main:
            movi r0, 5
            movi r1, path
            movi r2, 0
            syscall
            mov r4, r0
            movi r0, 3          ; SYS_read
            mov r1, r4          ; fd from open
            movi r2, 0x5000     ; buffer (out param)
            movi r3, 128
            syscall
            halt
            .rodata
        path: .asciz \"/x\"
        ",
        );
        let site = &analysis.syscall_sites()[1];
        let mut stats = CoverageStats::default();
        let (nr, policies, _) =
            classify_site(&binary, Personality::Linux, site, true, &mut stats).unwrap();
        assert_eq!(nr, 3);
        assert_eq!(policies[0], ArgPolicy::Capability, "fd arg tracked");
        assert_eq!(policies[1], ArgPolicy::Any, "out param unconstrained");
        assert_eq!(policies[2], ArgPolicy::Immediate(128));
        assert_eq!(stats.out_params, 1);
        assert_eq!(stats.fds, 1);
        assert_eq!(stats.auth, 1);
    }

    #[test]
    fn unknown_number_site_skipped() {
        let (binary, analysis) = analyze(
            "
            .text
        main:
            ldw r0, [r1]
            syscall
            halt
        ",
        );
        let site = &analysis.syscall_sites()[0];
        let mut stats = CoverageStats::default();
        assert!(classify_site(&binary, Personality::Linux, site, false, &mut stats).is_none());
        assert_eq!(stats.sites, 0);
    }
}
