//! The trusted installer (§3.3, Fig. 2).
//!
//! Run by the security administrator with the MAC key, the installer
//! reads a relocatable binary, runs the PLTO-style analyses from
//! `asc-analysis`, generates a [`asc_core::ProgramPolicy`], and rewrites
//! the binary so every system call is an *authenticated* system call:
//!
//! * syscall stubs are inlined so each call site carries its own policy;
//! * string-constant arguments become authenticated strings in a new
//!   `.asc` section, and the argument register is repointed at the AS
//!   contents;
//! * five argument loads (`R7..=R11`: descriptor, block id, predecessor
//!   set, policy-state pointer, call MAC pointer) are inserted before each
//!   `syscall` instruction;
//! * the `.asc` section additionally holds the per-program policy-state
//!   cell (`lastBlock ‖ lbMAC`) initialised for counter 0, every
//!   predecessor-set AS, and every 16-byte call MAC;
//! * all code and data are re-laid-out (text grows), every relocated
//!   address is fixed up, and the output binary is marked authenticated
//!   and stripped of relocations — matching the paper's non-relocatable,
//!   statically linked output.
//!
//! # Example
//!
//! ```
//! use asc_crypto::MacKey;
//! use asc_installer::{Installer, InstallerOptions};
//! use asc_kernel::Personality;
//!
//! let binary = asc_asm::assemble("
//!     .text
//! main:
//!     movi r0, 20    ; getpid
//!     syscall
//!     movi r0, 1     ; exit
//!     movi r1, 0
//!     syscall
//! ")?;
//! let installer = Installer::new(MacKey::from_seed(7), InstallerOptions::new(Personality::Linux));
//! let (authenticated, report) = installer.install(&binary, "demo")?;
//! assert!(authenticated.is_authenticated());
//! assert_eq!(report.policy.sites(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod ascdata;
mod classify;
mod metapolicy;
mod rewrite;

pub use classify::{CoverageStats, PrecisionStats};
pub use metapolicy::{Metapolicy, MetapolicyRule, PolicyTemplate, TemplateHole};

use asc_core::ProgramPolicy;
use asc_crypto::MacKey;
use asc_kernel::Personality;
use asc_metrics::Registry;
use asc_object::Binary;
use asc_trace::{Event, EventKind, NullSink, TraceSink};

/// Installer configuration.
#[derive(Clone, Debug)]
pub struct InstallerOptions {
    /// Target OS personality (affects syscall identification and argument
    /// classification).
    pub personality: Personality,
    /// Emit control-flow (predecessor set) policies. On by default; the
    /// paper's microbenchmarks also measure calls without them.
    pub control_flow: bool,
    /// Transform string-constant arguments into authenticated strings.
    pub authenticate_strings: bool,
    /// Fold a per-program id into basic block ids (§5.5's Frankenstein
    /// countermeasure).
    pub unique_block_ids: bool,
    /// Program id used when `unique_block_ids` is set.
    pub program_id: u16,
    /// Mark fd-typed arguments whose value flows from an earlier syscall
    /// return as tracked capabilities (§5.3). Requires a kernel with
    /// capability tracking enabled.
    pub capability_tracking: bool,
    /// Optional metapolicy (§5.2): minimum constraints per syscall.
    pub metapolicy: Option<Metapolicy>,
}

impl InstallerOptions {
    /// Defaults: full policies (control flow + strings + unique block
    /// ids), no capability tracking, no metapolicy.
    pub fn new(personality: Personality) -> InstallerOptions {
        InstallerOptions {
            personality,
            control_flow: true,
            authenticate_strings: true,
            unique_block_ids: true,
            program_id: 1,
            capability_tracking: false,
            metapolicy: None,
        }
    }

    /// Disables control-flow policies (Table 4 microbenchmark variant).
    #[must_use]
    pub fn without_control_flow(mut self) -> InstallerOptions {
        self.control_flow = false;
        self
    }

    /// Sets the program id.
    #[must_use]
    pub fn with_program_id(mut self, id: u16) -> InstallerOptions {
        self.program_id = id;
        self
    }

    /// Enables capability tracking policies.
    #[must_use]
    pub fn with_capability_tracking(mut self) -> InstallerOptions {
        self.capability_tracking = true;
        self
    }

    /// Attaches a metapolicy.
    #[must_use]
    pub fn with_metapolicy(mut self, mp: Metapolicy) -> InstallerOptions {
        self.metapolicy = Some(mp);
        self
    }
}

/// What an installation produced besides the binary.
#[derive(Clone, Debug)]
pub struct InstallReport {
    /// The generated program policy (keyed by *output* call-site address).
    pub policy: ProgramPolicy,
    /// Table 3-style argument coverage statistics.
    pub stats: CoverageStats,
    /// B-Side-style precision statistics: discovered vs rewritten sites,
    /// unknown-argument rate, pred-set over-approximation.
    pub precision: PrecisionStats,
    /// Stubs inlined, with per-stub site counts.
    pub inlined: Vec<(String, usize)>,
    /// Warnings for the administrator (undisassembled regions, syscalls
    /// with statically unknown numbers, metapolicy holes).
    pub warnings: Vec<String>,
    /// Metapolicy templates awaiting hand completion (§5.2). Empty when no
    /// metapolicy was supplied or all requirements were met statically.
    pub templates: Vec<PolicyTemplate>,
}

/// Installation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstallError {
    /// The input binary could not be lifted.
    Lift(String),
    /// The input binary is already authenticated.
    AlreadyAuthenticated,
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::Lift(e) => write!(f, "cannot lift binary: {e}"),
            InstallError::AlreadyAuthenticated => write!(f, "binary is already authenticated"),
        }
    }
}

impl std::error::Error for InstallError {}

/// The trusted installer: holds the MAC key and configuration.
pub struct Installer {
    key: MacKey,
    options: InstallerOptions,
}

impl std::fmt::Debug for Installer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Installer")
            .field("options", &self.options)
            .finish()
    }
}

impl Installer {
    /// Creates an installer with the administrator-provided key.
    pub fn new(key: MacKey, options: InstallerOptions) -> Installer {
        Installer { key, options }
    }

    /// The configuration.
    pub fn options(&self) -> &InstallerOptions {
        &self.options
    }

    /// Policy generation only: analysis without rewriting. This is the
    /// mode the paper ported to OpenBSD for the Table 1/2 comparisons
    /// ("the policy generation portion of the installer has been ported").
    ///
    /// # Errors
    ///
    /// [`InstallError::Lift`] if the binary cannot be disassembled.
    pub fn generate_policy(
        &self,
        binary: &Binary,
        program: &str,
    ) -> Result<(ProgramPolicy, CoverageStats, Vec<String>), InstallError> {
        self.generate_policy_traced(binary, program, &mut NullSink)
    }

    /// [`Installer::generate_policy`] with flight-recorder telemetry: each
    /// pass (analysis, classification) emits an
    /// [`asc_trace::EventKind::InstallerPass`] event with its coverage
    /// counters into `sink`.
    ///
    /// # Errors
    ///
    /// [`InstallError::Lift`] if the binary cannot be disassembled.
    pub fn generate_policy_traced(
        &self,
        binary: &Binary,
        program: &str,
        sink: &mut dyn TraceSink,
    ) -> Result<(ProgramPolicy, CoverageStats, Vec<String>), InstallError> {
        let plan = rewrite::plan(self, binary, program, sink)?;
        Ok((plan.policy, plan.stats, plan.warnings))
    }

    /// Full installation: policy generation plus binary rewriting.
    ///
    /// # Errors
    ///
    /// [`InstallError`] on lift failure or double installation.
    pub fn install(
        &self,
        binary: &Binary,
        program: &str,
    ) -> Result<(Binary, InstallReport), InstallError> {
        self.install_traced(binary, program, &mut NullSink)
    }

    /// [`Installer::install`] with flight-recorder telemetry: the
    /// analysis, classification, and rewrite passes each emit an
    /// [`asc_trace::EventKind::InstallerPass`] event with coverage
    /// counters into `sink`.
    ///
    /// # Errors
    ///
    /// [`InstallError`] on lift failure or double installation.
    pub fn install_traced(
        &self,
        binary: &Binary,
        program: &str,
        sink: &mut dyn TraceSink,
    ) -> Result<(Binary, InstallReport), InstallError> {
        if binary.is_authenticated() {
            return Err(InstallError::AlreadyAuthenticated);
        }
        rewrite::install(self, binary, program, sink)
    }

    /// [`Installer::install`] with metrics: each pass (analysis,
    /// classification, rewrite) records its wall-clock duration into the
    /// `asc_installer_pass_us{pass=...}` histogram and its coverage
    /// counters into `asc_installer_coverage{pass=...,counter=...}` gauges.
    /// Durations are the only wall-clock metric in the stack (the installer
    /// runs outside the simulated machine, so there is no virtual clock to
    /// stamp); the perf-trajectory gate therefore never compares them.
    ///
    /// # Errors
    ///
    /// [`InstallError`] on lift failure or double installation.
    pub fn install_metered(
        &self,
        binary: &Binary,
        program: &str,
        registry: &mut Registry,
    ) -> Result<(Binary, InstallReport), InstallError> {
        let mut capture = PassCapture::new();
        let result = self.install_traced(binary, program, &mut capture)?;
        capture.fold_into(registry);
        Ok(result)
    }

    pub(crate) fn key(&self) -> &MacKey {
        &self.key
    }
}

/// Records `precision` as `asc_installer_precision{binary,metric}` gauges:
/// the raw counters plus the derived rates. Kept separate from the
/// per-pass coverage gauges of [`Installer::install_metered`] so the
/// flight-recorder pass stream (and its goldens) is unchanged.
pub fn record_precision(registry: &mut Registry, binary: &str, p: &PrecisionStats) {
    let metrics: [(&str, f64); 11] = [
        ("discovered", p.discovered as f64),
        ("rewritten", p.rewritten as f64),
        ("unknown_nr", p.unknown_nr as f64),
        ("undisassembled_regions", p.undisassembled_regions as f64),
        ("input_args", p.input_args as f64),
        ("unknown_args", p.unknown_args as f64),
        ("pred_entries", p.pred_entries as f64),
        ("pred_sites", p.pred_sites as f64),
        ("rewrite_rate", p.rewrite_rate()),
        ("unknown_arg_rate", p.unknown_arg_rate()),
        ("pred_over_approx", p.pred_over_approx()),
    ];
    for (metric, value) in metrics {
        let gauge = registry.gauge(
            "asc_installer_precision",
            &[("binary", binary), ("metric", metric)],
        );
        registry.set(gauge, value);
    }
}

/// One captured installer pass: name, coverage counters, and duration in
/// microseconds.
type CapturedPass = (String, Vec<(String, u64)>, u64);

/// A trace sink that keeps only the installer-pass events, stamping each
/// with the wall-clock time elapsed since the previous pass completed —
/// i.e. the duration of the pass itself, since passes run back to back.
struct PassCapture {
    passes: Vec<CapturedPass>,
    last: std::time::Instant,
}

impl PassCapture {
    fn new() -> PassCapture {
        PassCapture {
            passes: Vec::new(),
            last: std::time::Instant::now(),
        }
    }

    fn fold_into(self, registry: &mut Registry) {
        for (pass, counters, micros) in self.passes {
            let duration = registry.histogram("asc_installer_pass_us", &[("pass", &pass)]);
            registry.observe(duration, micros);
            for (counter, value) in counters {
                let gauge = registry.gauge(
                    "asc_installer_coverage",
                    &[("pass", &pass), ("counter", &counter)],
                );
                registry.set(gauge, value as f64);
            }
        }
    }
}

impl TraceSink for PassCapture {
    fn record(&mut self, event: Event) {
        if let EventKind::InstallerPass { pass, counters } = event.kind {
            let now = std::time::Instant::now();
            let micros = now.duration_since(self.last).as_micros() as u64;
            self.last = now;
            self.passes.push((pass, counters, micros));
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}
